"""E2 — Theorem 1.2: the round/approximation tradeoff.

For t = 1..4, the paper promises an O(log^{2^-t} n)-approximation in O(t)
rounds.  The table reports the formula bound, the pipeline's chained
guarantee, the measured stretch, and the ledger rounds.
"""

from __future__ import annotations


from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import apsp_tradeoff, tradeoff_factor_bound
from repro.graphs import check_estimate

from conftest import exact_for, rng_for, workload

N = 96
TS = [1, 2, 3, 4]


def test_tradeoff_table(results_sink, benchmark):
    graph = workload("er", N)
    exact = exact_for("er", N)
    rows = []
    for t in TS:
        ledger = RoundLedger(graph.n)
        result = apsp_tradeoff(graph, t, rng_for(f"e2:{t}"), ledger=ledger)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        rows.append(
            (
                t,
                round(tradeoff_factor_bound(graph.n, t), 1),
                round(result.factor, 1),
                round(report.max_stretch, 3),
                ledger.total_rounds,
            )
        )
    table = format_table(
        ["t", "O(log^(2^-t) n) bound", "chained factor", "max stretch", "rounds"],
        rows,
        title="E2 / Theorem 1.2 — round-approximation tradeoff (n=%d)" % N,
    )
    emit(table, sink_path=results_sink)

    benchmark.pedantic(
        lambda: apsp_tradeoff(graph, 2, rng_for("e2:kernel")),
        rounds=1,
        iterations=1,
    )


def test_bound_decreases_in_t(results_sink, benchmark):
    """The formula side of the claim: the bound strictly improves with t."""
    bounds = [tradeoff_factor_bound(1 << 20, t) for t in range(1, 8)]
    assert all(b1 > b2 for b1, b2 in zip(bounds, bounds[1:]))
    rows = [(t + 1, round(b, 2)) for t, b in enumerate(bounds)]
    table = format_table(
        ["t", "bound at n=2^20"],
        rows,
        title="E2b — O(log^(2^-t) n) bound is strictly decreasing in t",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(lambda: bounds, rounds=1, iterations=1)
