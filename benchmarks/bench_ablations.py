"""E14 — Ablations of the design choices DESIGN.md calls out.

* **Hopset k** (Section 4 fixes k = sqrt(n)): smaller k shrinks receive
  load and hopset size but covers fewer pairs; larger k violates the
  O(n)-per-node load budget.  The sweep shows why sqrt(n) is the sweet
  spot the paper picks.
* **Hitting-set repetitions** (Lemma 6.2 amplifies with O(log n)
  repetitions): more repetitions shrink |S| toward the expectation bound
  and tighten its variance.
* **Weight-scaling eps** (Lemma 8.1): smaller eps means a bigger diameter
  cap B h^2 (more rounds inside each scale's solver) in exchange for a
  tighter (1+eps) loss — the knob behind every "+eps" in the theorems.
* **Bootstrap alpha** (Corollary 7.2): a smaller alpha buys a smaller
  initial factor at more broadcast rounds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.cclique.errors import LoadPreconditionError
from repro.core import build_knearest_hopset, build_hitting_set, plan_scaling
from repro.graphs import exact_apsp
from repro.semiring import k_smallest_in_rows
from repro.spanners import logn_bootstrap

from conftest import exact_for, rng_for, workload

N = 96


def test_hopset_k_ablation(results_sink, benchmark):
    graph = workload("er", N)
    exact = exact_for("er", N)
    rng = rng_for("e14:hopset")
    noise = rng.uniform(1.0, 4.0, size=exact.shape)
    delta = exact * np.maximum(noise, noise.T)
    np.fill_diagonal(delta, 0.0)
    rows = []
    for k in (int(N**0.25), int(N**0.5), int(N**0.75)):
        ledger = RoundLedger(N)
        try:
            result = build_knearest_hopset(graph, delta, 4.0, k=k, ledger=ledger)
            rows.append(
                (
                    k,
                    k * k,
                    result.hopset.num_edges,
                    result.beta_bound,
                    ledger.total_rounds,
                    "ok",
                )
            )
        except LoadPreconditionError:
            rows.append((k, k * k, "-", "-", "-", "load violated"))
    table = format_table(
        ["k", "recv load k^2", "|H|", "beta bound", "rounds", "status"],
        rows,
        title=f"E14a — hopset k ablation (n={N}; paper picks k=sqrt(n))",
    )
    emit(table, sink_path=results_sink)
    # sqrt(n) is the largest k whose load fits O(n): larger k must fail or
    # at least blow the k^2 budget past the constant.
    assert rows[1][-1] == "ok"
    benchmark.pedantic(
        lambda: build_knearest_hopset(graph, delta, 4.0, k=int(N**0.5)),
        rounds=1,
        iterations=1,
    )


def test_hitting_set_repetitions_ablation(results_sink, benchmark):
    graph = workload("er", N)
    exact = exact_for("er", N)
    k = 10
    idx, _ = k_smallest_in_rows(exact, k)
    rows = []
    for repetitions in (1, 4, 16):
        sizes = []
        for trial in range(10):
            rng = rng_for(f"e14:hs:{repetitions}:{trial}")
            members = build_hitting_set(idx, N, k, rng, repetitions=repetitions)
            sizes.append(len(members))
        rows.append(
            (
                repetitions,
                round(float(np.mean(sizes)), 2),
                int(np.max(sizes)),
                round(float(np.std(sizes)), 2),
            )
        )
    table = format_table(
        ["repetitions", "mean |S|", "max |S|", "std"],
        rows,
        title=f"E14b — hitting-set repetitions (n={N}, k={k}; Lemma 6.2 uses O(log n))",
    )
    emit(table, sink_path=results_sink)
    # amplification: more repetitions never increase the best-of size.
    assert rows[-1][1] <= rows[0][1] + 1e-9
    benchmark.pedantic(
        lambda: build_hitting_set(idx, N, k, rng_for("e14:hs:kernel")),
        rounds=1,
        iterations=1,
    )


def test_weight_scaling_eps_ablation(results_sink, benchmark):
    exact = exact_for("poly", 64)
    h = 6
    rows = []
    for eps in (0.05, 0.1, 0.5, 1.0):
        plan = plan_scaling(exact, h=h, eps=eps)
        rows.append(
            (
                eps,
                plan.B,
                int(plan.cap),
                len(plan.needed),
                round(1.0 + eps, 2),
            )
        )
    table = format_table(
        ["eps", "B=ceil(2/eps)", "diameter cap B h^2", "active scales", "loss (1+eps)"],
        rows,
        title="E14c — weight-scaling eps: diameter cap vs approximation loss",
    )
    emit(table, sink_path=results_sink)
    # smaller eps -> larger cap (more work) and smaller loss: a real tradeoff
    assert rows[0][2] > rows[-1][2]
    assert rows[0][4] < rows[-1][4]
    benchmark.pedantic(lambda: plan_scaling(exact, h=h, eps=0.1), rounds=1, iterations=1)


def test_bootstrap_alpha_ablation(results_sink, benchmark):
    graph = workload("er-dense", N)
    exact = exact_for("er-dense", N)
    rows = []
    for alpha in (0.5, 1.0, 2.0):
        ledger = RoundLedger(N)
        result = logn_bootstrap(
            graph, rng_for(f"e14:boot:{alpha}"), ledger=ledger, alpha=alpha
        )
        from repro.graphs import check_estimate

        report = check_estimate(exact, result.estimate)
        assert report.sound
        rows.append(
            (
                alpha,
                round(result.factor, 2),
                round(report.max_stretch, 3),
                result.spanner.num_edges,
                ledger.total_rounds,
            )
        )
    table = format_table(
        ["alpha", "factor bound", "max stretch", "spanner edges", "rounds"],
        rows,
        title=f"E14d — bootstrap alpha: initial factor vs broadcast rounds (n={N})",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(
        lambda: logn_bootstrap(graph, rng_for("e14:boot:kernel")),
        rounds=1,
        iterations=1,
    )
