"""E18 — end-to-end pipeline profiler + construction-layer speedups.

Two claims are regenerated here:

* **phase breakdown** — the Theorem 1.1 / Theorem 1.2 / Theorem 7.1
  pipelines now report *wall-clock per phase* through the
  :class:`~repro.cclique.accounting.RoundLedger` phase contexts; this
  module records them at several sizes and emits ``BENCH_pipeline.json``
  so CI and dashboards can track where pipeline time goes;
* **construction speedup** — the array-native construction layer
  (CSR-view Baswana–Sen spanner, batched-dijkstra hopset) beats the
  pre-PR per-vertex dict implementations (frozen below as references) by
  >= 3x / >= 2x at n = 512, the acceptance bar of the layer.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` restricts the sweep to the smallest
size and skips the speedup ratio assertions (CI asserts the JSON schema
and the hopset equivalence, which need no quiet machine).
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Dict, List, Set, Tuple

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import build_knearest_hopset, run_variant
from repro.core.hopsets import _local_dijkstra
from repro.graphs import WeightedGraph, exact_apsp
from repro.semiring.minplus import k_smallest_in_rows
from repro.spanners import baswana_sengupta_spanner, spanner_edge_bound

from conftest import rng_for, workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (96,) if SMOKE else (128, 256, 512)
SPEEDUP_N = 512
#: (variant, params) triples profiled per size — the three headline
#: pipelines of the registry.
PIPELINES = (
    ("theorem11", {}),
    ("tradeoff", {"t": 2}),
    ("small-diameter", {}),
)
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_pipeline.json")
)


# --------------------------------------------------------------------- #
# Frozen pre-PR reference implementations (per-vertex, dict-based).
# Kept verbatim so the speedup claim is measured against the real thing.
# --------------------------------------------------------------------- #


def _reference_lightest_edges_per_cluster(edges, cluster_of, vertex):
    best: Dict[int, Tuple[float, int]] = {}
    for neighbour, weight in edges[vertex].items():
        cluster = int(cluster_of[neighbour])
        if cluster < 0:
            continue
        key = (weight, neighbour)
        if cluster not in best or key < best[cluster]:
            best[cluster] = key
    return best


def reference_spanner(
    graph: WeightedGraph, k: int, rng: np.random.Generator
) -> WeightedGraph:
    """The pre-PR sequential Baswana–Sen construction (dict residual)."""
    n = graph.n
    sample_probability = n ** (-1.0 / k)
    edges: Dict[int, Dict[int, float]] = {v: {} for v in range(n)}
    for u, v, w in graph.edges():
        edges[u][v] = min(w, edges[u].get(v, np.inf))
        edges[v][u] = min(w, edges[v].get(u, np.inf))
    spanner: Set[Tuple[int, int, float]] = set()

    def add_edge(u, v, w):
        spanner.add((min(u, v), max(u, v), w))

    def drop_edges_to_cluster(vertex, cluster, cluster_of):
        for neighbour in [
            x for x in edges[vertex] if int(cluster_of[x]) == cluster
        ]:
            del edges[vertex][neighbour]
            del edges[neighbour][vertex]

    cluster_of = np.arange(n, dtype=np.int64)
    for _ in range(k - 1):
        centers = set(int(c) for c in np.unique(cluster_of[cluster_of >= 0]))
        sampled = {c for c in centers if rng.random() < sample_probability}
        new_cluster = np.full(n, -1, dtype=np.int64)
        for vertex in range(n):
            c = int(cluster_of[vertex])
            if c >= 0 and c in sampled:
                new_cluster[vertex] = c
        for vertex in range(n):
            old = int(cluster_of[vertex])
            if old < 0 or old in sampled:
                continue
            best = _reference_lightest_edges_per_cluster(edges, cluster_of, vertex)
            sampled_adjacent = {c: key for c, key in best.items() if c in sampled}
            if not sampled_adjacent:
                for cluster, (weight, neighbour) in best.items():
                    add_edge(vertex, neighbour, weight)
                    drop_edges_to_cluster(vertex, cluster, cluster_of)
            else:
                target_cluster, (target_w, target_nbr) = min(
                    sampled_adjacent.items(), key=lambda item: item[1]
                )
                add_edge(vertex, target_nbr, target_w)
                new_cluster[vertex] = target_cluster
                drop_edges_to_cluster(vertex, target_cluster, cluster_of)
                for cluster, (weight, neighbour) in best.items():
                    if cluster == target_cluster:
                        continue
                    if (weight, neighbour) < (target_w, target_nbr):
                        add_edge(vertex, neighbour, weight)
                        drop_edges_to_cluster(vertex, cluster, cluster_of)
        cluster_of = new_cluster
        for vertex in range(n):
            own = int(cluster_of[vertex])
            if own < 0:
                continue
            same = [
                x for x in edges[vertex] if int(cluster_of[x]) == own and x > vertex
            ]
            for neighbour in same:
                del edges[vertex][neighbour]
                del edges[neighbour][vertex]
    for vertex in range(n):
        best = _reference_lightest_edges_per_cluster(edges, cluster_of, vertex)
        for cluster, (weight, neighbour) in best.items():
            add_edge(vertex, neighbour, weight)
    return WeightedGraph(
        n,
        [(u, v, w) for (u, v, w) in sorted(spanner)],
        require_positive=False,
        require_integer=False,
    )


def reference_hopset(
    graph: WeightedGraph, delta: np.ndarray, k: int
) -> WeightedGraph:
    """The pre-PR hopset construction: per-vertex dict assembly, heapq
    Dijkstra per node, and the triple-list graph constructor — the full
    cost the Lemma 3.2 step used to pay."""
    n = graph.n
    nearest_indices, _ = k_smallest_in_rows(delta, k)
    short_edges = [graph.k_shortest_out_edges(u, k) for u in range(n)]
    full_adjacency = graph.adjacency()
    hopset_edges: List[Tuple[int, int, float]] = []
    for v in range(n):
        local: Dict[int, List[Tuple[int, float]]] = {}
        for u in nearest_indices[v]:
            if u < 0:
                continue
            local.setdefault(int(u), []).extend(short_edges[int(u)])
        local.setdefault(v, [])
        local[v] = list(full_adjacency[v]) + local[v]
        dist = _local_dijkstra(local, v)
        for u, d_vu in dist.items():
            if u != v and math.isfinite(d_vu):
                hopset_edges.append((v, int(u), float(d_vu)))
    return WeightedGraph(
        n,
        hopset_edges,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #


def best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def profile_pipelines() -> List[Dict]:
    records: List[Dict] = []
    for n in SIZES:
        graph = workload("er-dense", n)
        for variant, params in PIPELINES:
            ledger = RoundLedger(graph.n)
            rng = rng_for(f"pipeline:{variant}:{n}")
            start = time.perf_counter()
            run_variant(variant, graph, rng, ledger=ledger, **params)
            wall = time.perf_counter() - start
            records.append(
                {
                    "variant": variant,
                    "n": n,
                    "wall_s": wall,
                    "timed_s": ledger.timed_seconds,
                    "rounds": ledger.total_rounds,
                    "seconds_by_phase": ledger.seconds_by_phase(),
                    "rounds_by_phase": ledger.rounds_by_phase(),
                }
            )
    return records


def measure_construction() -> List[Dict]:
    """New-vs-reference timings for the vectorized construction phases."""
    n = SIZES[0] if SMOKE else SPEEDUP_N
    graph = workload("er-dense", n)
    records: List[Dict] = []

    spanner_rng = rng_for(f"pipeline:spanner:{n}")
    state = spanner_rng.bit_generator.state

    def fresh_rng():
        spanner_rng.bit_generator.state = state
        return spanner_rng

    vec_s = best_of(lambda: baswana_sengupta_spanner(graph, 3, fresh_rng()))
    ref_s = best_of(lambda: reference_spanner(graph, 3, fresh_rng()))
    vec_spanner = baswana_sengupta_spanner(graph, 3, fresh_rng())
    records.append(
        {
            "phase": "spanner (Baswana-Sen, k=3)",
            "n": n,
            "reference_s": ref_s,
            "vectorized_s": vec_s,
            "speedup": ref_s / vec_s,
            "edges": vec_spanner.num_edges,
            "edge_bound_2x": 2 * spanner_edge_bound(n, 3),
        }
    )

    exact = exact_apsp(graph)
    delta = exact * 2.0
    np.fill_diagonal(delta, 0.0)
    result = build_knearest_hopset(graph, delta, 2.0)
    k = result.k
    vec_h = best_of(lambda: build_knearest_hopset(graph, delta, 2.0))
    ref_h = best_of(lambda: reference_hopset(graph, delta, k))
    ref_graph = reference_hopset(graph, delta, k)
    records.append(
        {
            "phase": f"hopset (Lemma 3.2, k={k})",
            "n": n,
            "reference_s": ref_h,
            "vectorized_s": vec_h,
            "speedup": ref_h / vec_h,
            "edges": result.hopset.num_edges,
            "identical_to_reference": bool(
                np.array_equal(result.hopset.edge_u, ref_graph.edge_u)
                and np.array_equal(result.hopset.edge_v, ref_graph.edge_v)
                and np.array_equal(result.hopset.edge_w, ref_graph.edge_w)
            ),
        }
    )
    return records


@pytest.fixture(scope="module")
def pipeline_records() -> List[Dict]:
    return profile_pipelines()


@pytest.fixture(scope="module")
def construction_records() -> List[Dict]:
    return measure_construction()


def top_phases(seconds: Dict[str, float], limit: int = 3) -> str:
    ranked = sorted(seconds.items(), key=lambda kv: -kv[1])[:limit]
    return ", ".join(f"{name} {sec * 1e3:.0f}ms" for name, sec in ranked)


def test_pipeline_phase_breakdown(pipeline_records, construction_records,
                                  results_sink, benchmark):
    # Every profiled pipeline must attribute its time to named phases.
    for record in pipeline_records:
        assert record["seconds_by_phase"], record["variant"]
        assert record["timed_s"] <= record["wall_s"] + 1e-6

    rows = [
        (
            r["variant"],
            r["n"],
            f"{r['wall_s'] * 1e3:.0f}",
            r["rounds"],
            top_phases(r["seconds_by_phase"]),
        )
        for r in pipeline_records
    ]
    table = format_table(
        ["pipeline", "n", "wall ms", "rounds", "heaviest phases"],
        rows,
        title="E18 — pipeline phase profile (claim: construction phases "
        "are array-native; wall time attributed per ledger phase)",
    )
    emit(table, sink_path=results_sink)

    construction_rows = [
        (
            r["phase"],
            r["n"],
            f"{r['reference_s'] * 1e3:.0f}",
            f"{r['vectorized_s'] * 1e3:.0f}",
            f"{r['speedup']:.2f}x",
        )
        for r in construction_records
    ]
    emit(
        format_table(
            ["construction", "n", "reference ms", "vectorized ms", "speedup"],
            construction_rows,
            title="E18 — construction layer vs frozen pre-PR references "
            "(claim: spanner >= 3x, hopset >= 2x at n=512)",
        ),
        sink_path=results_sink,
    )

    payload = {
        "experiment": "E18-pipeline",
        "sizes": list(SIZES),
        "smoke": SMOKE,
        "pipelines": [name for name, _ in PIPELINES],
        "records": pipeline_records,
        "construction": construction_records,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    graph = workload("er-dense", SIZES[-1])
    benchmark.pedantic(
        lambda: run_variant(
            "theorem11", graph, rng_for("pipeline:bench"), ledger=RoundLedger(graph.n)
        ),
        rounds=1,
        iterations=1,
    )


def test_hopset_batched_path_identical_to_reference(construction_records):
    """The batched dijkstra must reproduce the per-vertex hopset exactly."""
    record = next(r for r in construction_records if r["phase"].startswith("hopset"))
    assert record["identical_to_reference"], record


def test_json_schema(pipeline_records, construction_records):
    """Schema contract for BENCH_pipeline.json consumers (CI smoke runs this)."""
    assert len(pipeline_records) >= 3  # >= 3 registry variants profiled
    assert {r["variant"] for r in pipeline_records} == {n for n, _ in PIPELINES}
    for record in pipeline_records:
        for key in ("variant", "n", "wall_s", "timed_s", "rounds",
                    "seconds_by_phase", "rounds_by_phase"):
            assert key in record, key
        assert isinstance(record["seconds_by_phase"], dict)
    for record in construction_records:
        for key in ("phase", "n", "reference_s", "vectorized_s", "speedup"):
            assert key in record, key


@pytest.mark.skipif(SMOKE, reason="speedup ratios need the n=512 measurement")
def test_construction_speedups_at_512(construction_records):
    """Acceptance: spanner >= 3x and hopset >= 2x over the pre-PR code."""
    spanner = next(
        r for r in construction_records if r["phase"].startswith("spanner")
    )
    hopset = next(
        r for r in construction_records if r["phase"].startswith("hopset")
    )
    assert spanner["speedup"] >= 3.0, spanner
    assert hopset["speedup"] >= 2.0, hopset
    # The spanner changed RNG semantics but must keep the size contract.
    assert spanner["edges"] <= spanner["edge_bound_2x"], spanner
