"""E21 — the async oracle-serving tier: micro-batched vs single-query.

Two measurements on :class:`repro.serve.OracleService` under a
synthetic closed-loop load (see :func:`repro.serve.run_closed_loop`):

* **Equivalence** — every endpoint (``distance``, ``route``,
  ``k_nearest``) must return *bit-identical* results through the
  micro-batched path and the single-query path: the engine calls are
  per-item independent, so batch membership must not leak into answers.
  Asserted at every load level, smoke or not.

* **Throughput/latency** — p50/p99 latency and queries/sec for both
  paths at >= 3 offered-load levels (concurrent closed-loop clients).
  At low concurrency the batcher pays its flush deadline and the
  single path wins — recorded honestly; the acceptance bar is the
  micro-batched ``route`` path at >= 5x the single-query throughput at
  the highest (saturating) load, written to ``BENCH_serve.json``.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks the instance and the load
levels — CI asserts equivalence and the metrics-snapshot JSON
round-trip, not the throughput ratio (that needs saturation and a
quiet machine).
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Dict, List

import pytest

from repro.analysis import emit, format_table
from repro.graphs import erdos_renyi
from repro.serve import OracleService, ServiceConfig, run_closed_loop

from conftest import rng_for

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
N = 64 if SMOKE else 256
LEVELS = (2, 4, 8) if SMOKE else (8, 64, 256)
REQUESTS = 60 if SMOKE else 2000
MAX_BATCH = 16 if SMOKE else 128
ENDPOINTS = ("distance", "route")
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")
)


def build_service():
    """One warmed service over a seeded workload + the query sample."""
    rng = rng_for(f"e21:{N}")
    graph = erdos_renyi(N, min(1.0, 8.0 / N), rng)
    service = OracleService(
        ServiceConfig(max_batch=MAX_BATCH, max_delay_ms=2.0, max_workers=4)
    )
    handle = service.warm(graph, variant="small-diameter", seed=7)
    qrng = rng_for(f"e21:queries:{N}")
    sources = qrng.integers(0, N, size=4096)
    targets = qrng.integers(0, N, size=4096)
    return service, handle, sources, targets


def drive(service, handle, sources, targets, endpoint, batched, level):
    """One closed-loop run; returns the LoadReport snapshot."""
    call = getattr(service, endpoint)

    async def request(i: int):
        s = int(sources[i % len(sources)])
        t = int(targets[i % len(targets)])
        return await call(handle, s, t, batched=batched)

    report = asyncio.run(run_closed_loop(request, REQUESTS, level))
    assert report.errors == 0, (endpoint, batched, level)
    return report.snapshot()


def collect_answers(service, handle, sources, targets, endpoint, batched, count):
    """The first ``count`` per-query answers through one serving path."""
    call = getattr(service, endpoint)

    async def gather():
        return await asyncio.gather(
            *(
                call(
                    handle,
                    int(sources[i]),
                    int(targets[i]),
                    batched=batched,
                )
                for i in range(count)
            )
        )

    return asyncio.run(gather())


def measure() -> Dict:
    service, handle, sources, targets = build_service()
    with service:
        # Equivalence first: answers must not depend on the serving path.
        mismatches = 0
        checked = min(REQUESTS, 512)
        for endpoint in ENDPOINTS:
            batched = collect_answers(
                service, handle, sources, targets, endpoint, True, checked
            )
            single = collect_answers(
                service, handle, sources, targets, endpoint, False, checked
            )
            mismatches += sum(1 for b, s in zip(batched, single) if b != s)

        async def knn_all(batched: bool):
            return await asyncio.gather(
                *(
                    service.k_nearest(
                        handle, int(sources[i]), 5, batched=batched
                    )
                    for i in range(checked)
                )
            )

        knn_batched = asyncio.run(knn_all(True))
        knn_single = asyncio.run(knn_all(False))
        mismatches += sum(
            1 for b, s in zip(knn_batched, knn_single) if b != s
        )

        records: List[Dict] = []
        for endpoint in ENDPOINTS:
            for level in LEVELS:
                single = drive(
                    service, handle, sources, targets, endpoint, False, level
                )
                batched = drive(
                    service, handle, sources, targets, endpoint, True, level
                )
                records.append(
                    {
                        "endpoint": endpoint,
                        "clients": level,
                        "requests": REQUESTS,
                        "single": single,
                        "batched": batched,
                        "batched_speedup": batched["qps"] / single["qps"],
                    }
                )
        snapshot = service.snapshot()
    # The metrics plane must survive a strict JSON round-trip.
    assert snapshot == json.loads(json.dumps(snapshot, allow_nan=False))
    return {
        "mismatches": mismatches,
        "checked_per_endpoint": checked,
        "records": records,
        "snapshot": snapshot,
    }


@pytest.fixture(scope="module")
def serve_records() -> Dict:
    return measure()


def test_serving_tier_identical_and_fast(serve_records, results_sink, benchmark):
    """E21: batched answers == single answers; both paths measured."""
    assert serve_records["mismatches"] == 0

    rows = []
    for r in serve_records["records"]:
        rows.append(
            (
                r["endpoint"],
                r["clients"],
                f"{r['single']['qps']:.0f}",
                f"{r['batched']['qps']:.0f}",
                f"{r['batched_speedup']:.2f}x",
                f"{r['single']['latency']['p50'] * 1e3:.2f}/"
                f"{r['single']['latency']['p99'] * 1e3:.2f}",
                f"{r['batched']['latency']['p50'] * 1e3:.2f}/"
                f"{r['batched']['latency']['p99'] * 1e3:.2f}",
            )
        )
    table = format_table(
        ["endpoint", "clients", "single qps", "batched qps", "speedup",
         "single p50/p99 ms", "batched p50/p99 ms"],
        rows,
        title="E21 — serving tier: micro-batched vs single-query closed-loop "
        "load (claim: identical answers, >= 5x route throughput at "
        "saturation)",
    )
    emit(table, sink_path=results_sink)

    payload = {
        "experiment": "E21-serve",
        "n": N,
        "levels": list(LEVELS),
        "requests": REQUESTS,
        "max_batch": MAX_BATCH,
        "smoke": SMOKE,
        "mismatches": serve_records["mismatches"],
        "records": serve_records["records"],
        "metrics_snapshot": serve_records["snapshot"],
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    service, handle, sources, targets = build_service()
    with service:
        benchmark.pedantic(
            lambda: drive(
                service, handle, sources, targets, "distance", True, LEVELS[-1]
            ),
            rounds=1,
            iterations=1,
        )


def test_metrics_snapshot_round_trip(serve_records):
    """The smoke-run assertion: the snapshot is JSON-round-trippable."""
    snapshot = serve_records["snapshot"]
    assert snapshot == json.loads(json.dumps(snapshot, allow_nan=False))
    # The load above must actually have exercised the batcher.
    batching = snapshot["metrics"]["batching"]
    assert batching["distance"]["batches"] >= 1
    assert batching["distance"]["max_batch"] >= 2


@pytest.mark.skipif(SMOKE, reason="saturation ratio needs the full load levels")
def test_batched_route_at_least_5x_at_saturation(serve_records):
    """Acceptance: micro-batched route >= 5x single-query at the top load."""
    top = max(
        (
            r
            for r in serve_records["records"]
            if r["endpoint"] == "route"
        ),
        key=lambda r: r["clients"],
    )
    assert top["batched_speedup"] >= 5.0, (
        f"micro-batched route path only {top['batched_speedup']:.2f}x the "
        f"single-query path at {top['clients']} clients"
    )
