"""E12 — Theorem 7.1: small-diameter APSP in both model variants.

The table contrasts the standard-model path (3-spanner on the skeleton,
21-approx) with the CC[log^3 n] path (full skeleton broadcast, 7-approx):
better bandwidth buys a smaller constant, same round shape.
"""

from __future__ import annotations

import math


from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import apsp_small_diameter
from repro.graphs import check_estimate

from conftest import exact_for, rng_for, workload


def run_variant(n: int, mode: str):
    graph = workload("grid", n)
    exact = exact_for("grid", n)
    words = 1 if mode == "cc" else max(1, math.ceil(math.log2(graph.n) ** 2))
    ledger = RoundLedger(graph.n, bandwidth_words=words)
    result = apsp_small_diameter(
        graph, rng_for(f"e12:{mode}:{n}"), ledger=ledger, mode=mode
    )
    report = check_estimate(exact, result.estimate)
    assert report.sound
    assert report.max_stretch <= result.factor + 1e-9
    return graph.n, result, report, ledger


def test_variant_table(results_sink, benchmark):
    rows = []
    for n in (64, 144):
        for mode, model in (("cc", "CC[log n]"), ("cc3", "CC[log^3 n]")):
            size, result, report, ledger = run_variant(n, mode)
            bound = 21.0 if mode == "cc" else 7.0
            assert result.factor <= bound + 1e-9
            rows.append(
                (
                    size,
                    model,
                    round(result.factor, 1),
                    round(report.max_stretch, 3),
                    ledger.total_rounds,
                )
            )
    table = format_table(
        ["n", "model", "factor bound", "max stretch", "rounds (in model)"],
        rows,
        title="E12 / Theorem 7.1 — 21-approx (CC) vs 7-approx (CC[log^3 n]) on grids",
    )
    emit(table, sink_path=results_sink)

    graph = workload("grid", 64)
    benchmark.pedantic(
        lambda: apsp_small_diameter(graph, rng_for("e12:kernel")),
        rounds=1,
        iterations=1,
    )


def test_bandwidth_buys_constant(results_sink, benchmark):
    """The cc3 factor bound (7) is strictly better than cc (21)."""
    _, cc_result, _, _ = run_variant(64, "cc")
    _, cc3_result, _, _ = run_variant(64, "cc3")
    assert cc3_result.factor < cc_result.factor
    benchmark.pedantic(
        lambda: (cc_result.factor, cc3_result.factor), rounds=1, iterations=1
    )
