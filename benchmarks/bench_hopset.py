"""E3 — Lemma 3.2: sqrt(n)-nearest beta-hopsets.

The lemma certifies beta in O(a log d).  The table compares the certified
bound against the *measured* hop radius: the smallest h such that h-hop
distances in G ∪ H are exact on every (u, N_k(u)) pair.  Measured values
sit well below the bound, and both grow with a and with log d, which is
the claimed shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.core import build_knearest_hopset
from repro.graphs import exact_apsp
from repro.semiring import minplus_power

from conftest import exact_for, rng_for, workload


def measured_hop_radius(augmented, exact, k: int, beta: int) -> int:
    """Smallest h (from doubling search) with exact h-hop N_k distances."""
    matrix = augmented.matrix()
    n = matrix.shape[0]
    targets = np.argsort(exact, axis=1, kind="stable")[:, :k]
    rows = np.repeat(np.arange(n), k)
    cols = targets.ravel()

    def ok(h: int) -> bool:
        power = minplus_power(matrix, h)
        return bool(np.allclose(power[rows, cols], exact[rows, cols]))

    h = 1
    while h < beta and not ok(h):
        h *= 2
    return min(h, beta)


def run_case(family: str, n: int, a: float):
    graph = workload(family, n)
    exact = exact_for(family, n)
    # Random per-pair stretch in [1, a]: unlike a uniform blow-up, this
    # scrambles the distance *order*, so the approximate ~N sets genuinely
    # differ from the true ones and multi-hop shortcutting is exercised.
    rng = rng_for(f"e3:{family}:{n}:{a}")
    noise = rng.uniform(1.0, a, size=exact.shape)
    delta = exact * np.maximum(noise, noise.T)
    np.fill_diagonal(delta, 0.0)
    result = build_knearest_hopset(graph, delta, a)
    augmented = result.augmented(graph)
    radius = measured_hop_radius(augmented, exact, result.k, result.beta_bound)
    return {
        "a": a,
        "beta_bound": result.beta_bound,
        "measured": radius,
        "hopset_edges": result.hopset.num_edges,
        "diameter": result.diameter_bound,
    }


def test_hopset_bound_table(results_sink, benchmark):
    rows = []
    for family in ("er", "path"):
        for a in (1.0, 4.0, 16.0):
            case = run_case(family, 64, a)
            assert case["measured"] <= case["beta_bound"]
            rows.append(
                (
                    family,
                    a,
                    int(case["diameter"]),
                    case["beta_bound"],
                    case["measured"],
                    case["hopset_edges"],
                )
            )
    table = format_table(
        ["family", "a", "diam bound d", "beta bound O(a log d)", "measured hops", "|H|"],
        rows,
        title="E3 / Lemma 3.2 — hopset hop bound vs measured (n=64)",
    )
    emit(table, sink_path=results_sink)

    graph = workload("er", 96)
    exact = exact_for("er", 96)
    rng = rng_for("e3:kernel")
    noise = rng.uniform(1.0, 4.0, size=exact.shape)
    delta = exact * np.maximum(noise, noise.T)
    np.fill_diagonal(delta, 0.0)
    benchmark.pedantic(
        lambda: build_knearest_hopset(graph, delta, 4.0), rounds=1, iterations=1
    )


def test_bound_grows_with_log_d(results_sink, benchmark):
    """Shape check: the certified beta grows when the diameter explodes."""
    er = run_case("er", 64, 4.0)
    path = run_case("path", 64, 4.0)
    assert path["diameter"] > er["diameter"]
    assert path["beta_bound"] >= er["beta_bound"]
    benchmark.pedantic(lambda: (er, path), rounds=1, iterations=1)
