#!/usr/bin/env python
"""One-command benchmark smoke runner (the CI entry point).

Runs every benchmark plane in ``REPRO_BENCH_SMOKE=1`` mode, then
validates the ``BENCH_*.json`` artifact each one emits — existence, the
expected experiment tag, and the plane's own gate (non-empty records,
bit-identity flags, bounded construction, chaos curves present).  Any
pytest failure or artifact regression makes the runner exit non-zero,
so one CI step covers what used to be six.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/run_smoke.py

The runner sets ``REPRO_BENCH_SMOKE=1`` itself and forwards the rest of
the environment untouched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Any, Callable, Dict, List, Tuple

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(BENCH_DIR)


def _records_nonempty(data: Dict[str, Any]) -> List[str]:
    if not data.get("records"):
        return ["records list is empty"]
    return []


def _records_identical(data: Dict[str, Any]) -> List[str]:
    problems = _records_nonempty(data)
    for record in data.get("records", []):
        if record.get("identical_to_reference") is False:
            problems.append(f"not bit-identical: {record}")
    return problems


def _check_chaos(data: Dict[str, Any]) -> List[str]:
    problems = []
    for key in ("crash_points", "drop_curves", "e23_byzantine_points"):
        if not data.get(key):
            problems.append(f"chaos artifact missing/empty {key!r}")
    return problems


def _check_shard(data: Dict[str, Any]) -> List[str]:
    problems = _records_identical(data)
    construction = [
        r for r in data.get("records", []) if r.get("arm") == "construction"
    ]
    if not construction:
        problems.append("no construction-arm record")
    for record in construction:
        if not record.get("bounded"):
            problems.append(f"construction working set unbounded: {record}")
    if "gate_enforced" not in data:
        problems.append("shard artifact missing gate_enforced")
    return problems


#: (bench module, artifact path, experiment tag, artifact gate).
SUITES: List[Tuple[str, str, str, Callable[[Dict[str, Any]], List[str]]]] = [
    ("bench_kernels.py", "BENCH_kernels.json", "E17-kernels",
     _records_identical),
    ("bench_pipeline.py", "BENCH_pipeline.json", "E18-pipeline",
     _records_nonempty),
    ("bench_routing.py", "BENCH_routing.json", "E19-routing",
     _records_nonempty),
    ("bench_query.py", "BENCH_query.json", "E20-query", _records_nonempty),
    ("bench_serve.py", "BENCH_serve.json", "E21-serve", _records_nonempty),
    ("bench_chaos.py", "BENCH_chaos.json", "E22-chaos", _check_chaos),
    ("bench_shard.py", "BENCH_shard.json", "E24-shard", _check_shard),
]


def run_suite(module: str, env: Dict[str, str]) -> bool:
    command = [
        sys.executable, "-m", "pytest",
        os.path.join("benchmarks", module), "-q", "--benchmark-disable",
    ]
    print(f"== {module}", flush=True)
    return subprocess.run(command, cwd=ROOT, env=env).returncode == 0


def validate_artifact(
    artifact: str, tag: str, gate: Callable[[Dict[str, Any]], List[str]]
) -> List[str]:
    path = os.path.join(ROOT, artifact)
    if not os.path.exists(path):
        return [f"{artifact}: not written"]
    try:
        with open(path, "r", encoding="utf-8") as source:
            data = json.load(source)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{artifact}: unreadable ({error})"]
    problems = []
    if data.get("experiment") != tag:
        problems.append(
            f"{artifact}: experiment tag {data.get('experiment')!r} != {tag!r}"
        )
    problems.extend(f"{artifact}: {p}" for p in gate(data))
    return problems


#: Path (relative to the repo root) of the lint-report artifact the
#: smoke run emits and validates alongside the BENCH_*.json planes.
LINT_ARTIFACT = "lint_report.json"


def run_lint(env: Dict[str, str]) -> bool:
    command = [
        sys.executable, "-m", "repro", "lint", "--root", ROOT,
        "--json", os.path.join(ROOT, LINT_ARTIFACT),
    ]
    print("== repro lint", flush=True)
    return subprocess.run(command, cwd=ROOT, env=env).returncode == 0


def validate_lint_artifact(path: str) -> List[str]:
    """Gate the ``repro lint --json`` report the same way BENCH artifacts
    are gated: it must exist, parse, come from repro-lint, and be clean."""
    if not os.path.exists(path):
        return [f"{path}: not written"]
    try:
        with open(path, "r", encoding="utf-8") as source:
            data = json.load(source)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable ({error})"]
    problems = []
    if data.get("tool") != "repro-lint":
        problems.append(f"{path}: tool {data.get('tool')!r} != 'repro-lint'")
    if data.get("parse_errors"):
        problems.append(f"{path}: parse errors {data['parse_errors']!r}")
    for finding in data.get("findings", []):
        problems.append(
            f"{path}: finding {finding.get('rule')} at "
            f"{finding.get('path')}:{finding.get('line')}"
        )
    if data.get("clean") is not True and not problems:
        problems.append(f"{path}: clean flag is {data.get('clean')!r}")
    if not data.get("files_scanned"):
        problems.append(f"{path}: files_scanned is {data.get('files_scanned')!r}")
    if not data.get("rules"):
        problems.append(f"{path}: rules catalogue is empty")
    return problems


def main() -> int:
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    failures: List[str] = []
    run_lint(env)  # exit code is reflected in the artifact's findings
    failures.extend(validate_lint_artifact(os.path.join(ROOT, LINT_ARTIFACT)))
    for module, artifact, tag, gate in SUITES:
        if not run_suite(module, env):
            failures.append(f"{module}: pytest failed")
            continue
        failures.extend(validate_artifact(artifact, tag, gate))
    if failures:
        print("\nsmoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nsmoke OK: lint + {len(SUITES)} planes, artifacts validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
