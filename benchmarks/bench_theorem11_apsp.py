"""E1 — Theorem 1.1: the headline (7^4+eps)-approximation.

Regenerates the claim table: for each workload and size, the guaranteed
factor (<= 7^4 (1+eps)^2), the measured stretch (far below the bound, as
the paper's constants are loose by design), and the ledger round count
(near-flat in n, the O(log log log n) shape).
"""

from __future__ import annotations


from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import apsp_theorem11
from repro.graphs import check_estimate

from conftest import exact_for, rng_for, workload

BOUND = 7**4 * 1.1**2
SIZES = [48, 96, 144, 256]
FAMILIES = ["er", "grid", "heavy"]


def run_case(family: str, n: int):
    graph = workload(family, n)
    exact = exact_for(family, n)
    ledger = RoundLedger(graph.n)
    result = apsp_theorem11(graph, rng_for(f"e1:{family}:{n}"), ledger=ledger)
    report = check_estimate(exact, result.estimate)
    assert report.sound, f"{family}/{n}: underestimate"
    assert report.max_stretch <= result.factor + 1e-9
    return {
        "n": graph.n,
        "family": family,
        "rounds": ledger.total_rounds,
        "factor_bound": result.factor,
        "max_stretch": report.max_stretch,
        "mean_stretch": report.mean_stretch,
    }


def test_theorem11_claim_table(results_sink, benchmark):
    rows = []
    for family in FAMILIES:
        for n in SIZES:
            case = run_case(family, n)
            rows.append(
                (
                    case["family"],
                    case["n"],
                    case["rounds"],
                    round(case["factor_bound"], 1),
                    round(case["max_stretch"], 3),
                    round(case["mean_stretch"], 3),
                )
            )
    table = format_table(
        ["family", "n", "ledger rounds", "factor bound", "max stretch", "mean stretch"],
        rows,
        title=(
            "E1 / Theorem 1.1 — (7^4+eps)-approx APSP, O(log log log n) rounds "
            f"(bound {BOUND:.0f})"
        ),
    )
    emit(table, sink_path=results_sink)

    graph = workload("er", 96)
    rng = rng_for("e1:kernel")
    benchmark.pedantic(
        lambda: apsp_theorem11(graph, rng), rounds=1, iterations=1
    )


def test_rounds_nearly_flat_in_n(results_sink, benchmark):
    """The round-complexity shape: ledger rounds grow sub-linearly in n."""
    rounds = []
    for n in SIZES:
        graph = workload("er", n)
        ledger = RoundLedger(graph.n)
        apsp_theorem11(graph, rng_for(f"e1flat:{n}"), ledger=ledger)
        rounds.append((n, ledger.total_rounds))
    growth = rounds[-1][1] / max(1, rounds[0][1])
    size_growth = rounds[-1][0] / rounds[0][0]
    assert growth < size_growth, (
        f"rounds grew {growth:.2f}x while n grew {size_growth:.2f}x"
    )
    table = format_table(
        ["n", "ledger rounds"],
        rounds,
        title="E1b — round growth vs n (sub-linear, per O(log log log n))",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(lambda: rounds, rounds=1, iterations=1)
