"""E16 — unweighted undirected graphs (the Section 1 [DP22] contrast).

For unweighted graphs the prior state of the art was a (2+eps)-approx in
poly(log log n) rounds [DP22]; this paper's pipelines give constant
factors in O(log log log n) rounds — an exponential round improvement at
a worse constant.  The experiment runs the pipelines on unit-weight
workloads: the guaranteed factor is the weighted one (21 / 7^4-ish), and
the *measured* stretch lands near the [DP22] constants, showing the
practical gap is in the analysis, not the outputs.
"""

from __future__ import annotations


from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import apsp_small_diameter, apsp_theorem11
from repro.graphs import check_estimate, erdos_renyi, exact_apsp, grid_graph, unit_weights

from conftest import rng_for


def unweighted_workload(name: str, n: int, rng):
    if name == "er":
        return erdos_renyi(n, min(1.0, 8.0 / n), rng, weights=unit_weights())
    side = max(2, int(round(n**0.5)))
    return grid_graph(side, rng, weights=unit_weights())


def test_unweighted_table(results_sink, benchmark):
    rows = []
    for family in ("er", "grid"):
        for n in (64, 144):
            rng = rng_for(f"e16:{family}:{n}")
            graph = unweighted_workload(family, n, rng)
            exact = exact_apsp(graph)
            for label, runner in (
                ("thm 7.1", apsp_small_diameter),
                ("thm 1.1", apsp_theorem11),
            ):
                ledger = RoundLedger(graph.n)
                result = runner(graph, rng, ledger=ledger)
                report = check_estimate(exact, result.estimate)
                assert report.sound
                assert report.max_stretch <= result.factor + 1e-9
                rows.append(
                    (
                        family,
                        graph.n,
                        label,
                        round(result.factor, 1),
                        round(report.max_stretch, 3),
                        round(report.mean_stretch, 3),
                        ledger.total_rounds,
                    )
                )
    table = format_table(
        ["family", "n", "algorithm", "factor bound", "max stretch", "mean", "rounds"],
        rows,
        title=(
            "E16 — unweighted graphs: measured stretch near the [DP22] "
            "constants (2+eps) at exponentially fewer model rounds"
        ),
    )
    emit(table, sink_path=results_sink)
    # the practical takeaway: measured stretch is small on unit weights
    stretches = [r[4] for r in rows if r[2] == "thm 7.1"]
    assert max(stretches) <= 21.0

    rng = rng_for("e16:kernel")
    graph = unweighted_workload("er", 96, rng)
    benchmark.pedantic(
        lambda: apsp_small_diameter(graph, rng), rounds=1, iterations=1
    )
