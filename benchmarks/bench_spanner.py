"""E6 — Lemma 7.1: spanner stretch/size tradeoff.

For a sweep of k: measured stretch against 2k-1 and edge count against
O(k n^{1+1/k}) on a dense graph — the tradeoff the O(1)-round
O(log n)-approximation (Corollary 7.2) is built on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.graphs import exact_apsp
from repro.spanners import baswana_sengupta_spanner, spanner_edge_bound

from conftest import rng_for, workload

N = 96


def measured_stretch(graph, spanner) -> float:
    base = exact_apsp(graph)
    sp = exact_apsp(spanner)
    mask = np.isfinite(base) & (base > 0)
    return float(np.max(sp[mask] / base[mask]))


def test_spanner_tradeoff_table(results_sink, benchmark):
    graph = workload("er-dense", N)
    rows = []
    for k in (2, 3, 4, 6):
        spanner = baswana_sengupta_spanner(graph, k, rng_for(f"e6:{k}"))
        stretch = measured_stretch(graph, spanner)
        bound = spanner_edge_bound(N, k)
        assert stretch <= 2 * k - 1 + 1e-9
        rows.append(
            (
                k,
                2 * k - 1,
                round(stretch, 3),
                spanner.num_edges,
                int(bound),
                graph.num_edges,
            )
        )
    table = format_table(
        ["k", "stretch bound 2k-1", "measured", "spanner edges", "k n^(1+1/k) bound", "|E(G)|"],
        rows,
        title=f"E6 / Lemma 7.1 — spanner stretch vs size (dense ER, n={N})",
    )
    emit(table, sink_path=results_sink)

    benchmark.pedantic(
        lambda: baswana_sengupta_spanner(graph, 3, rng_for("e6:kernel")),
        rounds=1,
        iterations=1,
    )


def test_edges_shrink_with_k(results_sink, benchmark):
    graph = workload("er-dense", N)
    sizes = [
        baswana_sengupta_spanner(graph, k, rng_for(f"e6s:{k}")).num_edges
        for k in (2, 6)
    ]
    assert sizes[1] <= sizes[0]
    benchmark.pedantic(lambda: sizes, rounds=1, iterations=1)
