"""E11 — Lemma 3.1: one approximation-factor reduction step.

Feeding the step a synthetic a-approximation for a sweep of a: the output
is guaranteed (and measured) within 15 sqrt(a), in O(1) ledger rounds —
the engine of the whole O(log log log n) iteration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import reduce_approximation
from repro.graphs import check_estimate

from conftest import exact_for, rng_for, workload

N = 96


def synthetic(exact: np.ndarray, a: float, rng) -> np.ndarray:
    noise = rng.uniform(1.0, a, size=exact.shape)
    noise = np.maximum(noise, noise.T)
    delta = exact * noise
    np.fill_diagonal(delta, 0.0)
    return delta


def test_reduction_table(results_sink, benchmark):
    graph = workload("er", N)
    exact = exact_for("er", N)
    rows = []
    for a in (4.0, 16.0, 64.0, 256.0):
        rng = rng_for(f"e11:{a}")
        delta = synthetic(exact, a, rng)
        in_report = check_estimate(exact, delta)
        ledger = RoundLedger(N)
        result = reduce_approximation(graph, delta, a, rng, ledger=ledger)
        out_report = check_estimate(exact, result.estimate)
        assert out_report.sound
        promised = 15.0 * math.sqrt(a)
        assert result.factor <= promised + 1e-9
        assert out_report.max_stretch <= result.factor + 1e-9
        rows.append(
            (
                a,
                round(in_report.max_stretch, 2),
                round(promised, 1),
                round(result.factor, 1),
                round(out_report.max_stretch, 3),
                ledger.total_rounds,
            )
        )
    table = format_table(
        [
            "input a",
            "input max stretch",
            "promised 15 sqrt(a)",
            "chained factor",
            "output max stretch",
            "rounds",
        ],
        rows,
        title=f"E11 / Lemma 3.1 — factor reduction a -> 15 sqrt(a) (n={N})",
    )
    emit(table, sink_path=results_sink)

    delta = synthetic(exact, 16.0, rng_for("e11:kernel"))
    benchmark.pedantic(
        lambda: reduce_approximation(graph, delta, 16.0, rng_for("e11:k2")),
        rounds=1,
        iterations=1,
    )


def test_iterating_reductions_converges(results_sink, benchmark):
    """Iterate the lemma: a -> 15 sqrt(a) until the fixed point (~225).

    This is the O(log log log n) engine: each application halves the
    exponent of the factor."""
    graph = workload("er", N)
    exact = exact_for("er", N)
    a = 256.0
    rng = rng_for("e11:iter")
    delta = synthetic(exact, a, rng)
    rows = []
    for step in range(3):
        result = reduce_approximation(graph, delta, a, rng)
        measured = check_estimate(exact, result.estimate).max_stretch
        rows.append((step + 1, round(a, 1), round(result.factor, 1), round(measured, 3)))
        if result.factor >= a:
            break
        delta, a = result.estimate, result.factor
    table = format_table(
        ["step", "input a", "output factor", "measured"],
        rows,
        title="E11b — iterated reductions (the O(log log log n) schedule)",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
