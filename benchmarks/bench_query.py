"""E20 — the distance-oracle query plane: batch routing vs per-call loops.

Two measurements on the serving artifact (:mod:`repro.serve`):

* **Equivalence** — on seeded instances the batch router must deliver
  *identical* routes to the (fixed) per-call
  :func:`repro.core.routing_tables.greedy_route`: same delivered flags,
  same per-packet float lengths (same accumulation order), same hop
  counts, same node sequences.  The vectorized next-hop table is likewise
  pinned to its per-node reference.

* **Speedup** — the batch router advances all in-flight packets one hop
  per numpy step; the acceptance bar is a >= 10x wall-clock win over the
  per-call loop at n = 512 (both on a prebuilt table — this measures the
  routing loop, not table construction), recorded in ``BENCH_query.json``
  together with the next-hop build speedup.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` restricts the sweep to small sizes —
the CI configuration, where only equivalence (not the speedup ratio,
which needs the large sizes and a quiet machine) is asserted.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.core.routing_tables import (
    greedy_route,
    next_hop_table_reference,
)
from repro.graphs import cached_exact_apsp, erdos_renyi
from repro.serve import DistanceOracle, route_batch

from conftest import rng_for

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (32, 64) if SMOKE else (64, 128, 256, 512)
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_query.json")
)


def workload(n: int):
    """One seeded graph + an estimate with routing-relevant error.

    The estimate is the exact matrix with multiplicative per-entry noise:
    deterministic, cheap at every size, and rough enough that greedy
    forwarding exhibits loops (the interesting failure mode for the
    equivalence check).
    """
    rng = rng_for(f"e20:{n}")
    graph = erdos_renyi(n, min(1.0, 8.0 / n), rng)
    exact = cached_exact_apsp(graph)
    noise = 1.0 + 0.5 * rng.random((n, n))
    estimate = exact * noise
    np.fill_diagonal(estimate, 0.0)
    return graph, estimate


def sample_pairs(n: int, count: int):
    rng = rng_for(f"e20:pairs:{n}")
    return rng.integers(0, n, size=count), rng.integers(0, n, size=count)


def measure() -> List[Dict]:
    """Per size: equivalence plus wall-clock for both routing paths."""
    records: List[Dict] = []
    for n in SIZES:
        graph, estimate = workload(n)
        queries = 4 * n

        start = time.perf_counter()
        reference_table = next_hop_table_reference(graph, estimate)
        table_reference_seconds = time.perf_counter() - start

        start = time.perf_counter()
        oracle = DistanceOracle.build(graph, estimate)
        build_seconds = time.perf_counter() - start
        assert np.array_equal(oracle.next_hop, reference_table), n

        sources, targets = sample_pairs(n, queries)

        start = time.perf_counter()
        scalar = [
            greedy_route(graph, estimate, int(s), int(t), table=oracle.next_hop)
            for s, t in zip(sources, targets)
        ]
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = route_batch(oracle, sources, targets, record_paths=True)
        batch_seconds = time.perf_counter() - start

        mismatches = sum(
            1
            for i, route in enumerate(scalar)
            if route.delivered != bool(batch.delivered[i])
            or route.length != batch.lengths[i]
            or route.hops != int(batch.hops[i])
            or route.path != batch.path(i)
        )

        records.append(
            {
                "n": n,
                "queries": queries,
                "mismatches": mismatches,
                "delivered": int(batch.delivered.sum()),
                "loops": batch.outcome_counts()["loop"],
                "scalar_seconds": scalar_seconds,
                "batch_seconds": batch_seconds,
                "batch_speedup": scalar_seconds / batch_seconds,
                "table_reference_seconds": table_reference_seconds,
                "table_build_seconds": build_seconds,
                "table_speedup": table_reference_seconds / build_seconds,
            }
        )
    return records


@pytest.fixture(scope="module")
def query_records() -> List[Dict]:
    return measure()


def test_batch_router_identical_and_fast(query_records, results_sink, benchmark):
    """E20: batch routes == per-call routes; the batch plane is the fast one."""
    for record in query_records:
        assert record["mismatches"] == 0, record

    rows = [
        (
            r["n"],
            r["queries"],
            f"{r['delivered']}/{r['queries']}",
            f"{r['scalar_seconds'] * 1e3:.0f}",
            f"{r['batch_seconds'] * 1e3:.1f}",
            f"{r['batch_speedup']:.1f}x",
            f"{r['table_speedup']:.1f}x",
        )
        for r in query_records
    ]
    table = format_table(
        ["n", "queries", "delivered", "per-call ms", "batch ms",
         "router speedup", "table speedup"],
        rows,
        title="E20 — oracle query plane: batched greedy routing vs per-call "
        "loop (claim: identical routes, >= 10x at n=512)",
    )
    emit(table, sink_path=results_sink)

    payload = {
        "experiment": "E20-query",
        "sizes": list(SIZES),
        "smoke": SMOKE,
        "records": query_records,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    n = SIZES[-1]
    graph, estimate = workload(n)
    oracle = DistanceOracle.build(graph, estimate)
    sources, targets = sample_pairs(n, 4 * n)
    benchmark.pedantic(
        lambda: route_batch(oracle, sources, targets), rounds=1, iterations=1
    )


@pytest.mark.skipif(SMOKE, reason="speedup ratio needs the n=512 measurement")
def test_batch_router_at_least_10x_at_512(query_records):
    """Acceptance: >= 10x wall-clock over per-call greedy_route at n=512."""
    record = next(r for r in query_records if r["n"] == 512)
    assert record["batch_speedup"] >= 10.0, (
        f"batch router only {record['batch_speedup']:.1f}x over per-call "
        f"greedy_route at n=512"
    )


def test_oracle_persistence_round_trip(results_sink):
    """The serving artifact reloads bit-identically at benchmark sizes."""
    n = SIZES[0]
    graph, estimate = workload(n)
    oracle = DistanceOracle.build(graph, estimate)
    clone = DistanceOracle.from_json(oracle.to_json())
    assert np.array_equal(clone.estimate, oracle.estimate)
    assert np.array_equal(clone.next_hop, oracle.next_hop)
    assert np.array_equal(clone.hop_weight, oracle.hop_weight)
    assert clone.content_key() == oracle.content_key()
