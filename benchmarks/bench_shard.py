"""E24 — sharded out-of-core min-plus plane and row-sharded construction.

The sharded kernel (``repro.semiring.sharded``) claims:

* **bit-identity** — the float64 arm returns exactly the broadcast
  reference's bytes for every tile size, worker count, and placement
  (min over identically computed float64 sums is order-independent);
* **scale** — n = 4096 completes for both the float64 shared-memory arm
  and the float32 + memmap out-of-core arm, sizes where the one-shot
  dense product is already a multi-hundred-MiB working set;
* **speedup** — >= 3x over the single-process tiled kernel at n = 2048
  with 8 workers.  The ratio is *asserted* only on machines with >= 8
  CPUs (``gate_enforced`` in the JSON records whether it was); on
  smaller hosts the sweep is still measured and recorded honestly;
* **bounded construction** — the row-sharded ``next_hop_table`` build at
  n = 4096 with memmap destinations keeps its peak transient working
  set far below one (n, n) int64 table.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks every arm to toy sizes — CI
checks the arms execute and stay bit-identical, not the ratios.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import tracemalloc
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.core.routing_tables import next_hop_table
from repro.graphs import erdos_renyi
from repro.semiring import ShardPlan, minplus, sharded_minplus

from conftest import rng_for

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (128,) if SMOKE else (1024, 2048, 4096)
#: Largest n where the single-process tiled baseline is measured (the
#: speedup denominator); beyond it only the sharded arms run.
TILED_MAX_N = 128 if SMOKE else 2048
#: n for the worker-count sweep (the speedup-gate measurement).
SWEEP_N = 128 if SMOKE else 2048
SWEEP_WORKERS = (1, 2) if SMOKE else (1, 2, 4, 8)
#: n for the row-sharded construction arm; the chunk shrinks with it so
#: the bounded-working-set claim stays meaningful at smoke scale.
CONSTRUCTION_N = 256 if SMOKE else 4096
CONSTRUCTION_CHUNK = 1 << 11 if SMOKE else 1 << 17
#: Rows spot-checked against the broadcast reference at sizes where a
#: full second product would double the benchmark's runtime.
SPOT_ROWS = 16
CPU_COUNT = os.cpu_count() or 1
GATE_ENFORCED = not SMOKE and CPU_COUNT >= 8
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_shard.json")
)


def shard_workload(n: int) -> np.ndarray:
    """Integer min-plus matrix with inf holes (same family as E17)."""
    rng = rng_for(f"shard:{n}")
    matrix = rng.integers(1, 100, (n, n)).astype(np.float64)
    matrix[rng.random((n, n)) < 0.5] = np.inf
    np.fill_diagonal(matrix, 0.0)
    return matrix


def once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def spot_reference(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Broadcast-kernel product restricted to ``rows`` of the output."""
    return minplus(
        np.ascontiguousarray(matrix[rows]), matrix, kernel="broadcast"
    )


def measure() -> List[Dict]:
    records: List[Dict] = []
    workers = min(4, CPU_COUNT)
    for n in SIZES:
        matrix = shard_workload(n)
        rows = rng_for(f"shard-spot:{n}").integers(0, n, SPOT_ROWS)
        reference_rows = spot_reference(matrix, rows)

        if n <= TILED_MAX_N:
            tiled_out: List[np.ndarray] = []
            tiled_s = once(
                lambda: tiled_out.append(
                    minplus(matrix, matrix, kernel="tiled")
                )
            )
            records.append({
                "arm": "minplus", "n": n, "kernel": "tiled",
                "seconds": tiled_s,
                "identical_to_reference": bool(
                    np.array_equal(tiled_out[0][rows], reference_rows)
                ),
            })
            del tiled_out

        f64_plan = ShardPlan(tile=256, workers=workers, placement="shared")
        f64_out: List[np.ndarray] = []
        f64_s = once(
            lambda: f64_out.append(
                sharded_minplus(matrix, matrix, plan=f64_plan)
            )
        )
        records.append({
            "arm": "minplus", "n": n, "kernel": "sharded-f64",
            "workers": workers, "seconds": f64_s,
            "identical_to_reference": bool(
                np.array_equal(f64_out[0][rows], reference_rows)
            ),
        })

        f32_plan = ShardPlan(
            tile=256, workers=workers, placement="memmap", dtype="float32"
        )
        f32_out: List[np.ndarray] = []
        f32_s = once(
            lambda: f32_out.append(
                sharded_minplus(matrix, matrix, plan=f32_plan)
            )
        )
        finite = np.isfinite(f64_out[0])
        rel = np.abs(f32_out[0][finite] - f64_out[0][finite]) / np.maximum(
            f64_out[0][finite], 1.0
        )
        records.append({
            "arm": "minplus", "n": n, "kernel": "sharded-f32-memmap",
            "workers": workers, "seconds": f32_s,
            "max_rel_error_vs_f64": float(rel.max()) if rel.size else 0.0,
            # Integer weights < 2**23: the float32 policy is exact here.
            "identical_to_reference": bool(
                np.array_equal(f32_out[0][rows], reference_rows)
            ),
        })
        del f64_out, f32_out, matrix

    # Worker sweep at the gate size: sharded-f64 vs the tiled baseline.
    matrix = shard_workload(SWEEP_N)
    baseline = once(lambda: minplus(matrix, matrix, kernel="tiled"))
    for w in SWEEP_WORKERS:
        plan = ShardPlan(tile=256, workers=w, placement="shared")
        seconds = once(lambda: sharded_minplus(matrix, matrix, plan=plan))
        records.append({
            "arm": "worker-sweep", "n": SWEEP_N, "workers": w,
            "seconds": seconds, "tiled_baseline_seconds": baseline,
            "speedup_vs_tiled": baseline / seconds,
        })
    del matrix

    # Row-sharded oracle-construction arm: memmap destinations, bounded
    # transient working set (inputs allocated before tracing starts).
    n = CONSTRUCTION_N
    rng = rng_for(f"shard-construct:{n}")
    graph = erdos_renyi(n, 6.0 / n, rng)
    graph.csr()
    estimate = rng.uniform(1.0, 50.0, (n, n))
    np.fill_diagonal(estimate, 0.0)
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        table = np.memmap(os.path.join(tmp, "next_hop.bin"),
                          dtype=np.int64, mode="w+", shape=(n, n))
        hop_weight = np.memmap(os.path.join(tmp, "hop_weight.bin"),
                               dtype=np.float64, mode="w+", shape=(n, n))
        tracemalloc.start()
        try:
            seconds = once(lambda: next_hop_table(
                graph, estimate, chunk_elems=CONSTRUCTION_CHUNK,
                out=table, hop_weight_out=hop_weight,
            ))
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        records.append({
            "arm": "construction", "n": n, "seconds": seconds,
            "peak_transient_bytes": int(peak),
            "table_bytes": int(table.nbytes),
            "bounded": bool(peak < table.nbytes / 2),
        })
        del table, hop_weight
    return records


@pytest.fixture(scope="module")
def shard_records() -> List[Dict]:
    return measure()


def test_shard_bench(shard_records, results_sink, benchmark):
    for record in shard_records:
        if "identical_to_reference" in record:
            assert record["identical_to_reference"], record
        if record["arm"] == "construction":
            assert record["bounded"], record

    rows = [
        (
            r["arm"],
            r["n"],
            r.get("kernel", r.get("workers", "-")),
            f"{r['seconds']:.2f}",
            f"{r['speedup_vs_tiled']:.2f}x" if "speedup_vs_tiled" in r
            else ("yes" if r.get("identical_to_reference") else "-"),
        )
        for r in shard_records
    ]
    table = format_table(
        ["arm", "n", "kernel/workers", "seconds", "speedup / identical"],
        rows,
        title="E24 — sharded min-plus plane (claim: bit-identical f64, "
        "n=4096 completes, >=3x at n=2048 w/ 8 workers)",
    )
    emit(table, sink_path=results_sink)

    sweep = [r for r in shard_records if r["arm"] == "worker-sweep"]
    best = max(sweep, key=lambda r: r["speedup_vs_tiled"])
    payload = {
        "experiment": "E24-shard",
        "sizes": list(SIZES),
        "smoke": SMOKE,
        "cpu_count": CPU_COUNT,
        "gate_enforced": GATE_ENFORCED,
        "gate_note": (
            "speedup ratio asserted" if GATE_ENFORCED else
            f"ratio recorded but not asserted (smoke={SMOKE}, "
            f"cpu_count={CPU_COUNT} < 8): a single-CPU host cannot "
            "demonstrate multi-process speedup"
        ),
        "best_speedup_vs_tiled": best["speedup_vs_tiled"],
        "records": shard_records,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    matrix = shard_workload(SIZES[0])
    plan = ShardPlan(tile=256, workers=min(2, CPU_COUNT), placement="shared")
    benchmark.extra_info["plan"] = plan.to_dict()
    benchmark.pedantic(
        lambda: sharded_minplus(matrix, matrix, plan=plan),
        rounds=1, iterations=1,
    )


def test_both_arms_complete_at_max_size(shard_records):
    """Acceptance: n = 4096 (full mode) completes for f64 and f32/memmap."""
    top = max(SIZES)
    arms = {
        r["kernel"] for r in shard_records
        if r["arm"] == "minplus" and r["n"] == top
    }
    assert {"sharded-f64", "sharded-f32-memmap"} <= arms


@pytest.mark.skipif(
    not GATE_ENFORCED,
    reason=f"speedup gate needs >= 8 CPUs and full mode "
    f"(cpu_count={CPU_COUNT}, smoke={SMOKE})",
)
def test_speedup_gate_at_2048(shard_records):
    """Acceptance: >= 3x over single-process tiled at n=2048, 8 workers."""
    eight = [
        r for r in shard_records
        if r["arm"] == "worker-sweep" and r["workers"] == 8
    ]
    assert eight, "no 8-worker measurement"
    assert eight[0]["speedup_vs_tiled"] >= 3.0, eight[0]


def test_construction_stays_bounded(shard_records):
    record = next(r for r in shard_records if r["arm"] == "construction")
    assert record["bounded"], record
