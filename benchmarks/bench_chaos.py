"""E22/E23 — chaos harness: delivery/stretch/recovery curves under faults.

E22 sweeps the ``route-drop`` scenario across per-link drop
probabilities and pins the ``route-crash`` scenario per size, recording
for each point the delivery rate *without* recovery, the delivery rate
with the bounded-retry loop, the recovery gain, and the extra rounds
the recovery cost (see :mod:`repro.chaos`).  Claims asserted:

* **zero-fault sanity** — at ``drop=0.0`` both arms deliver perfectly
  and the recovery loop never fires (the CI smoke gate);
* **recovery works** — at the highest drop rate the bounded-retry arm
  strictly beats the no-recovery arm, and crash replanning delivers
  everything whose endpoints survived.

E23 compares the two recovery arms head to head and gates the
byzantine stack:

* **erasure beats retry** — at 10% drop the erasure-coded arm delivers
  at least as much as bounded retry in strictly fewer rounds;
* **zero-fault bit-identity** — with an empty plan the erasure +
  integrity route delivers payloads bit-identical to the clean route;
* **detection gate** — ``byzantine-corrupt`` detects 100% of flips
  with checksums (and 0% without), and ``pipeline-degrade`` recovers
  the exact clean estimate.

Results land in ``BENCH_chaos.json`` at the repo root.  Smoke mode
(``REPRO_BENCH_SMOKE=1``) shrinks sizes and the sweep; the assertions
are identical.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.cclique import (
    FaultPlan,
    IntegrityPolicy,
    LinkDrop,
    MessageBatch,
    route_batch_two_phase,
)
from repro.chaos import run_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (32,) if SMOKE else (128, 256)
DROPS = (0.0, 0.1) if SMOKE else (0.0, 0.02, 0.05, 0.1)
SEED = 0
RETRIES = 4
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_chaos.json")
)


def measure() -> Dict:
    drop_curves: List[Dict] = []
    for n in SIZES:
        for drop in DROPS:
            report = run_scenario(
                "route-drop", n=n, seed=SEED, drop=drop, retries=RETRIES
            )
            drop_curves.append(
                {
                    "n": n,
                    "drop": drop,
                    "delivery_no_recovery": report.score[
                        "delivery_no_recovery"
                    ],
                    "delivery_recovered": report.score["delivery_rate"],
                    "recovery_gain": report.score["recovery_gain"],
                    "rounds_to_recovery": report.score["rounds_to_recovery"],
                    "retries_used": report.score["retries_used"],
                    "perfect": report.score["perfect"],
                }
            )
    crash_points: List[Dict] = []
    for n in SIZES:
        report = run_scenario("route-crash", n=n, seed=SEED)
        crash_points.append(
            {
                "n": n,
                "crashed_node": report.score["crashed_node"],
                "delivery_no_recovery": report.score["delivery_no_recovery"],
                "delivery_recovered": report.score["delivery_rate"],
                "recovery_gain": report.score["recovery_gain"],
                "deliverable_rate": report.score["deliverable_rate"],
            }
        )
    return {"drop_curves": drop_curves, "crash_points": crash_points}


def _workload(n: int, seed: int, load: int = 4) -> MessageBatch:
    rng = np.random.default_rng((seed, n, load))
    src = np.tile(np.arange(n, dtype=np.int64), load)
    dst = np.concatenate([rng.permutation(n) for _ in range(load)])
    payload = np.arange(load * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


def measure_e23() -> Dict:
    """Retry vs erasure at 10% drop, plus the byzantine scenario gates."""
    recovery_points: List[Dict] = []
    for n in SIZES:
        batch = _workload(n, SEED)
        plan = FaultPlan((LinkDrop(probability=0.1),), seed=SEED)
        retry_d, retry_s = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan, max_retries=RETRIES + 2
        )
        erasure_d, erasure_s = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan,
            max_retries=RETRIES + 2, recovery="erasure",
        )
        # Zero-fault bit-identity: the empty plan through the erasure +
        # integrity arm must deliver exactly the clean route's payloads.
        clean_d, _ = route_batch_two_phase(batch, n, bandwidth_words=4)
        coded_d, coded_s = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=FaultPlan((), seed=SEED),
            recovery="erasure", integrity=IntegrityPolicy(),
        )
        clean_order = np.lexsort((clean_d.payload[:, 0], clean_d.dst))
        coded_order = np.lexsort((coded_d.payload[:, 0], coded_d.dst))
        bit_identical = (
            len(coded_d) == len(clean_d)
            and np.array_equal(
                clean_d.dst[clean_order], coded_d.dst[coded_order]
            )
            and np.array_equal(
                clean_d.payload[clean_order], coded_d.payload[coded_order]
            )
        )
        recovery_points.append(
            {
                "n": n,
                "drop": 0.1,
                "attempted": len(batch),
                "retry_delivered": len(retry_d),
                "retry_rounds": retry_s.rounds,
                "retry_retries": retry_s.retries,
                "erasure_delivered": len(erasure_d),
                "erasure_rounds": erasure_s.rounds,
                "erasure_retries": erasure_s.retries,
                "erasure_reconstructed": erasure_s.reconstructed,
                "erasure_parity_words": erasure_s.parity_words,
                "zero_fault_bit_identical": bit_identical,
                "zero_fault_reconstructed": coded_s.reconstructed,
            }
        )
    byzantine_points: List[Dict] = []
    pipeline_points: List[Dict] = []
    for n in SIZES:
        report = run_scenario("byzantine-corrupt", n=n, seed=SEED)
        byzantine_points.append(
            {
                "n": n,
                "detection_rate": report.score["detection_rate"],
                "detection_rate_baseline": report.score[
                    "detection_rate_baseline"
                ],
                "payload_integrity_baseline": report.score[
                    "payload_integrity_baseline"
                ],
                "payload_integrity": report.score["payload_integrity"],
                "payload_integrity_erasure": report.score[
                    "payload_integrity_erasure"
                ],
                "delivery_rate": report.score["delivery_rate"],
            }
        )
        report = run_scenario("pipeline-degrade", n=n, seed=SEED)
        pipeline_points.append(
            {
                "n": n,
                "edge_delivery_no_recovery": report.score[
                    "delivery_no_recovery"
                ],
                "edge_delivery_recovered": report.score["delivery_rate"],
                "stretch_degradation": report.score["stretch_degradation"],
                "stretch_recovered": report.score["stretch_recovered"],
                "reconstructed": report.score["reconstructed"],
                "recovered": report.score["recovered"],
            }
        )
    return {
        "recovery_points": recovery_points,
        "byzantine_points": byzantine_points,
        "pipeline_points": pipeline_points,
    }


@pytest.fixture(scope="module")
def chaos_records() -> Dict:
    return measure()


@pytest.fixture(scope="module")
def byzantine_records() -> Dict:
    return measure_e23()


def test_zero_fault_scenario_is_perfect(chaos_records):
    """CI smoke gate: no faults => perfect delivery, no retries."""
    for point in chaos_records["drop_curves"]:
        if point["drop"] == 0.0:
            assert point["delivery_no_recovery"] == 1.0
            assert point["delivery_recovered"] == 1.0
            assert point["recovery_gain"] == 0.0
            assert point["retries_used"] == 0
            assert point["perfect"] is True


def test_recovery_strictly_improves_under_faults(chaos_records):
    """At the highest drop rate the retry loop must strictly help."""
    worst = max(DROPS)
    for point in chaos_records["drop_curves"]:
        if point["drop"] == worst:
            assert point["delivery_no_recovery"] < 1.0
            assert (
                point["delivery_recovered"] > point["delivery_no_recovery"]
            )
    for point in chaos_records["crash_points"]:
        assert point["recovery_gain"] > 0.0
        assert point["deliverable_rate"] == 1.0


def test_erasure_beats_retry_at_ten_percent_drop(byzantine_records):
    """E23 gate: erasure delivers >= retry in strictly fewer rounds."""
    for point in byzantine_records["recovery_points"]:
        assert point["erasure_delivered"] >= point["retry_delivered"]
        assert point["erasure_rounds"] < point["retry_rounds"]
        assert point["erasure_reconstructed"] > 0


def test_zero_fault_erasure_is_bit_identical(byzantine_records):
    """Empty plan through erasure + integrity == the clean route."""
    for point in byzantine_records["recovery_points"]:
        assert point["zero_fault_bit_identical"] is True
        assert point["zero_fault_reconstructed"] == 0


def test_byzantine_detection_is_total(byzantine_records):
    """Checksums flag 100% of flips; the baseline flags none."""
    for point in byzantine_records["byzantine_points"]:
        assert point["detection_rate"] == 1.0
        assert point["detection_rate_baseline"] == 0.0
        assert point["payload_integrity_baseline"] < 1.0
        assert point["payload_integrity"] == 1.0
        assert point["payload_integrity_erasure"] == 1.0


def test_pipeline_recovers_clean_estimate(byzantine_records):
    """Erasure-coded dissemination restores the exact clean estimate."""
    for point in byzantine_records["pipeline_points"]:
        assert point["edge_delivery_no_recovery"] < 1.0
        assert point["edge_delivery_recovered"] == 1.0
        assert point["recovered"] is True
        assert point["stretch_recovered"] == 1.0


def test_chaos_curves(chaos_records, byzantine_records, results_sink, benchmark):
    """E22/E23: emit the delivery/recovery tables and BENCH_chaos.json."""
    rows = []
    for p in chaos_records["drop_curves"]:
        rows.append(
            (
                p["n"],
                f"{p['drop']:.2f}",
                f"{p['delivery_no_recovery']:.3f}",
                f"{p['delivery_recovered']:.3f}",
                f"{p['recovery_gain']:+.3f}",
                p["rounds_to_recovery"],
                p["retries_used"],
            )
        )
    for p in chaos_records["crash_points"]:
        rows.append(
            (
                p["n"],
                "crash",
                f"{p['delivery_no_recovery']:.3f}",
                f"{p['delivery_recovered']:.3f}",
                f"{p['recovery_gain']:+.3f}",
                "-",
                "-",
            )
        )
    table = format_table(
        ["n", "fault", "no-recovery", "recovered", "gain",
         "extra rounds", "retries"],
        rows,
        title="E22 — chaos harness: delivery under drops/crashes, with and "
        "without bounded-retry recovery (claim: zero-fault perfect, "
        "recovery strictly improves delivery)",
    )
    emit(table, sink_path=results_sink)

    e23_rows = []
    for p in byzantine_records["recovery_points"]:
        e23_rows.append(
            (
                p["n"],
                f"{p['retry_delivered']}/{p['attempted']}",
                p["retry_rounds"],
                f"{p['erasure_delivered']}/{p['attempted']}",
                p["erasure_rounds"],
                p["erasure_reconstructed"],
                "yes" if p["zero_fault_bit_identical"] else "NO",
            )
        )
    e23_table = format_table(
        ["n", "retry", "rounds", "erasure", "rounds", "reconstructed",
         "zero-fault identical"],
        e23_rows,
        title="E23 — recovery arms at 10% drop: bounded retry vs XOR-parity "
        "erasure coding (claim: erasure delivers >= retry in strictly "
        "fewer rounds; empty-plan erasure is bit-identical to clean)",
    )
    emit(e23_table, sink_path=results_sink)

    payload = {
        "experiment": "E22-chaos",
        "sizes": list(SIZES),
        "drops": list(DROPS),
        "seed": SEED,
        "retries": RETRIES,
        "smoke": SMOKE,
        "drop_curves": chaos_records["drop_curves"],
        "crash_points": chaos_records["crash_points"],
        "e23_recovery_points": byzantine_records["recovery_points"],
        "e23_byzantine_points": byzantine_records["byzantine_points"],
        "e23_pipeline_points": byzantine_records["pipeline_points"],
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
    assert payload == json.loads(json.dumps(payload, allow_nan=False))

    benchmark.pedantic(
        lambda: run_scenario(
            "route-drop", n=SIZES[0], seed=SEED, drop=max(DROPS),
            retries=RETRIES,
        ),
        rounds=1,
        iterations=1,
    )
