"""E22 — chaos harness: delivery/stretch/recovery curves under faults.

Sweeps the ``route-drop`` scenario across per-link drop probabilities
and pins the ``route-crash`` scenario per size, recording for each
point the delivery rate *without* recovery, the delivery rate with the
bounded-retry loop, the recovery gain, and the extra rounds the
recovery cost (see :mod:`repro.chaos`).  Claims asserted:

* **zero-fault sanity** — at ``drop=0.0`` both arms deliver perfectly
  and the recovery loop never fires (the CI smoke gate);
* **recovery works** — at the highest drop rate the bounded-retry arm
  strictly beats the no-recovery arm, and crash replanning delivers
  everything whose endpoints survived.

Results land in ``BENCH_chaos.json`` at the repo root.  Smoke mode
(``REPRO_BENCH_SMOKE=1``) shrinks sizes and the sweep; the assertions
are identical.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest

from repro.analysis import emit, format_table
from repro.chaos import run_scenario

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (32,) if SMOKE else (128, 256)
DROPS = (0.0, 0.1) if SMOKE else (0.0, 0.02, 0.05, 0.1)
SEED = 0
RETRIES = 4
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_chaos.json")
)


def measure() -> Dict:
    drop_curves: List[Dict] = []
    for n in SIZES:
        for drop in DROPS:
            report = run_scenario(
                "route-drop", n=n, seed=SEED, drop=drop, retries=RETRIES
            )
            drop_curves.append(
                {
                    "n": n,
                    "drop": drop,
                    "delivery_no_recovery": report.score[
                        "delivery_no_recovery"
                    ],
                    "delivery_recovered": report.score["delivery_rate"],
                    "recovery_gain": report.score["recovery_gain"],
                    "rounds_to_recovery": report.score["rounds_to_recovery"],
                    "retries_used": report.score["retries_used"],
                    "perfect": report.score["perfect"],
                }
            )
    crash_points: List[Dict] = []
    for n in SIZES:
        report = run_scenario("route-crash", n=n, seed=SEED)
        crash_points.append(
            {
                "n": n,
                "crashed_node": report.score["crashed_node"],
                "delivery_no_recovery": report.score["delivery_no_recovery"],
                "delivery_recovered": report.score["delivery_rate"],
                "recovery_gain": report.score["recovery_gain"],
                "deliverable_rate": report.score["deliverable_rate"],
            }
        )
    return {"drop_curves": drop_curves, "crash_points": crash_points}


@pytest.fixture(scope="module")
def chaos_records() -> Dict:
    return measure()


def test_zero_fault_scenario_is_perfect(chaos_records):
    """CI smoke gate: no faults => perfect delivery, no retries."""
    for point in chaos_records["drop_curves"]:
        if point["drop"] == 0.0:
            assert point["delivery_no_recovery"] == 1.0
            assert point["delivery_recovered"] == 1.0
            assert point["recovery_gain"] == 0.0
            assert point["retries_used"] == 0
            assert point["perfect"] is True


def test_recovery_strictly_improves_under_faults(chaos_records):
    """At the highest drop rate the retry loop must strictly help."""
    worst = max(DROPS)
    for point in chaos_records["drop_curves"]:
        if point["drop"] == worst:
            assert point["delivery_no_recovery"] < 1.0
            assert (
                point["delivery_recovered"] > point["delivery_no_recovery"]
            )
    for point in chaos_records["crash_points"]:
        assert point["recovery_gain"] > 0.0
        assert point["deliverable_rate"] == 1.0


def test_chaos_curves(chaos_records, results_sink, benchmark):
    """E22: emit the delivery/recovery table and BENCH_chaos.json."""
    rows = []
    for p in chaos_records["drop_curves"]:
        rows.append(
            (
                p["n"],
                f"{p['drop']:.2f}",
                f"{p['delivery_no_recovery']:.3f}",
                f"{p['delivery_recovered']:.3f}",
                f"{p['recovery_gain']:+.3f}",
                p["rounds_to_recovery"],
                p["retries_used"],
            )
        )
    for p in chaos_records["crash_points"]:
        rows.append(
            (
                p["n"],
                "crash",
                f"{p['delivery_no_recovery']:.3f}",
                f"{p['delivery_recovered']:.3f}",
                f"{p['recovery_gain']:+.3f}",
                "-",
                "-",
            )
        )
    table = format_table(
        ["n", "fault", "no-recovery", "recovered", "gain",
         "extra rounds", "retries"],
        rows,
        title="E22 — chaos harness: delivery under drops/crashes, with and "
        "without bounded-retry recovery (claim: zero-fault perfect, "
        "recovery strictly improves delivery)",
    )
    emit(table, sink_path=results_sink)

    payload = {
        "experiment": "E22-chaos",
        "sizes": list(SIZES),
        "drops": list(DROPS),
        "seed": SEED,
        "retries": RETRIES,
        "smoke": SMOKE,
        "drop_curves": chaos_records["drop_curves"],
        "crash_points": chaos_records["crash_points"],
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
    assert payload == json.loads(json.dumps(payload, allow_nan=False))

    benchmark.pedantic(
        lambda: run_scenario(
            "route-drop", n=SIZES[0], seed=SEED, drop=max(DROPS),
            retries=RETRIES,
        ),
        rounds=1,
        iterations=1,
    )
