"""E15 — w.h.p. claims under seed sweeps.

The paper's algorithms are Monte Carlo: round bounds always hold, outputs
are correct w.h.p.  This experiment runs Theorem 7.1 and the bootstrap
over 10 seeds per workload and reports the stretch *distribution* — the
guarantee must hold for every seed (asserted), and the variance shows how
far typical behaviour sits from the worst case.
"""

from __future__ import annotations


from repro.analysis import emit
from repro.analysis.experiments import run_sweep
from repro.core import apsp_small_diameter
from repro.graphs import erdos_renyi, grid_graph, heavy_tail_weights
from repro.spanners import logn_bootstrap

from conftest import rng_for

SEEDS = list(range(10))

WORKLOADS = {
    "er-64": lambda rng: erdos_renyi(64, 0.1, rng),
    "grid-64": lambda rng: grid_graph(8, rng),
    "heavy-64": lambda rng: erdos_renyi(64, 0.12, rng, weights=heavy_tail_weights()),
}


def test_theorem71_seed_sweep(results_sink, benchmark):
    def algorithm(graph, rng, ledger):
        return apsp_small_diameter(graph, rng, ledger=ledger)

    result = run_sweep(algorithm, WORKLOADS, SEEDS)
    emit(
        result.table("E15 / Theorem 7.1 over 10 seeds — stretch distribution"),
        sink_path=results_sink,
    )
    assert all(s.all_sound for s in result.summaries)
    assert all(s.max_stretch_worst <= 21.0 + 1e-9 for s in result.summaries)

    graph = WORKLOADS["er-64"](rng_for("e15:kernel"))
    benchmark.pedantic(
        lambda: apsp_small_diameter(graph, rng_for("e15:k2")),
        rounds=1,
        iterations=1,
    )


def test_bootstrap_seed_sweep(results_sink, benchmark):
    from repro.core.results import Estimate

    def algorithm(graph, rng, ledger):
        boot = logn_bootstrap(graph, rng, ledger=ledger)
        return Estimate(estimate=boot.estimate, factor=boot.factor)

    result = run_sweep(algorithm, WORKLOADS, SEEDS)
    emit(
        result.table("E15b / Corollary 7.2 bootstrap over 10 seeds"),
        sink_path=results_sink,
    )
    assert all(s.all_sound for s in result.summaries)

    graph = WORKLOADS["grid-64"](rng_for("e15b:kernel"))
    benchmark.pedantic(
        lambda: logn_bootstrap(graph, rng_for("e15b:k2")),
        rounds=1,
        iterations=1,
    )
