"""E13 — Theorem 8.1: general graphs in CC[log^4 n].

The weight-scaling pipeline on polynomially weighted graphs: number of
active scales, the per-scale bandwidth context, and the end-to-end factor
against 7^3 (1+eps)^2.
"""

from __future__ import annotations


from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import apsp_large_bandwidth
from repro.graphs import check_estimate

from conftest import exact_for, rng_for, workload

BOUND = 7**3 * 1.1**2


def test_theorem81_table(results_sink, benchmark):
    rows = []
    for family in ("er", "poly"):
        graph = workload(family, 96)
        exact = exact_for(family, 96)
        ledger = RoundLedger(graph.n)
        result = apsp_large_bandwidth(graph, rng_for(f"e13:{family}"), ledger=ledger)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert result.factor <= BOUND + 1e-6
        assert report.max_stretch <= result.factor + 1e-9
        rows.append(
            (
                family,
                len(result.meta["scales"]),
                result.meta["hopset_beta"],
                result.meta["skeleton_nodes"],
                round(result.factor, 1),
                round(report.max_stretch, 3),
                ledger.total_rounds,
            )
        )
    table = format_table(
        [
            "family",
            "active scales",
            "hopset beta",
            "|V_S|",
            "factor bound",
            "max stretch",
            "rounds",
        ],
        rows,
        title=f"E13 / Theorem 8.1 — general graphs, bound {BOUND:.0f} (n=96)",
    )
    emit(table, sink_path=results_sink)

    graph = workload("er", 96)
    benchmark.pedantic(
        lambda: apsp_large_bandwidth(graph, rng_for("e13:kernel")),
        rounds=1,
        iterations=1,
    )


def test_polynomial_weights_activate_scales(results_sink, benchmark):
    """Heavy weights spread pairs across more scale indices."""
    light = apsp_large_bandwidth(workload("er", 96), rng_for("e13a"))
    heavy = apsp_large_bandwidth(workload("poly", 96), rng_for("e13b"))
    assert len(heavy.meta["scales"]) >= len(light.meta["scales"])
    benchmark.pedantic(
        lambda: (light.meta["scales"], heavy.meta["scales"]),
        rounds=1,
        iterations=1,
    )
