"""Shared workloads and reporting for the benchmark/experiment harness.

Every module regenerates one experiment from DESIGN.md's per-experiment
index (E1-E12).  Conventions:

* each experiment prints a markdown table ("paper claim" vs "measured") and
  appends it to ``bench_results.md`` at the repo root;
* each experiment also times a representative kernel via pytest-benchmark,
  so ``pytest benchmarks/ --benchmark-only`` doubles as a perf harness;
* tables must state the *bound* next to the *measured* value — the
  reproduction's claim is "measured within bound, shape as in the paper".
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core.registry import VariantSpec, iter_variants, run_variant
from repro.graphs import (
    WeightedGraph,
    cached_exact_apsp,
    erdos_renyi,
    grid_graph,
    heavy_tail_weights,
    path_with_shortcuts,
    polynomial_weights,
)

RESULTS_FILE = os.path.join(os.path.dirname(__file__), "..", "bench_results.md")


def sink_path() -> str:
    return os.path.abspath(RESULTS_FILE)


@pytest.fixture(scope="session")
def results_sink() -> str:
    """Results file, truncated once per session."""
    path = sink_path()
    marker = path + ".session"
    if not os.path.exists(marker) or os.environ.get("REPRO_FRESH", "1") == "1":
        with open(path, "w", encoding="utf-8") as sink:
            sink.write("# Benchmark results (regenerated)\n\n")
        with open(marker, "w", encoding="utf-8") as m:
            m.write("session\n")
        os.environ["REPRO_FRESH"] = "0"
    return path


def rng_for(tag: str) -> np.random.Generator:
    return np.random.default_rng(abs(hash(tag)) % (2**32))


def registered_variants() -> List[VariantSpec]:
    """The solver catalogue, in registration order (registry-driven)."""
    return list(iter_variants())


def run_registered(name: str, graph: WeightedGraph, tag: str, **params):
    """Run one registered variant on a fresh ledger; returns (result, ledger).

    The shared entry point for benchmarks that enumerate the registry:
    default parameters declared by the variant (thm 1.2's ``t``) are
    applied, explicit ``params`` win.
    """
    ledger = RoundLedger(graph.n)
    result = run_variant(
        name, graph, rng_for(tag), ledger=ledger, apply_defaults=True, **params
    )
    return result, ledger


@pytest.fixture(params=[spec.name for spec in iter_variants()])
def variant_name(request) -> str:
    """Parametrized fixture iterating every registered variant name."""
    return request.param


_GRAPH_CACHE: Dict[str, WeightedGraph] = {}


def workload(name: str, n: int) -> WeightedGraph:
    """Named, cached benchmark workloads."""
    key = f"{name}:{n}"
    if key not in _GRAPH_CACHE:
        rng = rng_for(key)
        if name == "er":
            graph = erdos_renyi(n, min(1.0, 6.0 / n), rng)
        elif name == "er-dense":
            graph = erdos_renyi(n, min(1.0, 24.0 / n), rng)
        elif name == "grid":
            side = max(2, int(round(n**0.5)))
            graph = grid_graph(side, rng)
        elif name == "path":
            graph = path_with_shortcuts(n, rng, shortcut_count=n // 10)
        elif name == "heavy":
            graph = erdos_renyi(n, min(1.0, 8.0 / n), rng, weights=heavy_tail_weights())
        elif name == "poly":
            graph = erdos_renyi(
                n, min(1.0, 8.0 / n), rng, weights=polynomial_weights(n, 2.5)
            )
        else:
            raise ValueError(f"unknown workload {name!r}")
        _GRAPH_CACHE[key] = graph
    return _GRAPH_CACHE[key]


def exact_for(name: str, n: int) -> np.ndarray:
    # Content-hash memoised oracle: shared with the solver facade and the
    # sweep runner (and LRU/byte bounded there), so cross-harness reruns
    # of one workload never recompute Dijkstra.
    return cached_exact_apsp(workload(name, n))
