"""E10 — Lemmas 2.1/2.2: routing O(n)-load instances in O(1) rounds.

Message-level measurements on the simulator: at *full load* (every node
sends and receives exactly n messages), the two-phase deterministic router
finishes in a small constant number of rounds while naive direct routing
needs rounds proportional to the worst pair congestion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.cclique import Message, route_direct, route_randomized, route_two_phase

from conftest import rng_for


def full_load(n: int, rng) -> list:
    messages = []
    for _ in range(n):
        perm = rng.permutation(n)
        for sender in range(n):
            messages.append(Message(sender, int(perm[sender]), (sender,)))
    return messages


def hot_pair(n: int) -> list:
    return [Message(0, 1, (i,)) for i in range(n)]


def test_routing_rounds_table(results_sink, benchmark):
    rows = []
    for n in (16, 32, 64):
        rng = rng_for(f"e10:{n}")
        messages = full_load(n, rng)
        _, two_phase = route_two_phase(messages, n)
        _, randomized = route_randomized(messages, n, rng)
        assert two_phase.rounds <= 12, "two-phase must stay constant-round"
        rows.append(
            (
                n,
                n * n,
                two_phase.rounds,
                randomized.rounds,
                two_phase.relay_max_load,
            )
        )
    table = format_table(
        ["n", "messages", "two-phase rounds", "randomized rounds", "relay max load"],
        rows,
        title="E10 / Lemma 2.1 — full-load routing stays O(1) rounds",
    )
    emit(table, sink_path=results_sink)

    n = 32
    messages = full_load(n, rng_for("e10:kernel"))
    benchmark.pedantic(
        lambda: route_two_phase(messages, n), rounds=1, iterations=1
    )


def test_hot_pair_contrast(results_sink, benchmark):
    """The value of relaying: a single congested pair."""
    rows = []
    for n in (16, 32, 64):
        messages = hot_pair(n)
        _, direct = route_direct(messages, n)
        _, relayed = route_two_phase(messages, n)
        assert direct.rounds >= n
        assert relayed.rounds <= 12
        rows.append((n, direct.rounds, relayed.rounds))
    table = format_table(
        ["n", "direct rounds", "two-phase rounds"],
        rows,
        title="E10b — hot-pair instance: relaying beats direct by Theta(n)",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(
        lambda: route_two_phase(hot_pair(32), 32), rounds=1, iterations=1
    )
