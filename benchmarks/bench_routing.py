"""E10/E19 — Lemmas 2.1/2.2 routing: O(1) rounds, and the plane speedup.

Message-level measurements on the simulator, now in two parts:

* **E10 (correctness shape)** — at *full load* (every node sends and
  receives exactly n messages) the two-phase deterministic router
  finishes in a small constant number of rounds while naive direct
  routing needs rounds proportional to the worst pair congestion.

* **E19 (communication-plane speedup)** — the same full-load instances
  are routed on both planes: the frozen per-message object simulator
  (``repro.cclique.reference``) and the struct-of-arrays engine.  Round
  counts and spill statistics must be identical; wall-clock must not be.
  The acceptance bar is a >= 10x array-plane speedup at n = 512, recorded
  in ``BENCH_routing.json`` (per-size rounds, seconds, and speedups for
  CI and dashboards).

Smoke mode: ``REPRO_BENCH_SMOKE=1`` restricts the sweep to small sizes —
the CI configuration, where only plane equivalence (not the speedup
ratio, which needs the large sizes and a quiet machine) is asserted.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.cclique import (
    Message,
    MessageBatch,
    route_batch_two_phase,
    route_direct,
    route_randomized,
    route_two_phase,
    route_two_phase_reference,
)

from conftest import rng_for

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (32, 64) if SMOKE else (64, 128, 256, 512)
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_routing.json")
)


def full_load(n: int, rng) -> list:
    messages = []
    for _ in range(n):
        perm = rng.permutation(n)
        for sender in range(n):
            messages.append(Message(sender, int(perm[sender]), (sender,)))
    return messages


def as_batch(messages, n: int) -> MessageBatch:
    src = np.fromiter((m.sender for m in messages), np.int64, len(messages))
    dst = np.fromiter((m.receiver for m in messages), np.int64, len(messages))
    payload = np.fromiter(
        (float(m.payload[0]) for m in messages), np.float64, len(messages)
    ).reshape(-1, 1)
    return MessageBatch(src=src, dst=dst, payload=payload)


def hot_pair(n: int) -> list:
    return [Message(0, 1, (i,)) for i in range(n)]


def measure() -> List[Dict]:
    """Per size: both planes' rounds, spills, and wall-clock seconds."""
    records: List[Dict] = []
    for n in SIZES:
        rng = rng_for(f"e19:{n}")
        messages = full_load(n, rng)
        batch = as_batch(messages, n)

        start = time.perf_counter()
        _, object_stats = route_two_phase_reference(messages, n)
        object_seconds = time.perf_counter() - start

        start = time.perf_counter()
        _, array_stats = route_batch_two_phase(batch, n)
        array_seconds = time.perf_counter() - start

        start = time.perf_counter()
        _, wrapper_stats = route_two_phase(messages, n)
        wrapper_seconds = time.perf_counter() - start

        records.append(
            {
                "n": n,
                "messages": n * n,
                "object_rounds": object_stats.rounds,
                "array_rounds": array_stats.rounds,
                "wrapper_rounds": wrapper_stats.rounds,
                "object_spill_rounds": object_stats.spill_rounds,
                "array_spill_rounds": array_stats.spill_rounds,
                "object_seconds": object_seconds,
                "array_seconds": array_seconds,
                "wrapper_seconds": wrapper_seconds,
                "array_speedup": object_seconds / array_seconds,
                "wrapper_speedup": object_seconds / wrapper_seconds,
            }
        )
    return records


@pytest.fixture(scope="module")
def routing_records() -> List[Dict]:
    return measure()


def test_routing_planes_identical_and_fast(routing_records, results_sink, benchmark):
    """E19: planes agree exactly; the array plane is the fast one."""
    for record in routing_records:
        assert record["array_rounds"] == record["object_rounds"], record
        assert record["array_spill_rounds"] == record["object_spill_rounds"], record
        assert record["wrapper_rounds"] == record["object_rounds"], record
        assert record["array_rounds"] <= 12, "two-phase must stay constant-round"

    rows = [
        (
            r["n"],
            r["messages"],
            r["array_rounds"],
            f"{r['object_seconds'] * 1e3:.0f}",
            f"{r['array_seconds'] * 1e3:.0f}",
            f"{r['array_speedup']:.1f}x",
        )
        for r in routing_records
    ]
    table = format_table(
        ["n", "messages", "rounds", "object ms", "array ms", "speedup"],
        rows,
        title="E19 — full-load routing, object plane vs array plane "
        "(claim: identical rounds/spills, >= 10x at n=512)",
    )
    emit(table, sink_path=results_sink)

    payload = {
        "experiment": "E19-routing",
        "sizes": list(SIZES),
        "smoke": SMOKE,
        "records": routing_records,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    n = SIZES[-1]
    batch = as_batch(full_load(n, rng_for(f"e19:{n}")), n)
    benchmark.pedantic(lambda: route_batch_two_phase(batch, n), rounds=1, iterations=1)


@pytest.mark.skipif(SMOKE, reason="speedup ratio needs the n=512 measurement")
def test_array_plane_at_least_10x_at_512(routing_records):
    """Acceptance: >= 10x wall-clock at n=512 full load."""
    record = next(r for r in routing_records if r["n"] == 512)
    assert record["array_speedup"] >= 10.0, (
        f"array plane only {record['array_speedup']:.1f}x over the object "
        f"plane at n=512"
    )


def test_routing_rounds_table(results_sink, benchmark):
    """E10: deterministic vs randomized relaying at full load."""
    rows = []
    for n in (16, 32, 64):
        rng = rng_for(f"e10:{n}")
        messages = full_load(n, rng)
        _, two_phase = route_two_phase(messages, n)
        _, randomized = route_randomized(messages, n, rng)
        assert two_phase.rounds <= 12, "two-phase must stay constant-round"
        rows.append(
            (
                n,
                n * n,
                two_phase.rounds,
                randomized.rounds,
                two_phase.relay_max_load,
            )
        )
    table = format_table(
        ["n", "messages", "two-phase rounds", "randomized rounds", "relay max load"],
        rows,
        title="E10 / Lemma 2.1 — full-load routing stays O(1) rounds",
    )
    emit(table, sink_path=results_sink)

    n = 32
    messages = full_load(n, rng_for("e10:kernel"))
    benchmark.pedantic(
        lambda: route_two_phase(messages, n), rounds=1, iterations=1
    )


def test_hot_pair_contrast(results_sink, benchmark):
    """The value of relaying: a single congested pair."""
    rows = []
    for n in (16, 32, 64):
        messages = hot_pair(n)
        _, direct = route_direct(messages, n)
        _, relayed = route_two_phase(messages, n)
        assert direct.rounds >= n
        assert relayed.rounds <= 12
        rows.append((n, direct.rounds, relayed.rounds))
    table = format_table(
        ["n", "direct rounds", "two-phase rounds"],
        rows,
        title="E10b — hot-pair instance: relaying beats direct by Theta(n)",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(
        lambda: route_two_phase(hot_pair(32), 32), rounds=1, iterations=1
    )
