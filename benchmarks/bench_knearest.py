"""E4 — Lemmas 5.1/5.2: k-nearest in O(i) rounds; bin-combination counting.

Two tables: (a) ledger rounds scale exactly linearly in the iteration
count i (the O(i) claim), with per-iteration cost constant; (b) the
Section 5.2 combinatorics — h * C(p, h) <= n for the paper's parameter
choices, so every h-combination can be assigned to a distinct node.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import knearest_iterated, make_bin_plan
from repro.semiring import k_smallest_in_rows, minplus_power

from conftest import workload


def test_rounds_linear_in_iterations(results_sink, benchmark):
    graph = workload("er", 96)
    matrix = graph.matrix()
    k, h = 9, 2
    rows = []
    per_iteration = None
    for i in (1, 2, 4, 8):
        ledger = RoundLedger(graph.n)
        result = knearest_iterated(matrix, k, h, i, ledger=ledger)
        truth = minplus_power(matrix, h**i)
        t_idx, _ = k_smallest_in_rows(truth, k)
        assert np.array_equal(result.indices, t_idx), f"i={i} output mismatch"
        if per_iteration is None:
            per_iteration = ledger.total_rounds
        assert ledger.total_rounds == per_iteration * i  # exactly O(i)
        rows.append((i, h**i, ledger.total_rounds))
    table = format_table(
        ["iterations i", "hop reach h^i", "ledger rounds"],
        rows,
        title="E4 / Lemma 5.2 — k-nearest rounds scale exactly as O(i) (n=96, k=9, h=2)",
    )
    emit(table, sink_path=results_sink)

    benchmark.pedantic(
        lambda: knearest_iterated(matrix, k, h, 3), rounds=1, iterations=1
    )


def test_bin_combination_counting(results_sink, benchmark):
    rows = []
    for n in (64, 256, 1024, 4096, 16384):
        for h in (2, 3, 4):
            k = max(1, int(n ** (1.0 / h)))
            plan = make_bin_plan(n, k, h)
            if not plan.feasible:
                rows.append((n, h, k, plan.p, "trivial", "-"))
                continue
            assert plan.combination_count <= n
            rows.append((n, h, k, plan.p, plan.combination_count, "<= n OK"))
    table = format_table(
        ["n", "h", "k=n^(1/h)", "bins p", "h-combinations", "claim"],
        rows,
        title="E4b / Section 5.2 — h * C(p, h) <= n (assignable to distinct nodes)",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(lambda: make_bin_plan(4096, 16, 3), rounds=1, iterations=1)
