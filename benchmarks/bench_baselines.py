"""E8 — The rounds/stretch frontier (Section 1.1 landscape).

One table, one workload, every variant in the solver registry — the
landscape corners plus the paper's algorithms:

* exact min-plus exponentiation  — stretch 1,   ~n^(1/3) log n rounds;
* UY90 sampled skeleton          — stretch 1,   ~sqrt(n)-ish rounds;
* spanner-only [CZ22/DFKL21]     — O(log n) stretch, O(1) rounds;
* **this paper (Thm 7.1 / 1.1)** — O(1) stretch, near-constant rounds.

The claimed shape: the paper's algorithms dominate the frontier between
the constant-round/log-stretch corner and the polynomial-round/exact
corner — constant guaranteed stretch at a round count close to the
spanner baseline and far below the exact baselines.
"""

from __future__ import annotations


from repro.core import spanner_only_baseline
from repro.analysis import emit, format_table
from repro.graphs import check_estimate

from conftest import exact_for, registered_variants, rng_for, run_registered, workload

N = 96


def run_all(n: int):
    """Every registered variant on the E8 workload (registry-driven)."""
    graph = workload("er", n)
    exact = exact_for("er", n)

    rows = []
    by_name = {}
    for spec in registered_variants():
        result, ledger = run_registered(spec.name, graph, f"e8:{spec.name}:{n}")
        report = check_estimate(exact, result.estimate)
        assert report.sound, spec.name
        rows.append(
            (
                spec.display_name,
                ledger.total_rounds,
                round(result.factor, 1),
                round(report.max_stretch, 3),
                round(report.mean_stretch, 3),
            )
        )
        by_name[spec.name] = (ledger.total_rounds, result.factor, report.max_stretch)
    return rows, by_name


def test_frontier_table(results_sink, benchmark):
    rows, by_name = run_all(N)
    table = format_table(
        ["algorithm", "ledger rounds", "factor bound", "max stretch", "mean stretch"],
        rows,
        title=f"E8 — rounds/stretch frontier on ER (n={N})",
    )
    emit(table, sink_path=results_sink)

    # The paper's claims about who wins:
    exact_rounds = by_name["exact"][0]
    ours_rounds = by_name["small-diameter"][0]
    ours_factor = by_name["small-diameter"][1]
    spanner_factor = by_name["spanner-only"][1]
    # 1. constant guaranteed factor, unlike the spanner baseline's O(log n)
    #    (at n=96 both constants are small; assert ours <= 21 always).
    assert ours_factor <= 21.0
    # 2. far fewer rounds than the exact baselines at equal-ish stretch.
    assert ours_rounds < exact_rounds * 8

    graph = workload("er", N)
    benchmark.pedantic(
        lambda: spanner_only_baseline(graph, rng_for("e8:kernel")),
        rounds=1,
        iterations=1,
    )


def test_variant_kernel(variant_name, benchmark):
    """One timed kernel per registered variant (registry-parametrized) —
    new algorithms get a perf baseline the moment they register."""
    graph = workload("er", 48)
    result, _ = benchmark.pedantic(
        lambda: run_registered(variant_name, graph, f"e8kernel:{variant_name}"),
        rounds=1,
        iterations=1,
    )
    assert result.meta["variant"] == variant_name


def test_asymptotic_projection(results_sink, benchmark):
    """Where the crossover falls: project each algorithm's round formula to
    large n (measured constants x the cited growth terms).

    At simulable n the constant-factor machinery costs more absolute rounds
    than n^(1/3)-style baselines; the formulas show the crossover at
    n ~ 10^5-10^6, which is the paper's asymptotic claim made concrete.
    """
    import math

    measured_ours = run_all(96)[1]["small-diameter"][0]
    rows = []
    for n in (96, 10**4, 10**6, 10**9):
        exact_rounds = math.ceil(math.log2(n)) * math.ceil(n ** (1 / 3))
        uy90_rounds = math.ceil(n**0.5)
        spanner_rounds = 30  # O(1), measured constant at n=96
        # ours: bootstrap+final are O(1); the log log log n reduction count
        # multiplies a measured per-iteration constant (~100 rounds).
        lll = max(1.0, math.log2(max(2.0, math.log2(max(2.0, math.log2(n))))))
        ours_rounds = int(measured_ours * max(1.0, lll))
        rows.append((n, exact_rounds, uy90_rounds, spanner_rounds, ours_rounds))
    table = format_table(
        ["n", "exact ~n^(1/3) log n", "UY90 ~sqrt(n)", "spanner O(1)", "ours O(logloglog n)"],
        rows,
        title="E8c — projected rounds (measured constants x cited growth)",
    )
    emit(table, sink_path=results_sink)
    # the crossover: by n = 10^6 ours beats both exact-style baselines
    big = rows[2]
    assert big[4] < big[1] and big[4] < big[2]
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)


def test_crossover_with_n(results_sink, benchmark):
    """Exact-baseline rounds grow polynomially; ours stay near-flat, so the
    gap widens with n (the asymptotic separation's finite-n shadow)."""
    gaps = []
    for n in (48, 96, 144):
        _, by_name = run_all(n)
        gap = by_name["exact"][0] / max(
            1, by_name["small-diameter"][0]
        )
        gaps.append((n, round(gap, 3)))
    table = format_table(
        ["n", "exact rounds / ours"],
        gaps,
        title="E8b — round gap vs exact baseline grows with n",
    )
    emit(table, sink_path=results_sink)
    benchmark.pedantic(lambda: gaps, rounds=1, iterations=1)
