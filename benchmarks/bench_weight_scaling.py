"""E7 — Lemma 8.1: weight scaling.

Per scale index i: the graph G_i's (clipped) weighted diameter against the
ceil(2/eps) h^2 cap, and the assembled eta's two guarantees (eta >= d
everywhere; eta <= (1+eps) l d on h-hop-covered pairs).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.core import (
    assemble_eta,
    build_scaled_graph,
    clip_estimate,
    plan_scaling,
    verify_scaling_guarantees,
)
from repro.graphs import exact_apsp, weighted_diameter_from_matrix
from repro.semiring import minplus_power

from conftest import exact_for, workload

N = 64
H = 6
EPS = 0.5


def test_weight_scaling_table(results_sink, benchmark):
    graph = workload("poly", N)
    exact = exact_for("poly", N)
    plan = plan_scaling(exact, h=H, eps=EPS)
    estimates = {}
    rows = []
    for i in plan.needed:
        scaled = build_scaled_graph(graph, i, plan)
        clipped = clip_estimate(exact_apsp(scaled), plan)
        estimates[i] = clipped
        diameter = weighted_diameter_from_matrix(clipped)
        assert diameter <= plan.cap
        pairs = int(np.sum(plan.index == i)) - N  # minus the diagonal share
        rows.append((i, 2**i, int(diameter), int(plan.cap), max(0, pairs)))
    eta = assemble_eta(estimates, plan)
    hop_ok = np.isclose(minplus_power(graph.matrix(), H), exact)
    assert verify_scaling_guarantees(exact, eta, hop_ok, l_factor=1.0, eps=EPS)
    table = format_table(
        ["scale i", "x=2^i", "diam(G_i)", "cap B h^2", "pairs assigned"],
        rows,
        title=(
            f"E7 / Lemma 8.1 — scaled graphs (poly weights, n={N}, h={H}, "
            f"eps={EPS}); eta guarantees verified"
        ),
    )
    emit(table, sink_path=results_sink)

    benchmark.pedantic(
        lambda: plan_scaling(exact, h=H, eps=EPS), rounds=1, iterations=1
    )


def test_scale_count_logarithmic(results_sink, benchmark):
    """O(log n) scales even with polynomially large weights."""
    graph = workload("poly", N)
    exact = exact_for("poly", N)
    plan = plan_scaling(exact, h=H, eps=EPS)
    assert len(plan.needed) <= np.log2(float(np.max(exact[np.isfinite(exact)])) + 2) + 2
    benchmark.pedantic(lambda: plan.needed, rounds=1, iterations=1)
