"""E17 — min-plus kernel layer: every kernel bit-identical, tiled >= 2x.

The kernel registry (``repro.semiring.kernels``) promises two things:

* **equivalence** — every registered kernel returns bit-identical output
  on the same inputs (the property the repo's correctness rests on), and
* **speed** — the cache-tiled kernel (or the numba JIT one, when numba
  is installed) beats the ``broadcast`` reference by >= 2x at n = 512,
  the acceptance bar for the kernel subsystem.

Besides the usual ``bench_results.md`` table, this module emits
``BENCH_kernels.json`` (machine-readable per-kernel timings and
speedups) so CI and dashboards can track kernel regressions.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` restricts the sweep to the smallest
size — the CI configuration, where only equivalence (not the speedup
ratio, which needs the large size and a quiet machine) is asserted.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.analysis import emit, format_table
from repro.semiring import iter_kernels, kernel_names, minplus, resolve_kernel

from conftest import rng_for

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = (128,) if SMOKE else (128, 256, 512)
REFERENCE = "broadcast"
JSON_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")
)


def kernel_workload(n: int) -> np.ndarray:
    """An integer min-plus matrix with inf holes (an ER-like adjacency)."""
    rng = rng_for(f"kernels:{n}")
    matrix = rng.integers(1, 100, (n, n)).astype(np.float64)
    matrix[rng.random((n, n)) < 0.5] = np.inf
    np.fill_diagonal(matrix, 0.0)
    return matrix


def best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> List[Dict]:
    """Per (size, kernel): best wall time, speedup vs reference, equality."""
    records: List[Dict] = []
    for n in SIZES:
        matrix = kernel_workload(n)
        reference_out = minplus(matrix, matrix, kernel=REFERENCE)
        reference_time = best_of(lambda: minplus(matrix, matrix, kernel=REFERENCE))
        for spec in iter_kernels():
            out = minplus(matrix, matrix, kernel=spec.name)
            seconds = (
                reference_time
                if spec.name == REFERENCE
                else best_of(lambda: minplus(matrix, matrix, kernel=spec.name))
            )
            records.append(
                {
                    "n": n,
                    "kernel": spec.name,
                    "seconds": seconds,
                    "speedup_vs_broadcast": reference_time / seconds,
                    "identical_to_reference": bool(
                        np.array_equal(out, reference_out)
                    ),
                }
            )
    return records


@pytest.fixture(scope="module")
def kernel_records() -> List[Dict]:
    return measure()


def test_kernel_equivalence_and_speed(kernel_records, results_sink, benchmark):
    for record in kernel_records:
        assert record["identical_to_reference"], record

    rows = [
        (
            r["n"],
            r["kernel"],
            f"{r['seconds'] * 1e3:.1f}",
            f"{r['speedup_vs_broadcast']:.2f}x",
            "yes" if r["identical_to_reference"] else "NO",
        )
        for r in kernel_records
    ]
    table = format_table(
        ["n", "kernel", "best ms", "speedup vs broadcast", "bit-identical"],
        rows,
        title="E17 — min-plus kernel registry (claim: identical outputs, "
        "tiled >= 2x at n=512)",
    )
    emit(table, sink_path=results_sink)

    payload = {
        "experiment": "E17-kernels",
        "sizes": list(SIZES),
        "smoke": SMOKE,
        "reference": REFERENCE,
        "kernels": list(kernel_names()),
        "records": kernel_records,
    }
    with open(JSON_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)

    # Representative timing for pytest-benchmark: the auto-selected kernel
    # at the largest size of this run.
    matrix = kernel_workload(SIZES[-1])
    benchmark.extra_info["auto_kernel"] = resolve_kernel(matrix, matrix)
    benchmark.pedantic(lambda: minplus(matrix, matrix), rounds=1, iterations=1)


@pytest.mark.skipif(SMOKE, reason="speedup ratio needs the n=512 measurement")
def test_fast_kernel_at_least_2x_at_512(kernel_records):
    """Acceptance: tiled (or numba when installed) >= 2x the reference."""
    candidates = [
        r
        for r in kernel_records
        if r["n"] == 512 and r["kernel"] in ("tiled", "numba")
    ]
    assert candidates, "no fast kernel measured at n=512"
    best = max(candidates, key=lambda r: r["speedup_vs_broadcast"])
    assert best["speedup_vs_broadcast"] >= 2.0, (
        f"{best['kernel']} only {best['speedup_vs_broadcast']:.2f}x "
        f"over {REFERENCE} at n=512"
    )


def test_auto_selection_picks_a_fast_kernel_for_large_integer_inputs():
    matrix = kernel_workload(max(SIZES))
    assert resolve_kernel(matrix, matrix) in ("int-repack", "tiled", "numba")
