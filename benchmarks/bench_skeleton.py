"""E5 — Lemmas 3.4/6.1: skeleton graph size and transfer stretch.

For a sweep of k: the skeleton size against the O(n log k / k) bound, and
the end-to-end transfer stretch (exact inner solve, l = 1) against the
7 l a^2 guarantee.
"""

from __future__ import annotations


from repro.analysis import emit, format_table
from repro.core import build_skeleton, extend_estimate
from repro.core.params import skeleton_size_bound
from repro.graphs import check_estimate, exact_apsp
from repro.semiring import k_smallest_in_rows

from conftest import exact_for, rng_for, workload

N = 128


def run_case(k: int):
    graph = workload("er", N)
    exact = exact_for("er", N)
    idx, val = k_smallest_in_rows(exact, k)
    skeleton = build_skeleton(graph, idx, val, k, rng_for(f"e5:{k}"), a=1.0)
    inner = exact_apsp(skeleton.graph)
    eta, factor = extend_estimate(skeleton, inner, 1.0)
    report = check_estimate(exact, eta)
    assert report.sound
    assert report.max_stretch <= factor + 1e-9
    return skeleton, report, factor


def test_skeleton_table(results_sink, benchmark):
    rows = []
    for k in (4, 8, 16, 32):
        skeleton, report, factor = run_case(k)
        bound = skeleton_size_bound(N, k)
        assert skeleton.num_nodes <= bound + k
        rows.append(
            (
                k,
                skeleton.num_nodes,
                round(bound, 1),
                skeleton.graph.num_edges,
                round(factor, 1),
                round(report.max_stretch, 3),
                round(report.mean_stretch, 3),
            )
        )
    table = format_table(
        ["k", "|V_S|", "O(n log k/k) bound", "|E_S|", "7la^2 bound", "max stretch", "mean"],
        rows,
        title=f"E5 / Lemma 3.4 — skeleton size and transfer stretch (n={N}, l=1, a=1)",
    )
    emit(table, sink_path=results_sink)

    graph = workload("er", N)
    exact = exact_for("er", N)
    idx, val = k_smallest_in_rows(exact, 11)
    benchmark.pedantic(
        lambda: build_skeleton(graph, idx, val, 11, rng_for("e5:kernel"), a=1.0),
        rounds=1,
        iterations=1,
    )


def test_size_shrinks_with_k(results_sink, benchmark):
    """The reduction gets stronger as k grows — the shape Lemma 3.4 needs."""
    sizes = [run_case(k)[0].num_nodes for k in (4, 16, 32)]
    assert sizes[0] > sizes[-1]
    benchmark.pedantic(lambda: sizes, rounds=1, iterations=1)
