"""E9 — Theorem 2.1: zero-weight handling at O(1) rounds overhead."""

from __future__ import annotations

import numpy as np

from repro.analysis import emit, format_table
from repro.cclique import RoundLedger
from repro.core import Estimate, lift_zero_weights
from repro.graphs import check_estimate, clustered_zero_weight_graph, exact_apsp

from conftest import rng_for


def exact_solver(graph):
    return Estimate(estimate=exact_apsp(graph), factor=1.0)


def test_zero_weight_overhead_table(results_sink, benchmark):
    rows = []
    for clusters, size in ((4, 8), (8, 8), (8, 16)):
        graph = clustered_zero_weight_graph(
            clusters, size, rng_for(f"e9:{clusters}:{size}")
        )
        exact = exact_apsp(graph)
        ledger = RoundLedger(graph.n)
        result = lift_zero_weights(graph, exact_solver, ledger=ledger)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert np.allclose(result.estimate, exact)
        # Theorem 2.1: overhead is O(1) rounds regardless of n.
        assert ledger.total_rounds <= 15
        rows.append(
            (
                graph.n,
                clusters,
                result.meta["zero_components"],
                ledger.total_rounds,
                "exact preserved",
            )
        )
    table = format_table(
        ["n", "clusters", "components found", "overhead rounds", "output"],
        rows,
        title="E9 / Theorem 2.1 — zero-weight reduction overhead is O(1) rounds",
    )
    emit(table, sink_path=results_sink)

    graph = clustered_zero_weight_graph(8, 8, rng_for("e9:kernel"))
    benchmark.pedantic(
        lambda: lift_zero_weights(graph, exact_solver), rounds=1, iterations=1
    )
