#!/usr/bin/env python
"""Byzantine-hardening quickstart: checksums, erasure coding, pipeline chaos.

Three demonstrations of the integrity and recovery stack (DESIGN.md
section 12):

1. checksum screening — the same adversarial bit-flip plan with and
   without the integrity layer: silently poisoned payloads vs a 100%
   detection rate and a clean inbox;
2. erasure-coded recovery vs bounded retry — the same lossy plan healed
   two ways, with the round costs side by side (parity reconstructs
   holes without waiting a retransmission cycle);
3. the full pipeline — `approximate_apsp` with the input graph
   disseminated over a lossy fabric, degraded and then recovered, with
   the stretch degradation each fabric produced.

Run:  python examples/byzantine_demo.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cclique import (
    FaultPlan,
    IntegrityPolicy,
    LinkDrop,
    MessageBatch,
    PayloadCorrupt,
    route_batch_two_phase,
)
from repro.chaos import run_scenario, stretch_degradation
from repro.core.apsp import approximate_apsp
from repro.graphs.generators import erdos_renyi


def full_load(n: int, seed: int, loads: int = 2) -> MessageBatch:
    """`loads` messages out of (and into) every node, unique payloads."""
    rng = np.random.default_rng(seed)
    src = np.tile(np.arange(n, dtype=np.int64), loads)
    dst = np.concatenate([rng.permutation(n) for _ in range(loads)])
    payload = np.arange(loads * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


def demo_checksums(n: int) -> None:
    print(f"=== 1. Checksum screening of corrupted payloads (n={n}) ===")
    batch = full_load(n, seed=1)
    plan = FaultPlan(
        specs=(PayloadCorrupt(probability=0.2, protect_prefix=2),), seed=7
    )
    sent = set(batch.payload[:, 0].tolist())

    poisoned, p_stats = route_batch_two_phase(
        batch, n, faults=plan, max_retries=0
    )
    bad = sum(1 for w in poisoned.payload[:, 0].tolist() if w not in sent)
    totals = p_stats.fault_totals or {}
    print(f"no integrity : {len(poisoned)}/{len(batch)} delivered, "
          f"{totals.get('corrupted', 0)} corrupted, "
          f"{totals.get('detected', 0)} detected — "
          f"{bad} poisoned payloads reached inboxes")

    healed, h_stats = route_batch_two_phase(
        batch, n, faults=plan, max_retries=5, integrity=IntegrityPolicy()
    )
    totals = h_stats.fault_totals or {}
    bad = sum(1 for w in healed.payload[:, 0].tolist() if w not in sent)
    rate = totals["detected"] / totals["corrupted"] if totals.get(
        "corrupted"
    ) else 1.0
    print(f"with checksums: {len(healed)}/{len(batch)} delivered, "
          f"{totals.get('corrupted', 0)} corrupted, "
          f"{totals.get('detected', 0)} detected "
          f"(rate {rate:.0%}) — {bad} poisoned payloads\n")


def demo_erasure(n: int) -> None:
    print(f"=== 2. Erasure-coded recovery vs bounded retry (n={n}) ===")
    batch = full_load(n, seed=0)
    plan = FaultPlan(specs=(LinkDrop(probability=0.1),), seed=0)
    m = len(batch)

    retried, r_stats = route_batch_two_phase(
        batch, n, bandwidth_words=4, faults=plan, max_retries=6
    )
    print(f"bounded retry: {len(retried)}/{m} delivered in "
          f"{r_stats.rounds} rounds ({r_stats.retries} retries)")

    coded, e_stats = route_batch_two_phase(
        batch, n, bandwidth_words=4, faults=plan, max_retries=6,
        recovery="erasure",
    )
    print(f"erasure coded: {len(coded)}/{m} delivered in "
          f"{e_stats.rounds} rounds ({e_stats.retries} retries, "
          f"{e_stats.reconstructed} rows reconstructed from parity, "
          f"{e_stats.parity_words} parity words shipped)")
    print("round saving :",
          r_stats.rounds - e_stats.rounds, "rounds\n")


def demo_pipeline(n: int) -> None:
    print(f"=== 3. Full pipeline on a lossy fabric (n={n}) ===")
    rng = np.random.default_rng(0)
    graph = erdos_renyi(n, min(1.0, 6.0 / n), rng)
    plan = FaultPlan(specs=(LinkDrop(probability=0.12),), seed=5)

    clean = approximate_apsp(graph, np.random.default_rng(0))
    degraded = approximate_apsp(graph, np.random.default_rng(0), faults=plan)
    recovered = approximate_apsp(
        graph, np.random.default_rng(0), faults=plan,
        max_retries=4, recovery="erasure",
    )
    d_meta = degraded.meta["dissemination"]
    r_meta = recovered.meta["dissemination"]
    d_stretch = stretch_degradation(clean.estimate, degraded.estimate)
    r_stretch = stretch_degradation(clean.estimate, recovered.estimate)
    print(f"degraded : {d_meta['delivered_edges']}/"
          f"{d_meta['attempted_edges']} edges survived, mean stretch "
          f"blow-up {d_stretch['mean_ratio']:.3f}x "
          f"({d_stretch['disconnected_pairs']} pairs disconnected)")
    print(f"recovered: {r_meta['delivered_edges']}/"
          f"{r_meta['attempted_edges']} edges "
          f"({r_meta['reconstructed']} reconstructed), mean stretch "
          f"blow-up {r_stretch['mean_ratio']:.3f}x")

    report = run_scenario("byzantine-corrupt", n=max(16, n // 2), seed=0)
    print(f"scored scenario 'byzantine-corrupt': detection "
          f"{report.score['detection_rate']:.1f} with checksums vs "
          f"{report.score['detection_rate_baseline']:.1f} baseline")
    print("try: python -m repro chaos --scenario pipeline-degrade")


def main(n: int = 48) -> None:
    demo_checksums(n)
    demo_erasure(n)
    demo_pipeline(n)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
