#!/usr/bin/env python
"""Chaos-plane quickstart: inject faults, watch recovery, score it.

Three demonstrations of the fault pipeline (DESIGN.md section 11):

1. a `FaultPlan` attached to a raw `ArrayClique` — seeded drops and
   delays, with the `FaultTrace` ledger showing what was injected where;
2. resilient two-phase routing — the same lossy plan with and without
   the ack/timeout bounded-retry loop, delivery rates side by side;
3. the scenario registry — `run_scenario` scoring a crash with
   crash-aware relay replanning, and the JSON report it produces.

Run:  python examples/chaos_demo.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cclique import (
    ArrayClique,
    FaultPlan,
    LinkDrop,
    MessageBatch,
    MessageDelay,
    NodeCrash,
    route_batch_two_phase,
)
from repro.chaos import run_scenario


def full_load(n: int, seed: int, loads: int = 3) -> MessageBatch:
    """`loads` messages out of (and into) every node, unique payloads."""
    rng = np.random.default_rng(seed)
    src = np.tile(np.arange(n, dtype=np.int64), loads)
    dst = np.concatenate([rng.permutation(n) for _ in range(loads)])
    payload = np.arange(loads * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


def demo_fault_pipeline(n: int) -> None:
    print(f"=== 1. Fault pipeline on a raw ArrayClique (n={n}) ===")
    plan = FaultPlan(
        specs=(
            LinkDrop(probability=0.2),
            MessageDelay(probability=0.3, max_delay=2, until_round=6),
        ),
        seed=7,
    )
    clique = ArrayClique(n, bandwidth_words=1, strict=False)
    trace = clique.attach_faults(plan)

    batch = full_load(n, seed=1)
    clique.stage(batch.src, batch.dst, batch.payload)
    rounds = clique.drain(max_rounds=200)

    delivered = sum(len(clique.inbox_arrays(v)) for v in range(n))
    print(f"staged {len(batch)} rows, drained in {rounds} rounds")
    print(f"delivered {delivered} ({delivered / len(batch):.1%})")
    print("ledger totals:", trace.summary())
    print("(same plan + same traffic would reproduce this bit for bit)\n")


def demo_recovery(n: int) -> None:
    print(f"=== 2. Bounded-retry recovery in two-phase routing (n={n}) ===")
    batch = full_load(n, seed=2)
    plan = FaultPlan(specs=(LinkDrop(probability=0.15),), seed=3)

    lossy, lossy_stats = route_batch_two_phase(
        batch, n, faults=plan, max_retries=0
    )
    recovered, rec_stats = route_batch_two_phase(
        batch, n, faults=plan, max_retries=5
    )
    m = len(batch)
    print(f"no recovery : {len(lossy)}/{m} delivered "
          f"({len(lossy) / m:.1%}) in {lossy_stats.rounds} rounds")
    print(f"with retries: {len(recovered)}/{m} delivered "
          f"({len(recovered) / m:.1%}) in {rec_stats.rounds} rounds "
          f"({rec_stats.retries} retries)")
    print("recovery cost:",
          rec_stats.rounds - lossy_stats.rounds, "extra rounds\n")


def demo_scenarios(n: int) -> None:
    print(f"=== 3. Scenario registry: scored crash recovery (n={n}) ===")
    report = run_scenario("route-crash", n=n, seed=0)
    score = report.score
    print(f"crashed node       : {score['crashed_node']} "
          "(the busiest relay)")
    print(f"delivery, no replan: {score['delivery_no_recovery']:.3f}")
    print(f"delivery, replanned: {score['delivery_rate']:.3f} "
          f"(gain {score['recovery_gain']:+.3f})")
    print(f"deliverable rows   : all recovered "
          f"(rate {score['deliverable_rate']:.3f}; rows touching the "
          "dead node are gone for good)")
    print("full JSON report   :",
          f"{len(report.to_json())} bytes via report.to_json()")
    print("try: python -m repro chaos --list")


def main(n: int = 48) -> None:
    demo_fault_pipeline(n)
    demo_recovery(n)
    demo_scenarios(n)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
