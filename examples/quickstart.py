#!/usr/bin/env python
"""Quickstart: the unified solver facade, end to end.

Builds a small batch of random weighted graphs, solves them concurrently
with :class:`repro.ApspSolver` (the paper's headline Theorem 1.1
algorithm), and reports per graph:

* the guaranteed approximation factor (7^4 + eps — loose by design),
* the *measured* stretch certificate (typically < 5),
* the Congested Clique round count and the wall-clock time,

then shows the JSON payload a downstream service would consume, and the
legacy one-call API for comparison.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    ApspSolver,
    SolverConfig,
    approximate_apsp,
    erdos_renyi,
    kernel_names,
)


def main(n: int = 96) -> None:
    graph_rng = np.random.default_rng(2024)
    graphs = [erdos_renyi(n, 8.0 / n, graph_rng) for _ in range(3)]
    print(f"inputs: {graphs}")

    # One config, any number of graphs.  validation="stretch" attaches a
    # measured-stretch certificate (computed against exact distances).
    config = SolverConfig(variant="theorem11", seed=0, validation="stretch")
    solver = ApspSolver(config)
    results = solver.solve_many(graphs)  # concurrent, deterministic per seed

    print(f"\nvariant: {config.variant}  ({config.spec.summary})")
    print("graph  factor  measured  rounds  wall[s]")
    for i, result in enumerate(results):
        print(
            f"  g{i}   {result.factor:7.1f} "
            f"{result.stretch.max_stretch:9.3f} "
            f"{result.total_rounds:7d} {result.wall_time_s:8.3f}"
        )

    # Round breakdown for the first graph, phase by phase.
    print("\nrounds by phase (g0):")
    for phase, rounds in sorted(results[0].ledger.rounds_by_phase().items()):
        print(f"  {phase:<45} {rounds:>5}")

    # Results serialize for downstream services (inf encoded as null);
    # ``summary()`` drops the O(n^2) matrix, ``to_json()`` keeps it.
    summary = results[0].summary()
    print(f"\nJSON summary keys : {sorted(summary)}")
    print(f"serialized size   : {len(results[0].to_json())} bytes")

    # Kernel selection: every tropical matmul routes through the kernel
    # registry (repro.semiring.kernels).  The default auto-selects by
    # dtype/size; pinning a kernel changes wall-clock only — outputs are
    # bit-identical by contract (also reachable via the CLI's --kernel
    # and the REPRO_MINPLUS_KERNEL environment variable).
    print(f"\nmin-plus kernels registered: {', '.join(kernel_names())}")
    pinned = ApspSolver(
        SolverConfig(variant="exact", seed=0, kernel="tiled")
    ).solve(graphs[0])
    auto = ApspSolver(
        SolverConfig(variant="exact", seed=0)  # kernel=None -> auto
    ).solve(graphs[0])
    assert np.array_equal(pinned.estimate, auto.estimate)
    print(f"exact APSP, kernel pinned to 'tiled': {pinned.wall_time_s:.3f}s; "
          f"auto-selected kernel: {auto.wall_time_s:.3f}s (same output)")

    # For large matrices, request the base64 matrix encoding — a constant
    # ~10.7 characters per float64 entry (vs ~18 for full-precision floats
    # in the list encoding) and an order of magnitude faster to encode;
    # from_json understands both.
    compact = results[0].to_json(matrix_encoding="b64")
    print(f"b64-encoded size  : {len(compact)} bytes "
          f"(wins at n >= 512, where entries are full-precision floats)")

    # The ledger rounds above are *charges*; the communication plane can
    # also witness a schedule for real.  Run a protocol end-to-end on the
    # array-native simulator: a full-load Lenzen routing instance (every
    # node sends and receives exactly n messages) followed by the
    # message-level hopset protocol on the first graph.
    from repro import MessageBatch
    from repro.cclique import route_batch_two_phase
    from repro.graphs import exact_apsp
    from repro.protocols import run_hopset_protocol

    rng = np.random.default_rng(7)
    perms = np.stack([rng.permutation(n) for _ in range(n)])
    batch = MessageBatch(
        src=np.tile(np.arange(n, dtype=np.int64), n),
        dst=perms.reshape(-1),
        payload=np.tile(np.arange(n, dtype=np.float64), n).reshape(-1, 1),
    )
    _, stats = route_batch_two_phase(batch, n)
    print(f"\nsimulator: routed {stats.messages} full-load messages in "
          f"{stats.rounds} rounds ({stats.spill_rounds} caused by spill)")
    protocol = run_hopset_protocol(graphs[0], exact_apsp(graphs[0]))
    print(f"simulator: hopset protocol shipped 3 routed instances in "
          f"{protocol.rounds} rounds, hopset has "
          f"{protocol.hopset.num_edges} edges")

    # The query plane (repro.serve): precompute a distance oracle from a
    # result and serve batched queries / greedy routes from the artifact —
    # the "network routing" product surface the paper motivates.
    from repro.serve import route_batch

    oracle = results[0].oracle(graphs[0])
    qrng = np.random.default_rng(11)
    sources = qrng.integers(0, n, size=256)
    targets = qrng.integers(0, n, size=256)
    dists = oracle.query_many(sources, targets)
    routes = route_batch(oracle, sources, targets)
    print(f"\noracle: {dists.size} distance queries in one gather; batch "
          f"router delivered {int(routes.delivered.sum())}/{routes.size} "
          f"packets ({routes.outcome_counts()})")
    ids, _ = oracle.k_nearest(3, sources=[0])
    print(f"oracle: 3 nearest of node 0 by estimate: {ids[0].tolist()}")
    clone = type(oracle).from_json(oracle.to_json())  # b64-compact artifact
    assert np.array_equal(clone.estimate, oracle.estimate)
    assert np.array_equal(clone.next_hop, oracle.next_hop)
    print(f"oracle: persisted + reloaded bit-identically "
          f"({len(oracle.to_json())} bytes)")

    # Back-compat path: the legacy one-call API, equivalent to stream 0 of
    # the batch above when given the same RNG stream.
    legacy = approximate_apsp(graphs[0], rng=config.rng_for(0))
    assert np.array_equal(legacy.estimate, results[0].estimate)
    print(f"\nlegacy approximate_apsp matches the facade: factor "
          f"{legacy.factor:.1f}, {legacy.meta['ledger'].total_rounds} rounds")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    main(size)
