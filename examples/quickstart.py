#!/usr/bin/env python
"""Quickstart: approximate APSP in the Congested Clique, end to end.

Builds a random weighted graph, runs the paper's headline algorithm
(Theorem 1.1), and reports:

* the guaranteed approximation factor (7^4 + eps — loose by design),
* the *measured* stretch against exact distances (typically < 5),
* the Congested Clique round count from the ledger, phase by phase.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import approximate_apsp, erdos_renyi, exact_apsp
from repro.analysis import stretch_profile, summarize_stretch


def main(n: int = 96) -> None:
    rng = np.random.default_rng(2024)
    graph = erdos_renyi(n, 8.0 / n, rng)
    print(f"input: {graph}")

    result = approximate_apsp(graph, rng=rng, variant="theorem11")
    ledger = result.meta["ledger"]

    exact = exact_apsp(graph)
    profile = stretch_profile(exact, result.estimate, result.factor)
    print(f"guaranteed factor : {result.factor:.1f}  (7^4 (1+eps)^2)")
    print(f"measured stretch  : {summarize_stretch(profile)}")
    print(f"ledger rounds     : {ledger.total_rounds}")
    print()
    print("rounds by phase:")
    for phase, rounds in sorted(ledger.rounds_by_phase().items()):
        print(f"  {phase:<45} {rounds:>5}")

    # Distances are a plain numpy matrix — use them like any APSP oracle.
    u, v = 0, n // 2
    print()
    print(
        f"d({u}, {v}) = {exact[u, v]:.0f} exact, "
        f"{result.estimate[u, v]:.0f} estimated"
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    main(size)
