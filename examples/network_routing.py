#!/usr/bin/env python
"""Network routing from approximate APSP — the paper's motivating use case.

The introduction motivates Congested Clique APSP by "its close connection
to network routing".  This example plays that out on a simulated ISP-like
topology (preferential attachment — heavy-tailed degrees):

1. every node learns approximate distances via the Theorem 7.1 pipeline;
2. routing tables are derived greedily from the estimates;
3. packets are forwarded between random pairs and measured for delivery
   rate and path stretch, compared against tables built from a plain
   O(log n)-spanner estimate (the prior O(1)-round state of the art).

The point: the constant-factor estimate buys visibly shorter routes than
the spanner-only estimate at a comparable (near-constant) round budget.

Run:  python examples/network_routing.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import apsp_small_diameter, exact_apsp, preferential_attachment
from repro import spanner_only_baseline
from repro.cclique import RoundLedger
from repro.core.routing_tables import greedy_route, routing_quality
from repro.graphs import heavy_tail_weights


def main(n: int = 128) -> None:
    rng = np.random.default_rng(7)
    graph = preferential_attachment(n, 2, rng, weights=heavy_tail_weights())
    exact = exact_apsp(graph)
    print(f"topology: {graph} (heavy-tailed degrees, heavy-tailed latencies)")
    print()

    candidates = {}
    ledger = RoundLedger(n)
    ours = apsp_small_diameter(graph, rng, ledger=ledger)
    candidates["this paper (Thm 7.1)"] = (ours, ledger.total_rounds)

    ledger = RoundLedger(n)
    spanner = spanner_only_baseline(graph, rng, ledger=ledger)
    candidates["spanner-only [CZ22]"] = (spanner, ledger.total_rounds)

    print(f"{'tables from':<24} {'rounds':>6} {'bound':>7} "
          f"{'delivery':>9} {'mean stretch':>13} {'max':>7}")
    for name, (result, rounds) in candidates.items():
        quality = routing_quality(graph, result.estimate, exact, rng, samples=400)
        print(
            f"{name:<24} {rounds:>6} {result.factor:>7.1f} "
            f"{quality.delivery_rate:>8.1%} {quality.mean_stretch:>13.3f} "
            f"{quality.max_stretch:>7.3f}"
        )

    # Show one concrete route.
    print()
    source, target = 1, n - 1
    route = greedy_route(graph, ours.estimate, source, target)
    print(
        f"example packet {source} -> {target}: "
        f"{' -> '.join(map(str, route.path))}"
    )
    print(
        f"  length {route.length:.0f} vs optimal {exact[source, target]:.0f} "
        f"({route.length / exact[source, target]:.2f}x)"
    )

    # Where the paper wins: the spanner guarantee is O(log n) — it *grows*
    # with the network — while Theorem 7.1's stays 21 for every n.
    from repro.spanners import bootstrap_b

    print()
    print("guarantee scaling (spanner factor = 1.1 * (2b-1), b ~ log n / 3):")
    for big_n in (n, 10**6, 2**30, 2**40):
        spanner_factor = 1.1 * (2 * bootstrap_b(big_n) - 1)
        winner = "spanner" if spanner_factor < 21 else "THIS PAPER"
        print(f"  n = {big_n:>14,}: spanner {spanner_factor:>5.1f} vs ours 21.0"
              f"  -> {winner}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    main(size)
