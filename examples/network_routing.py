#!/usr/bin/env python
"""Network routing from approximate APSP — the paper's motivating use case.

The introduction motivates Congested Clique APSP by "its close connection
to network routing".  This example plays that out on a simulated ISP-like
topology (preferential attachment — heavy-tailed degrees):

1. every node learns approximate distances via the Theorem 7.1 pipeline;
2. a :class:`repro.serve.DistanceOracle` is assembled from the estimates
   (vectorized next-hop tables — the serving artifact);
3. packets are batch-forwarded between random pairs and audited for
   delivery rate and path stretch, compared against an oracle built from
   a plain O(log n)-spanner estimate (the prior O(1)-round state of the
   art).

The point: the constant-factor estimate buys visibly shorter routes than
the spanner-only estimate at a comparable (near-constant) round budget.

Run:  python examples/network_routing.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import apsp_small_diameter, exact_apsp, preferential_attachment
from repro import spanner_only_baseline
from repro.cclique import RoundLedger
from repro.graphs import heavy_tail_weights
from repro.serve import DistanceOracle, audit_stretch, route_batch


def main(n: int = 128) -> None:
    rng = np.random.default_rng(7)
    graph = preferential_attachment(n, 2, rng, weights=heavy_tail_weights())
    exact = exact_apsp(graph)
    print(f"topology: {graph} (heavy-tailed degrees, heavy-tailed latencies)")
    print()

    candidates = {}
    ledger = RoundLedger(n)
    ours = apsp_small_diameter(graph, rng, ledger=ledger)
    candidates["this paper (Thm 7.1)"] = (ours, ledger.total_rounds)

    ledger = RoundLedger(n)
    spanner = spanner_only_baseline(graph, rng, ledger=ledger)
    candidates["spanner-only [CZ22]"] = (spanner, ledger.total_rounds)

    print(f"{'tables from':<24} {'rounds':>6} {'bound':>7} "
          f"{'delivery':>9} {'mean stretch':>13} {'max':>7}")
    oracles = {}
    for name, (result, rounds) in candidates.items():
        oracle = DistanceOracle.build(graph, result)
        oracles[name] = oracle
        audit = audit_stretch(oracle, exact, rng, samples=400)
        print(
            f"{name:<24} {rounds:>6} {result.factor:>7.1f} "
            f"{audit.delivery_rate:>8.1%} {audit.mean_stretch:>13.3f} "
            f"{audit.max_stretch:>7.3f}"
        )

    # Show one concrete route, reconstructed by the batch router.
    print()
    source, target = 1, n - 1
    routes = route_batch(
        oracles["this paper (Thm 7.1)"], [source], [target], record_paths=True
    )
    print(
        f"example packet {source} -> {target}: "
        f"{' -> '.join(map(str, routes.path(0)))}"
    )
    print(
        f"  length {routes.lengths[0]:.0f} vs optimal "
        f"{exact[source, target]:.0f} "
        f"({routes.lengths[0] / exact[source, target]:.2f}x)"
    )

    # Where the paper wins: the spanner guarantee is O(log n) — it *grows*
    # with the network — while Theorem 7.1's stays 21 for every n.
    from repro.spanners import bootstrap_b

    print()
    print("guarantee scaling (spanner factor = 1.1 * (2b-1), b ~ log n / 3):")
    for big_n in (n, 10**6, 2**30, 2**40):
        spanner_factor = 1.1 * (2 * bootstrap_b(big_n) - 1)
        winner = "spanner" if spanner_factor < 21 else "THIS PAPER"
        print(f"  n = {big_n:>14,}: spanner {spanner_factor:>5.1f} vs ours 21.0"
              f"  -> {winner}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    main(size)
