#!/usr/bin/env python
"""Spending a round budget: the Theorem 1.2 tradeoff in practice.

A Congested Clique deployment rarely wants "the best possible
approximation" — it wants "the best approximation I can afford in r
rounds".  Theorem 1.2 gives the menu: for each t >= 1, an
O(log^(2^-t) n)-approximation in O(t) rounds.

This example sweeps t, reporting for each the formula bound, the
pipeline's concrete guarantee, the measured stretch and the measured
ledger rounds — then picks the smallest t whose measured rounds fit a
user-supplied budget.

Run:  python examples/round_budget_planning.py [budget_rounds]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import apsp_tradeoff, erdos_renyi, exact_apsp
from repro.cclique import RoundLedger
from repro.core import tradeoff_factor_bound
from repro.graphs import check_estimate, polynomial_weights


def main(budget: int = 250) -> None:
    n = 96
    rng = np.random.default_rng(11)
    graph = erdos_renyi(n, 8.0 / n, rng, weights=polynomial_weights(n, 2.0))
    exact = exact_apsp(graph)
    print(f"graph: {graph}; round budget: {budget}")
    print()
    print(f"{'t':>2} {'O(log^(2^-t) n)':>16} {'guarantee':>10} "
          f"{'measured':>9} {'rounds':>7} {'fits?':>6}")

    best = None
    for t in range(1, 5):
        ledger = RoundLedger(n)
        result = apsp_tradeoff(graph, t, rng, ledger=ledger)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        fits = ledger.total_rounds <= budget
        print(
            f"{t:>2} {tradeoff_factor_bound(n, t):>16.1f} "
            f"{result.factor:>10.1f} {report.max_stretch:>9.3f} "
            f"{ledger.total_rounds:>7} {'yes' if fits else 'no':>6}"
        )
        if fits and (best is None or report.max_stretch < best[1]):
            best = (t, report.max_stretch)

    print()
    if best is None:
        print("no t fits the budget — fall back to the spanner-only baseline")
    else:
        print(
            f"recommendation: t = {best[0]} "
            f"(measured stretch {best[1]:.3f} within budget)"
        )


if __name__ == "__main__":
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    main(rounds)
