#!/usr/bin/env python
"""Quickstart for the async oracle-serving tier (``repro.serve``).

Pattern: build/solve ONCE per (graph, variant, seed) — ``warm`` hands
back a graph-hash-addressed handle — then answer many concurrent point
queries through :class:`~repro.serve.OracleService`. Concurrent
requests inside a flush window are coalesced by the
:class:`~repro.serve.MicroBatcher` into single vectorized engine calls
(``query_many`` / ``route_batch``), bit-identical to asking one at a
time, just much faster under load.

Run:  python examples/oracle_service.py [n]
"""

from __future__ import annotations

import asyncio
import sys

import numpy as np

from repro.graphs import erdos_renyi
from repro.serve import OracleService, ServiceConfig, run_closed_loop


async def demo(service: OracleService, handle: str, n: int) -> None:
    rng = np.random.default_rng(7)

    # Point queries are coroutines; concurrent ones share a batch.
    d = await service.distance(handle, 0, n - 1)
    print(f"distance(0, {n - 1}) = {d:.3f}")

    hop = await service.route(handle, 0, n - 1)
    print(f"route(0, {n - 1})    = {hop['hops']} hops, "
          f"length {hop['length']:.3f}, {hop['status']}")

    near = await service.k_nearest(handle, 0, 5)
    print(f"k_nearest(0, k=5)  = nodes {near['ids']}")

    # Fan-out: 200 concurrent distance queries — the batcher coalesces
    # them into a handful of vectorized gathers.
    pairs = rng.integers(0, n, size=(200, 2))
    answers = await asyncio.gather(
        *(service.distance(handle, int(s), int(t)) for s, t in pairs)
    )
    print(f"fan-out            = {len(answers)} answers, "
          f"mean {float(np.mean(answers)):.3f}")

    # A measured closed-loop drive (32 clients, one request in flight
    # each) — the same machinery `repro serve-bench` and E21 use.
    async def request(i: int) -> float:
        s, t = pairs[i % len(pairs)]
        return await service.distance(handle, int(s), int(t))

    report = await run_closed_loop(request, requests=400, concurrency=32)
    stats = report.snapshot()
    print(f"closed-loop        = {stats['qps']:.0f} qps, "
          f"p50 {stats['latency']['p50'] * 1e3:.2f} ms, "
          f"p99 {stats['latency']['p99'] * 1e3:.2f} ms")


def main(n: int = 96) -> None:
    rng = np.random.default_rng(3)
    graph = erdos_renyi(n, min(1.0, 8.0 / n), rng)

    with OracleService(ServiceConfig(max_batch=64, max_delay_ms=2.0)) as svc:
        # warm() solves the workload once and registers the oracle under
        # a deterministic graph-hash handle; warming the same inputs
        # again is a store hit (no re-solve — single-flight even under
        # concurrent warms).
        handle = svc.warm(graph, variant="small-diameter", seed=7)
        print(f"warmed handle      = {handle[:24]}...")
        again = svc.warm(graph, variant="small-diameter", seed=7)
        assert again == handle

        asyncio.run(demo(svc, handle, n))

        snap = svc.snapshot()
        store = snap["tenants"]["default"]
        batch = snap["metrics"]["batching"]["distance"]
        print(f"store              = {store['builds']} build(s), "
              f"{store['hits']} hits / {store['misses']} misses")
        print(f"batching           = {batch['items']} items in "
              f"{batch['batches']} flushes "
              f"(mean {batch['mean_batch']:.1f}/flush)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
