#!/usr/bin/env python
"""Driving the message-level Congested Clique simulator directly.

Three demonstrations of the "physical" layer underneath the cost model:

1. the Section 2.3 broadcast trick (n words to everyone in 2 rounds);
2. Lenzen-style routing of a full-load instance (n messages in and out of
   every node) in a measured constant number of rounds;
3. a complete distributed protocol: synchronous Bellman-Ford APSP written
   as a per-node ``NodeProgram``, verified against the exact oracle.

Run:  python examples/message_level_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import SimulatedClique, erdos_renyi, exact_apsp
from repro.cclique import Message, broadcast_words, route_two_phase
from repro.protocols import run_distributed_bellman_ford


def demo_broadcast() -> None:
    n = 16
    clique = SimulatedClique(n, bandwidth_words=2)
    words = [f"w{i}" for i in range(n)]
    received, rounds = broadcast_words(clique, source=0, words=words)
    ok = all(row == words for row in received)
    print(f"[broadcast]  {n} words to {n} nodes in {rounds} rounds "
          f"({'ok' if ok else 'FAILED'})")


def demo_routing() -> None:
    n = 32
    rng = np.random.default_rng(0)
    messages = []
    for _ in range(n):  # full load: n messages in and out per node
        perm = rng.permutation(n)
        messages.extend(
            Message(s, int(perm[s]), (s,)) for s in range(n)
        )
    _, stats = route_two_phase(messages, n)
    print(f"[routing]    {stats.messages} messages at full load "
          f"in {stats.rounds} rounds (Lemma 2.1 says O(1))")


def demo_routing_at_scale() -> None:
    """The array plane: the same full-load instance at n = 512."""
    import time

    from repro import MessageBatch
    from repro.cclique import route_batch_two_phase

    n = 512
    rng = np.random.default_rng(0)
    perms = np.stack([rng.permutation(n) for _ in range(n)])
    batch = MessageBatch(
        src=np.tile(np.arange(n, dtype=np.int64), n),
        dst=perms.reshape(-1),
        payload=np.tile(np.arange(n, dtype=np.float64), n).reshape(-1, 1),
    )
    start = time.perf_counter()
    _, stats = route_batch_two_phase(batch, n)
    wall = time.perf_counter() - start
    print(f"[routing@512] {stats.messages} messages in {stats.rounds} "
          f"rounds, {wall:.2f}s wall (array plane)")


def demo_bellman_ford() -> None:
    n = 12
    rng = np.random.default_rng(1)
    graph = erdos_renyi(n, 0.4, rng)
    run = run_distributed_bellman_ford(graph)
    exact = exact_apsp(graph)
    worst = float(np.max(np.abs(run.estimate - exact)))
    print(f"[protocol]   distributed Bellman-Ford on {graph}: "
          f"{run.rounds} rounds, max error {worst:.0f}")


if __name__ == "__main__":
    demo_broadcast()
    demo_routing()
    demo_routing_at_scale()
    demo_bellman_ford()
