#!/usr/bin/env python
"""k-nearest distances on *directed* graphs (Sections 4 and 5).

The paper's headline theorems are for undirected graphs, but two of its
building blocks — the k-nearest beta-hopset (Lemma 3.2) and the fast
k-nearest computation (Lemma 3.3) — explicitly hold for directed graphs.
This example exercises exactly that: a one-way ring road with chords
(think: city streets), where distances are asymmetric.

Pipeline: coarse estimate -> directed hopset -> exact k-nearest via
filtered matrix powers -> verification against a Dijkstra oracle.

Run:  python examples/directed_knearest.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import build_knearest_hopset, exact_apsp, knearest_exact_via_hopset
from repro.cclique import RoundLedger
from repro.graphs import directed_ring_with_chords


def main(n: int = 64) -> None:
    rng = np.random.default_rng(42)
    graph = directed_ring_with_chords(n, n // 2, rng)
    exact = exact_apsp(graph)
    asym = float(np.mean(exact != exact.T))
    print(f"one-way network: {graph}")
    print(f"asymmetric pairs: {asym:.0%} (d(u,v) != d(v,u))")
    print()

    # A synthetic coarse 3-approximation stands in for the bootstrap
    # (Corollary 7.2's spanners are undirected; on directed inputs the
    # caller provides the initial estimate).
    a = 3.0
    noise = rng.uniform(1.0, a, size=exact.shape)
    delta = exact * noise
    np.fill_diagonal(delta, 0.0)

    ledger = RoundLedger(n)
    hopset = build_knearest_hopset(graph, delta, a, ledger=ledger)
    augmented = hopset.augmented(graph)
    print(f"hopset: {hopset.hopset.num_edges} directed edges, "
          f"beta bound {hopset.beta_bound} (O(a log d))")

    k = max(2, int(round(n ** 0.5)))
    knn = knearest_exact_via_hopset(
        augmented.matrix(), k, 2, hopset.beta_bound, ledger=ledger
    )
    print(f"k-nearest: k = {k}, rounds so far {ledger.total_rounds}")

    # Verify exactness against the oracle.
    errors = 0
    for u in range(n):
        order = np.argsort(exact[u], kind="stable")[:k]
        if not np.allclose(np.sort(knn.values[u]), np.sort(exact[u, order])):
            errors += 1
    print(f"verification: {n - errors}/{n} nodes with exact k-nearest sets")

    u = 0
    members = [int(v) for v in knn.indices[u] if v >= 0][:6]
    shown = ", ".join(
        f"{v} (d={knn.values[u][list(knn.indices[u]).index(v)]:.0f})"
        for v in members
    )
    print(f"node {u}'s nearest: {shown}")


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    main(size)
