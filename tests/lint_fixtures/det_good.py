"""Known-good determinism corpus: nothing here may be flagged."""

import random

import numpy as np


def seeded_generator(seed: int):
    return np.random.default_rng(seed)


def threaded_generator(rng: np.random.Generator):
    return rng.random(4)


def seeded_stdlib_instance(seed: int):
    return random.Random(seed)


def instance_draws(rng: random.Random):
    # Draws on an owned, seeded instance are fine — only the module-level
    # global-state functions are banned.
    return rng.random()


def pragma_allowed_profiling():
    import time

    # Reviewed exception: profiling only, never read back by algorithms.
    return time.perf_counter()  # lint: allow[det-wallclock]
