"""Known-bad JSON-safety corpus: every block here must be flagged."""

import numpy as np


class UnguardedStats:
    def __init__(self, samples):
        self.samples = samples
        self.total = 0.0
        self.count = 0

    def snapshot(self):
        return {
            "mean": np.mean(self.samples),  # json-nan-leak (numpy reducer)
            "ratio": self.total / self.count,  # json-nan-leak (bare division)
        }

    def to_dict(self):
        return {
            "max": self.samples.max(),  # json-nan-leak (method reducer)
        }


class SentinelLeak:
    def snapshot(self):
        return {
            "missing": float("nan"),  # json-nan-leak (non-finite literal)
        }
