"""Known-good registry corpus: nothing here may be flagged."""

from repro.chaos import register_scenario
from repro.core.registry import register_variant


@register_variant(
    "fixture-complete",
    display_name="fixture",
    summary="a fully-described fixture variant",
    factor_formula="O(1)",
    rounds_note="O(1) rounds",
)
def _solve_complete(graph, rng, ledger, **params):
    raise NotImplementedError


@register_scenario(
    "fixture-scenario-complete",
    summary="drops links on a schedule",
    faults="LinkDrop over the full window",
    recovery="bounded retry",
    default_params={"drop": 0.1},
)
def _run_complete(n, seed, **params):
    raise NotImplementedError
