"""Known-good benchmark corpus (linted under a virtual benchmarks/ path).

Mirrors the shipped benchmark shape: artifact + tag registered in
run_smoke.py's SUITES table.
"""

import json

ARTIFACT = "BENCH_kernels.json"
PAYLOAD = {"experiment": "E17-kernels", "records": [{"kernel": "broadcast"}]}


def emit():
    with open(ARTIFACT, "w", encoding="utf-8") as sink:
        json.dump(PAYLOAD, sink)
