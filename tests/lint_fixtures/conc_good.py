"""Known-good concurrency corpus: nothing here may be flagged."""

import threading
from concurrent.futures import ThreadPoolExecutor

_lock = threading.Lock()
_CACHE = {}


def single_flight(executor, task, event: threading.Event):
    # The sanctioned shape: decide under the lock, wait outside it.
    with _lock:
        future = executor.submit(task)
    event.wait()
    return future.result()


def guarded_cache_write(key, value):
    with _lock:
        _CACHE[key] = value


def register_entry(key, value):
    # Import-time registration (the register_* decorator pattern) is
    # exempt: imports are effectively single-threaded.
    _CACHE[key] = value


def pinned_worker(task):
    from repro.semiring import minplus, use_kernel

    kernel_pin, a, b = task
    with use_kernel(kernel_pin):
        return minplus(a, b)


def explicit_worker(task):
    from repro.semiring import minplus

    kernel, a, b = task
    return minplus(a, b, kernel=kernel)


def fan_out(tasks):
    with ThreadPoolExecutor() as pool:
        pinned = list(pool.map(pinned_worker, tasks))
        explicit = list(pool.map(explicit_worker, tasks))
    return pinned + explicit
