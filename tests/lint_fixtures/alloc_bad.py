"""Known-bad allocation corpus: every block here must be flagged."""

import numpy as np

from repro.semiring import minplus, minplus_square


def repeated_squaring(matrix, rounds):
    for _ in range(rounds):
        matrix = minplus_square(matrix)  # alloc-no-out-in-loop
    return matrix


def repeated_product(a, b, rounds):
    result = a
    while rounds > 0:
        result = minplus(result, b)  # alloc-no-out-in-loop
        rounds -= 1
    return result


def dense_temporaries(n, rounds):
    total = 0.0
    for _ in range(rounds):
        board = np.zeros((n, n))  # alloc-dense-temp-in-loop
        total += board.sum()
    return total
