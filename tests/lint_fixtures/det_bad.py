"""Known-bad determinism corpus: every block here must be flagged."""

import random
import time

import numpy as np


def unseeded_generator():
    rng = np.random.default_rng()  # det-unseeded-rng
    return rng.random(4)


def bare_unseeded_generator():
    from numpy.random import default_rng

    return default_rng()  # det-unseeded-rng


def global_numpy_state():
    np.random.seed(7)  # det-global-random-state
    return np.random.randint(0, 10)  # det-global-random-state


def stdlib_module_functions():
    value = random.random()  # det-stdlib-random
    random.shuffle([1, 2, 3])  # det-stdlib-random
    return value


def unseeded_stdlib_instance():
    return random.Random()  # det-stdlib-random


def wallclock_in_algorithm():
    return time.perf_counter()  # det-wallclock
