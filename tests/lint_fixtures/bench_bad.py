"""Known-bad benchmark corpus (linted under a virtual benchmarks/ path).

Writes an artifact run_smoke.py's SUITES table does not validate — CI
would silently stop checking this plane.
"""

import json

ARTIFACT = "BENCH_unregistered.json"  # reg-bench-tag
PAYLOAD = {"experiment": "E99-unregistered", "records": []}


def emit():
    with open(ARTIFACT, "w", encoding="utf-8") as sink:
        json.dump(PAYLOAD, sink)
