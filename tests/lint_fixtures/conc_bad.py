"""Known-bad concurrency corpus: every block here must be flagged."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

_lock = threading.Lock()
_CACHE = {}


def blocking_result_under_lock(executor, task):
    with _lock:
        future = executor.submit(task)
        return future.result()  # conc-blocking-in-lock


def sleeping_under_lock():
    with _lock:
        time.sleep(0.1)  # conc-blocking-in-lock


def waiting_under_lock(event: threading.Event):
    with _lock:
        event.wait()  # conc-blocking-in-lock


def unguarded_cache_write(key, value):
    _CACHE[key] = value  # conc-global-mutation


def unguarded_cache_update(entries):
    _CACHE.update(entries)  # conc-global-mutation


def worker(task):
    from repro.semiring import minplus

    return minplus(task[0], task[1])


def fan_out(tasks):
    with ThreadPoolExecutor() as pool:
        return list(pool.map(worker, tasks))  # conc-worker-contextvar
