"""Known-good JSON-safety corpus: nothing here may be flagged."""

import math

import numpy as np


def finite_or_none(value):
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


class GuardedStats:
    def __init__(self, samples):
        self.samples = samples
        self.total = 0.0
        self.count = 0

    def snapshot(self):
        return {
            # Routed through the sanitizer: NaN/inf become None, numpy
            # scalars become floats.
            "mean": finite_or_none(np.mean(self.samples)),
            # The sanctioned division shape: guarded by the conditional.
            "ratio": self.total / self.count if self.count else None,
        }

    def to_dict(self):
        value = self.samples.max()
        return {"max": float(value) if np.isfinite(value) else None}

    def helper_mean(self):
        # Reducers outside snapshot/to_dict/to_json naming are not the
        # payload boundary and are not this rule's business.
        return np.mean(self.samples)
