"""Known-good allocation corpus: nothing here may be flagged."""

import numpy as np

from repro.semiring import minplus, minplus_square


def pingpong_squaring(matrix, rounds):
    # The sanctioned shape (see minplus_power): two buffers, swapped.
    spare = np.empty_like(matrix)
    for _ in range(rounds):
        minplus_square(matrix, out=spare)
        matrix, spare = spare, matrix
    return matrix


def single_product(a, b):
    # One call outside any loop allocates once — fine.
    return minplus(a, b)


def hoisted_buffer(n, rounds):
    board = np.zeros((n, n))
    total = 0.0
    for _ in range(rounds):
        board[:] = 0.0
        total += board.sum()
    return total


def rectangular_temp(n, m, rounds):
    # Only square (n, n) temporaries are the dense-APSP regression shape.
    for _ in range(rounds):
        chunk = np.zeros((n, m))
        chunk += 1.0
    return n
