"""Known-bad registry corpus: every block here must be flagged."""

from repro.chaos import register_scenario
from repro.core.registry import register_variant


@register_variant(
    "fixture-missing-metadata",  # reg-variant-metadata (no display_name ...)
    summary="has a summary but nothing else",
)
def _solve_incomplete(graph, rng, ledger, **params):
    raise NotImplementedError


@register_variant(
    "fixture-empty-metadata",
    display_name="",  # reg-variant-metadata (empty literal)
    summary="x",
    factor_formula="1",
    rounds_note="O(1)",
)
def _solve_empty(graph, rng, ledger, **params):
    raise NotImplementedError


@register_scenario(
    "fixture-scenario",
    summary="drops links",
    # reg-variant-metadata: faults/recovery missing
)
def _run_incomplete(n, seed, **params):
    raise NotImplementedError
