"""Tests for the spanner substrate (Lemma 7.1, Corollaries 7.1/7.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.graphs import (
    check_estimate,
    erdos_renyi,
    exact_apsp,
    grid_graph,
    heavy_tail_weights,
)
from repro.spanners import (
    approx_apsp_via_spanner,
    baswana_sengupta_spanner,
    bootstrap_b,
    cz22_spanner,
    logn_bootstrap,
    spanner_edge_bound,
)

SEEDS = [0, 1, 2, 3, 4]


def spanner_stretch(graph, spanner) -> float:
    base = exact_apsp(graph)
    sp = exact_apsp(spanner)
    mask = np.isfinite(base) & (base > 0)
    return float(np.max(sp[mask] / base[mask]))


class TestBaswanaSengupta:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_bound(self, seed, k):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(48, 0.25, rng)
        spanner = baswana_sengupta_spanner(graph, k, rng)
        assert spanner_stretch(graph, spanner) <= 2 * k - 1 + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_subgraph_property(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(40, 0.3, rng)
        spanner = baswana_sengupta_spanner(graph, 3, rng)
        original = {(u, v): w for u, v, w in graph.edges()}
        for u, v, w in spanner.edges():
            assert (u, v) in original
            assert original[(u, v)] == w

    def test_k_one_returns_graph(self, rng):
        graph = erdos_renyi(20, 0.3, rng)
        spanner = baswana_sengupta_spanner(graph, 1, rng)
        assert spanner.num_edges == graph.num_edges

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edge_count_reasonable(self, seed):
        """Sparse output: within the k * n^(1+1/k) expectation (x2 slack)."""
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(64, 0.5, rng)
        k = 3
        spanner = baswana_sengupta_spanner(graph, k, rng)
        assert spanner.num_edges <= 2 * spanner_edge_bound(64, k)

    def test_preserves_connectivity(self, rng):
        graph = grid_graph(6, rng)
        spanner = baswana_sengupta_spanner(graph, 3, rng)
        sp = exact_apsp(spanner)
        assert np.all(np.isfinite(sp))

    def test_weighted_graphs(self, rng):
        graph = erdos_renyi(40, 0.3, rng, weights=heavy_tail_weights())
        spanner = baswana_sengupta_spanner(graph, 2, rng)
        assert spanner_stretch(graph, spanner) <= 3 + 1e-9

    def test_directed_rejected(self, rng):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(3, [(0, 1, 1)], directed=True)
        with pytest.raises(ValueError):
            baswana_sengupta_spanner(graph, 2, rng)

    def test_invalid_k(self, rng):
        graph = erdos_renyi(10, 0.5, rng)
        with pytest.raises(ValueError):
            baswana_sengupta_spanner(graph, 0, rng)


class TestCZ22Interface:
    def test_charges_constant_rounds(self, rng):
        graph = erdos_renyi(32, 0.3, rng)
        ledger = RoundLedger(32)
        result = cz22_spanner(graph, 2, rng, ledger=ledger)
        assert ledger.total_rounds > 0
        assert result.stretch_bound == 3.0

    def test_eps_variant_bound(self, rng):
        graph = erdos_renyi(32, 0.3, rng)
        result = cz22_spanner(graph, 2, rng, eps=0.5)
        assert result.stretch_bound == pytest.approx(1.5 * 3)

    def test_negative_eps_rejected(self, rng):
        graph = erdos_renyi(16, 0.3, rng)
        with pytest.raises(ValueError):
            cz22_spanner(graph, 2, rng, eps=-0.1)


class TestSpannerApproxAPSP:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_corollary71_guarantee(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(48, 0.2, rng)
        exact = exact_apsp(graph)
        result = approx_apsp_via_spanner(graph, b=2, rng=rng, eps=0.1)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_bootstrap_b_schedule(self):
        assert bootstrap_b(2) == 2  # floor
        assert bootstrap_b(1 << 30) == 10

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corollary72_logn_bootstrap(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(64, 0.1, rng)
        exact = exact_apsp(graph)
        ledger = RoundLedger(64)
        result = logn_bootstrap(graph, rng, ledger=ledger)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert ledger.total_rounds > 0

    def test_bootstrap_factor_is_logarithmic(self):
        """(1+eps)(2b-1) <= alpha log2 n for n past the small-graph floor."""
        import math

        for n in (4096, 1 << 16, 1 << 20):
            b = bootstrap_b(n)
            assert 1.1 * (2 * b - 1) <= math.log2(n)


class TestDropPairBufferReuse:
    """Regression: the per-level ``drop_pair`` mask is hoisted out of the
    cluster loop and refilled in place; construction must stay
    bit-identical to the allocate-per-iteration formulation."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_bit_identical_edges(self, seed):
        graph = erdos_renyi(48, 0.25, np.random.default_rng(seed))
        first = baswana_sengupta_spanner(graph, 3, np.random.default_rng(seed + 100))
        second = baswana_sengupta_spanner(graph, 3, np.random.default_rng(seed + 100))
        assert sorted(first.edges()) == sorted(second.edges())

    def test_mask_state_does_not_leak_across_calls(self):
        # Two different-k constructions back to back; a stale mask from
        # the first run must not suppress edges in the second.
        graph = erdos_renyi(40, 0.3, np.random.default_rng(9))
        before = sorted(
            baswana_sengupta_spanner(graph, 2, np.random.default_rng(1)).edges()
        )
        baswana_sengupta_spanner(graph, 3, np.random.default_rng(2))
        after = sorted(
            baswana_sengupta_spanner(graph, 2, np.random.default_rng(1)).edges()
        )
        assert before == after
