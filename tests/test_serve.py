"""Tests for the distance-oracle query plane (repro.serve)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import ApspSolver, SolverConfig
from repro.core.routing_tables import greedy_route, next_hop_table
from repro.graphs import WeightedGraph, erdos_renyi, exact_apsp, graph_content_hash
from repro.serve import (
    STATUS_BUDGET,
    STATUS_DEAD_END,
    STATUS_DELIVERED,
    STATUS_LOOP,
    DistanceOracle,
    OracleStore,
    audit_stretch,
    estimate_digest,
    oracle_key,
    route_batch,
)

from tests.helpers import make_rng


def build_case(seed: int, n: int = 40, p: float = 0.12):
    """A seeded graph plus a noisy estimate (greedy loops do occur)."""
    rng = make_rng(seed)
    graph = erdos_renyi(n, p, rng)
    exact = exact_apsp(graph)
    estimate = exact * (1.0 + 0.6 * rng.random((n, n)))
    np.fill_diagonal(estimate, 0.0)
    return graph, estimate, exact


class TestDistanceOracle:
    def test_build_from_result_carries_provenance(self):
        rng = make_rng(0)
        graph = erdos_renyi(32, 0.15, rng)
        result = ApspSolver(SolverConfig(variant="small-diameter", seed=5)).solve(
            graph
        )
        oracle = result.oracle(graph, owner="tests")
        assert oracle.n == 32
        assert oracle.meta["variant"] == "small-diameter"
        assert oracle.meta["seed"] == 5
        assert oracle.meta["graph_hash"] == graph_content_hash(graph)
        assert oracle.meta["owner"] == "tests"
        assert oracle.factor == pytest.approx(result.factor)
        assert np.array_equal(
            oracle.next_hop, next_hop_table(graph, result.estimate)
        )

    def test_hop_weight_matches_graph_edges(self):
        graph, estimate, _ = build_case(1)
        oracle = DistanceOracle.build(graph, estimate)
        matrix = graph.matrix()
        table = oracle.next_hop
        for u in range(graph.n):
            for t in (0, graph.n // 2, graph.n - 1):
                nxt = table[u, t]
                if nxt >= 0:
                    assert oracle.hop_weight[u, t] == matrix[u, nxt]
                else:
                    assert np.isinf(oracle.hop_weight[u, t])

    def test_arrays_frozen(self):
        graph, estimate, _ = build_case(2)
        oracle = DistanceOracle.build(graph, estimate)
        with pytest.raises(ValueError):
            oracle.estimate[0, 0] = 1.0
        with pytest.raises(ValueError):
            oracle.next_hop[0, 0] = 1

    def test_direct_construction_does_not_freeze_caller_arrays(self):
        graph, estimate, _ = build_case(2, n=10)
        built = DistanceOracle.build(graph, estimate)
        mine_est = np.array(built.estimate)
        mine_hop = np.array(built.next_hop)
        mine_w = np.array(built.hop_weight)
        oracle = DistanceOracle(
            estimate=mine_est, next_hop=mine_hop, hop_weight=mine_w
        )
        with pytest.raises(ValueError):
            oracle.estimate[0, 0] = 1.0  # the oracle's handle is read-only
        mine_est[0, 0] = 1.0  # ...but the caller's own array stays writable

    def test_shape_mismatch_rejected(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            DistanceOracle.build(graph, np.zeros((2, 2)))

    def test_query_many_broadcasts_and_validates(self):
        graph, estimate, _ = build_case(3)
        oracle = DistanceOracle.build(graph, estimate)
        sources = np.array([0, 1, 2])
        targets = np.array([5, 6, 7])
        out = oracle.query_many(sources, targets)
        assert np.array_equal(out, estimate[sources, targets])
        # one source against many targets
        fan = oracle.query_many([4], targets)
        assert np.array_equal(fan, estimate[4, targets])
        assert oracle.distance(0, 5) == estimate[0, 5]
        with pytest.raises(ValueError):
            oracle.query_many([0], [graph.n])
        with pytest.raises(ValueError):
            oracle.query_many([-1], [0])

    def test_k_nearest_matches_manual_argsort(self):
        graph, estimate, _ = build_case(4)
        oracle = DistanceOracle.build(graph, estimate)
        ids, dists = oracle.k_nearest(3, sources=[7])
        row = np.array(estimate[7])
        row[7] = np.inf  # include_self=False
        order = np.argsort(row, kind="stable")[:3]
        finite = np.isfinite(row[order])
        assert np.array_equal(ids[0][ids[0] >= 0], order[finite])
        assert np.array_equal(dists[0][ids[0] >= 0], row[order][finite])

    def test_k_nearest_include_self(self):
        graph, estimate, _ = build_case(5)
        oracle = DistanceOracle.build(graph, estimate)
        ids, dists = oracle.k_nearest(1, sources=[3], include_self=True)
        assert ids[0, 0] == 3  # zero self-distance wins, ID tie-break
        assert dists[0, 0] == 0.0


class TestPersistence:
    @pytest.mark.parametrize("encoding", ["b64", "list"])
    def test_round_trip_bit_identical(self, encoding):
        graph, estimate, _ = build_case(6)
        result = ApspSolver(SolverConfig(variant="spanner-only", seed=1)).solve(
            graph
        )
        oracle = DistanceOracle.build(graph, result)
        clone = DistanceOracle.from_json(
            oracle.to_json(matrix_encoding=encoding)
        )
        assert np.array_equal(clone.estimate, oracle.estimate)
        assert clone.estimate.dtype == np.float64
        assert np.array_equal(clone.next_hop, oracle.next_hop)
        assert clone.next_hop.dtype == np.int64
        # inf hop weights survive both codecs
        assert np.array_equal(clone.hop_weight, oracle.hop_weight)
        assert clone.meta == oracle.meta
        assert clone.content_key() == oracle.content_key()

    @pytest.mark.parametrize("encoding", ["b64", "list"])
    def test_save_load_file(self, tmp_path, encoding):
        graph, estimate, _ = build_case(7)
        oracle = DistanceOracle.build(graph, estimate)
        path = os.path.join(tmp_path, "oracle.json")
        oracle.save(path, matrix_encoding=encoding)
        clone = DistanceOracle.load(path)
        assert np.array_equal(clone.estimate, oracle.estimate)
        assert np.array_equal(clone.next_hop, oracle.next_hop)
        assert np.array_equal(clone.hop_weight, oracle.hop_weight)
        assert clone.meta == oracle.meta

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError):
            DistanceOracle.from_dict({"format": "something-else"})
        graph, estimate, _ = build_case(8)
        oracle = DistanceOracle.build(graph, estimate)
        with pytest.raises(ValueError):
            oracle.to_dict(matrix_encoding="csv")

    def test_newer_payload_version_rejected(self):
        graph, estimate, _ = build_case(8, n=10)
        payload = DistanceOracle.build(graph, estimate).to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            DistanceOracle.from_dict(payload)


class TestOracleStore:
    def test_get_or_build_memoises_by_content(self):
        graph, estimate, _ = build_case(9)
        twin = WeightedGraph.from_arrays(
            graph.n, graph.edge_u, graph.edge_v, graph.edge_w
        )
        store = OracleStore()
        first = store.get_or_build(graph, estimate)
        second = store.get_or_build(twin, estimate)  # same content, new object
        assert first is second
        assert store.hits == 1 and store.misses == 1 and len(store) == 1

    def test_variants_get_separate_entries(self):
        graph, estimate, _ = build_case(10)
        store = OracleStore()
        store.get_or_build(graph, estimate, variant="a")
        store.get_or_build(graph, estimate, variant="b")
        assert len(store) == 2
        assert store.peek(store.key_for(graph, estimate, "a")) is not None
        assert store.peek(store.key_for(graph, estimate, "missing")) is None

    def test_explicit_variant_lands_in_meta_and_key_round_trips(self):
        """Regression: the keying variant must be the artifact's identity.

        A bare-matrix build keyed under variant="x" must carry that label
        in its meta, so re-``put``-ing it (or a save/load clone) lands on
        the same key instead of the default one.
        """
        graph, estimate, _ = build_case(31, n=14)
        store = OracleStore()
        oracle = store.get_or_build(graph, estimate, variant="x")
        assert oracle.meta["variant"] == "x"
        key = store.key_for(graph, estimate, "x")
        clone = DistanceOracle.from_json(oracle.to_json())
        assert store.put(clone) == key
        assert len(store) == 1  # refreshed, not duplicated

    def test_different_seeds_get_separate_entries(self):
        """Regression: the estimate, not just the instance, is the identity.

        Two solves of the same graph by the same randomized variant with
        different seeds produce different estimates; the store must not
        serve the first seed's oracle for the second seed's result.
        """
        rng = make_rng(30)
        graph = erdos_renyi(28, 0.18, rng)
        first = ApspSolver(SolverConfig(variant="theorem11", seed=1)).solve(graph)
        second = ApspSolver(SolverConfig(variant="theorem11", seed=2)).solve(graph)
        assert not np.array_equal(first.estimate, second.estimate)
        store = OracleStore()
        oracle_1 = store.get_or_build(graph, first)
        oracle_2 = store.get_or_build(graph, second)
        assert oracle_1 is not oracle_2
        assert len(store) == 2 and store.misses == 2
        assert np.array_equal(oracle_2.estimate, second.estimate)

    def test_put_derives_key_from_meta(self):
        graph, estimate, _ = build_case(11)
        result = ApspSolver(SolverConfig(variant="spanner-only", seed=0)).solve(
            graph
        )
        oracle = DistanceOracle.build(graph, result)
        store = OracleStore()
        key = store.put(oracle)
        assert key == oracle_key(
            graph_content_hash(graph),
            "spanner-only",
            estimate_digest(result.estimate),
        )
        assert key == store.key_for(graph, result)
        assert store.peek(key) is oracle
        # a reloaded artifact re-enters under the same identity
        clone = DistanceOracle.from_json(oracle.to_json())
        assert store.put(clone) == key
        assert len(store) == 1

    def test_lru_eviction_by_entries(self):
        store = OracleStore(max_entries=2)
        graphs = [build_case(20 + i, n=12)[0] for i in range(3)]
        for graph in graphs:
            store.get_or_build(graph, exact_apsp(graph))
        assert len(store) == 2
        evicted_key = store.key_for(graphs[0], exact_apsp(graphs[0]))
        assert store.peek(evicted_key) is None
        kept_key = store.key_for(graphs[2], exact_apsp(graphs[2]))
        assert store.peek(kept_key) is not None

    def test_lru_eviction_by_bytes(self):
        graph, estimate, _ = build_case(12, n=16)
        oracle = DistanceOracle.build(graph, estimate)
        store = OracleStore(max_entries=8, max_bytes=oracle.nbytes + 1)
        store.put(oracle, key="a")
        store.put(oracle, key="b")  # second artifact busts the byte bound
        assert len(store) == 1
        assert store.nbytes <= oracle.nbytes + 1
        assert store.peek("b") is not None

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            OracleStore(max_entries=0)
        with pytest.raises(ValueError):
            OracleStore(max_bytes=0)


class TestRouteBatch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_differential_vs_greedy_route(self, seed):
        """Batch routes == per-call routes: paths, lengths, flags, hops."""
        graph, estimate, _ = build_case(seed)
        oracle = DistanceOracle.build(graph, estimate)
        rng = make_rng(100 + seed)
        sources = rng.integers(0, graph.n, size=120)
        targets = rng.integers(0, graph.n, size=120)
        batch = route_batch(oracle, sources, targets, record_paths=True)
        for i, (s, t) in enumerate(zip(sources, targets)):
            route = greedy_route(
                graph, estimate, int(s), int(t), table=oracle.next_hop
            )
            assert route.delivered == bool(batch.delivered[i])
            assert route.length == batch.lengths[i]
            assert route.hops == int(batch.hops[i])
            assert route.path == batch.path(i)

    @pytest.mark.parametrize("max_hops", [1, 3, 7])
    def test_differential_under_hop_budget(self, max_hops):
        graph, estimate, _ = build_case(5)
        oracle = DistanceOracle.build(graph, estimate)
        rng = make_rng(200)
        sources = rng.integers(0, graph.n, size=60)
        targets = rng.integers(0, graph.n, size=60)
        batch = route_batch(
            oracle, sources, targets, max_hops=max_hops, record_paths=True
        )
        for i, (s, t) in enumerate(zip(sources, targets)):
            route = greedy_route(
                graph, estimate, int(s), int(t),
                table=oracle.next_hop, max_hops=max_hops,
            )
            assert route.delivered == bool(batch.delivered[i])
            assert route.length == batch.lengths[i]
            assert route.path == batch.path(i)

    def test_statuses(self):
        # two components: 0-1-2 connected, 3 isolated; a doctored loop
        graph = WeightedGraph(4, [(0, 1, 1), (1, 2, 1)])
        exact = exact_apsp(graph)
        oracle = DistanceOracle.build(graph, exact)
        batch = route_batch(oracle, [0, 0, 0], [2, 3, 0], record_paths=True)
        assert batch.status[0] == STATUS_DELIVERED
        assert batch.status[1] == STATUS_DEAD_END
        assert batch.status[2] == STATUS_DELIVERED  # self-delivery, 0 hops
        assert batch.hops[2] == 0 and batch.lengths[2] == 0.0
        budget = route_batch(oracle, [0], [2], max_hops=1)
        assert budget.status[0] == STATUS_BUDGET
        counts = batch.outcome_counts()
        assert counts["delivered"] == 2 and counts["dead-end"] == 1

    def test_loop_status_and_length(self):
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        table = np.array([[0, 1, 1], [0, 1, 0], [0, 1, 2]], dtype=np.int64)
        matrix = graph.matrix()
        hop_weight = np.where(
            table >= 0,
            np.take_along_axis(matrix, np.maximum(table, 0), axis=1),
            np.inf,
        )
        oracle = DistanceOracle(
            estimate=exact_apsp(graph), next_hop=table, hop_weight=hop_weight
        )
        batch = route_batch(oracle, [0], [2], record_paths=True)
        assert batch.status[0] == STATUS_LOOP
        assert batch.path(0) == [0, 1, 0]
        assert batch.lengths[0] == pytest.approx(1.0)

    def test_empty_batch(self):
        graph, estimate, _ = build_case(13, n=10)
        oracle = DistanceOracle.build(graph, estimate)
        batch = route_batch(oracle, [], [], record_paths=True)
        assert batch.size == 0
        assert np.isnan(batch.delivery_rate)

    def test_paths_require_recording(self):
        graph, estimate, _ = build_case(14, n=10)
        oracle = DistanceOracle.build(graph, estimate)
        batch = route_batch(oracle, [0], [1])
        with pytest.raises(ValueError):
            batch.path(0)

    def test_out_of_range_rejected(self):
        graph, estimate, _ = build_case(15, n=10)
        oracle = DistanceOracle.build(graph, estimate)
        with pytest.raises(ValueError):
            route_batch(oracle, [0], [10])


class TestAuditStretch:
    def test_exact_oracle_audits_clean(self):
        graph, _, exact = build_case(16)
        oracle = DistanceOracle.build(graph, exact)
        audit = audit_stretch(oracle, exact, make_rng(16), samples=200)
        assert audit.attempts > 0
        assert audit.delivery_rate == 1.0
        assert audit.mean_stretch == pytest.approx(1.0)
        assert audit.max_stretch == pytest.approx(1.0)
        assert audit.attempts + audit.skipped_self + audit.skipped_unreachable \
            + audit.skipped_zero == audit.samples

    def test_matches_solver_factor_bound(self):
        rng = make_rng(17)
        graph = erdos_renyi(40, 0.15, rng)
        result = ApspSolver(SolverConfig(variant="small-diameter", seed=2)).solve(
            graph
        )
        oracle = result.oracle(graph)
        audit = audit_stretch(oracle, exact_apsp(graph), rng, samples=300)
        assert audit.delivered + audit.loops + audit.dead_ends \
            + audit.budget_exhausted == audit.attempts
        if audit.delivered:
            assert audit.max_stretch <= result.factor + 1e-9

    def test_no_attempts_is_nan_not_perfect(self):
        graph = WeightedGraph(2, [])
        oracle = DistanceOracle.build(graph, exact_apsp(graph))
        audit = audit_stretch(
            oracle, exact_apsp(graph), make_rng(18), samples=25
        )
        assert audit.attempts == 0
        assert np.isnan(audit.delivery_rate)
        assert np.isnan(audit.mean_stretch)

    def test_zero_distance_pairs_flagged(self):
        graph = WeightedGraph(2, [(0, 1, 1)])
        oracle = DistanceOracle.build(graph, exact_apsp(graph))
        audit = audit_stretch(
            oracle, np.zeros((2, 2)), make_rng(19), samples=40
        )
        assert audit.attempts == 0
        assert audit.skipped_zero > 0
