"""Tests for stretch profiling and table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    emit,
    format_table,
    results_path,
    stretch_profile,
    summarize_stretch,
)
from repro.graphs import (
    assert_valid_approximation,
    check_estimate,
    is_symmetric,
    symmetrize_min,
)


class TestCheckEstimate:
    def test_perfect_estimate(self):
        exact = np.array([[0.0, 2.0], [2.0, 0.0]])
        report = check_estimate(exact, exact)
        assert report.max_stretch == 1.0
        assert report.sound

    def test_underestimate_detected(self):
        exact = np.array([[0.0, 2.0], [2.0, 0.0]])
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        report = check_estimate(exact, bad)
        assert not report.sound
        assert report.underestimates == 1

    def test_stretch_statistics(self):
        exact = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        est = exact * 3.0
        np.fill_diagonal(est, 0.0)
        report = check_estimate(exact, est)
        assert report.max_stretch == pytest.approx(3.0)
        assert report.mean_stretch == pytest.approx(3.0)

    def test_infinite_pairs_skipped(self):
        exact = np.array([[0.0, np.inf], [np.inf, 0.0]])
        report = check_estimate(exact, exact)
        assert report.pairs_checked == 0

    def test_assert_valid_raises_on_violation(self):
        exact = np.array([[0.0, 2.0], [2.0, 0.0]])
        est = exact * 5.0
        np.fill_diagonal(est, 0.0)
        with pytest.raises(AssertionError):
            assert_valid_approximation(exact, est, alpha=3.0)
        assert_valid_approximation(exact, est, alpha=5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_estimate(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSymmetry:
    def test_is_symmetric_with_inf(self):
        m = np.array([[0.0, np.inf], [np.inf, 0.0]])
        assert is_symmetric(m)

    def test_symmetrize_min(self):
        m = np.array([[0.0, 5.0], [3.0, 0.0]])
        s = symmetrize_min(m)
        assert s[0, 1] == 3.0 and s[1, 0] == 3.0


class TestStretchProfile:
    def test_profile_within_bound(self):
        exact = np.array([[0.0, 1.0], [1.0, 0.0]])
        est = exact * 2.0
        np.fill_diagonal(est, 0.0)
        profile = stretch_profile(exact, est, factor_bound=3.0)
        assert profile.within_bound
        assert profile.percentiles[100] == pytest.approx(2.0)
        summary = summarize_stretch(profile)
        assert "OK" in summary

    def test_profile_violation_flagged(self):
        exact = np.array([[0.0, 1.0], [1.0, 0.0]])
        est = exact * 5.0
        np.fill_diagonal(est, 0.0)
        profile = stretch_profile(exact, est, factor_bound=2.0)
        assert not profile.within_bound
        assert "VIOLATED" in summarize_stretch(profile)


class TestTables:
    def test_format_table_markdown(self):
        table = format_table(
            ["n", "rounds", "stretch"],
            [(64, 10, 1.5), (128, 12, 1.25)],
            title="Demo",
        )
        assert "### Demo" in table
        assert "| 64 " in table
        assert table.count("|") > 6

    def test_float_formatting(self):
        table = format_table(["x"], [(1.0,), (1.23456,)])
        assert "| 1 " in table
        assert "1.235" in table

    def test_emit_to_file(self, tmp_path, capsys):
        sink = tmp_path / "out.md"
        emit("hello", sink_path=str(sink))
        assert "hello" in sink.read_text()
        assert "hello" in capsys.readouterr().out

    def test_results_path_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS", raising=False)
        assert results_path() is None
        monkeypatch.setenv("REPRO_RESULTS", "1")
        assert results_path() == "bench_results.md"
        monkeypatch.setenv("REPRO_RESULTS", "custom.md")
        assert results_path() == "custom.md"
