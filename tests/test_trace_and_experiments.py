"""Tests for simulator tracing and the seed-sweep experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import run_sweep
from repro.cclique import (
    Message,
    SimulatedClique,
    TraceRecorder,
    traced_drain,
)
from repro.core.results import Estimate
from repro.graphs import erdos_renyi, exact_apsp

from tests.helpers import make_rng


class TestTraceRecorder:
    def test_snapshots_capture_deltas(self):
        clique = SimulatedClique(4, bandwidth_words=2)
        recorder = TraceRecorder(clique)
        clique.send(Message(0, 1, (1,)))
        clique.send(Message(2, 3, (2,)))
        clique.step()
        snap = recorder.snapshot()
        assert snap.messages_delivered == 2
        clique.step()
        snap = recorder.snapshot()
        assert snap.messages_delivered == 0
        assert recorder.total_messages == 2

    def test_traced_drain(self):
        clique = SimulatedClique(4, bandwidth_words=2, strict=False)
        for i in range(3):
            clique.send(Message(0, 1, (i,)))
        recorder = traced_drain(clique)
        assert recorder.rounds == 3
        assert recorder.total_messages == 3
        peak = recorder.peak_round()
        assert peak is not None and peak.messages_delivered == 1

    def test_timeline_render(self):
        clique = SimulatedClique(4, bandwidth_words=2, strict=False)
        for i in range(2):
            clique.send(Message(0, 1, (i,)))
        recorder = traced_drain(clique)
        art = recorder.timeline(width=10)
        assert "round" in art
        assert "#" in art

    def test_empty_timeline(self):
        clique = SimulatedClique(2)
        recorder = TraceRecorder(clique)
        assert "no rounds" in recorder.timeline()
        assert recorder.peak_round() is None


class TestSweepRunner:
    @staticmethod
    def exact_algorithm(graph, rng, ledger):
        if ledger is not None:
            ledger.charge(5, "exact")
        return Estimate(estimate=exact_apsp(graph), factor=1.0)

    def test_sweep_aggregates(self):
        workloads = {
            "er-16": lambda rng: erdos_renyi(16, 0.3, rng),
            "er-24": lambda rng: erdos_renyi(24, 0.2, rng),
        }
        result = run_sweep(self.exact_algorithm, workloads, seeds=[0, 1, 2])
        assert len(result.cases) == 6
        assert len(result.summaries) == 2
        for summary in result.summaries:
            assert summary.runs == 3
            assert summary.max_stretch_worst == pytest.approx(1.0)
            assert summary.rounds_mean == pytest.approx(5.0)
            assert summary.all_sound

    def test_sweep_table_renders(self):
        workloads = {"er": lambda rng: erdos_renyi(16, 0.3, rng)}
        result = run_sweep(self.exact_algorithm, workloads, seeds=[0])
        table = result.table("demo")
        assert "demo" in table
        assert "er" in table

    def test_sweep_fails_loudly_on_violation(self):
        def broken(graph, rng, ledger):
            bad = exact_apsp(graph) * 0.5  # underestimates
            np.fill_diagonal(bad, 0.0)
            return Estimate(estimate=bad, factor=1.0)

        workloads = {"er": lambda rng: erdos_renyi(16, 0.3, rng)}
        with pytest.raises(AssertionError):
            run_sweep(broken, workloads, seeds=[0])

    def test_sweep_fails_on_factor_violation(self):
        def overstretched(graph, rng, ledger):
            est = exact_apsp(graph) * 3.0  # valid 3-approx mislabeled as 2
            np.fill_diagonal(est, 0.0)
            return Estimate(estimate=est, factor=2.0)

        workloads = {"er": lambda rng: erdos_renyi(16, 0.3, rng)}
        with pytest.raises(AssertionError):
            run_sweep(overstretched, workloads, seeds=[0])


class TestZeroWeightProtocol:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_global_implementation(self, seed):
        from repro.core import compress_zero_components
        from repro.graphs import clustered_zero_weight_graph
        from repro.protocols import run_zero_weight_protocol

        rng = make_rng(seed)
        graph = clustered_zero_weight_graph(4, 6, rng)
        leader_g, leaders_g, compressed_g = compress_zero_components(graph)
        protocol = run_zero_weight_protocol(graph)
        assert np.array_equal(protocol.leader, leader_g)
        assert np.array_equal(protocol.leaders, leaders_g)
        assert set(protocol.compressed.edges()) == set(compressed_g.edges())

    def test_rounds_constant(self):
        from repro.graphs import clustered_zero_weight_graph
        from repro.protocols import run_zero_weight_protocol

        rng = make_rng(3)
        graph = clustered_zero_weight_graph(6, 8, rng)
        protocol = run_zero_weight_protocol(graph)
        assert protocol.broadcast_rounds + protocol.exchange_stats.rounds <= 14

    def test_directed_rejected(self):
        from repro.graphs import WeightedGraph
        from repro.protocols import run_zero_weight_protocol

        graph = WeightedGraph(2, [(0, 1, 0)], directed=True, require_positive=False)
        with pytest.raises(ValueError):
            run_zero_weight_protocol(graph)
