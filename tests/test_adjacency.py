"""Tests for the array-native adjacency layer (repro.graphs.adjacency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    WeightedGraph,
    batched_sssp,
    build_csr,
    erdos_renyi,
    exact_sssp,
    group_argmin,
    group_min_reduce,
    k_lightest_per_row,
    min_dedup_edges,
    sssp_on_edges,
)

from tests.helpers import make_rng


class TestCSRView:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_adjacency_lists(self, seed, directed):
        """csr() rows reproduce adjacency() exactly (content and order)."""
        rng = make_rng(seed)
        n = 30
        edges = [
            (int(u), int(v), int(w))
            for u, v, w in zip(
                rng.integers(0, n, 120),
                rng.integers(0, n, 120),
                rng.integers(1, 9, 120),
            )
            if u != v
        ]
        graph = WeightedGraph(n, edges, directed=directed)
        csr = graph.csr()
        adjacency = graph.adjacency()
        for u in range(n):
            ids, weights = csr.row(u)
            assert [(int(i), float(w)) for i, w in zip(ids, weights)] == [
                (int(i), float(w)) for i, w in adjacency[u]
            ]

    def test_rows_sorted_by_weight_then_id(self):
        graph = WeightedGraph(4, [(0, 1, 5), (0, 2, 5), (0, 3, 2)])
        ids, weights = graph.csr().row(0)
        assert ids.tolist() == [3, 1, 2]
        assert weights.tolist() == [2.0, 5.0, 5.0]

    def test_cached_and_read_only(self, rng):
        graph = erdos_renyi(16, 0.3, rng)
        csr = graph.csr()
        assert graph.csr() is csr
        with pytest.raises(ValueError):
            csr.weights[0] = -1

    def test_rows_of_concatenates_requested_rows(self, rng):
        graph = erdos_renyi(20, 0.3, rng)
        csr = graph.csr()
        nodes = np.array([3, 7, 7, 0])
        src, dst, wgt = csr.rows_of(nodes)
        expected_src, expected_dst, expected_wgt = [], [], []
        for u in nodes:
            ids, weights = csr.row(int(u))
            expected_src.extend([int(u)] * len(ids))
            expected_dst.extend(int(i) for i in ids)
            expected_wgt.extend(float(w) for w in weights)
        assert src.tolist() == expected_src
        assert dst.tolist() == expected_dst
        assert wgt.tolist() == expected_wgt

    def test_empty_graph(self):
        graph = WeightedGraph(5)
        csr = graph.csr()
        assert csr.num_entries == 0
        assert csr.degrees.tolist() == [0] * 5


class TestKLightestPerRow:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_k_shortest_out_edges(self, rng, k):
        graph = erdos_renyi(24, 0.3, rng)
        idx, wgt = k_lightest_per_row(graph.csr(), k)
        for u in range(graph.n):
            expected = graph.k_shortest_out_edges(u, k)
            got = [
                (int(i), float(w))
                for i, w in zip(idx[u], wgt[u])
                if i >= 0
            ]
            assert got == [(int(i), float(w)) for i, w in expected]

    def test_padding(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        idx, wgt = k_lightest_per_row(graph.csr(), 2)
        assert idx[2].tolist() == [-1, -1]
        assert np.all(np.isinf(wgt[2]))
        assert idx[0].tolist() == [1, -1]


class TestEdgeArrayHelpers:
    def test_min_dedup_keeps_lightest(self):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 1, 2, 1])
        wgt = np.array([5.0, 2.0, 7.0, 9.0])
        s, d, w = min_dedup_edges(src, dst, wgt)
        assert s.tolist() == [0, 1]
        assert d.tolist() == [1, 2]
        assert w.tolist() == [2.0, 7.0]

    def test_group_argmin_tiebreak(self):
        keys = np.array([4, 4, 2, 2])
        weights = np.array([1.0, 1.0, 3.0, 2.0])
        tiebreak = np.array([9, 5, 1, 8])
        uniq, best = group_argmin(keys, weights, tiebreak)
        assert uniq.tolist() == [2, 4]
        # key 2: lighter weight wins; key 4: equal weight, smaller tiebreak.
        assert best.tolist() == [3, 1]

    def test_group_min_reduce(self):
        keys = np.array([1, 1, 0])
        weights = np.array([4.0, 3.0, 1.0])
        values = np.array([7, 2, 5])
        uniq, w, v = group_min_reduce(keys, weights, values)
        assert uniq.tolist() == [0, 1]
        assert w.tolist() == [1.0, 3.0]
        assert v.tolist() == [5, 2]

    def test_empty_inputs(self):
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0, dtype=np.float64)
        assert min_dedup_edges(empty_i, empty_i, empty_f)[0].size == 0
        assert group_argmin(empty_i, empty_f, empty_i)[0].size == 0


class TestSSSPHelpers:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sssp_on_edges_matches_exact(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(25, 0.2, rng)
        src = np.concatenate([graph.edge_u, graph.edge_v])
        dst = np.concatenate([graph.edge_v, graph.edge_u])
        wgt = np.concatenate([graph.edge_w, graph.edge_w])
        dist = sssp_on_edges(graph.n, src, dst, wgt, [0, 7])
        assert np.allclose(dist[0], exact_sssp(graph, 0))
        assert np.allclose(dist[1], exact_sssp(graph, 7))

    def test_batched_blocks_are_isolated(self):
        """An edge in one block must not shorten paths in another."""
        # Block 0: path 0 -> 1 -> 2; block 1: only 0 -> 1.
        src = np.array([0, 1, 0])
        dst = np.array([1, 2, 1])
        wgt = np.array([1.0, 1.0, 1.0])
        bid = np.array([0, 0, 1])
        dist = batched_sssp(3, src, dst, wgt, bid, np.array([0, 0]))
        assert dist.shape == (2, 3)
        assert dist[0].tolist() == [0.0, 1.0, 2.0]
        assert dist[1][2] == np.inf
        assert dist[1][1] == 1.0

    def test_batched_dedup_guards_duplicate_records(self):
        """Duplicate (block, src, dst) records must min-merge, not sum."""
        src = np.array([0, 0])
        dst = np.array([1, 1])
        wgt = np.array([5.0, 3.0])
        bid = np.array([0, 0])
        dist = batched_sssp(2, src, dst, wgt, bid, np.array([0]))
        assert dist[0][1] == 3.0

    def test_build_csr_standalone(self):
        csr = build_csr(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([4.0, 2.0]),
            directed=False,
        )
        assert csr.degrees.tolist() == [1, 2, 1]
        ids, weights = csr.row(1)
        assert ids.tolist() == [2, 0]  # weight order: 2.0 before 4.0
        assert weights.tolist() == [2.0, 4.0]
