"""Tests for the static analysis plane (``repro.lint`` / ``repro lint``).

Three layers:

* **fixture corpus** — ``tests/lint_fixtures/`` holds known-bad and
  known-good snippets per rule family, linted under *virtual* repo
  paths so the path-scoped rules engage; every bad fixture must produce
  exactly its expected findings and every good fixture none.
* **live tree** — the repository itself must lint clean (the CI gate),
  and injecting a violation into a copy of a real module must flip both
  the driver and the CLI to failure.
* **framework** — pragmas, rule scoping, report JSON round-trip, and
  the registry's mirror-of-``core.registry`` contract.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.lint import (
    get_rule,
    iter_rules,
    lint_source,
    lint_tree,
    rule_names,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def fixture_source(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as handle:
        return handle.read()


def lint_fixture(name: str, virtual_path: str):
    return lint_source(
        fixture_source(name), virtual_path, root=REPO_ROOT
    )


# --------------------------------------------------------------------- #
# Registry / framework
# --------------------------------------------------------------------- #


class TestRuleRegistry:
    def test_five_families_registered(self):
        families = {spec.family for spec in iter_rules()}
        assert families == {
            "determinism", "concurrency", "json-safety", "allocation",
            "registry",
        }

    def test_expected_rules(self):
        assert set(rule_names()) == {
            "det-unseeded-rng", "det-global-random-state",
            "det-stdlib-random", "det-wallclock",
            "conc-blocking-in-lock", "conc-global-mutation",
            "conc-worker-contextvar",
            "json-nan-leak",
            "alloc-no-out-in-loop", "alloc-dense-temp-in-loop",
            "reg-variant-metadata", "reg-bench-tag",
        }

    def test_get_rule_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_scoping(self):
        wallclock = get_rule("det-wallclock")
        assert wallclock.applies_to("src/repro/core/apsp.py")
        assert not wallclock.applies_to("src/repro/serve/service.py")
        assert not wallclock.applies_to("benchmarks/bench_kernels.py")
        bench = get_rule("reg-bench-tag")
        assert bench.applies_to("benchmarks/bench_kernels.py")
        assert not bench.applies_to("benchmarks/run_smoke.py")

    def test_duplicate_registration_rejected(self):
        from repro.lint import register_rule

        with pytest.raises(ValueError, match="already registered"):
            register_rule(
                "det-unseeded-rng", family="determinism", summary="dup"
            )(lambda ctx: [])


class TestPragmas:
    SOURCE = (
        "import numpy as np\n"
        "a = np.random.default_rng()  # lint: allow[det-unseeded-rng]\n"
        "# lint: allow[det-unseeded-rng]\n"
        "b = np.random.default_rng()\n"
        "c = np.random.default_rng()\n"
    )

    def test_same_line_and_line_above_suppress(self):
        findings = lint_source(self.SOURCE, "src/repro/core/fixture.py")
        assert [f.line for f in findings] == [5]
        assert findings[0].rule == "det-unseeded-rng"

    def test_star_pragma_allows_everything(self):
        source = "import numpy as np\nr = np.random.default_rng()  # lint: allow[*]\n"
        assert lint_source(source, "src/repro/core/fixture.py") == []

    def test_unrelated_pragma_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "r = np.random.default_rng()  # lint: allow[det-wallclock]\n"
        )
        findings = lint_source(source, "src/repro/core/fixture.py")
        assert [f.rule for f in findings] == ["det-unseeded-rng"]


# --------------------------------------------------------------------- #
# Fixture corpus: every family catches its known-bad snippets
# --------------------------------------------------------------------- #


class TestDeterminismFixtures:
    def test_bad_corpus(self):
        findings = lint_fixture("det_bad.py", "src/repro/core/fixture.py")
        by_rule = sorted(f.rule for f in findings)
        assert by_rule == [
            "det-global-random-state", "det-global-random-state",
            "det-stdlib-random", "det-stdlib-random", "det-stdlib-random",
            "det-unseeded-rng", "det-unseeded-rng",
            "det-wallclock",
        ]

    def test_good_corpus(self):
        assert lint_fixture("det_good.py", "src/repro/core/fixture.py") == []

    def test_wallclock_out_of_scope_in_serving_tier(self):
        findings = lint_fixture("det_bad.py", "src/repro/serve/fixture.py")
        assert "det-wallclock" not in {f.rule for f in findings}


class TestConcurrencyFixtures:
    def test_bad_corpus(self):
        findings = lint_fixture("conc_bad.py", "src/repro/serve/fixture.py")
        by_rule = sorted(f.rule for f in findings)
        assert by_rule == [
            "conc-blocking-in-lock", "conc-blocking-in-lock",
            "conc-blocking-in-lock",
            "conc-global-mutation", "conc-global-mutation",
            "conc-worker-contextvar",
        ]

    def test_good_corpus(self):
        assert lint_fixture("conc_good.py", "src/repro/serve/fixture.py") == []


class TestJsonSafetyFixtures:
    def test_bad_corpus(self):
        findings = lint_fixture("json_bad.py", "src/repro/serve/fixture.py")
        assert sorted(f.rule for f in findings) == ["json-nan-leak"] * 4

    def test_good_corpus(self):
        assert lint_fixture("json_good.py", "src/repro/serve/fixture.py") == []


class TestAllocationFixtures:
    def test_bad_corpus(self):
        findings = lint_fixture("alloc_bad.py", "src/repro/core/fixture.py")
        assert sorted(f.rule for f in findings) == [
            "alloc-dense-temp-in-loop",
            "alloc-no-out-in-loop", "alloc-no-out-in-loop",
        ]

    def test_good_corpus(self):
        assert lint_fixture("alloc_good.py", "src/repro/core/fixture.py") == []

    def test_out_of_scope_in_benchmarks(self):
        # Benchmarks allocate freely on purpose.
        findings = lint_fixture("alloc_bad.py", "benchmarks/bench_fixture.py")
        assert findings == []


class TestRegistryFixtures:
    def test_bad_corpus(self):
        findings = lint_fixture("reg_bad.py", "src/repro/core/fixture.py")
        assert sorted(f.rule for f in findings) == ["reg-variant-metadata"] * 6

    def test_good_corpus(self):
        assert lint_fixture("reg_good.py", "src/repro/core/fixture.py") == []

    def test_bench_bad_corpus(self):
        findings = lint_fixture("bench_bad.py", "benchmarks/bench_fixture.py")
        assert [f.rule for f in findings] == ["reg-bench-tag"]
        assert "SUITES" in findings[0].message

    def test_bench_good_corpus(self):
        assert lint_fixture("bench_good.py", "benchmarks/bench_fixture.py") == []


# --------------------------------------------------------------------- #
# Live tree: the CI gate
# --------------------------------------------------------------------- #


class TestLiveTree:
    def test_repository_lints_clean(self):
        report = lint_tree(REPO_ROOT)
        assert report.parse_errors == []
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.files_scanned > 100
        assert report.clean

    def test_cli_exits_zero_on_live_tree(self, capsys):
        from repro.cli import main

        assert main(["lint", "--root", REPO_ROOT]) == 0
        assert "clean" in capsys.readouterr().out

    def test_injected_violation_fails_driver_and_cli(self, tmp_path, capsys):
        # The acceptance check: an unseeded default_rng() injected into a
        # copy of the real kernels module must fail the gate.
        target = tmp_path / "src" / "repro" / "semiring"
        target.mkdir(parents=True)
        source_path = os.path.join(
            REPO_ROOT, "src", "repro", "semiring", "kernels.py"
        )
        with open(source_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        source += "\n\n_INJECTED = np.random.default_rng()\n"
        (target / "kernels.py").write_text(source, encoding="utf-8")

        report = lint_tree(str(tmp_path))
        assert [f.rule for f in report.findings] == ["det-unseeded-rng"]
        assert not report.clean

        from repro.cli import main

        assert main(["lint", "--root", str(tmp_path)]) == 1
        assert "det-unseeded-rng" in capsys.readouterr().out

    def test_json_artifact_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "lint_report.json"
        assert main(["lint", "--root", REPO_ROOT, "--json", str(artifact)]) == 0
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["clean"] is True
        assert payload["tool"] == "repro-lint"
        assert payload["findings"] == []
        assert payload["files_scanned"] > 100
        assert {r["rule"] for r in payload["rules"]} == set(rule_names())
        # Strict JSON round-trip (the artifact is itself a snapshot).
        assert json.loads(json.dumps(payload)) == payload

    def test_rule_filter_and_listing(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in ("determinism", "concurrency", "json-safety",
                       "allocation", "registry"):
            assert f"[{family}]" in out
        assert main([
            "lint", "--root", REPO_ROOT, "--rules", "det-unseeded-rng",
        ]) == 0

    def test_fixture_corpus_is_skipped_by_tree_driver(self):
        # The known-bad corpus must never fail the live gate.
        report = lint_tree(REPO_ROOT, paths=[FIXTURES])
        assert report.files_scanned == 0


# --------------------------------------------------------------------- #
# run_smoke integration: the lint artifact is validated alongside BENCH
# --------------------------------------------------------------------- #


class TestRunSmokeIntegration:
    def _load_run_smoke(self):
        sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
        try:
            import importlib

            module = importlib.import_module("run_smoke")
            return importlib.reload(module)
        finally:
            sys.path.pop(0)

    def test_validate_lint_artifact_accepts_clean(self, tmp_path):
        run_smoke = self._load_run_smoke()
        artifact = tmp_path / "lint_report.json"
        artifact.write_text(json.dumps({
            "tool": "repro-lint", "clean": True, "files_scanned": 150,
            "parse_errors": [], "findings": [],
            "rules": [{"rule": "det-unseeded-rng"}],
        }), encoding="utf-8")
        assert run_smoke.validate_lint_artifact(str(artifact)) == []

    def test_validate_lint_artifact_rejects_findings(self, tmp_path):
        run_smoke = self._load_run_smoke()
        artifact = tmp_path / "lint_report.json"
        artifact.write_text(json.dumps({
            "tool": "repro-lint", "clean": False, "files_scanned": 150,
            "parse_errors": [], "rules": [],
            "findings": [{"rule": "det-unseeded-rng", "path": "x.py",
                          "line": 1, "col": 0, "message": "m",
                          "severity": "error"}],
        }), encoding="utf-8")
        problems = run_smoke.validate_lint_artifact(str(artifact))
        assert problems and any("finding" in p for p in problems)

    def test_validate_lint_artifact_rejects_missing(self, tmp_path):
        run_smoke = self._load_run_smoke()
        problems = run_smoke.validate_lint_artifact(
            str(tmp_path / "absent.json")
        )
        assert problems == [f"{tmp_path / 'absent.json'}: not written"]
