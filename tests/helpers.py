"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.graphs import (
    erdos_renyi,
    grid_graph,
    heavy_tail_weights,
    path_with_shortcuts,
)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def graph_family(seed: int):
    """A representative set of (name, graph) pairs for sweep tests."""
    rng = make_rng(seed)
    return [
        ("er-sparse", erdos_renyi(40, 0.08, rng)),
        ("er-dense", erdos_renyi(40, 0.3, rng)),
        ("grid", grid_graph(6, rng)),
        ("path", path_with_shortcuts(40, rng, shortcut_count=4)),
        ("heavy", erdos_renyi(40, 0.1, rng, weights=heavy_tail_weights())),
    ]


def brute_force_k_nearest(exact: np.ndarray, u: int, k: int):
    """The paper's N_k(u): k nodes with smallest d(u, .), ID tie-break."""
    order = np.argsort(exact[u], kind="stable")[:k]
    return order, exact[u, order]


def synthetic_approximation(
    exact: np.ndarray, a: float, rng: np.random.Generator
) -> np.ndarray:
    """A symmetric a-approximation with random per-pair stretch in [1, a]."""
    n = exact.shape[0]
    noise = rng.uniform(1.0, a, size=(n, n))
    noise = np.maximum(noise, noise.T)
    delta = exact * noise
    np.fill_diagonal(delta, 0.0)
    return delta
