"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    WeightedGraph,
    erdos_renyi,
    grid_graph,
    heavy_tail_weights,
    path_with_shortcuts,
    uniform_weights,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic randomness for a test."""
    return np.random.default_rng(12345)


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


@pytest.fixture
def small_graph(rng) -> WeightedGraph:
    """A small connected ER graph with uniform weights."""
    return erdos_renyi(32, 0.15, rng, weights=uniform_weights(1, 50))


@pytest.fixture
def medium_graph(rng) -> WeightedGraph:
    """A medium connected ER graph."""
    return erdos_renyi(64, 0.08, rng, weights=uniform_weights(1, 100))


@pytest.fixture
def long_diameter_graph(rng) -> WeightedGraph:
    """A path-with-shortcuts graph with heavy weights (big diameter)."""
    return path_with_shortcuts(48, rng, shortcut_count=6, weights=heavy_tail_weights())


def graph_family(seed: int):
    """A representative set of (name, graph) pairs for sweep tests."""
    rng = make_rng(seed)
    return [
        ("er-sparse", erdos_renyi(40, 0.08, rng)),
        ("er-dense", erdos_renyi(40, 0.3, rng)),
        ("grid", grid_graph(6, rng)),
        ("path", path_with_shortcuts(40, rng, shortcut_count=4)),
        ("heavy", erdos_renyi(40, 0.1, rng, weights=heavy_tail_weights())),
    ]


def brute_force_k_nearest(exact: np.ndarray, u: int, k: int):
    """The paper's N_k(u): k nodes with smallest d(u, .), ID tie-break."""
    n = exact.shape[0]
    order = np.argsort(exact[u], kind="stable")[:k]
    return order, exact[u, order]
