"""Moderate-scale smoke tests: the pipelines at n = 256.

Kept fast (vectorized paths dominate); they guard against accidental
quadratic-in-n Python loops sneaking into the hot paths.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import apsp_small_diameter, apsp_theorem11
from repro.graphs import check_estimate, erdos_renyi, exact_apsp

from tests.helpers import make_rng


@pytest.fixture(scope="module")
def big_graph():
    return erdos_renyi(256, 0.03, make_rng(77))


@pytest.fixture(scope="module")
def big_exact(big_graph):
    return exact_apsp(big_graph)


class TestScale256:
    def test_theorem11(self, big_graph, big_exact):
        start = time.monotonic()
        result = apsp_theorem11(big_graph, make_rng(1))
        elapsed = time.monotonic() - start
        report = check_estimate(big_exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert elapsed < 30.0, f"pipeline took {elapsed:.1f}s at n=256"

    def test_small_diameter(self, big_graph, big_exact):
        start = time.monotonic()
        result = apsp_small_diameter(big_graph, make_rng(2))
        elapsed = time.monotonic() - start
        report = check_estimate(big_exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert elapsed < 30.0

    def test_knearest_at_scale(self, big_graph):
        from repro.core import knearest_iterated
        from repro.semiring import k_smallest_in_rows, minplus_power

        matrix = big_graph.matrix()
        result = knearest_iterated(matrix, 16, 2, 3)
        truth = minplus_power(matrix, 8)
        t_idx, _ = k_smallest_in_rows(truth, 16)
        assert np.array_equal(result.indices, t_idx)

    def test_hopset_at_scale(self, big_graph, big_exact):
        from repro.core import build_knearest_hopset

        delta = big_exact * 2.0
        np.fill_diagonal(delta, 0.0)
        start = time.monotonic()
        result = build_knearest_hopset(big_graph, delta, 2.0)
        elapsed = time.monotonic() - start
        assert result.k == 16
        assert elapsed < 20.0
