"""Tests for the round ledger and the cost formulas."""

from __future__ import annotations

import time

import pytest

from repro.cclique import LoadPreconditionError, RoundLedger
from repro.cclique import costs


class TestLedgerBasics:
    def test_empty_ledger(self):
        ledger = RoundLedger(16)
        assert ledger.total_rounds == 0
        assert list(ledger) == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RoundLedger(0)
        with pytest.raises(ValueError):
            RoundLedger(4, bandwidth_words=0)

    def test_charge_accumulates(self):
        ledger = RoundLedger(16)
        ledger.charge(3, "a")
        ledger.charge(4, "b")
        assert ledger.total_rounds == 7

    def test_zero_charge_is_free_noop(self):
        ledger = RoundLedger(16)
        ledger.charge(0)
        assert len(ledger.entries) == 0

    def test_negative_charge_rejected(self):
        ledger = RoundLedger(16)
        with pytest.raises(ValueError):
            ledger.charge(-1)

    def test_phases_nest(self):
        ledger = RoundLedger(16)
        with ledger.phase("outer"):
            ledger.charge(1)
            with ledger.phase("inner"):
                ledger.charge(2)
        ledger.charge(4)
        by_phase = ledger.rounds_by_phase()
        assert by_phase["outer"] == 1
        assert by_phase["outer/inner"] == 2
        assert by_phase["<top>"] == 4


class TestLoadValidation:
    def test_lenzen_within_load(self):
        ledger = RoundLedger(16)
        ledger.charge_lenzen_routing(16, 16)
        assert ledger.total_rounds == costs.LENZEN_ROUTING_ROUNDS

    def test_lenzen_overload_raises(self):
        ledger = RoundLedger(16)
        with pytest.raises(LoadPreconditionError):
            ledger.charge_lenzen_routing(100 * 16, 1)
        with pytest.raises(LoadPreconditionError):
            ledger.charge_lenzen_routing(1, 100 * 16)

    def test_redundancy_ignores_send_load(self):
        ledger = RoundLedger(16)
        # Lemma 2.2 drops the sent-messages bound.
        ledger.charge_redundancy_routing(max_received_per_node=16)
        assert ledger.total_rounds == costs.REDUNDANCY_ROUTING_ROUNDS

    def test_redundancy_receive_overload(self):
        ledger = RoundLedger(16)
        with pytest.raises(LoadPreconditionError):
            ledger.charge_redundancy_routing(max_received_per_node=100 * 16)


class TestBroadcastCharging:
    def test_small_broadcast_constant(self):
        ledger = RoundLedger(64)
        ledger.charge_broadcast(64)
        assert ledger.total_rounds == costs.BROADCAST_LINEAR_ROUNDS

    def test_large_broadcast_batches(self):
        ledger = RoundLedger(64)
        ledger.charge_broadcast(64 * 10)
        assert ledger.total_rounds == 10 * costs.BROADCAST_LINEAR_ROUNDS

    def test_bandwidth_reduces_batches(self):
        narrow = RoundLedger(64, bandwidth_words=1)
        wide = RoundLedger(64, bandwidth_words=10)
        narrow.charge_broadcast(640)
        wide.charge_broadcast(640)
        assert wide.total_rounds < narrow.total_rounds
        assert wide.total_rounds == costs.BROADCAST_LINEAR_ROUNDS

    def test_zero_words_free(self):
        ledger = RoundLedger(64)
        ledger.charge_broadcast(0)
        assert ledger.total_rounds == 0


class TestMerging:
    def test_merge_prefixes_phases(self):
        main = RoundLedger(16)
        sub = RoundLedger(16)
        with sub.phase("inner"):
            sub.charge(5)
        main.merge(sub, prefix="sim")
        assert main.rounds_by_phase() == {"sim/inner": 5}

    def test_merge_parallel_takes_max(self):
        main = RoundLedger(16)
        subs = []
        for rounds in (3, 9, 5):
            sub = RoundLedger(16, bandwidth_words=2)
            sub.charge(rounds)
            subs.append(sub)
        main.merge_parallel(subs, prefix="scales")
        assert main.total_rounds == 9
        # bandwidth contexts add up in a parallel composition
        assert main.entries[0].bandwidth_words == 6

    def test_merge_parallel_empty(self):
        main = RoundLedger(16)
        main.merge_parallel([], prefix="none")
        assert main.total_rounds == 0

    def test_standard_rounds_scale_with_bandwidth(self):
        ledger = RoundLedger(16, bandwidth_words=4)
        ledger.charge(3)
        assert ledger.total_rounds == 3
        assert ledger.total_standard_rounds == 12


class TestPhaseTiming:
    def test_phase_context_measures_wall_clock(self):
        ledger = RoundLedger(16)
        with ledger.phase("work"):
            time.sleep(0.01)
        seconds = ledger.seconds_by_phase()
        assert seconds["work"] >= 0.01
        assert ledger.timed_seconds == pytest.approx(seconds["work"])

    def test_nested_phase_counted_in_parent_not_total(self):
        ledger = RoundLedger(16)
        with ledger.phase("outer"):
            with ledger.phase("inner"):
                time.sleep(0.005)
        seconds = ledger.seconds_by_phase()
        assert seconds["outer/inner"] >= 0.005
        assert seconds["outer"] >= seconds["outer/inner"]
        # only the outermost context accrues into the safe total
        assert ledger.timed_seconds == pytest.approx(seconds["outer"])

    def test_repeat_phase_accumulates(self):
        ledger = RoundLedger(16)
        for _ in range(2):
            with ledger.phase("loop"):
                time.sleep(0.002)
        assert ledger.seconds_by_phase()["loop"] >= 0.004

    def test_merge_prefixes_and_accumulates_times(self):
        main = RoundLedger(16)
        sub = RoundLedger(16)
        with sub.phase("inner"):
            time.sleep(0.002)
        main.merge(sub, prefix="sim")
        assert main.seconds_by_phase()["sim/inner"] >= 0.002
        assert main.timed_seconds == pytest.approx(sub.timed_seconds)

    def test_merge_inside_open_phase_credits_ancestors(self):
        """Child-ledger compute merged while a phase is open must show up
        in the enclosing phase's seconds (the Theorem 8.1 scaled-solves
        shape: sub-ledgers run outside, merge_parallel inside a phase)."""
        main = RoundLedger(16)
        subs = []
        for _ in range(2):
            sub = RoundLedger(16, bandwidth_words=2)
            with sub.phase("inner"):
                time.sleep(0.002)
            sub.charge(1)
            subs.append(sub)
        with main.phase("scaled-solves"):
            main.merge_parallel(subs, prefix="G_i")
        seconds = main.seconds_by_phase()
        child = seconds["scaled-solves/G_i"]
        total = sum(s.timed_seconds for s in subs)
        assert child == pytest.approx(total)
        assert seconds["scaled-solves"] >= child  # parent includes child
        assert main.timed_seconds == pytest.approx(seconds["scaled-solves"])

    def test_merge_parallel_sums_measured_compute(self):
        main = RoundLedger(16)
        subs = []
        for _ in range(2):
            sub = RoundLedger(16, bandwidth_words=2)
            with sub.phase("work"):
                time.sleep(0.002)
            sub.charge(1)
            subs.append(sub)
        main.merge_parallel(subs, prefix="scales")
        total = sum(s.timed_seconds for s in subs)
        assert main.seconds_by_phase()["<top>/scales"] == pytest.approx(total)
        assert main.timed_seconds == pytest.approx(total)


class TestCostFormulas:
    def test_sparse_matmul_dense_case(self):
        # Fully dense factors: (n^3)^(1/3) / n^(2/3) = n^(1/3).
        n = 64
        rounds = costs.sparse_matmul_rounds(n, n, n, n)
        assert rounds == int(-(-n ** (1 / 3) // 1)) + 1 or rounds >= 4

    def test_sparse_matmul_sparse_is_constant(self):
        n = 4096
        assert costs.sparse_matmul_rounds(n, 10, 10, 10) == 2

    def test_sparse_matmul_monotone(self):
        n = 256
        low = costs.sparse_matmul_rounds(n, 4, 4, 4)
        high = costs.sparse_matmul_rounds(n, 256, 256, 256)
        assert high >= low

    def test_sparse_matmul_validates_n(self):
        with pytest.raises(ValueError):
            costs.sparse_matmul_rounds(0, 1, 1, 1)

    def test_dense_matmul_cube_root(self):
        assert costs.dense_matmul_rounds(1000) == 10

    def test_bandwidth_factor(self):
        assert costs.bandwidth_factor(256, 4) == 4
        with pytest.raises(ValueError):
            costs.bandwidth_factor(256, 0)
