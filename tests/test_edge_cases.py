"""Edge-case and failure-injection tests across the stack.

Degenerate sizes (n = 1, 2), extreme topologies (star, complete, single
edge), disconnected inputs, and deliberately broken preconditions — the
inputs a downstream user will eventually throw at the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import LoadPreconditionError, RoundLedger
from repro.core import (
    apsp_small_diameter,
    apsp_theorem11,
    build_knearest_hopset,
    exact_apsp_baseline,
    knearest_one_round,
)
from repro.graphs import (
    GraphError,
    WeightedGraph,
    check_estimate,
    erdos_renyi,
    exact_apsp,
)

from tests.helpers import make_rng


def star_graph(n: int, weight: float = 3.0) -> WeightedGraph:
    return WeightedGraph(n, [(0, i, weight) for i in range(1, n)])


def complete_graph(n: int) -> WeightedGraph:
    edges = [(i, j, 1 + ((i + j) % 5)) for i in range(n) for j in range(i + 1, n)]
    return WeightedGraph(n, edges)


class TestDegenerateSizes:
    def test_single_node_graph(self):
        graph = WeightedGraph(1)
        assert graph.matrix().shape == (1, 1)
        assert exact_apsp(graph)[0, 0] == 0

    def test_single_node_pipeline(self, rng):
        graph = WeightedGraph(1)
        result = apsp_small_diameter(graph, rng)
        assert result.factor == 1.0

    def test_two_node_graph(self, rng):
        graph = WeightedGraph(2, [(0, 1, 7)])
        result = apsp_small_diameter(graph, rng)
        assert result.estimate[0, 1] == 7

    def test_single_edge_many_nodes(self, rng):
        graph = WeightedGraph(20, [(3, 11, 5)])
        result = apsp_small_diameter(graph, rng)
        assert result.estimate[3, 11] == 5
        assert np.isinf(result.estimate[0, 1])


class TestExtremeTopologies:
    @pytest.mark.parametrize("pipeline", [apsp_small_diameter, apsp_theorem11])
    def test_star(self, pipeline):
        rng = make_rng(0)
        graph = star_graph(40)
        exact = exact_apsp(graph)
        result = pipeline(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    @pytest.mark.parametrize("pipeline", [apsp_small_diameter, apsp_theorem11])
    def test_complete(self, pipeline):
        rng = make_rng(1)
        graph = complete_graph(32)
        exact = exact_apsp(graph)
        result = pipeline(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_uniform_weights_all_equal(self):
        rng = make_rng(2)
        graph = WeightedGraph(30, [(i, (i + 1) % 30, 5) for i in range(30)])
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9


class TestDisconnectedInputs:
    def test_disconnected_estimates_stay_infinite(self):
        rng = make_rng(3)
        half = erdos_renyi(20, 0.3, rng)
        edges = list(half.edges()) + [
            (u + 20, v + 20, w) for u, v, w in half.edges()
        ]
        graph = WeightedGraph(40, edges)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        # cross-component pairs must not get finite estimates
        assert np.all(np.isinf(result.estimate[:20, 20:]) | np.isinf(exact[:20, 20:]))

    def test_exact_baseline_disconnected(self):
        graph = WeightedGraph(4, [(0, 1, 2)])
        result = exact_apsp_baseline(graph)
        assert np.isinf(result.estimate[0, 3])


class TestFailureInjection:
    def test_hopset_rejects_bad_delta_shape(self, rng):
        graph = erdos_renyi(12, 0.4, rng)
        with pytest.raises(ValueError):
            build_knearest_hopset(graph, np.zeros((4, 4)), 1.0)

    def test_knearest_overload_raises_not_corrupts(self, rng):
        graph = erdos_renyi(30, 0.4, rng)
        with pytest.raises(LoadPreconditionError):
            knearest_one_round(graph.matrix(), k=29, h=3)

    def test_ledger_overload_is_atomic(self):
        """A rejected charge leaves the ledger unchanged."""
        ledger = RoundLedger(16)
        ledger.charge(3)
        with pytest.raises(LoadPreconditionError):
            ledger.charge_lenzen_routing(10_000, 1)
        assert ledger.total_rounds == 3

    def test_graph_rejects_nan_weights(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, float("nan"))])

    def test_graph_rejects_inf_weights(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, float("inf"))])


class TestDeterminism:
    def test_hopset_deterministic(self):
        rng = make_rng(4)
        graph = erdos_renyi(24, 0.25, rng)
        exact = exact_apsp(graph)
        first = build_knearest_hopset(graph, exact, 1.0)
        second = build_knearest_hopset(graph, exact, 1.0)
        assert set(first.hopset.edges()) == set(second.hopset.edges())

    def test_knearest_deterministic(self):
        rng = make_rng(5)
        graph = erdos_renyi(24, 0.25, rng)
        a = knearest_one_round(graph.matrix(), 4, 2)
        b = knearest_one_round(graph.matrix(), 4, 2)
        assert np.array_equal(a.indices, b.indices)

    def test_pipeline_deterministic_given_seed(self):
        graph = erdos_renyi(40, 0.15, make_rng(6))
        r1 = apsp_theorem11(graph, make_rng(7))
        r2 = apsp_theorem11(graph, make_rng(7))
        assert np.allclose(r1.estimate, r2.estimate)
        assert r1.factor == r2.factor
