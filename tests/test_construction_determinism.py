"""Determinism contract of the array-native construction layer.

Same seed => bit-identical spanner edge lists and hopsets, across repeat
runs and across ``solve_many`` executors (the construction phases draw
per-entity random arrays in a fixed order, so results cannot depend on
residual-state iteration order, thread scheduling, or executor choice).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ApspSolver, SolverConfig
from repro.core import build_knearest_hopset
from repro.graphs import erdos_renyi, exact_apsp
from repro.spanners import baswana_sengupta_spanner

from tests.helpers import make_rng

SEEDS = [0, 1, 2]


def edge_triplet(graph):
    return (
        graph.edge_u.tolist(),
        graph.edge_v.tolist(),
        graph.edge_w.tolist(),
    )


class TestSpannerDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", [2, 3])
    def test_same_seed_bit_identical(self, seed, k):
        graph = erdos_renyi(48, 0.25, make_rng(7))
        first = baswana_sengupta_spanner(graph, k, make_rng(seed))
        second = baswana_sengupta_spanner(graph, k, make_rng(seed))
        assert edge_triplet(first) == edge_triplet(second)

    def test_different_seeds_differ(self):
        """Sanity: the construction is actually randomized."""
        graph = erdos_renyi(48, 0.25, make_rng(7))
        outputs = {
            tuple(baswana_sengupta_spanner(graph, 3, make_rng(s)).edge_w.tolist())
            for s in range(8)
        }
        assert len(outputs) > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fixed_draw_count_per_iteration(self, seed):
        """The RNG advances by exactly n uniforms per Phase-1 iteration,
        independent of the graph's residual state."""
        graph = erdos_renyi(40, 0.2, make_rng(3))
        k = 3
        rng = make_rng(seed)
        baswana_sengupta_spanner(graph, k, rng)
        probe = make_rng(seed)
        probe.random((k - 1, graph.n))  # the draws the construction makes
        assert rng.random() == probe.random()


class TestHopsetDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_repeat_runs_bit_identical(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(36, 0.15, rng)
        exact = exact_apsp(graph)
        delta = exact * 1.5
        np.fill_diagonal(delta, 0.0)
        first = build_knearest_hopset(graph, delta, 1.5)
        second = build_knearest_hopset(graph, delta, 1.5)
        assert edge_triplet(first.hopset) == edge_triplet(second.hopset)
        assert first.beta_bound == second.beta_bound


class TestSolveManyDeterminism:
    """The facade contract extended to the array-native paths: the
    spanner-heavy and hopset/skeleton-heavy variants must be bit-identical
    across executors (graph i always runs on RNG stream i)."""

    @pytest.mark.parametrize("variant", ["spanner-only", "small-diameter"])
    def test_executors_agree(self, variant):
        graphs = [erdos_renyi(28, 0.2, make_rng(100 + i)) for i in range(3)]
        solver = ApspSolver(SolverConfig(variant=variant, seed=5))
        serial = solver.solve_many(graphs, executor="serial")
        threaded = solver.solve_many(graphs, executor="thread", max_workers=3)
        for a, b in zip(serial, threaded):
            assert np.array_equal(a.estimate, b.estimate)
            assert a.factor == b.factor

    def test_repeat_batches_bit_identical(self):
        graphs = [erdos_renyi(24, 0.25, make_rng(i)) for i in range(2)]
        solver = ApspSolver(SolverConfig(variant="theorem11", seed=9))
        first = solver.solve_many(graphs, executor="serial")
        second = solver.solve_many(graphs, executor="thread")
        for a, b in zip(first, second):
            assert np.array_equal(a.estimate, b.estimate)
