"""End-to-end integration tests: the public API across graph families.

Each variant of :func:`repro.approximate_apsp` must, on every workload:

* never underestimate a distance;
* stay within its advertised factor;
* produce a symmetric estimate with zero diagonal;
* charge a positive, plausibly bounded number of rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import approximate_apsp
from repro.graphs import (
    check_estimate,
    clustered_zero_weight_graph,
    erdos_renyi,
    exact_apsp,
    grid_graph,
    heavy_tail_weights,
    is_symmetric,
    path_with_shortcuts,
    preferential_attachment,
)

from tests.helpers import make_rng

VARIANTS = ["theorem11", "small-diameter", "exact"]


def workloads(seed: int):
    rng = make_rng(seed)
    return [
        ("er", erdos_renyi(48, 0.1, rng)),
        ("grid", grid_graph(7, rng)),
        ("path", path_with_shortcuts(48, rng, shortcut_count=5)),
        ("pa", preferential_attachment(48, 2, rng)),
        ("heavy", erdos_renyi(48, 0.12, rng, weights=heavy_tail_weights())),
    ]


class TestPublicAPI:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_contract_on_workloads(self, variant):
        for name, graph in workloads(21):
            rng = make_rng(99)
            exact = exact_apsp(graph)
            result = approximate_apsp(graph, rng=rng, variant=variant)
            report = check_estimate(exact, result.estimate)
            assert report.sound, f"{variant}/{name} underestimates"
            assert report.max_stretch <= result.factor + 1e-9, (
                f"{variant}/{name}: stretch {report.max_stretch} exceeds "
                f"factor {result.factor}"
            )
            assert is_symmetric(result.estimate), f"{variant}/{name}"
            assert np.all(np.diag(result.estimate) == 0)

    def test_tradeoff_variant(self):
        graph = erdos_renyi(48, 0.1, make_rng(22))
        exact = exact_apsp(graph)
        result = approximate_apsp(graph, rng=make_rng(0), variant="tradeoff", t=2)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_tradeoff_requires_t(self):
        graph = erdos_renyi(16, 0.3, make_rng(23))
        with pytest.raises(ValueError):
            approximate_apsp(graph, variant="tradeoff")

    def test_unknown_variant(self):
        graph = erdos_renyi(16, 0.3, make_rng(24))
        with pytest.raises(ValueError):
            approximate_apsp(graph, variant="bogus")

    def test_ledger_attached(self):
        graph = erdos_renyi(48, 0.1, make_rng(25))
        result = approximate_apsp(graph, rng=make_rng(0))
        ledger = result.meta["ledger"]
        assert ledger.total_rounds > 0
        assert ledger.rounds_by_phase()

    def test_zero_weights_transparent(self):
        graph = clustered_zero_weight_graph(6, 8, make_rng(26))
        exact = exact_apsp(graph)
        result = approximate_apsp(graph, rng=make_rng(1), variant="small-diameter")
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert result.meta["zero_components"] == 6

    def test_deterministic_given_rng(self):
        graph = erdos_renyi(48, 0.1, make_rng(27))
        r1 = approximate_apsp(graph, rng=make_rng(5), variant="small-diameter")
        r2 = approximate_apsp(graph, rng=make_rng(5), variant="small-diameter")
        assert np.allclose(r1.estimate, r2.estimate)


class TestRoundScaling:
    """The headline round-complexity *shape*: our algorithm's ledger rounds
    grow far slower than the exact baseline's as n grows."""

    def test_rounds_vs_exact_baseline(self):
        from repro.cclique import RoundLedger
        from repro.core import exact_apsp_baseline

        ours = []
        exact_rounds = []
        for n in (64, 128):
            graph = erdos_renyi(n, 6.0 / n, make_rng(n))
            ledger = RoundLedger(n)
            approximate_apsp(graph, rng=make_rng(0), variant="small-diameter", ledger=ledger)
            ours.append(ledger.total_rounds)
            baseline_ledger = RoundLedger(n)
            exact_apsp_baseline(graph, ledger=baseline_ledger)
            exact_rounds.append(baseline_ledger.total_rounds)
        # Exact matmul rounds grow ~n^(1/3) log n; ours stay near-flat.
        ours_growth = ours[1] / max(1, ours[0])
        exact_growth = exact_rounds[1] / max(1, exact_rounds[0])
        assert ours_growth < exact_growth + 1.0

    def test_stretch_beats_spanner_baseline(self):
        """Measured stretch of Theorem 7.1 should not exceed the spanner
        baseline's *bound*, while using sub-polynomial rounds."""
        from repro.core import spanner_only_baseline

        graph = erdos_renyi(96, 0.07, make_rng(31))
        exact = exact_apsp(graph)
        ours = approximate_apsp(graph, rng=make_rng(1), variant="small-diameter")
        base = spanner_only_baseline(graph, make_rng(1))
        ours_report = check_estimate(exact, ours.estimate)
        base_report = check_estimate(exact, base.estimate)
        assert ours_report.sound and base_report.sound
