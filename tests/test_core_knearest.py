"""Tests for the k-nearest machinery (Section 5, Lemmas 5.1–5.3)."""

from __future__ import annotations


import numpy as np
import pytest

from repro.cclique import LoadPreconditionError, RoundLedger
from repro.core import (
    build_knearest_hopset,
    knearest_exact_via_hopset,
    knearest_iterated,
    knearest_one_round,
    make_bin_plan,
)
from repro.graphs import erdos_renyi, exact_apsp
from repro.semiring import k_smallest_in_rows, minplus_power

from tests.helpers import brute_force_k_nearest, make_rng

SEEDS = [0, 1, 2]


class TestBinPlan:
    @pytest.mark.parametrize("n", [64, 256, 1024, 4096])
    @pytest.mark.parametrize("h", [2, 3, 4])
    def test_combination_count_at_most_n(self, n, h):
        """The paper's counting claim: h * C(p, h) <= n."""
        k = max(1, int(n ** (1.0 / h)))
        plan = make_bin_plan(n, k, h)
        if plan.feasible:
            assert plan.combination_count <= n

    def test_assignments_enumeration(self):
        plan = make_bin_plan(256, 16, 2)
        assert plan.feasible
        combos = plan.assignments()
        assert len(combos) == plan.combination_count
        # first bin distinguished; the rest sorted and distinct
        for combo in combos:
            assert len(set(combo)) == len(combo)

    def test_assignment_limit(self):
        plan = make_bin_plan(256, 16, 2)
        assert len(plan.assignments(limit=5)) == 5

    def test_assignment_limit_is_a_prefix(self):
        plan = make_bin_plan(256, 16, 2)
        assert plan.assignments(limit=7) == plan.assignments()[:7]

    def test_assignments_memoised_per_p_h(self):
        """Equal (p, h) plans share one enumeration (the full list is
        recomputed at most once across the pipeline's rebuilds)."""
        from repro.core.knearest import _full_assignments

        _full_assignments.cache_clear()
        plan = make_bin_plan(256, 16, 2)
        first = plan.assignments()
        again = make_bin_plan(256, 16, 2).assignments()
        assert first == again
        info = _full_assignments.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_large_plan_limit_does_not_materialise_everything(self):
        """A huge enumeration served with a small limit stays lazy: the
        full-list memo must not be populated for that (p, h)."""
        from repro.core.knearest import _full_assignments

        _full_assignments.cache_clear()
        plan = make_bin_plan(1 << 24, 64, 2)
        assert plan.combination_count > 10**6
        prefix = plan.assignments(limit=3)
        assert len(prefix) == 3
        assert _full_assignments.cache_info().currsize == 0

    def test_bins_touching_node_at_most_two(self):
        plan = make_bin_plan(256, 16, 2)
        for u in (0, 100, 255):
            assert 1 <= len(plan.bins_touching_node(u)) <= 2

    def test_bin_of_global_index(self):
        plan = make_bin_plan(256, 16, 2)
        assert plan.bin_of_global_index(0) == 0
        assert plan.bin_of_global_index(256 * 16 - 1) == plan.p - 1
        with pytest.raises(ValueError):
            plan.bin_of_global_index(256 * 16)

    def test_trivial_regime_small_p(self):
        # h so large that p < h: the problem is trivial (k in O(1)).
        plan = make_bin_plan(16, 1, 8)
        assert plan.trivial

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            make_bin_plan(0, 1, 1)


class TestLemma51:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_true_h_hop_k_nearest(self, seed):
        """Output rows equal the k smallest entries of A^h (Lemma 5.1)."""
        rng = make_rng(seed)
        graph = erdos_renyi(36, 0.15, rng)
        matrix = graph.matrix()
        k, h = 6, 2
        result = knearest_one_round(matrix, k, h)
        truth = minplus_power(matrix, h)
        t_idx, t_val = k_smallest_in_rows(truth, k)
        assert np.array_equal(result.indices, t_idx)
        assert np.allclose(
            np.where(np.isfinite(result.values), result.values, -1),
            np.where(np.isfinite(t_val), t_val, -1),
        )

    def test_load_precondition_enforced(self, rng):
        graph = erdos_renyi(36, 0.3, rng)
        with pytest.raises(LoadPreconditionError):
            knearest_one_round(graph.matrix(), k=30, h=2)

    def test_validate_can_be_disabled(self, rng):
        graph = erdos_renyi(36, 0.3, rng)
        result = knearest_one_round(graph.matrix(), k=30, h=2, validate=False)
        assert result.k == 30

    def test_constant_rounds_charged(self, rng):
        graph = erdos_renyi(36, 0.2, rng)
        ledger = RoundLedger(36)
        knearest_one_round(graph.matrix(), 6, 2, ledger=ledger)
        assert 0 < ledger.total_rounds <= 10


class TestLemma52:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_iterated_matches_h_pow_i(self, seed):
        """After i iterations, rows equal the k smallest of A^(h^i)."""
        rng = make_rng(seed)
        graph = erdos_renyi(30, 0.15, rng)
        matrix = graph.matrix()
        k, h, i = 5, 2, 3
        result = knearest_iterated(matrix, k, h, i)
        truth = minplus_power(matrix, h**i)
        t_idx, t_val = k_smallest_in_rows(truth, k)
        assert np.array_equal(result.indices, t_idx)

    def test_rounds_linear_in_iterations(self, rng):
        graph = erdos_renyi(36, 0.2, rng)
        one = RoundLedger(36)
        three = RoundLedger(36)
        knearest_iterated(graph.matrix(), 6, 2, 1, ledger=one)
        knearest_iterated(graph.matrix(), 6, 2, 3, ledger=three)
        assert three.total_rounds == 3 * one.total_rounds

    def test_invalid_iterations(self, rng):
        graph = erdos_renyi(16, 0.3, rng)
        with pytest.raises(ValueError):
            knearest_iterated(graph.matrix(), 4, 2, 0)


class TestLemma33:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_k_nearest_via_hopset(self, seed):
        """Hopset + iterated filtering gives *exact* N_k distances."""
        rng = make_rng(seed)
        n = 36
        graph = erdos_renyi(n, 0.12, rng)
        exact = exact_apsp(graph)
        a = 3.0
        delta = exact * a
        np.fill_diagonal(delta, 0.0)
        hopset = build_knearest_hopset(graph, delta, a)
        augmented = hopset.augmented(graph)
        k = 6
        result = knearest_exact_via_hopset(
            augmented.matrix(), k, 2, hopset.beta_bound
        )
        for u in range(n):
            ids, dists = brute_force_k_nearest(exact, u, k)
            assert np.allclose(np.sort(result.values[u]), np.sort(dists))
            assert set(result.indices[u].tolist()) == set(ids.tolist())

    def test_dense_and_mask_helpers(self, rng):
        graph = erdos_renyi(25, 0.2, rng)
        result = knearest_one_round(graph.matrix(), 5, 2)
        dense = result.dense(25)
        mask = result.known_mask(25)
        assert dense.shape == (25, 25)
        assert mask.sum() == np.isfinite(result.values).sum()
        assert np.all(np.isfinite(dense[mask]))
