"""Tests for the message-level skeleton x/y protocol (Lemma 6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_hitting_set, skeleton_xy_matrices
from repro.graphs import erdos_renyi, exact_apsp, grid_graph
from repro.protocols import run_skeleton_xy_protocol
from repro.semiring import k_smallest_in_rows

from tests.helpers import make_rng


def centers_from_tables(idx, val, n, k, rng):
    """Replicate build_skeleton's center selection for a standalone test."""
    members = build_hitting_set(idx, n, k, rng)
    size = len(members)
    compact = np.full(n, -1, dtype=np.int64)
    compact[members] = np.arange(size)
    in_s = np.zeros(n, dtype=bool)
    in_s[members] = True
    mask = np.where(idx >= 0, in_s[idx], False)
    first = mask.argmax(axis=1)
    center = compact[idx[np.arange(n), first]]
    center_delta = val[np.arange(n), first]
    return center, center_delta, size


def masked(matrix):
    return np.where(np.isfinite(matrix), matrix, -1.0)


class TestSkeletonXYProtocol:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_global_computation(self, seed):
        rng = make_rng(seed)
        n, k = 28, 5
        graph = erdos_renyi(n, 0.2, rng)
        exact = exact_apsp(graph)
        idx, val = k_smallest_in_rows(exact, k)
        center, center_delta, size = centers_from_tables(idx, val, n, k, rng)
        x_ref, y_ref = skeleton_xy_matrices(
            graph, idx, val, center, center_delta, size
        )
        protocol = run_skeleton_xy_protocol(
            graph, idx, val, center, center_delta, size
        )
        assert np.allclose(masked(protocol.x), masked(x_ref))
        assert np.allclose(masked(protocol.y), masked(y_ref))

    def test_grid_workload(self):
        rng = make_rng(3)
        graph = grid_graph(5, rng)
        n, k = graph.n, 4
        exact = exact_apsp(graph)
        idx, val = k_smallest_in_rows(exact, k)
        center, center_delta, size = centers_from_tables(idx, val, n, k, rng)
        x_ref, y_ref = skeleton_xy_matrices(
            graph, idx, val, center, center_delta, size
        )
        protocol = run_skeleton_xy_protocol(
            graph, idx, val, center, center_delta, size
        )
        assert np.allclose(masked(protocol.x), masked(x_ref))
        assert np.allclose(masked(protocol.y), masked(y_ref))

    def test_rounds_constant_ish(self):
        rng = make_rng(4)
        graph = erdos_renyi(32, 0.15, rng)
        n, k = graph.n, 5
        exact = exact_apsp(graph)
        idx, val = k_smallest_in_rows(exact, k)
        center, center_delta, size = centers_from_tables(idx, val, n, k, rng)
        protocol = run_skeleton_xy_protocol(
            graph, idx, val, center, center_delta, size
        )
        total = (
            protocol.x_stats.rounds
            + protocol.y_stats.rounds
            + protocol.report_stats.rounds
        )
        assert total <= 36

    def test_receive_loads_linear(self):
        rng = make_rng(5)
        graph = erdos_renyi(40, 0.2, rng)
        n, k = graph.n, 6
        exact = exact_apsp(graph)
        idx, val = k_smallest_in_rows(exact, k)
        center, center_delta, size = centers_from_tables(idx, val, n, k, rng)
        protocol = run_skeleton_xy_protocol(
            graph, idx, val, center, center_delta, size
        )
        for stats in (protocol.x_stats, protocol.y_stats, protocol.report_stats):
            assert stats.max_received_per_node <= 32 * n
