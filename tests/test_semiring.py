"""Tests for the min-plus algebra and the filtered-power machinery (Sec 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi, exact_apsp
from repro.semiring import (
    INF,
    RowSparse,
    density,
    embed,
    filter_rows,
    filtered_hop_power,
    hop_power_row_sparse,
    k_smallest_in_rows,
    minplus,
    minplus_power,
    row_sparse_from_dense,
    rows_agree_on_k_smallest,
    sparse_minplus,
)
from repro.cclique import RoundLedger


def random_adjacency(rng, n=12, p=0.4):
    m = np.full((n, n), INF)
    np.fill_diagonal(m, 0.0)
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                m[i, j] = float(rng.integers(1, 20))
    return m


class TestMinplus:
    def test_identity(self):
        n = 6
        ident = np.full((n, n), INF)
        np.fill_diagonal(ident, 0.0)
        a = np.arange(n * n, dtype=float).reshape(n, n)
        assert np.allclose(minplus(ident, a), a)
        assert np.allclose(minplus(a, ident), a)

    def test_associativity(self, rng):
        a = random_adjacency(rng)
        b = random_adjacency(rng)
        c = random_adjacency(rng)
        left = minplus(minplus(a, b), c)
        right = minplus(a, minplus(b, c))
        assert np.allclose(left, right)

    def test_power_matches_repeated_product(self, rng):
        a = random_adjacency(rng, n=8)
        p4 = minplus_power(a, 4)
        manual = minplus(minplus(minplus(a, a), a), a)
        assert np.allclose(p4, manual)

    def test_power_requires_zero_diagonal(self):
        a = np.ones((3, 3))
        with pytest.raises(ValueError):
            minplus_power(a, 2)

    def test_power_is_hop_limited_distance(self, rng):
        g = erdos_renyi(16, 0.3, rng)
        full = minplus_power(g.matrix(), 16)
        assert np.allclose(full, exact_apsp(g))

    def test_inner_dimension_check(self):
        with pytest.raises(ValueError):
            minplus(np.zeros((2, 3)), np.zeros((2, 3)))


class TestKSmallest:
    def test_values_and_ids(self):
        m = np.array([[0.0, 5.0, 2.0, 2.0], [1.0, 0.0, INF, 3.0]])
        idx, val = k_smallest_in_rows(m, 3)
        # Row 0: 0 (id 0), 2 (id 2 beats id 3 on tie), 2 (id 3).
        assert idx[0].tolist() == [0, 2, 3]
        assert val[0].tolist() == [0.0, 2.0, 2.0]

    def test_id_tie_break_exhaustive(self):
        m = np.array([[7.0, 7.0, 7.0, 7.0]])
        idx, _ = k_smallest_in_rows(m, 2)
        assert idx[0].tolist() == [0, 1]

    def test_inf_padding(self):
        m = np.array([[0.0, INF, INF]])
        idx, val = k_smallest_in_rows(m, 3)
        assert idx[0].tolist() == [0, -1, -1]
        assert val[0, 0] == 0.0
        assert np.all(np.isinf(val[0, 1:]))

    def test_k_larger_than_n(self):
        m = np.array([[0.0, 1.0]])
        idx, val = k_smallest_in_rows(m, 5)
        assert idx.shape == (1, 5)
        assert idx[0].tolist() == [0, 1, -1, -1, -1]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_smallest_in_rows(np.zeros((2, 2)), 0)

    def test_filter_rows_keeps_k_entries(self, rng):
        m = random_adjacency(rng, n=10)
        f = filter_rows(m, 3)
        assert np.all(np.isfinite(f).sum(axis=1) <= 3)
        # kept entries agree with the original
        mask = np.isfinite(f)
        assert np.allclose(f[mask], m[mask])


class TestRowSparse:
    def test_roundtrip(self, rng):
        m = random_adjacency(rng, n=10)
        sparse = row_sparse_from_dense(m, 4)
        dense = sparse.to_dense()
        assert np.allclose(dense, filter_rows(m, 4))

    def test_density(self, rng):
        m = random_adjacency(rng, n=10, p=1.0)
        sparse = row_sparse_from_dense(m, 4)
        assert sparse.density() == 4.0

    def test_hop_power_matches_dense_power(self, rng):
        """Ā^h via row-sparse Bellman-Ford == dense min-plus power of Ā."""
        m = random_adjacency(rng, n=10)
        k, h = 4, 3
        filtered = filter_rows(m, k)
        np.fill_diagonal(filtered, 0.0)
        dense_power = minplus_power(filtered, h)
        sparse_power = hop_power_row_sparse(row_sparse_from_dense(m, k), h)
        assert np.allclose(dense_power, sparse_power)

    def test_hop_power_requires_square(self):
        sparse = RowSparse(
            indices=np.array([[0]]), values=np.array([[1.0]]), n_cols=3
        )
        with pytest.raises(ValueError):
            hop_power_row_sparse(sparse, 2)


class TestLemma55:
    """Filtered powers agree with true powers on the k smallest entries."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_filtered_equals_unfiltered_on_k_smallest(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(20, 0.3, rng)
        m = g.matrix()
        k, h = 4, 3
        true_power = minplus_power(m, h)
        filtered_power = filtered_hop_power(m, h, k)
        assert rows_agree_on_k_smallest(true_power, filtered_power, k)

    def test_directed_case(self):
        rng = np.random.default_rng(9)
        m = random_adjacency(rng, n=15, p=0.3)
        k, h = 3, 2
        true_power = minplus_power(m, h)
        filtered_power = filtered_hop_power(m, h, k)
        assert rows_agree_on_k_smallest(true_power, filtered_power, k)


class TestSparsePricing:
    def test_density_measured(self):
        m = np.full((4, 4), INF)
        m[0, 0] = 1.0
        m[1, 2] = 2.0
        assert density(m) == 0.5

    def test_sparse_minplus_charges_ledger(self, rng):
        a = random_adjacency(rng, n=8)
        ledger = RoundLedger(8)
        result = sparse_minplus(a, a, ledger=ledger)
        assert result.rounds_charged >= 1
        assert ledger.total_rounds == result.rounds_charged
        assert np.allclose(result.product, minplus(a, a))

    def test_clique_n_normalization(self, rng):
        a = random_adjacency(rng, n=8)
        wide = sparse_minplus(a, a, clique_n=64)
        narrow = sparse_minplus(a, a, clique_n=8)
        assert wide.rho_s < narrow.rho_s

    def test_embed(self):
        small = np.array([[1.0, 2.0], [3.0, 4.0]])
        big = embed(small, 4)
        assert big.shape == (4, 4)
        assert np.allclose(big[:2, :2], small)
        assert np.all(np.isinf(big[2:, :]))

    def test_embed_too_large(self):
        with pytest.raises(ValueError):
            embed(np.zeros((5, 5)), 4)
