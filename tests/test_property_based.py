"""Property-based tests (hypothesis) for the core invariants.

Strategy: generate small random weighted graphs and check the paper's
contracts hold for *every* instance, not just the seeded ensembles:

* estimates never underestimate and respect their advertised factor;
* the k-nearest machinery agrees with brute force;
* filtered matrix powers preserve the k smallest row entries (Lemma 5.5);
* hopsets preserve distances and certify their hop bound;
* min-plus algebra laws; tie-breaking determinism.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    build_knearest_hopset,
    knearest_one_round,
    lift_zero_weights,
    reduce_approximation,
)
from repro.core.results import Estimate
from repro.graphs import WeightedGraph, check_estimate, exact_apsp
from repro.semiring import (
    filter_rows,
    k_smallest_in_rows,
    minplus,
    minplus_power,
    rows_agree_on_k_smallest,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=16, max_weight=20):
    """Small connected weighted graphs (random tree + extra edges)."""
    n = draw(st.integers(min_nodes, max_nodes))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        weight = draw(st.integers(1, max_weight))
        edges.append((v, parent, weight))
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.integers(1, max_weight))))
    return WeightedGraph(n, edges)


@st.composite
def adjacency_matrices(draw, min_n=3, max_n=10):
    """Min-plus adjacency matrices with zero diagonal."""
    n = draw(st.integers(min_n, max_n))
    matrix = np.full((n, n), np.inf)
    np.fill_diagonal(matrix, 0.0)
    count = draw(st.integers(0, n * (n - 1)))
    for _ in range(count):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j:
            matrix[i, j] = float(draw(st.integers(1, 15)))
    return matrix


class TestMinplusLaws:
    @SETTINGS
    @given(adjacency_matrices())
    def test_power_monotone_in_exponent(self, matrix):
        p2 = minplus_power(matrix, 2)
        p3 = minplus_power(matrix, 3)
        assert np.all(p3 <= p2 + 1e-9)

    @SETTINGS
    @given(adjacency_matrices())
    def test_product_dominates_longer_paths(self, matrix):
        """A^2 <= A pointwise (zero diagonal makes powers decreasing)."""
        squared = minplus(matrix, matrix)
        assert np.all(squared <= matrix + 1e-9)

    @SETTINGS
    @given(adjacency_matrices(), st.integers(1, 4))
    def test_filter_is_idempotent(self, matrix, k):
        once = filter_rows(matrix, k)
        twice = filter_rows(once, k)
        assert np.array_equal(
            np.where(np.isfinite(once), once, -1),
            np.where(np.isfinite(twice), twice, -1),
        )

    @SETTINGS
    @given(adjacency_matrices(), st.integers(1, 5))
    def test_k_smallest_sorted_and_tiebroken(self, matrix, k):
        idx, val = k_smallest_in_rows(matrix, k)
        finite = np.isfinite(val)
        # values ascending within each row
        for row_vals, row_fin in zip(val, finite):
            kept = row_vals[row_fin]
            assert np.all(np.diff(kept) >= -1e-9)
        # equal values appear in increasing ID order
        for r in range(matrix.shape[0]):
            for a in range(k - 1):
                if finite[r, a] and finite[r, a + 1]:
                    if val[r, a] == val[r, a + 1]:
                        assert idx[r, a] < idx[r, a + 1]


class TestLemma55Property:
    @SETTINGS
    @given(adjacency_matrices(), st.integers(1, 4), st.integers(1, 3))
    def test_filtered_power_agrees(self, matrix, k, h):
        from repro.semiring import filtered_hop_power

        truth = minplus_power(matrix, h)
        filtered = filtered_hop_power(matrix, h, k)
        assert rows_agree_on_k_smallest(truth, filtered, k)


class TestKNearestProperty:
    @SETTINGS
    @given(connected_graphs(), st.integers(1, 4))
    def test_one_round_matches_brute_force(self, graph, k):
        h = 2
        result = knearest_one_round(graph.matrix(), k, h, validate=False)
        truth = minplus_power(graph.matrix(), h)
        t_idx, t_val = k_smallest_in_rows(truth, k)
        assert np.array_equal(result.indices, t_idx)


class TestHopsetProperty:
    @SETTINGS
    @given(connected_graphs(min_nodes=5, max_nodes=14), st.integers(1, 3))
    def test_distances_preserved_and_hop_bound(self, graph, a_int):
        a = float(a_int)
        exact = exact_apsp(graph)
        delta = exact * a
        np.fill_diagonal(delta, 0.0)
        hopset = build_knearest_hopset(graph, delta, a)
        augmented = hopset.augmented(graph)
        aug_exact = exact_apsp(augmented)
        assert np.allclose(aug_exact, exact)
        # beta-hop exactness on the k nearest
        beta_hop = minplus_power(augmented.matrix(), hopset.beta_bound)
        for u in range(graph.n):
            order = np.argsort(exact[u], kind="stable")[: hopset.k]
            assert np.allclose(beta_hop[u, order], exact[u, order])


class TestReductionProperty:
    @SETTINGS
    @given(connected_graphs(min_nodes=8, max_nodes=14), st.integers(2, 8))
    def test_estimate_contract(self, graph, a_int):
        rng = np.random.default_rng(0)
        a = float(a_int)
        exact = exact_apsp(graph)
        delta = exact * a
        np.fill_diagonal(delta, 0.0)
        result = reduce_approximation(graph, delta, a, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert result.factor <= 15.0 * math.sqrt(a) + 1e-9


class TestZeroWeightProperty:
    @st.composite
    @staticmethod
    def graphs_with_zeros(draw):
        n = draw(st.integers(4, 12))
        edges = []
        for v in range(1, n):
            parent = draw(st.integers(0, v - 1))
            weight = draw(st.integers(0, 10))
            edges.append((v, parent, weight))
        return WeightedGraph(n, edges, require_positive=False)

    @SETTINGS
    @given(graphs_with_zeros())
    def test_lift_exactness(self, graph):
        def solver(g):
            return Estimate(estimate=exact_apsp(g), factor=1.0)

        result = lift_zero_weights(graph, solver)
        assert np.allclose(result.estimate, exact_apsp(graph))
