"""Extended property-based tests: skeletons, scaling, spanners, routing.

Complements ``test_property_based.py`` with the higher-level invariants:

* skeleton transfer never exceeds ``7 l a^2`` and never underestimates;
* weight scaling's eta keeps both lemma conclusions on random graphs;
* spanners are subgraphs within stretch ``2k-1``;
* greedy routing from exact estimates reproduces exact distances;
* message-level protocols agree with global implementations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    assemble_eta,
    build_scaled_graph,
    build_skeleton,
    clip_estimate,
    extend_estimate,
    plan_scaling,
    verify_scaling_guarantees,
)
from repro.core.routing_tables import greedy_route, next_hop_table
from repro.graphs import WeightedGraph, check_estimate, exact_apsp
from repro.semiring import k_smallest_in_rows, minplus_power
from repro.spanners import baswana_sengupta_spanner

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, min_nodes=6, max_nodes=18, max_weight=30):
    n = draw(st.integers(min_nodes, max_nodes))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.append((v, parent, draw(st.integers(1, max_weight))))
    extra = draw(st.integers(0, 2 * n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v, draw(st.integers(1, max_weight))))
    return WeightedGraph(n, edges)


class TestSkeletonProperty:
    @SETTINGS
    @given(connected_graphs(), st.integers(2, 5), st.integers(0, 10_000))
    def test_transfer_contract(self, graph, k, seed):
        rng = np.random.default_rng(seed)
        exact = exact_apsp(graph)
        k = min(k, graph.n)
        idx, val = k_smallest_in_rows(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        inner = exact_apsp(skeleton.graph)
        eta, factor = extend_estimate(skeleton, inner, 1.0)
        report = check_estimate(exact, eta)
        assert report.sound
        assert report.max_stretch <= factor + 1e-9

    @SETTINGS
    @given(connected_graphs(), st.integers(0, 10_000))
    def test_skeleton_nodes_subset(self, graph, seed):
        rng = np.random.default_rng(seed)
        exact = exact_apsp(graph)
        k = min(3, graph.n)
        idx, val = k_smallest_in_rows(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        assert np.all(skeleton.nodes < graph.n)
        assert np.all(np.diff(skeleton.nodes) > 0)  # sorted, unique
        # every node's center is a real skeleton member
        assert np.all(skeleton.center >= 0)
        assert np.all(skeleton.center < skeleton.num_nodes)


class TestScalingProperty:
    @SETTINGS
    @given(connected_graphs(max_weight=500), st.integers(2, 6))
    def test_eta_contract(self, graph, h):
        exact = exact_apsp(graph)
        eps = 0.5
        plan = plan_scaling(exact, h=h, eps=eps)
        estimates = {}
        for i in plan.needed:
            scaled = build_scaled_graph(graph, i, plan)
            estimates[i] = clip_estimate(exact_apsp(scaled), plan)
        eta = assemble_eta(estimates, plan)
        hop_ok = np.isclose(minplus_power(graph.matrix(), h), exact)
        assert verify_scaling_guarantees(exact, eta, hop_ok, 1.0, eps)

    @SETTINGS
    @given(connected_graphs(max_weight=500), st.integers(2, 5))
    def test_scaled_weights_are_capped_integers(self, graph, h):
        exact = exact_apsp(graph)
        plan = plan_scaling(exact, h=h, eps=0.5)
        for i in plan.needed[:3]:
            scaled = build_scaled_graph(graph, i, plan)
            assert np.all(scaled.edge_w <= plan.cap)
            assert np.all(scaled.edge_w == np.floor(scaled.edge_w))
            assert np.all(scaled.edge_w >= 1)


class TestSpannerProperty:
    @SETTINGS
    @given(connected_graphs(), st.integers(2, 4), st.integers(0, 10_000))
    def test_subgraph_and_stretch(self, graph, k, seed):
        rng = np.random.default_rng(seed)
        spanner = baswana_sengupta_spanner(graph, k, rng)
        original = {(u, v): w for u, v, w in graph.edges()}
        for u, v, w in spanner.edges():
            assert original.get((u, v)) == w
        base = exact_apsp(graph)
        sp = exact_apsp(spanner)
        mask = np.isfinite(base) & (base > 0)
        assert np.all(sp[mask] <= (2 * k - 1) * base[mask] + 1e-9)


class TestRoutingProperty:
    @SETTINGS
    @given(connected_graphs(max_nodes=14))
    def test_exact_tables_route_exactly(self, graph):
        exact = exact_apsp(graph)
        table = next_hop_table(graph, exact)
        n = graph.n
        for s in range(0, n, 3):
            for t in range(0, n, 4):
                if s == t or not np.isfinite(exact[s, t]):
                    continue
                route = greedy_route(graph, exact, s, t, table=table)
                assert route.delivered
                assert abs(route.length - exact[s, t]) < 1e-9

    @SETTINGS
    @given(connected_graphs(max_nodes=12), st.floats(1.0, 3.0))
    def test_approximate_tables_never_underreport(self, graph, a):
        """Whatever greedy routing does, a *delivered* route's length is a
        real path length, hence >= the exact distance."""
        exact = exact_apsp(graph)
        estimate = exact * a
        np.fill_diagonal(estimate, 0.0)
        n = graph.n
        for s in range(0, n, 4):
            for t in range(0, n, 5):
                if s == t:
                    continue
                route = greedy_route(graph, estimate, s, t)
                if route.delivered:
                    assert route.length >= exact[s, t] - 1e-9
