"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, build_workload, main

import numpy as np


class TestWorkloadBuilder:
    @pytest.mark.parametrize(
        "family", ["er", "er-dense", "grid", "path", "pa", "heavy", "poly"]
    )
    def test_families_construct(self, family):
        rng = np.random.default_rng(0)
        graph = build_workload(family, 36, rng)
        assert graph.n >= 30

    def test_unknown_family(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            build_workload("bogus", 16, rng)


class TestCommands:
    def test_run_theorem11(self, capsys):
        code = main(["run", "--n", "40", "--seed", "1", "--variant", "theorem11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "factor" in out
        assert "rounds" in out
        assert "OK" in out  # stretch within bound

    def test_run_small_diameter(self, capsys):
        code = main(["run", "--n", "40", "--variant", "small-diameter"])
        assert code == 0
        assert "factor" in capsys.readouterr().out

    def test_run_exact(self, capsys):
        code = main(["run", "--n", "32", "--variant", "exact"])
        assert code == 0
        out = capsys.readouterr().out
        assert "factor  : 1.00" in out

    def test_run_tradeoff(self, capsys):
        code = main(["run", "--n", "40", "--variant", "tradeoff", "--t", "1"])
        assert code == 0
        assert "rounds" in capsys.readouterr().out

    def test_frontier(self, capsys):
        code = main(["frontier", "--n", "40"])
        assert code == 0
        out = capsys.readouterr().out
        # Every registered variant appears, seed names included.
        from repro.core import iter_variants

        for spec in iter_variants():
            assert spec.display_name in out
        for name in ("exact matmul", "UY90", "spanner-only", "thm 7.1", "thm 1.1"):
            assert name in out

    def test_run_registry_variants(self, capsys):
        """The run command accepts variants that only exist via the registry."""
        code = main(["run", "--n", "36", "--seed", "2", "--variant", "uy90"])
        assert code == 0
        assert "factor" in capsys.readouterr().out

    def test_tradeoff_sweep(self, capsys):
        code = main(["tradeoff", "--n", "40", "--max-t", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1.2" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "--n", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing" in out
        assert "Bellman-Ford" in out
        assert "max error 0" in out

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_kernels_command(self, capsys):
        code = main(["kernels", "--n", "40"])
        assert code == 0
        out = capsys.readouterr().out
        from repro.semiring import iter_kernels

        for spec in iter_kernels():
            assert spec.name in out
        assert "auto-selection" in out
        assert "REPRO_MINPLUS_KERNEL" in out

    def test_kernels_command_reports_true_auto_under_pin(self, capsys):
        """--kernel pins execution but must not masquerade as the auto pick."""
        code = main(["kernels", "--n", "40", "--kernel", "broadcast"])
        assert code == 0
        out = capsys.readouterr().out
        from repro.semiring import auto_kernel
        import numpy as np

        expected = auto_kernel(np.ones((40, 40)), np.ones((40, 40)))
        assert f"auto-selection for er (n=40): {expected}" in out
        assert "pinned for this invocation" in out

    @pytest.mark.parametrize("kernel", ["broadcast", "tiled", "auto"])
    def test_run_with_explicit_kernel(self, kernel, capsys):
        code = main(["run", "--n", "32", "--variant", "exact",
                     "--kernel", kernel])
        assert code == 0
        assert "factor  : 1.00" in capsys.readouterr().out

    def test_unknown_kernel_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "--n", "32", "--kernel", "bogus"])

    def test_grid_family_via_cli(self, capsys):
        code = main(["run", "--n", "36", "--family", "grid", "--variant",
                     "small-diameter"])
        assert code == 0

    def test_query_command(self, capsys):
        code = main(["query", "--n", "36", "--seed", "3", "--variant",
                     "small-diameter", "--queries", "5", "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "random distance queries" in out
        assert "oracle" in out
        assert "nearest of node" in out

    def test_query_command_reuses_store(self, capsys):
        from repro.serve import DEFAULT_STORE

        DEFAULT_STORE.clear()
        args = ["query", "--n", "30", "--seed", "4", "--variant",
                "spanner-only", "--queries", "3"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "store   : miss (workload solved, oracle built)" in out
        misses = DEFAULT_STORE.misses
        assert main(args) == 0  # second run hits the process-wide store
        out = capsys.readouterr().out
        assert "store   : hit (cached oracle reused; solve skipped)" in out
        assert DEFAULT_STORE.misses == misses
        assert DEFAULT_STORE.hits >= 1
        assert DEFAULT_STORE.builds == 1

    def test_query_store_hit_truly_skips_solver(self, capsys, monkeypatch):
        """On a store hit the solver never runs — not just the build."""
        from repro import cli
        from repro.serve import DEFAULT_STORE

        DEFAULT_STORE.clear()
        args = ["query", "--n", "28", "--seed", "6", "--variant",
                "spanner-only", "--queries", "2"]
        assert main(args) == 0
        capsys.readouterr()

        class ExplodingSolver:
            def __init__(self, *a, **k):
                raise AssertionError("solver should not be constructed on a hit")

        monkeypatch.setattr(cli, "ApspSolver", ExplodingSolver)
        assert main(args) == 0
        assert "solve skipped" in capsys.readouterr().out

    def test_routes_command_prints_provenance(self, capsys):
        from repro.serve import DEFAULT_STORE

        DEFAULT_STORE.clear()
        code = main(["routes", "--n", "30", "--seed", "8", "--variant",
                     "spanner-only", "--pairs", "40"])
        assert code == 0
        assert "store   : miss" in capsys.readouterr().out

    def test_query_and_routes_share_one_oracle(self, capsys):
        """The two commands address the store identically (same handle)."""
        from repro.serve import DEFAULT_STORE

        DEFAULT_STORE.clear()
        common = ["--n", "30", "--seed", "9", "--variant", "spanner-only"]
        assert main(["query", *common, "--queries", "2"]) == 0
        assert main(["routes", *common, "--pairs", "20"]) == 0
        out = capsys.readouterr().out
        assert "store   : hit" in out
        assert DEFAULT_STORE.builds == 1

    def test_routes_command(self, capsys):
        code = main(["routes", "--n", "36", "--seed", "3", "--variant",
                     "small-diameter", "--pairs", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "routing" in out
        assert "delivered" in out
        assert "example packet" in out

    def test_query_accepts_tradeoff_variant(self, capsys):
        """Regression: variants requiring t must work via --t, not crash."""
        code = main(["query", "--n", "30", "--variant", "tradeoff",
                     "--t", "1", "--queries", "2"])
        assert code == 0
        assert "oracle" in capsys.readouterr().out

    def test_query_zero_queries(self, capsys):
        """Regression: an empty query batch must not crash the k-sample."""
        code = main(["query", "--n", "24", "--queries", "0"])
        assert code == 0
        assert "nearest of node" in capsys.readouterr().out

    def test_serve_bench_closed_loop(self, capsys):
        code = main(["serve-bench", "--n", "32", "--variant", "spanner-only",
                     "--levels", "2,4", "--requests", "40",
                     "--max-batch", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench: distance endpoint" in out
        assert "single" in out and "batched" in out
        assert "snapshot JSON round-trip OK" in out
        assert "builds" in out

    def test_serve_bench_open_loop_route(self, capsys):
        code = main(["serve-bench", "--n", "32", "--variant", "spanner-only",
                     "--mode", "open", "--endpoint", "route",
                     "--levels", "500", "--requests", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop" in out
        assert "req/s" in out

    def test_serve_bench_k_nearest(self, capsys):
        code = main(["serve-bench", "--n", "32", "--variant", "spanner-only",
                     "--endpoint", "k_nearest", "--levels", "4",
                     "--requests", "20", "--k", "3"])
        assert code == 0
        assert "k_nearest endpoint" in capsys.readouterr().out

    def test_serve_bench_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            main(["serve-bench", "--n", "24", "--levels", ",",
                  "--variant", "spanner-only"])


class TestChaosCommand:
    def test_list_prints_registry(self, capsys):
        code = main(["chaos", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "route-drop" in out
        assert "bellman-ford-drop" in out

    def test_single_scenario_with_overrides(self, capsys):
        code = main(
            [
                "chaos",
                "--scenario",
                "route-drop",
                "--n",
                "16",
                "--seed",
                "1",
                "--set",
                "drop=0.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route-drop" in out

    def test_json_artifact_round_trips(self, tmp_path, capsys):
        import json

        target = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--scenario",
                "route-crash",
                "--n",
                "16",
                "--json",
                str(target),
            ]
        )
        assert code == 0
        data = json.loads(target.read_text())
        assert data["scenario"] == "route-crash"
        assert data["n"] == 16
        assert "score" in data and "plan" in data

    def test_run_all_scenarios(self, capsys):
        code = main(["chaos", "--n", "12"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("route-drop", "route-crash", "route-corrupt"):
            assert name in out
