"""Tests for the integrity layer: checksums, screening, erasure recovery.

The property pair that defines the layer:

* **completeness** — every row flipped by ``PayloadCorrupt`` is flagged
  (detection rate 1.0), across seeds;
* **soundness** — no clean row is ever flagged (false-positive rate
  0.0), across seeds, including rows that crossed a NaN-padded
  cross-chunk concatenation.

Plus the erasure acceptance criterion: a zero-fault erasure-coded run
delivers payloads bit-identical to the clean two-phase route, and a
faulted erasure run reconstructs to full delivery with uncorrupted
payloads.
"""

import numpy as np
import pytest

from repro.cclique.engine import ArrayClique, MessageBatch
from repro.cclique.faults import FaultPlan, LinkDrop, PayloadCorrupt
from repro.cclique.integrity import (
    NO_CHECK,
    IntegrityPolicy,
    IntegrityState,
    as_integrity,
    payload_checksums,
    verify_checksums,
)
from repro.cclique.routing import route_batch_two_phase


def _random_payload(rng, m, width):
    payload = rng.normal(size=(m, width)) * 10.0 ** rng.integers(
        -3, 6, size=(m, width)
    )
    return np.ascontiguousarray(payload, dtype=np.float64)


def _workload(n, seed, load=2):
    rng = np.random.default_rng((seed, n, load))
    src = np.tile(np.arange(n, dtype=np.int64), load)
    dst = np.concatenate([rng.permutation(n) for _ in range(load)])
    payload = np.arange(load * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


class TestChecksums:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_clean_rows_always_verify(self, seed):
        rng = np.random.default_rng(seed)
        payload = _random_payload(rng, 256, 5)
        checks = payload_checksums(payload, seed=seed)
        assert verify_checksums(payload, checks, seed=seed).all()

    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_single_bit_flips_always_detected(self, seed):
        rng = np.random.default_rng(seed)
        payload = _random_payload(rng, 256, 5)
        checks = payload_checksums(payload, seed=seed)
        bits = payload.view(np.uint64).copy()
        rows = np.arange(256)
        cols = rng.integers(0, 5, size=256)
        bit = rng.integers(0, 64, size=256).astype(np.uint64)
        bits[rows, cols] ^= np.uint64(1) << bit
        flipped = bits.view(np.float64)
        assert not verify_checksums(flipped, checks, seed=seed).any()

    def test_column_swap_detected(self):
        payload = np.array([[1.0, 2.0], [3.0, 4.0]])
        checks = payload_checksums(payload)
        swapped = payload[:, ::-1].copy()
        assert not verify_checksums(swapped, checks).any()

    def test_corruption_into_nan_detected(self):
        # A flip that turns a word into NaN removes it from the XOR —
        # the checksum must still mismatch.
        payload = np.array([[1.5, 2.5, 3.5]])
        checks = payload_checksums(payload)
        poisoned = payload.copy()
        poisoned[0, 1] = np.nan
        assert not verify_checksums(poisoned, checks).any()

    def test_nan_padding_is_checksum_neutral(self):
        # The engine pads narrow chunks with NaN columns when chunks of
        # different widths concatenate; a padded row must verify under
        # its original checksum.
        payload = np.array([[1.5, 2.5], [3.5, 4.5]])
        checks = payload_checksums(payload)
        padded = np.column_stack([payload, np.full((2, 2), np.nan)])
        assert verify_checksums(padded, checks).all()

    def test_checksums_are_exact_float64_integers(self):
        rng = np.random.default_rng(0)
        checks = payload_checksums(_random_payload(rng, 128, 3))
        as_float = checks.astype(np.float64)
        assert (as_float.astype(np.int64) == checks).all()
        assert (checks >= 0).all()
        assert (checks < 2**52).all()

    def test_zero_width_payload(self):
        checks = payload_checksums(np.empty((4, 0)))
        assert (checks == 0).all()

    def test_no_check_rows_are_trusted(self):
        payload = np.array([[1.0], [2.0]])
        checks = np.array([NO_CHECK, NO_CHECK], dtype=np.int64)
        assert verify_checksums(payload, checks).all()


class TestEngineScreening:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_detection_is_complete_and_sound(self, seed):
        # Every corrupted row quarantined, every clean row delivered:
        # detected == corrupted exactly, across seeds.
        n = 24
        clique = ArrayClique(n, bandwidth_words=4, strict=False)
        plan = FaultPlan(
            (PayloadCorrupt(probability=0.3, protect_prefix=0),), seed=seed
        )
        trace = clique.attach_faults(plan)
        state = clique.attach_integrity(IntegrityPolicy())
        batch = _workload(n, seed)
        clique.stage(batch.src, batch.dst, batch.payload, tag="t")
        clique.drain()
        totals = trace.totals
        assert totals["corrupted"] > 0
        assert totals["detected"] == totals["corrupted"]
        assert state.detected == totals["corrupted"]
        _, view = clique.collect()
        assert len(view) == len(batch) - totals["corrupted"]
        # Delivered payloads are exactly a sub-multiset of what was sent.
        assert set(view.payload[:, 0].tolist()) <= set(
            batch.payload[:, 0].tolist()
        )

    def test_no_false_positives_without_faults(self):
        n = 16
        clique = ArrayClique(n, bandwidth_words=4, strict=False)
        state = clique.attach_integrity(IntegrityPolicy())
        batch = _workload(n, seed=5)
        clique.stage(batch.src, batch.dst, batch.payload, tag="t")
        clique.drain()
        assert state.detected == 0
        assert state.verified == len(batch)
        _, view = clique.collect()
        assert len(view) == len(batch)

    def test_rerequest_mask_names_quarantined_links(self):
        n = 12
        clique = ArrayClique(n, bandwidth_words=4, strict=False)
        plan = FaultPlan(
            (PayloadCorrupt(probability=1.0, protect_prefix=0),), seed=0
        )
        clique.attach_faults(plan)
        state = clique.attach_integrity(IntegrityPolicy())
        batch = _workload(n, seed=0, load=1)
        clique.stage(batch.src, batch.dst, batch.payload, tag="t")
        clique.drain()
        assert state.pending_rerequests == len(batch)
        src, dst = state.rerequest()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(
            zip(batch.src.tolist(), batch.dst.tolist())
        )
        assert state.pending_rerequests == 0
        # Drained: a second call returns empty columns.
        src2, dst2 = state.rerequest()
        assert len(src2) == 0 and len(dst2) == 0

    def test_empty_plan_bit_identical_with_integrity(self):
        # The checksum word is framing overhead, not payload: enabling
        # integrity must not change rounds, spills, or delivered bits.
        n = 16
        batch = _workload(n, seed=9, load=3)
        outcomes = []
        for integrity in (None, IntegrityPolicy()):
            clique = ArrayClique(n, bandwidth_words=4, strict=False)
            if integrity is not None:
                clique.attach_integrity(integrity)
            clique.stage(batch.src, batch.dst, batch.payload, tag="t")
            rounds = clique.drain()
            node, view = clique.collect()
            order = np.lexsort((view.payload[:, 0], node, view.src))
            outcomes.append(
                (rounds, view.src[order], node[order], view.payload[order])
            )
        assert outcomes[0][0] == outcomes[1][0]
        for a, b in zip(outcomes[0][1:], outcomes[1][1:]):
            np.testing.assert_array_equal(a, b)

    def test_as_integrity_coercions(self):
        assert as_integrity(None) is None
        assert as_integrity(False) is None
        assert isinstance(as_integrity(True), IntegrityState)
        state = IntegrityPolicy().activate()
        assert as_integrity(state) is state
        with pytest.raises(TypeError, match="not an integrity policy"):
            as_integrity(42)

    def test_summary_is_json_safe(self):
        import json

        state = IntegrityPolicy().activate()
        json.dumps(state.summary())


class TestErasureRecovery:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_zero_fault_erasure_is_payload_identical(self, seed):
        # Acceptance: with an empty fault plan, the erasure-coded route
        # delivers payloads bit-identical to the clean two-phase route.
        n = 20
        batch = _workload(n, seed, load=2)
        clean, _ = route_batch_two_phase(batch, n, bandwidth_words=4)
        coded, stats = route_batch_two_phase(
            batch, n, bandwidth_words=4, recovery="erasure",
            integrity=IntegrityPolicy(),
        )
        assert len(coded) == len(clean) == len(batch)
        assert stats.reconstructed == 0
        key_clean = np.lexsort((clean.payload[:, 0], clean.dst))
        key_coded = np.lexsort((coded.payload[:, 0], coded.dst))
        np.testing.assert_array_equal(
            clean.dst[key_clean], coded.dst[key_coded]
        )
        np.testing.assert_array_equal(
            clean.payload[key_clean], coded.payload[key_coded]
        )

    def test_erasure_reconstructs_under_drop(self):
        n = 24
        batch = _workload(n, seed=1, load=2)
        plan = FaultPlan((LinkDrop(probability=0.1),), seed=1)
        delivered, stats = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan,
            max_retries=6, recovery="erasure",
        )
        assert len(delivered) == len(batch)
        assert stats.reconstructed > 0
        assert stats.parity_words > 0
        # Reconstructed rows carry the original payload bits.
        assert sorted(delivered.payload[:, 0].tolist()) == sorted(
            batch.payload[:, 0].tolist()
        )

    def test_erasure_beats_retry_on_rounds(self):
        # Acceptance: at 10% drop, erasure delivers at least as much as
        # bounded retry in strictly fewer rounds (parity fills holes
        # without waiting a full retransmission cycle per loss).
        n = 24
        batch = _workload(n, seed=0, load=2)
        plan = FaultPlan((LinkDrop(probability=0.1),), seed=0)
        retry_d, retry_s = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan, max_retries=6,
        )
        erasure_d, erasure_s = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan, max_retries=6,
            recovery="erasure",
        )
        assert len(erasure_d) >= len(retry_d)
        assert erasure_s.rounds < retry_s.rounds

    def test_erasure_with_corruption_and_integrity(self):
        # Corrupted rows are quarantined by the checksums *and* healed
        # by parity/retransmit: full delivery, zero poisoned payloads.
        n = 20
        batch = _workload(n, seed=4, load=2)
        plan = FaultPlan(
            (PayloadCorrupt(probability=0.15, protect_prefix=2),), seed=4
        )
        delivered, stats = route_batch_two_phase(
            batch, n, bandwidth_words=4, faults=plan, max_retries=6,
            recovery="erasure", integrity=IntegrityPolicy(),
        )
        totals = stats.fault_totals
        assert totals["corrupted"] > 0
        assert totals["detected"] == totals["corrupted"]
        assert len(delivered) == len(batch)
        assert sorted(delivered.payload[:, 0].tolist()) == sorted(
            batch.payload[:, 0].tolist()
        )

    def test_invalid_recovery_mode_rejected(self):
        batch = _workload(8, seed=0, load=1)
        with pytest.raises(ValueError, match="recovery"):
            route_batch_two_phase(batch, 8, recovery="fountain")
        with pytest.raises(ValueError, match="erasure_group"):
            route_batch_two_phase(
                batch, 8, recovery="erasure", erasure_group=0
            )
