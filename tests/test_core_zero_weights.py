"""Tests for the zero-weight reduction (Theorem 2.1 / Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core import (
    Estimate,
    compress_zero_components,
    lift_zero_weights,
)
from repro.graphs import (
    WeightedGraph,
    check_estimate,
    clustered_zero_weight_graph,
    erdos_renyi,
    exact_apsp,
)

from tests.helpers import make_rng

SEEDS = [0, 1, 2]


def exact_solver(graph: WeightedGraph) -> Estimate:
    return Estimate(estimate=exact_apsp(graph), factor=1.0)


def doubling_solver(graph: WeightedGraph) -> Estimate:
    """A synthetic 2-approximation solver."""
    estimate = exact_apsp(graph) * 2.0
    np.fill_diagonal(estimate, 0.0)
    return Estimate(estimate=estimate, factor=2.0)


class TestCompression:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_compressed_graph_is_positive(self, seed):
        rng = make_rng(seed)
        graph = clustered_zero_weight_graph(5, 6, rng)
        _, _, compressed = compress_zero_components(graph)
        assert float(compressed.edge_w.min(initial=1.0)) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compressed_distances_match(self, seed):
        """d_G(u, v) = d_compressed(leader(u), leader(v))."""
        rng = make_rng(seed)
        graph = clustered_zero_weight_graph(5, 6, rng)
        leader, leaders, compressed = compress_zero_components(graph)
        exact_full = exact_apsp(graph)
        exact_small = exact_apsp(compressed)
        compact = {int(s): i for i, s in enumerate(leaders)}
        for u in range(graph.n):
            for v in range(graph.n):
                lu, lv = compact[int(leader[u])], compact[int(leader[v])]
                assert exact_full[u, v] == pytest.approx(exact_small[lu, lv])

    def test_edge_minimum_kept(self):
        graph = WeightedGraph(
            4,
            [(0, 1, 0), (2, 3, 0), (0, 2, 9), (1, 3, 4)],
            require_positive=False,
        )
        _, _, compressed = compress_zero_components(graph)
        assert compressed.num_edges == 1
        assert float(compressed.edge_w[0]) == 4.0

    def test_directed_rejected(self):
        graph = WeightedGraph(
            2, [(0, 1, 0)], directed=True, require_positive=False
        )
        with pytest.raises(ValueError):
            compress_zero_components(graph)


class TestLift:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_solver_stays_exact(self, seed):
        rng = make_rng(seed)
        graph = clustered_zero_weight_graph(4, 7, rng)
        exact = exact_apsp(graph)
        result = lift_zero_weights(graph, exact_solver)
        assert result.factor == 1.0
        assert np.allclose(result.estimate, exact)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_factor_preserved(self, seed):
        """Theorem 2.1: an a-approximation solver yields an a-approximation."""
        rng = make_rng(seed)
        graph = clustered_zero_weight_graph(4, 7, rng)
        exact = exact_apsp(graph)
        result = lift_zero_weights(graph, doubling_solver)
        assert result.factor == 2.0
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= 2.0 + 1e-9

    def test_positive_graph_passthrough(self, rng):
        graph = erdos_renyi(20, 0.3, rng)
        result = lift_zero_weights(graph, exact_solver)
        assert np.allclose(result.estimate, exact_apsp(graph))
        assert "zero_components" not in result.meta

    def test_overhead_is_constant_rounds(self):
        rng = make_rng(5)
        graph = clustered_zero_weight_graph(4, 7, rng)
        ledger = RoundLedger(graph.n)
        lift_zero_weights(graph, exact_solver, ledger=ledger)
        # Theorem 2.1: f(n) + O(1); the solver here charges nothing, so the
        # whole ledger is the overhead.
        assert 0 < ledger.total_rounds <= 15

    def test_intra_component_zero(self):
        rng = make_rng(6)
        graph = clustered_zero_weight_graph(3, 8, rng)
        result = lift_zero_weights(graph, exact_solver)
        exact = exact_apsp(graph)
        zero_pairs = exact == 0
        assert np.all(result.estimate[zero_pairs] == 0)

    def test_meta_reports_components(self):
        rng = make_rng(7)
        graph = clustered_zero_weight_graph(6, 5, rng)
        result = lift_zero_weights(graph, exact_solver)
        assert result.meta["zero_components"] == 6
