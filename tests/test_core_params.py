"""Tests for the parameter schedules of core.params."""

from __future__ import annotations

import math

import pytest

from repro.core import params


class TestHopsetBeta:
    def test_grows_with_a_and_d(self):
        assert params.hopset_beta_bound(2, 100) < params.hopset_beta_bound(8, 100)
        assert params.hopset_beta_bound(4, 10) < params.hopset_beta_bound(4, 10**6)

    def test_explicit_formula(self):
        a, d = 3.0, 50.0
        expected = 2 * (math.ceil(a * math.log(d)) + 1) + 1
        assert params.hopset_beta_bound(a, d) == expected

    def test_diameter_floor(self):
        # d < 2 is floored so log stays positive
        assert params.hopset_beta_bound(1, 0.5) == params.hopset_beta_bound(1, 2)

    def test_invalid_a(self):
        with pytest.raises(ValueError):
            params.hopset_beta_bound(0.5, 10)


class TestReductionSchedules:
    def test_h_clamped_at_two(self):
        assert params.reduction_h(1) == 2
        assert params.reduction_h(16) == 2

    def test_h_formula_beyond_clamp(self):
        # a = 65536: a^(1/4)/2 = 8
        assert params.reduction_h(65536) == 8

    def test_k_schedule(self):
        assert params.reduction_k(256, 2) == 16
        assert params.reduction_k(256, 4) == 4

    def test_k_capped_at_sqrt_n(self):
        assert params.reduction_k(100, 1) == 10  # n^(1/1)=100 capped at 10

    def test_b_schedule(self):
        assert params.reduction_b(1) == 2
        assert params.reduction_b(100) == 10

    def test_plan_bundle(self):
        plan = params.plan_reduction(256, 9.0, 1000.0)
        assert plan.a == 9.0
        assert plan.h >= 2
        assert plan.k >= 1
        assert plan.b == 3
        assert plan.promised_factor == pytest.approx(45.0)
        assert plan.h**plan.i >= plan.beta


class TestIterations:
    def test_minimum_iterations(self):
        assert params.knearest_iterations(1, 2) == 1
        assert params.knearest_iterations(2, 2) == 1
        assert params.knearest_iterations(5, 2) == 3
        assert params.knearest_iterations(9, 3) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            params.knearest_iterations(0, 2)
        with pytest.raises(ValueError):
            params.knearest_iterations(4, 1)


class TestFeasibility:
    def test_feasible_cases(self):
        assert params.knearest_feasible(256, 16, 2)
        assert params.knearest_feasible(256, 4, 4)

    def test_infeasible(self):
        assert not params.knearest_feasible(256, 200, 2)
        assert not params.knearest_feasible(0, 1, 1)


class TestTheorem11Schedule:
    def test_k0_clamped_to_sqrt(self):
        # log2(256)^4 = 4096 > sqrt(256) = 16
        assert params.theorem11_k0(256) == 16

    def test_k0_tiny(self):
        assert params.theorem11_k0(1) == 1
        assert params.theorem11_k0(4) == 2

    def test_hop_schedule_feasible(self):
        for n in (64, 256, 1024):
            k = params.theorem11_k0(n)
            h, i = params.choose_hop_schedule(n, k)
            assert h**i >= k
            assert params.knearest_feasible(n, k, h)

    def test_hop_schedule_k_one(self):
        assert params.choose_hop_schedule(100, 1) == (2, 1)


class TestMisc:
    def test_skeleton_size_bound(self):
        assert params.skeleton_size_bound(100, 10) == pytest.approx(
            4 * 100 * math.log(10) / 10
        )
        with pytest.raises(ValueError):
            params.skeleton_size_bound(0, 1)

    def test_exact_small_threshold(self):
        assert params.exact_small_threshold(256) == 16
        assert params.exact_small_threshold(4) == 8  # floor of 8
