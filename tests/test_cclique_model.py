"""Tests for the message-level Congested Clique simulator."""

from __future__ import annotations

import pytest

from repro.cclique import (
    BandwidthExceededError,
    InvalidNodeError,
    Message,
    MessageTooLargeError,
    NodeProgram,
    ProtocolError,
    SimulatedClique,
    word_bits,
)


class TestConstruction:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            SimulatedClique(0)

    def test_requires_positive_bandwidth(self):
        with pytest.raises(ValueError):
            SimulatedClique(4, bandwidth_words=0)

    def test_word_bits_grows_with_n(self):
        assert word_bits(2) == 8  # floor
        assert word_bits(1 << 20) == 21

    def test_bits_per_message_scales_with_bandwidth(self):
        narrow = SimulatedClique(16, bandwidth_words=1)
        wide = SimulatedClique(16, bandwidth_words=4)
        assert wide.bits_per_message == 4 * narrow.bits_per_message


class TestSendStep:
    def test_single_message_delivery(self):
        clique = SimulatedClique(4)
        clique.send(Message(0, 3, (42,)))
        clique.step()
        inbox = clique.inbox(3)
        assert len(inbox) == 1
        assert inbox[0].payload == (42,)
        assert inbox[0].sender == 0

    def test_inbox_clears_by_default(self):
        clique = SimulatedClique(4)
        clique.send(Message(0, 1, (1,)))
        clique.step()
        assert len(clique.inbox(1)) == 1
        assert clique.inbox(1) == []

    def test_inbox_peek(self):
        clique = SimulatedClique(4)
        clique.send(Message(0, 1, (1,)))
        clique.step()
        assert len(clique.inbox(1, clear=False)) == 1
        assert len(clique.inbox(1)) == 1

    def test_bandwidth_enforced_strict(self):
        clique = SimulatedClique(4, strict=True)
        clique.send(Message(0, 1, (1,)))
        with pytest.raises(BandwidthExceededError):
            clique.send(Message(0, 1, (2,)))

    def test_distinct_receivers_ok_in_one_round(self):
        clique = SimulatedClique(4)
        for receiver in range(1, 4):
            clique.send(Message(0, receiver, (receiver,)))
        clique.step()
        for receiver in range(1, 4):
            assert len(clique.inbox(receiver)) == 1

    def test_spill_in_non_strict_mode(self):
        clique = SimulatedClique(4, strict=False)
        for value in range(3):
            clique.send(Message(0, 1, (value,)))
        rounds = clique.drain()
        assert rounds == 3  # one message per round on the congested pair
        assert clique.spill_rounds >= 1
        assert sorted(m.payload[0] for m in clique.inbox(1)) == [0, 1, 2]

    def test_message_too_large(self):
        clique = SimulatedClique(4, bandwidth_words=1)
        payload = tuple(range(10))
        with pytest.raises(MessageTooLargeError):
            clique.send(Message(0, 1, payload))

    def test_large_bandwidth_accepts_multiword(self):
        clique = SimulatedClique(4, bandwidth_words=10)
        clique.send(Message(0, 1, tuple(range(10))))
        clique.step()
        assert clique.inbox(1)[0].payload == tuple(range(10))

    def test_invalid_node(self):
        clique = SimulatedClique(4)
        with pytest.raises(InvalidNodeError):
            clique.send(Message(0, 9, (1,)))
        with pytest.raises(InvalidNodeError):
            clique.inbox(-1)

    def test_round_index_advances(self):
        clique = SimulatedClique(4)
        assert clique.round_index == 0
        clique.step()
        clique.step()
        assert clique.round_index == 2

    def test_delivery_statistics(self):
        clique = SimulatedClique(4, bandwidth_words=3)
        clique.send(Message(0, 1, (1, 2, 3)))
        clique.send(Message(2, 3, (4,)))
        clique.step()
        assert clique.messages_delivered == 2
        assert clique.words_delivered == 4


class _EchoProgram(NodeProgram):
    """Round 1: node 0 pings everyone; round 2: everyone echoes; halt."""

    def __init__(self):
        super().__init__()
        self.round = 0
        self.received = []

    def on_round(self, inbox):
        self.round += 1
        out = []
        for message in inbox:
            self.received.append(message.payload)
        if self.round == 1 and self.node_id == 0:
            out = [self.msg(v, 7) for v in range(self.n) if v != self.node_id]
        elif self.round == 2 and self.received:
            out = [self.msg(0, self.node_id)]
        if self.round >= 3:
            self.halt()
        return out


class TestNodePrograms:
    def test_echo_protocol(self):
        clique = SimulatedClique(5)
        programs = [_EchoProgram() for _ in range(5)]
        rounds = clique.run(programs)
        assert rounds == 3
        echoes = sorted(p[0] for p in programs[0].received)
        assert echoes == [1, 2, 3, 4]

    def test_program_count_mismatch(self):
        clique = SimulatedClique(3)
        with pytest.raises(ProtocolError):
            clique.run([_EchoProgram()])

    def test_forged_sender_rejected(self):
        class Forger(NodeProgram):
            def on_round(self, inbox):
                self.halt()
                return [Message(99, 0, (1,))]

        clique = SimulatedClique(2)
        with pytest.raises(ProtocolError):
            clique.run([Forger(), Forger()])

    def test_non_halting_protocol_detected(self):
        class Spinner(NodeProgram):
            def on_round(self, inbox):
                return []

        clique = SimulatedClique(2)
        with pytest.raises(ProtocolError):
            clique.run([Spinner(), Spinner()], max_rounds=10)
