"""Tests for the unified solver facade and the variant registry.

Pins the contracts the redesign introduced:

* registry completeness — every registered variant runs on a small ER
  graph, never underestimates, and respects its declared factor bound;
* ``SolverConfig`` validation errors;
* ``solve_many`` determinism — identical results across executors and
  bit-identical to sequential legacy ``approximate_apsp`` calls on the
  same RNG streams;
* ``ApspResult`` JSON round-trips.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import approximate_apsp, erdos_renyi
from repro.api import ApspResult, ApspSolver, SolverConfig
from repro.core import registry
from repro.core.registry import get_variant, iter_variants, run_variant, variant_names
from repro.graphs import check_estimate, exact_apsp

from tests.helpers import make_rng

BUILTINS = (
    "exact",
    "uy90",
    "spanner-only",
    "small-diameter",
    "theorem11",
    "tradeoff",
    "large-bandwidth",
)


def small_er(seed: int = 7, n: int = 48):
    return erdos_renyi(n, 0.12, make_rng(seed))


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert variant_names() == BUILTINS

    def test_get_variant_unknown(self):
        with pytest.raises(ValueError, match="unknown variant"):
            get_variant("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_variant(
                "exact",
                display_name="dup",
                summary="",
                factor_formula="1",
            )(lambda graph, rng, ledger, **p: None)

    def test_specs_carry_metadata(self):
        for spec in iter_variants():
            assert spec.display_name
            assert spec.summary
            assert spec.factor_formula

    @pytest.mark.parametrize("name", BUILTINS)
    def test_completeness_every_variant_within_declared_bound(self, name):
        """Each registered variant solves a small ER graph soundly and
        within its declared factor bound (or its reported factor when the
        bound is instance-dependent)."""
        spec = get_variant(name)
        graph = small_er()
        exact = exact_apsp(graph)
        result = run_variant(
            name, graph, rng=make_rng(3), **spec.default_params
        )
        report = check_estimate(exact, result.estimate)
        assert report.sound, f"{name} underestimates"
        assert report.max_stretch <= result.factor + 1e-9
        declared = spec.bound(graph.n, **spec.default_params)
        if declared is not None:
            assert result.factor <= declared + 1e-9
        assert result.meta["variant"] == name
        assert result.meta["ledger"].total_rounds > 0

    def test_tradeoff_requires_t(self):
        with pytest.raises(ValueError, match="requires the parameter"):
            run_variant("tradeoff", small_er())

    def test_tradeoff_routes_through_apsp_tradeoff(self):
        """Regression: the legacy wrapper used to bypass ``apsp_tradeoff``,
        dropping the t validation and the tradeoff metadata."""
        graph = small_er()
        result = approximate_apsp(graph, rng=make_rng(0), variant="tradeoff", t=1)
        assert result.meta["t"] == 1
        assert "tradeoff_bound" in result.meta
        with pytest.raises(ValueError, match="t must be >= 1"):
            approximate_apsp(graph, rng=make_rng(0), variant="tradeoff", t=0)

    def test_directed_graph_rejected(self):
        from repro.graphs import WeightedGraph

        directed = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 1.0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            run_variant("theorem11", directed)


class TestSolverConfig:
    def test_defaults_valid(self):
        config = SolverConfig()
        assert config.variant == "theorem11"
        assert config.spec.display_name == "thm 1.1"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"variant": "bogus"},
            {"eps": 0.0},
            {"eps": -1.0},
            {"t": 0},
            {"variant": "tradeoff"},  # missing t
            {"bandwidth_words": 0},
            {"validation": "sometimes"},
            {"kernel": "bogus"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolverConfig(**kwargs)

    def test_kernel_choice_does_not_change_results(self):
        """Kernels are bit-identical, so the config knob is output-neutral."""
        graph = small_er()
        baseline = ApspSolver(
            SolverConfig(variant="theorem11", seed=3, kernel="broadcast")
        ).solve(graph)
        for kernel in ("tiled", "int-repack", "auto", None):
            result = ApspSolver(
                SolverConfig(variant="theorem11", seed=3, kernel=kernel)
            ).solve(graph)
            assert np.array_equal(result.estimate, baseline.estimate), kernel

    def test_kernel_round_trips_through_dict(self):
        config = SolverConfig(variant="exact", kernel="tiled")
        assert SolverConfig.from_dict(config.to_dict()) == config

    def test_rng_streams_are_deterministic_and_distinct(self):
        config = SolverConfig(seed=5)
        a0 = config.rng_for(0).integers(0, 2**31, 8)
        a0_again = config.rng_for(0).integers(0, 2**31, 8)
        a1 = config.rng_for(1).integers(0, 2**31, 8)
        assert np.array_equal(a0, a0_again)
        assert not np.array_equal(a0, a1)

    def test_dict_round_trip(self):
        config = SolverConfig(variant="tradeoff", t=2, seed=9,
                              validation="stretch")
        assert SolverConfig.from_dict(config.to_dict()) == config

    def test_solver_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError):
            ApspSolver(SolverConfig(), variant="exact")


class TestSolveMany:
    def make_graphs(self, count: int = 3, n: int = 40):
        rng = make_rng(2024)
        return [erdos_renyi(n, 6.0 / n, rng) for _ in range(count)]

    def test_matches_sequential_legacy_calls(self):
        """Acceptance: batch results are bit-identical to sequential
        ``approximate_apsp`` calls on the same RNG streams."""
        graphs = self.make_graphs()
        config = SolverConfig(variant="theorem11", seed=0)
        results = ApspSolver(config).solve_many(graphs)
        assert len(results) == len(graphs)
        for i, (graph, result) in enumerate(zip(graphs, results)):
            legacy = approximate_apsp(graph, rng=config.rng_for(i))
            assert np.array_equal(result.estimate, legacy.estimate), f"graph {i}"
            assert result.factor == legacy.factor
            assert result.stream == i
            assert result.total_rounds == legacy.meta["ledger"].total_rounds
            assert json.loads(json.dumps(result.summary()))  # serializable

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_agree(self, executor):
        graphs = self.make_graphs(count=2, n=36)
        solver = ApspSolver(SolverConfig(variant="small-diameter", seed=11))
        baseline = solver.solve_many(graphs, executor="serial")
        got = solver.solve_many(graphs, executor=executor, max_workers=2)
        for a, b in zip(baseline, got):
            assert np.array_equal(a.estimate, b.estimate)
            assert a.total_rounds == b.total_rounds

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ApspSolver(SolverConfig()).solve_many(self.make_graphs(1), executor="gpu")

    def test_solve_is_stream_zero(self):
        graphs = self.make_graphs(count=2)
        solver = ApspSolver(SolverConfig(seed=3))
        assert np.array_equal(
            solver.solve(graphs[0]).estimate,
            solver.solve_many(graphs)[0].estimate,
        )

    def test_strict_validation_passes_on_sound_variant(self):
        solver = ApspSolver(SolverConfig(variant="exact", validation="strict"))
        result = solver.solve(self.make_graphs(1)[0])
        assert result.stretch is not None
        assert result.stretch.sound
        assert result.stretch.max_stretch <= 1.0 + 1e-9

    def test_wall_time_recorded(self):
        result = ApspSolver(SolverConfig(variant="exact")).solve(
            self.make_graphs(1)[0]
        )
        assert result.wall_time_s > 0.0


class TestApspResultJson:
    def solve_one(self) -> ApspResult:
        graph = erdos_renyi(36, 0.15, make_rng(1))
        return ApspSolver(
            SolverConfig(variant="theorem11", seed=4, validation="stretch")
        ).solve(graph)

    def test_round_trip_full(self):
        result = self.solve_one()
        clone = ApspResult.from_json(result.to_json())
        assert np.array_equal(clone.estimate, result.estimate)
        assert clone.factor == result.factor
        assert clone.variant == result.variant
        assert clone.seed == result.seed
        assert clone.total_rounds == result.total_rounds
        assert clone.ledger.rounds_by_phase() == result.ledger.rounds_by_phase()
        assert clone.stretch == result.stretch

    def test_round_trip_without_estimate(self):
        result = self.solve_one()
        clone = ApspResult.from_json(result.to_json(include_estimate=False))
        assert clone.n == result.n
        assert clone.factor == result.factor
        assert np.all(np.diag(clone.estimate) == 0)

    def test_json_is_strict(self):
        """No NaN/Infinity literals — downstream parsers reject them."""
        payload = self.solve_one().to_json()
        json.loads(payload, parse_constant=lambda _: pytest.fail("non-strict JSON"))

    def test_summary_omits_matrix(self):
        summary = self.solve_one().summary()
        assert "estimate" not in summary
        assert summary["rounds"] > 0
        assert summary["stretch"]["max_stretch"] >= 1.0

    def test_b64_encoding_round_trips(self):
        """The compact encoding is bit-exact, including inf entries."""
        result = self.solve_one()
        result.estimate[0, 1] = np.inf  # force a hole through the codec
        payload = result.to_json(matrix_encoding="b64")
        clone = ApspResult.from_json(payload)
        assert np.array_equal(clone.estimate, result.estimate)
        assert clone.factor == result.factor
        record = json.loads(payload)["estimate"]
        assert record["encoding"] == "b64"
        assert record["shape"] == [result.n, result.n]

    def test_b64_encoding_is_compact_and_strict(self):
        result = self.solve_one()
        # full-precision floats — the realistic large-n payload where the
        # list encoding burns ~18 chars per entry vs b64's constant ~10.7
        result.estimate *= np.pi
        compact = result.to_json(matrix_encoding="b64")
        verbose = result.to_json(matrix_encoding="list")
        assert len(compact) < len(verbose)
        json.loads(compact, parse_constant=lambda _: pytest.fail("non-strict JSON"))

    def test_unknown_matrix_encoding_rejected(self):
        with pytest.raises(ValueError):
            self.solve_one().to_dict(matrix_encoding="pickle")


class TestKernelPinPropagation:
    """The ambient use_kernel pin must survive into executor workers."""

    def graphs(self):
        return [erdos_renyi(24, 0.25, make_rng(s)) for s in range(3)]

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_ambient_pin_reaches_workers(self, executor):
        from repro.semiring import use_kernel

        solver = ApspSolver(SolverConfig(variant="theorem11", seed=0))
        with use_kernel("tiled"):
            results = solver.solve_many(self.graphs(), executor=executor,
                                        max_workers=2)
        assert [r.meta.get("kernel_pin") for r in results] == ["tiled"] * 3

    def test_config_kernel_beats_ambient_pin(self):
        from repro.semiring import use_kernel

        solver = ApspSolver(SolverConfig(variant="theorem11", seed=0,
                                         kernel="broadcast"))
        with use_kernel("tiled"):
            result = solver.solve(self.graphs()[0])
        assert result.meta["kernel_pin"] == "broadcast"

    def test_no_pin_means_auto(self):
        solver = ApspSolver(SolverConfig(variant="theorem11", seed=0))
        result = solver.solve(self.graphs()[0])
        assert result.meta["kernel_pin"] is None

    def test_pinned_process_results_match_serial(self):
        """Regression: a non-default kernel is honored under process
        executors and still yields bit-identical estimates."""
        from repro.semiring import use_kernel

        solver = ApspSolver(SolverConfig(variant="theorem11", seed=3))
        graphs = self.graphs()
        with use_kernel("tiled"):
            pinned = solver.solve_many(graphs, executor="process", max_workers=2)
        plain = solver.solve_many(graphs, executor="serial")
        for a, b in zip(pinned, plain):
            assert np.array_equal(a.estimate, b.estimate)
            assert a.meta["kernel_pin"] == "tiled"
            assert b.meta["kernel_pin"] is None


class TestRegistrySweep:
    def test_registry_algorithms_enumerate(self):
        from repro.analysis import registry_algorithms

        algorithms = registry_algorithms()
        assert tuple(algorithms) == BUILTINS

    def test_registry_algorithms_unknown_name(self):
        from repro.analysis import registry_algorithms

        with pytest.raises(ValueError, match="unknown variant"):
            registry_algorithms(variants=["bogus"])

    def test_run_registry_sweep_subset(self):
        from repro.analysis import run_registry_sweep

        workloads = {
            "er": lambda rng: erdos_renyi(36, 0.15, rng),
        }
        sweeps = run_registry_sweep(
            workloads, seeds=[0, 1], variants=["exact", "small-diameter"]
        )
        assert set(sweeps) == {"exact", "small-diameter"}
        for result in sweeps.values():
            assert len(result.cases) == 2
            assert result.summaries[0].all_sound
