"""Tests for the min-plus kernel subsystem (repro.semiring.kernels).

The load-bearing contract: every registered kernel is **bit-identical**
to the ``broadcast`` reference on arbitrary inputs — integer-valued,
fractional, inf-laden, rectangular, and adversarially large values that
force each internal path of ``int-repack`` (float32, int64 sentinel,
float64 fallback).  Downstream, the ``k_smallest_in_rows`` ID tie-break
must therefore be kernel-independent as well.

Also covered: the selection precedence (argument > ``use_kernel`` context
> ``REPRO_MINPLUS_KERNEL`` environment > auto), the exactness fix of
``hop_limited_distances``, the gathered row-sparse product, and the
content-hash exact-distance oracle cache.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graphs import (
    ExactOracleCache,
    erdos_renyi,
    exact_apsp,
    graph_content_hash,
    hop_limited_distances,
    minplus_product,
    minplus_square,
)
from repro.semiring import (
    AUTO,
    KERNEL_ENV,
    auto_kernel,
    get_kernel,
    hop_power_row_sparse,
    iter_kernels,
    k_smallest_in_rows,
    kernel_names,
    kernels as kernels_module,
    minplus,
    minplus_gather,
    minplus_power,
    register_kernel,
    resolve_kernel,
    row_sparse_from_dense,
    use_kernel,
)

from tests.helpers import make_rng

ALL_KERNELS = kernel_names()


def reference(a, b):
    return minplus(a, b, kernel="broadcast")


def random_matrix(rng, shape, *, integral, inf_frac=0.25, lo=1, hi=100):
    if integral:
        out = rng.integers(lo, hi, shape).astype(np.float64)
    else:
        out = rng.uniform(lo, hi, shape)
    out[rng.random(shape) < inf_frac] = np.inf
    return out


class TestRegistry:
    def test_baseline_kernels_registered(self):
        for name in ("broadcast", "tiled", "int-repack"):
            assert name in ALL_KERNELS

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown min-plus kernel"):
            minplus(np.zeros((2, 2)), np.zeros((2, 2)), kernel="bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("broadcast", summary="dup")(lambda *a: None)

    def test_auto_name_reserved(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(AUTO, summary="nope")(lambda *a: None)

    def test_specs_carry_metadata(self):
        for spec in iter_kernels():
            assert spec.summary
            assert get_kernel(spec.name) is spec


class TestKernelEquivalence:
    """Every kernel must be bit-identical to the reference."""

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize("integral", [True, False])
    @pytest.mark.parametrize("n", [1, 2, 17, 64, 130])
    def test_square_random(self, kernel, integral, n):
        rng = make_rng(1000 * n + integral)
        a = random_matrix(rng, (n, n), integral=integral)
        b = random_matrix(rng, (n, n), integral=integral)
        got = minplus(a, b, kernel=kernel)
        assert np.array_equal(got, reference(a, b)), kernel

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize(
        "shape", [(1, 5, 3), (33, 9, 70), (70, 300, 5), (257, 40, 259)]
    )
    def test_rectangular(self, kernel, shape):
        rows, inner, cols = shape
        rng = make_rng(sum(shape))
        a = random_matrix(rng, (rows, inner), integral=True)
        b = random_matrix(rng, (inner, cols), integral=False, inf_frac=0.5)
        got = minplus(a, b, kernel=kernel)
        assert np.array_equal(got, reference(a, b)), kernel

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_all_inf_rows_and_columns(self, kernel):
        rng = make_rng(3)
        a = random_matrix(rng, (20, 20), integral=True)
        a[7, :] = np.inf
        b = random_matrix(rng, (20, 20), integral=True)
        b[:, 11] = np.inf
        got = minplus(a, b, kernel=kernel)
        ref = reference(a, b)
        assert np.array_equal(got, ref)
        assert np.all(np.isinf(got[7, :])) and np.all(np.isinf(got[:, 11]))

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_negative_entries(self, kernel):
        rng = make_rng(4)
        a = random_matrix(rng, (25, 25), integral=True, lo=-50, hi=50)
        b = random_matrix(rng, (25, 25), integral=True, lo=-50, hi=50)
        assert np.array_equal(minplus(a, b, kernel=kernel), reference(a, b))

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    @pytest.mark.parametrize(
        "magnitude",
        [
            2**20,  # int-repack: float32 path
            2**30,  # int-repack: int64 sentinel path
            2**55,  # int-repack: float64 fallback (sums would round)
        ],
    )
    def test_value_range_paths(self, kernel, magnitude):
        rng = make_rng(int(np.log2(magnitude)))
        a = random_matrix(rng, (30, 30), integral=True, lo=1, hi=magnitude)
        b = random_matrix(rng, (30, 30), integral=True, lo=1, hi=magnitude)
        assert np.array_equal(minplus(a, b, kernel=kernel), reference(a, b))

    @pytest.mark.parametrize("kernel", ALL_KERNELS)
    def test_k_smallest_tie_break_downstream(self, kernel):
        """The ID tie-break of Section 5 survives every kernel bit-for-bit."""
        rng = make_rng(5)
        # Small weight range forces many ties in the product.
        a = random_matrix(rng, (60, 60), integral=True, lo=1, hi=5)
        idx_ref, val_ref = k_smallest_in_rows(reference(a, a), 7)
        idx, val = k_smallest_in_rows(minplus(a, a, kernel=kernel), 7)
        assert np.array_equal(idx, idx_ref)
        assert np.array_equal(val, val_ref)

    def test_empty_inner_dimension_is_semiring_zero(self):
        out = minplus(np.empty((3, 0)), np.empty((0, 4)))
        assert out.shape == (3, 4) and np.all(np.isinf(out))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            minplus(np.zeros((2, 3)), np.zeros((2, 3)))


class TestSelection:
    def test_explicit_argument_wins(self, monkeypatch):
        a = np.zeros((4, 4))
        monkeypatch.setenv(KERNEL_ENV, "tiled")
        with use_kernel("int-repack"):
            assert resolve_kernel(a, a, "broadcast") == "broadcast"

    def test_context_beats_environment(self, monkeypatch):
        a = np.zeros((4, 4))
        monkeypatch.setenv(KERNEL_ENV, "tiled")
        with use_kernel("broadcast"):
            assert resolve_kernel(a, a) == "broadcast"
        assert resolve_kernel(a, a) == "tiled"

    def test_environment_override(self, monkeypatch):
        a = np.zeros((4, 4))
        monkeypatch.setenv(KERNEL_ENV, "tiled")
        assert resolve_kernel(a, a) == "tiled"
        monkeypatch.setenv(KERNEL_ENV, "bogus")
        with pytest.raises(ValueError, match="unknown min-plus kernel"):
            resolve_kernel(a, a)

    def test_auto_defers_to_selection(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        ints = np.ones((8, 8))
        floats = ints + 0.5
        with use_kernel(AUTO):
            if "numba" not in ALL_KERNELS:
                assert resolve_kernel(ints, ints) == "int-repack"
                assert resolve_kernel(floats, floats) == "broadcast"
            big = np.full((kernels_module.TILED_MIN_DIM, 4), 0.5)
            assert resolve_kernel(big, np.full((4, 4), 0.5)) in ("tiled", "numba")

    def test_auto_kernel_ignores_pins(self, monkeypatch):
        ints = np.ones((8, 8))
        monkeypatch.setenv(KERNEL_ENV, "tiled")
        with use_kernel("broadcast"):
            assert resolve_kernel(ints, ints) == "broadcast"
            if "numba" not in ALL_KERNELS:
                assert auto_kernel(ints, ints) == "int-repack"

    def test_use_kernel_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown min-plus kernel"):
            with use_kernel("bogus"):
                pass

    def test_use_kernel_is_thread_local(self):
        seen = {}

        def probe(name):
            a = np.ones((4, 4))
            with use_kernel(name):
                seen[name] = resolve_kernel(a, a)

        with use_kernel("tiled"):
            worker = threading.Thread(target=probe, args=("broadcast",))
            worker.start()
            worker.join()
            assert resolve_kernel(np.ones((4, 4)), np.ones((4, 4))) == "tiled"
        assert seen["broadcast"] == "broadcast"


class TestPowersAndGather:
    def test_minplus_power_matches_iterated_product(self):
        rng = make_rng(6)
        a = random_matrix(rng, (24, 24), integral=True)
        np.fill_diagonal(a, 0.0)
        expected = a
        for h in range(2, 8):
            expected = reference(expected, a)
            assert np.array_equal(minplus_power(a, h), expected), h

    def test_power_requires_zero_diagonal(self):
        with pytest.raises(ValueError, match="zero diagonal"):
            minplus_power(np.ones((3, 3)), 2)

    def test_hop_limited_is_exact_not_power_of_two(self):
        """The historical overshoot bug: h=3 must not include 4-hop paths."""
        n = 5
        path = np.full((n, n), np.inf)
        np.fill_diagonal(path, 0.0)
        for i in range(n - 1):
            path[i, i + 1] = path[i + 1, i] = 1.0
        three = hop_limited_distances(path, 3)
        four = hop_limited_distances(path, 4)
        assert np.isinf(three[0, 4])  # 4 hops away: unreachable in 3
        assert four[0, 4] == 4.0
        # Monotone in h: more hops never lengthens a distance.
        assert np.all(four <= three)

    def test_hop_limited_agrees_with_dijkstra_at_n_hops(self, rng):
        graph = erdos_renyi(24, 0.2, rng)
        full = hop_limited_distances(graph.matrix(), graph.n)
        assert np.allclose(full, exact_apsp(graph))

    def test_minplus_gather_matches_dense_formula(self):
        rng = make_rng(7)
        dense = random_matrix(rng, (30, 30), integral=True)
        weights = random_matrix(rng, (30, 4), integral=True)
        indices = rng.integers(0, 30, (30, 4))
        expected = (weights[:, :, None] + dense[indices, :]).min(axis=1)
        assert np.array_equal(minplus_gather(weights, indices, dense), expected)
        # A tiny budget forces many row blocks; result must not change.
        tight = minplus_gather(weights, indices, dense, memory_budget=1)
        assert np.array_equal(tight, expected)

    def test_hop_power_row_sparse_unchanged_by_gather_refactor(self, rng):
        matrix = random_matrix(rng, (40, 40), integral=True, inf_frac=0.5)
        np.fill_diagonal(matrix, 0.0)
        sparse = row_sparse_from_dense(matrix, 6)
        got = hop_power_row_sparse(sparse, 3)
        # Direct recurrence over the filtered dense matrix.
        filtered = sparse.to_dense()
        np.fill_diagonal(filtered, 0.0)
        expected = filtered
        for _ in range(2):
            expected = np.minimum(expected, reference(filtered, expected))
        assert np.array_equal(got, expected)


class TestExactOracleCache:
    def test_content_hash_ignores_construction_order(self):
        g1 = erdos_renyi(20, 0.3, make_rng(11))
        g2 = erdos_renyi(20, 0.3, make_rng(11))
        assert graph_content_hash(g1) == graph_content_hash(g2)
        g3 = erdos_renyi(20, 0.3, make_rng(12))
        assert graph_content_hash(g1) != graph_content_hash(g3)

    def test_cache_hits_across_equal_graphs(self):
        cache = ExactOracleCache()
        g1 = erdos_renyi(20, 0.3, make_rng(11))
        g2 = erdos_renyi(20, 0.3, make_rng(11))
        d1 = cache.get(g1)
        d2 = cache.get(g2)
        assert d1 is d2
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(d1, exact_apsp(g1))

    def test_cached_matrix_is_read_only(self):
        cache = ExactOracleCache()
        dist = cache.get(erdos_renyi(10, 0.4, make_rng(1)))
        with pytest.raises(ValueError):
            dist[0, 0] = 5.0

    def test_lru_eviction(self):
        cache = ExactOracleCache(max_entries=2)
        graphs = [erdos_renyi(10, 0.4, make_rng(s)) for s in range(3)]
        for g in graphs:
            cache.get(g)
        assert len(cache) == 2
        cache.get(graphs[0])  # evicted -> recomputed
        assert cache.misses == 4

    def test_byte_bound_eviction(self):
        # Each 10-node oracle is 800 bytes; a 2000-byte budget holds two.
        cache = ExactOracleCache(max_entries=100, max_bytes=2000)
        graphs = [erdos_renyi(10, 0.4, make_rng(s)) for s in range(4)]
        for g in graphs:
            cache.get(g)
        assert len(cache) == 2
        assert cache.nbytes <= 2000

    def test_oversized_single_entry_is_kept(self):
        cache = ExactOracleCache(max_entries=4, max_bytes=10)
        graph = erdos_renyi(10, 0.4, make_rng(0))
        first = cache.get(graph)
        assert len(cache) == 1  # kept despite exceeding max_bytes alone
        assert cache.get(graph) is first  # and it still hits

    def test_clear(self):
        cache = ExactOracleCache()
        cache.get(erdos_renyi(10, 0.4, make_rng(1)))
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert cache.nbytes == 0

    def test_peek_never_computes(self):
        cache = ExactOracleCache()
        graph = erdos_renyi(12, 0.4, make_rng(3))
        assert cache.peek(graph) is None
        assert (cache.hits, cache.misses) == (0, 0)
        dist = cache.get(graph)
        assert cache.peek(graph) is dist
        assert cache.hits == 1

    def test_exact_sssp_served_from_cached_apsp(self):
        """Once the default oracle holds a graph's APSP, exact_sssp serves
        the row from the cache (no recomputation) as a writable copy."""
        from repro.graphs import DEFAULT_ORACLE, cached_exact_apsp, exact_sssp

        DEFAULT_ORACLE.clear()
        graph = erdos_renyi(18, 0.3, make_rng(21))
        fresh = exact_sssp(graph, 4).copy()  # nothing cached yet
        full = cached_exact_apsp(graph)
        hits_before = DEFAULT_ORACLE.hits
        served = exact_sssp(graph, 4)
        assert DEFAULT_ORACLE.hits == hits_before + 1  # came from the cache
        assert np.array_equal(served, fresh)
        assert np.array_equal(served, full[4])
        served[0] = -1.0  # a writable copy: must not touch the shared oracle
        assert not np.shares_memory(served, full)
        assert np.array_equal(cached_exact_apsp(graph), full)
        DEFAULT_ORACLE.clear()

    def test_thread_safety_smoke(self):
        cache = ExactOracleCache()
        graph = erdos_renyi(24, 0.2, make_rng(2))
        results = []

        def work():
            results.append(cache.get(graph))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(np.array_equal(r, results[0]) for r in results)
        assert len(cache) == 1


class TestBackCompatAliases:
    def test_graphs_reexports_are_the_dispatcher(self):
        assert minplus_product is minplus
        rng = make_rng(8)
        a = random_matrix(rng, (12, 12), integral=True)
        assert np.array_equal(minplus_square(a), reference(a, a))

    def test_legacy_block_argument_still_accepted(self):
        rng = make_rng(9)
        a = random_matrix(rng, (12, 12), integral=True)
        assert np.array_equal(minplus(a, a, block=4), reference(a, a))
        assert np.array_equal(minplus_product(a, a, block=4), reference(a, a))
