"""Tests for the graph container, generators, and exact distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    INF,
    WeightedGraph,
    clustered_zero_weight_graph,
    erdos_renyi,
    exact_apsp,
    exact_sssp,
    grid_graph,
    heavy_tail_weights,
    hop_diameter,
    hop_limited_distances,
    is_connected,
    minplus_product,
    path_with_shortcuts,
    polynomial_weights,
    preferential_attachment,
    random_regularish,
    shortest_path_hop_bound,
    uniform_weights,
    unit_weights,
    weighted_diameter,
)


class TestWeightedGraph:
    def test_basic_construction(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        assert g.n == 3
        assert g.num_edges == 2
        assert not g.directed

    def test_matrix_view(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        m = g.matrix()
        assert m[0, 1] == 2 and m[1, 0] == 2
        assert m[1, 2] == 3 and m[2, 1] == 3
        assert m[0, 2] == INF
        assert np.all(np.diag(m) == 0)

    def test_directed_matrix(self):
        g = WeightedGraph(3, [(0, 1, 2)], directed=True)
        m = g.matrix()
        assert m[0, 1] == 2
        assert m[1, 0] == INF

    def test_parallel_edges_keep_minimum(self):
        g = WeightedGraph(2, [(0, 1, 5), (0, 1, 3), (1, 0, 7)])
        assert g.num_edges == 1
        assert g.matrix()[0, 1] == 3

    def test_self_loops_dropped(self):
        g = WeightedGraph(2, [(0, 0, 1), (0, 1, 2)])
        assert g.num_edges == 1

    def test_positive_weight_enforced(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, 0)])
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, -1)], require_positive=False)

    def test_integer_weight_enforced(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 1, 1.5)])
        g = WeightedGraph(2, [(0, 1, 1.5)], require_integer=False)
        assert g.matrix()[0, 1] == 1.5

    def test_node_id_validation(self):
        with pytest.raises(GraphError):
            WeightedGraph(2, [(0, 5, 1)])
        with pytest.raises(GraphError):
            WeightedGraph(2, [(-1, 0, 1)])

    def test_adjacency_sorted_by_weight_then_id(self):
        g = WeightedGraph(4, [(0, 3, 2), (0, 1, 2), (0, 2, 1)])
        neighbours = g.adjacency()[0]
        assert neighbours == [(2, 1.0), (1, 2.0), (3, 2.0)]

    def test_k_shortest_out_edges(self):
        g = WeightedGraph(4, [(0, 3, 2), (0, 1, 2), (0, 2, 1)])
        assert g.k_shortest_out_edges(0, 2) == [(2, 1.0), (1, 2.0)]
        assert g.k_shortest_out_edges(0, 0) == []

    def test_from_matrix_roundtrip(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        g2 = WeightedGraph.from_matrix(g.matrix())
        assert np.array_equal(g.matrix(), g2.matrix())

    def test_union_keeps_minima(self):
        g = WeightedGraph(3, [(0, 1, 5)])
        h = WeightedGraph(3, [(0, 1, 3), (1, 2, 2)])
        u = g.union(h)
        assert u.matrix()[0, 1] == 3
        assert u.matrix()[1, 2] == 2

    def test_union_directedness_mismatch(self):
        g = WeightedGraph(2, [(0, 1, 1)])
        h = WeightedGraph(2, [(0, 1, 1)], directed=True)
        with pytest.raises(GraphError):
            g.union(h)

    def test_scale_weights(self):
        g = WeightedGraph(2, [(0, 1, 3)])
        assert g.scale_weights(2.0).matrix()[0, 1] == 6

    def test_max_weight(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 9)])
        assert g.max_weight() == 9
        assert WeightedGraph(2).max_weight() == 0


class TestGenerators:
    def test_erdos_renyi_connected(self, rng):
        g = erdos_renyi(50, 0.05, rng)
        assert is_connected(g)

    def test_erdos_renyi_p_zero_still_tree(self, rng):
        g = erdos_renyi(20, 0.0, rng)
        assert g.num_edges >= 19
        assert is_connected(g)

    def test_erdos_renyi_disconnected_allowed(self, rng):
        g = erdos_renyi(20, 0.0, rng, connected=False)
        assert g.num_edges == 0

    def test_grid_shape(self, rng):
        g = grid_graph(4, rng)
        assert g.n == 16
        assert g.num_edges == 2 * 4 * 3  # 24 for a 4x4 grid

    def test_torus_has_more_edges(self, rng):
        plain = grid_graph(4, rng)
        torus = grid_graph(4, rng, torus=True)
        assert torus.num_edges > plain.num_edges

    def test_path_with_shortcuts(self, rng):
        g = path_with_shortcuts(30, rng, shortcut_count=3)
        assert is_connected(g)
        assert g.num_edges >= 29

    def test_preferential_attachment_connected(self, rng):
        g = preferential_attachment(40, 2, rng)
        assert is_connected(g)

    def test_random_regularish(self, rng):
        g = random_regularish(30, 4, rng)
        assert is_connected(g)

    def test_clustered_zero_weights(self, rng):
        g = clustered_zero_weight_graph(4, 5, rng)
        assert g.n == 20
        assert float(g.edge_w.min()) == 0.0
        assert is_connected(g)

    def test_weight_samplers(self, rng):
        for sampler in (
            uniform_weights(1, 9),
            heavy_tail_weights(),
            polynomial_weights(64),
            unit_weights(),
        ):
            w = sampler(rng, 100)
            assert np.all(w >= 1)
            assert np.all(w == np.floor(w))

    def test_uniform_weights_validation(self):
        with pytest.raises(ValueError):
            uniform_weights(0, 5)
        with pytest.raises(ValueError):
            uniform_weights(5, 2)


class TestDistances:
    def test_exact_apsp_triangle(self):
        g = WeightedGraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        d = exact_apsp(g)
        assert d[0, 2] == 2
        assert d[2, 0] == 2

    def test_exact_sssp_matches_apsp(self, small_graph):
        d = exact_apsp(small_graph)
        row = exact_sssp(small_graph, 3)
        assert np.allclose(d[3], row)

    def test_minplus_power_equals_dijkstra(self, small_graph):
        d = exact_apsp(small_graph)
        m = hop_limited_distances(small_graph.matrix(), small_graph.n)
        assert np.allclose(d, m)

    def test_hop_limited_is_monotone(self, small_graph):
        m = small_graph.matrix()
        one = hop_limited_distances(m, 1)
        two = hop_limited_distances(m, 2)
        four = hop_limited_distances(m, 4)
        assert np.all(two <= one + 1e-12)
        assert np.all(four <= two + 1e-12)

    def test_minplus_product_brute_force(self, rng):
        a = rng.integers(1, 10, size=(5, 5)).astype(float)
        b = rng.integers(1, 10, size=(5, 5)).astype(float)
        got = minplus_product(a, b)
        want = np.full((5, 5), INF)
        for i in range(5):
            for j in range(5):
                want[i, j] = min(a[i, k] + b[k, j] for k in range(5))
        assert np.allclose(got, want)

    def test_weighted_diameter(self):
        g = WeightedGraph(3, [(0, 1, 2), (1, 2, 3)])
        assert weighted_diameter(g) == 5

    def test_weighted_diameter_disconnected(self):
        g = WeightedGraph(4, [(0, 1, 1)])
        assert weighted_diameter(g) == INF

    def test_hop_diameter_path(self):
        g = WeightedGraph(5, [(i, i + 1, 7) for i in range(4)])
        assert hop_diameter(g) == 4

    def test_shortest_path_hop_bound(self):
        g = WeightedGraph(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)])
        hops = shortest_path_hop_bound(g)
        assert hops[0, 1] == 1
        # 0 -> 3 shortest path has 3 hops; the doubling bound may report 4.
        assert 3 <= hops[0, 3] <= 4


class TestHopBoundBufferReuse:
    """Regression: ``shortest_path_hop_bound`` doubles the current power
    into a reused spare buffer; hop bounds must match the formulation
    that allocates a fresh product every iteration."""

    def test_bit_identical_to_fresh_allocation_doubling(self):
        from repro.semiring.kernels import minplus_square

        rng = np.random.default_rng(13)
        graph = erdos_renyi(36, 0.12, rng)
        dist = exact_apsp(graph)
        matrix = graph.matrix()
        n = graph.n

        reference = np.full((n, n), INF)
        reference[np.isclose(matrix, dist) & np.isfinite(dist)] = 1.0
        np.fill_diagonal(reference, 0.0)
        current = np.array(matrix)
        h = 1
        while h < n:
            current = minplus_square(current)
            h *= 2
            newly = (
                np.isclose(current, dist)
                & np.isfinite(dist)
                & ~np.isfinite(reference)
            )
            reference[newly] = float(h)
            if np.all(np.isfinite(reference[np.isfinite(dist)])):
                break

        hops = shortest_path_hop_bound(graph, dist=dist)
        assert np.array_equal(hops, reference)
