"""Tests for the extended generator set (hypercube, expander, geometric,
directed ring) and pipeline behaviour on them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp_small_diameter
from repro.graphs import (
    check_estimate,
    directed_ring_with_chords,
    exact_apsp,
    hop_diameter,
    hypercube_graph,
    is_connected,
    margulis_expander,
    random_geometric,
)

from tests.helpers import make_rng


class TestHypercube:
    def test_structure(self, rng):
        graph = hypercube_graph(4, rng)
        assert graph.n == 16
        assert graph.num_edges == 16 * 4 // 2
        assert is_connected(graph)

    def test_log_diameter(self, rng):
        graph = hypercube_graph(5, rng)
        assert hop_diameter(graph) == 5

    def test_invalid_dimension(self, rng):
        with pytest.raises(ValueError):
            hypercube_graph(0, rng)

    def test_pipeline_runs(self):
        rng = make_rng(0)
        graph = hypercube_graph(5, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9


class TestExpander:
    def test_structure(self, rng):
        graph = margulis_expander(6, rng)
        assert graph.n == 36
        assert is_connected(graph)

    def test_logarithmic_diameter(self, rng):
        small = margulis_expander(4, rng)
        large = margulis_expander(8, rng)
        # expander diameters grow logarithmically: x4 nodes, diameter +O(1)
        assert hop_diameter(large) <= hop_diameter(small) + 4

    def test_invalid_side(self, rng):
        with pytest.raises(ValueError):
            margulis_expander(1, rng)

    def test_pipeline_runs(self):
        rng = make_rng(1)
        graph = margulis_expander(7, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9


class TestRandomGeometric:
    def test_connected(self, rng):
        graph = random_geometric(40, 0.25, rng)
        assert is_connected(graph)

    def test_weights_positive_integers(self, rng):
        graph = random_geometric(30, 0.3, rng)
        assert np.all(graph.edge_w >= 1)
        assert np.all(graph.edge_w == np.floor(graph.edge_w))

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            random_geometric(1, 0.2, rng)
        with pytest.raises(ValueError):
            random_geometric(10, 0.0, rng)

    def test_greedy_routing_loves_geometry(self):
        """On geometric graphs, greedy forwarding from exact estimates is
        optimal and from approximate estimates stays short."""
        from repro.core.routing_tables import routing_quality

        rng = make_rng(2)
        graph = random_geometric(48, 0.25, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        quality = routing_quality(graph, result.estimate, exact, rng, samples=100)
        assert quality.delivery_rate >= 0.75
        if quality.delivered:
            assert quality.max_stretch <= result.factor + 1e-9


class TestDirectedRing:
    def test_strongly_connected(self, rng):
        graph = directed_ring_with_chords(20, 10, rng)
        assert graph.directed
        assert np.all(np.isfinite(exact_apsp(graph)))

    def test_asymmetric_distances(self, rng):
        graph = directed_ring_with_chords(20, 0, rng)
        exact = exact_apsp(graph)
        # a pure directed cycle: d(0, 1) is one edge, d(1, 0) is n-1 edges
        assert exact[0, 1] < exact[1, 0]

    def test_directed_hopset_and_knearest(self):
        """Sections 4 and 5 on a genuinely directed workload."""
        from repro.core import build_knearest_hopset, knearest_exact_via_hopset
        from tests.helpers import brute_force_k_nearest

        rng = make_rng(3)
        graph = directed_ring_with_chords(24, 20, rng)
        exact = exact_apsp(graph)
        delta = exact * 2.0
        np.fill_diagonal(delta, 0.0)
        hopset = build_knearest_hopset(graph, delta, 2.0)
        assert hopset.hopset.directed
        augmented = hopset.augmented(graph)
        assert np.allclose(exact_apsp(augmented), exact)
        knn = knearest_exact_via_hopset(
            augmented.matrix(), 4, 2, hopset.beta_bound
        )
        for u in range(graph.n):
            ids, dists = brute_force_k_nearest(exact, u, 4)
            assert np.allclose(np.sort(knn.values[u]), np.sort(dists))

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            directed_ring_with_chords(2, 0, rng)
