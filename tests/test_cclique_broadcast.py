"""Tests for broadcast / gather / all-to-all primitives (Section 2.3)."""

from __future__ import annotations

import pytest

from repro.cclique import (
    LoadPreconditionError,
    SimulatedClique,
    all_to_all_one_word,
    broadcast_words,
    gather_one_word,
)


class TestBroadcastWords:
    def test_everyone_receives_everything_in_two_rounds(self):
        n = 8
        clique = SimulatedClique(n, bandwidth_words=2)
        words = [10 * i for i in range(n)]
        received, rounds = broadcast_words(clique, source=3, words=words)
        assert rounds == 2
        for node in range(n):
            assert received[node] == words

    def test_partial_word_list(self):
        n = 8
        clique = SimulatedClique(n, bandwidth_words=2)
        received, _ = broadcast_words(clique, source=0, words=[1, 2, 3])
        for node in range(n):
            assert received[node] == [1, 2, 3]

    def test_too_many_words_rejected(self):
        clique = SimulatedClique(4, bandwidth_words=2)
        with pytest.raises(LoadPreconditionError):
            broadcast_words(clique, source=0, words=list(range(5)))

    def test_respects_model_bandwidth(self):
        """The schedule stays within one message per ordered pair per round
        (strict mode would raise otherwise)."""
        n = 16
        clique = SimulatedClique(n, bandwidth_words=2, strict=True)
        received, _ = broadcast_words(clique, source=0, words=list(range(n)))
        assert received[n - 1] == list(range(n))


class TestGather:
    def test_target_collects_all(self):
        n = 6
        clique = SimulatedClique(n, bandwidth_words=2)
        words = [i * i for i in range(n)]
        collected, rounds = gather_one_word(clique, target=2, words=words)
        assert rounds == 1
        assert collected == words

    def test_wrong_arity(self):
        clique = SimulatedClique(4, bandwidth_words=2)
        with pytest.raises(ValueError):
            gather_one_word(clique, target=0, words=[1, 2])


class TestAllToAll:
    def test_exchange(self):
        n = 5
        clique = SimulatedClique(n, bandwidth_words=2)
        words = [[u * 10 + v for v in range(n)] for u in range(n)]
        received, rounds = all_to_all_one_word(clique, words)
        assert rounds == 1
        for v in range(n):
            for u in range(n):
                assert received[v][u] == u * 10 + v

    def test_wrong_shape(self):
        clique = SimulatedClique(3, bandwidth_words=2)
        with pytest.raises(ValueError):
            all_to_all_one_word(clique, [[1, 2], [3, 4]])
