"""Tests for Lenzen-style routing on the message-level simulator (E10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import (
    LoadPreconditionError,
    Message,
    route_direct,
    route_randomized,
    route_two_phase,
    validate_loads,
)


def full_load_instance(n: int, rng: np.random.Generator):
    """Every node sends exactly n messages to a random permutation of
    targets, so every node also receives exactly n messages."""
    messages = []
    for _ in range(n):
        # One permutation round: sender i -> target perm[i].
        perm = rng.permutation(n)
        for sender in range(n):
            messages.append(Message(sender, int(perm[sender]), (sender,)))
    return messages


def skewed_instance(n: int):
    """All nodes send all their messages to node 0 (receive load n)."""
    return [Message(s, 0, (s,)) for s in range(n)]


def hot_pair_instance(n: int):
    """Node 0 sends n messages, all to node 1 (pair congestion n)."""
    return [Message(0, 1, (i,)) for i in range(n)]


class TestValidation:
    def test_loads_computed(self):
        messages = skewed_instance(8)
        max_sent, max_received = validate_loads(messages, 8)
        assert max_sent == 1
        assert max_received == 8

    def test_overload_raises(self):
        n = 8
        messages = [Message(0, i % n, (j,)) for j in range(40 * n) for i in [j]]
        # node 0 sends 40n messages > 32n limit
        with pytest.raises(LoadPreconditionError):
            validate_loads(messages, n)

    def test_receive_only_check(self):
        n = 8
        # many messages from one sender but receivers balanced
        messages = [
            Message(0, j % n, (j,)) for j in range(40 * n)
        ]
        with pytest.raises(LoadPreconditionError):
            validate_loads(messages, n)
        # allowed when sent-side checking is off and receives are fine
        max_sent, _ = validate_loads(messages, n, check_sent=False)
        assert max_sent == 40 * n


class TestTwoPhaseRouting:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_full_load_delivers_everything(self, n):
        rng = np.random.default_rng(n)
        messages = full_load_instance(n, rng)
        delivered, stats = route_two_phase(messages, n)
        assert stats.messages == n * n
        total = sum(len(v) for v in delivered.values())
        assert total == n * n

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_full_load_constant_rounds(self, n):
        """The headline of Lemma 2.1: O(1) rounds at O(n) load."""
        rng = np.random.default_rng(n + 1)
        messages = full_load_instance(n, rng)
        _, stats = route_two_phase(messages, n)
        # 2 coordination rounds + two relay phases; congestion spill should
        # stay a small constant independent of n.
        assert stats.rounds <= 12

    def test_payloads_preserved(self):
        n = 8
        messages = [Message(s, (s + 1) % n, (s, s * 10)) for s in range(n)]
        delivered, _ = route_two_phase(messages, n)
        for s in range(n):
            target = (s + 1) % n
            payloads = [m.payload for m in delivered[target]]
            assert (s, s * 10) in payloads

    def test_skewed_receiver(self):
        n = 16
        delivered, stats = route_two_phase(skewed_instance(n), n)
        assert len(delivered[0]) == n
        assert stats.rounds <= 12

    def test_hot_pair_balanced_by_relays(self):
        """n messages across one pair: direct needs n rounds, relayed O(1)."""
        n = 32
        messages = hot_pair_instance(n)
        _, direct_stats = route_direct(messages, n)
        _, relayed_stats = route_two_phase(messages, n)
        assert direct_stats.rounds >= n
        assert relayed_stats.rounds <= 12
        # Slot balancing puts at most ceil(n/n) = 1 message per relay.
        assert relayed_stats.relay_max_load == 1

    def test_senders_preserved(self):
        n = 8
        messages = [Message(s, 0, (s,)) for s in range(n)]
        delivered, _ = route_two_phase(messages, n)
        senders = sorted(m.sender for m in delivered[0])
        assert senders == list(range(n))


class TestRandomizedRouting:
    def test_delivers_everything(self):
        n = 16
        rng = np.random.default_rng(7)
        messages = full_load_instance(n, rng)
        delivered, stats = route_randomized(messages, n, rng)
        assert sum(len(v) for v in delivered.values()) == n * n

    def test_rounds_small_whp(self):
        n = 32
        rng = np.random.default_rng(8)
        messages = full_load_instance(n, rng)
        _, stats = route_randomized(messages, n, rng)
        # Valiant routing: max relay load O(n) w.h.p. -> constant-ish rounds.
        assert stats.rounds <= 24


class TestDirectRouting:
    def test_balanced_instance_one_ish_round(self):
        n = 8
        messages = [Message(s, (s + 1) % n, (s,)) for s in range(n)]
        _, stats = route_direct(messages, n)
        assert stats.rounds == 1

    def test_congestion_costs_rounds(self):
        n = 8
        _, stats = route_direct(hot_pair_instance(n), n)
        assert stats.rounds == n
