"""Out-of-core construction and serving paths (PR 9's row-sharded plane).

``next_hop_table`` with preallocated ``out``/``hop_weight_out`` buffers
(typically memmaps) must be bit-identical to the in-RAM build while its
*resident* working set stays bounded by the chunked score tensors — the
property that lets oracle construction reach ``n = 4096`` without a full
``(n, n)`` int64 in RAM.  The same row-sharding shows up in
``route_batch(chunk_queries=...)``, float32/memmap-backed
:class:`DistanceOracle` artifacts, and the byte accounting of
:class:`OracleStore`.
"""

from __future__ import annotations

import hashlib
import tracemalloc

import numpy as np
import pytest

from repro.core.routing_tables import (
    next_hop_table,
    next_hop_table_reference,
)
from repro.graphs import erdos_renyi
from repro.serve import DistanceOracle, route_batch
from repro.serve.oracle import _memmap_backed
from repro.serve.store import OracleStore, estimate_digest

from tests.helpers import make_rng


def toy_estimate(graph, rng):
    """A plausible (n, n) float64 'estimate' — contents are irrelevant to
    table mechanics, only shape/dtype/finiteness patterns matter here."""
    est = rng.uniform(1.0, 50.0, (graph.n, graph.n))
    np.fill_diagonal(est, 0.0)
    return est


class TestRowShardedNextHop:
    def test_out_buffers_bit_identical(self):
        rng = make_rng(61)
        graph = erdos_renyi(48, 0.2, rng)
        estimate = toy_estimate(graph, rng)
        expected = next_hop_table(graph, estimate)
        table = np.empty((48, 48), dtype=np.int64)
        hop_weight = np.empty((48, 48), dtype=np.float64)
        result = next_hop_table(
            graph, estimate, out=table, hop_weight_out=hop_weight
        )
        assert result is table
        assert np.array_equal(table, expected)
        assert np.array_equal(expected, next_hop_table_reference(graph, estimate))

    def test_hop_weight_matches_matrix_gather(self):
        rng = make_rng(62)
        graph = erdos_renyi(40, 0.25, rng)
        estimate = toy_estimate(graph, rng)
        table = np.empty((40, 40), dtype=np.int64)
        hop_weight = np.empty((40, 40), dtype=np.float64)
        next_hop_table(graph, estimate, out=table, hop_weight_out=hop_weight)
        # The historical construction: gather w(u, table[u, t]) from the
        # dense matrix after the fact.
        matrix = graph.matrix()
        legacy = np.where(
            table >= 0,
            matrix[np.arange(40)[:, None], np.maximum(table, 0)],
            np.inf,
        )
        np.fill_diagonal(legacy, 0.0)
        assert np.array_equal(hop_weight, legacy)

    def test_memmap_out_buffers(self, tmp_path):
        rng = make_rng(63)
        graph = erdos_renyi(32, 0.3, rng)
        estimate = toy_estimate(graph, rng)
        table = np.memmap(tmp_path / "t.bin", dtype=np.int64,
                          mode="w+", shape=(32, 32))
        hop_weight = np.memmap(tmp_path / "w.bin", dtype=np.float64,
                               mode="w+", shape=(32, 32))
        next_hop_table(graph, estimate, out=table, hop_weight_out=hop_weight)
        assert np.array_equal(np.asarray(table),
                              next_hop_table(graph, estimate))

    def test_float32_estimate_matches_float64(self):
        rng = make_rng(64)
        graph = erdos_renyi(40, 0.25, rng)
        # Integer-valued weights: exactly representable in float32, so the
        # float64-upcast scoring must reproduce the float64 table exactly.
        est = rng.integers(1, 1000, (40, 40)).astype(np.float64)
        np.fill_diagonal(est, 0.0)
        t64 = next_hop_table(graph, est)
        t32 = next_hop_table(graph, est.astype(np.float32))
        assert np.array_equal(t32, t64)

    def test_out_validation(self):
        rng = make_rng(65)
        graph = erdos_renyi(10, 0.4, rng)
        estimate = toy_estimate(graph, rng)
        with pytest.raises(ValueError, match="int64"):
            next_hop_table(graph, estimate, out=np.empty((10, 10)))
        with pytest.raises(ValueError, match="float64"):
            next_hop_table(
                graph, estimate,
                out=np.empty((10, 10), dtype=np.int64),
                hop_weight_out=np.empty((10, 10), dtype=np.float32),
            )

    def test_peak_working_set_bounded_at_n2048(self):
        """The row-sharded build never materialises an extra (n, n) array.

        Inputs and destination buffers are allocated *before* tracing
        starts, so the traced peak is exactly the transient working set
        of ``next_hop_table`` — which must stay far below one (n, n)
        int64 table (32 MiB at n=2048; the bound here is half of that).
        """
        n = 2048
        rng = make_rng(66)
        graph = erdos_renyi(n, 6.0 / n, rng)
        graph.csr()  # pre-build the adjacency the table construction reads
        estimate = rng.uniform(1.0, 50.0, (n, n))
        np.fill_diagonal(estimate, 0.0)
        table = np.empty((n, n), dtype=np.int64)
        hop_weight = np.empty((n, n), dtype=np.float64)
        tracemalloc.start()
        try:
            next_hop_table(
                graph, estimate, chunk_elems=1 << 17,
                out=table, hop_weight_out=hop_weight,
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # A handful of ~1 MiB score tensors are live per chunk; the bound
        # leaves headroom while still ruling out any (n, n) temporary.
        assert peak < table.nbytes / 2, (
            f"peak transient working set {peak / 2**20:.1f} MiB is not "
            f"bounded (table alone is {table.nbytes / 2**20:.1f} MiB)"
        )
        # And the sharded build still produced a real table.
        assert np.array_equal(np.diag(table), np.arange(n))
        assert np.all((table >= -1) & (table < n))


class TestChunkedRouteBatch:
    def _oracle(self, seed=71, n=48):
        rng = make_rng(seed)
        graph = erdos_renyi(n, 0.2, rng)
        estimate = toy_estimate(graph, rng)
        return DistanceOracle.build(graph, estimate), rng

    @pytest.mark.parametrize("chunk", [1, 7, 16, 1000])
    def test_bit_identical_to_unchunked(self, chunk):
        oracle, rng = self._oracle()
        sources = rng.integers(0, oracle.n, 50)
        targets = rng.integers(0, oracle.n, 50)
        whole = route_batch(oracle, sources, targets, record_paths=True)
        parts = route_batch(
            oracle, sources, targets, record_paths=True, chunk_queries=chunk
        )
        assert np.array_equal(parts.status, whole.status)
        assert np.array_equal(parts.delivered, whole.delivered)
        assert np.array_equal(parts.lengths, whole.lengths)
        assert np.array_equal(parts.hops, whole.hops)
        # Paths agree hop-for-hop (widths may differ by -1 padding only).
        width = min(parts.paths.shape[1], whole.paths.shape[1])
        assert np.array_equal(parts.paths[:, :width], whole.paths[:, :width])
        assert np.all(parts.paths[:, width:] == -1)
        assert np.all(whole.paths[:, width:] == -1)

    def test_chunk_validation(self):
        oracle, _ = self._oracle()
        with pytest.raises(ValueError, match="chunk_queries"):
            route_batch(oracle, [0], [1], chunk_queries=0)


class TestFloat32OracleArtifacts:
    def _float32_oracle(self, seed=81, n=40):
        rng = make_rng(seed)
        graph = erdos_renyi(n, 0.25, rng)
        est = rng.integers(1, 1000, (n, n)).astype(np.float32)
        np.fill_diagonal(est, 0.0)
        return DistanceOracle.build(graph, est, meta={"variant": "f32"}), graph

    def test_build_adopts_float32_without_densifying(self):
        oracle, graph = self._float32_oracle()
        assert oracle.estimate.dtype == np.float32
        assert oracle.meta["estimate_dtype"] == "float32"
        # The table must match a float64 build of the same estimate.
        f64 = DistanceOracle.build(
            graph, np.asarray(oracle.estimate, dtype=np.float64)
        )
        assert np.array_equal(oracle.next_hop, f64.next_hop)
        assert np.array_equal(oracle.hop_weight, f64.hop_weight)

    def test_query_many_upcasts_to_float64(self):
        oracle, _ = self._float32_oracle()
        got = oracle.query_many([0, 1], [2, 3])
        assert got.dtype == np.float64

    @pytest.mark.parametrize("encoding", ["b64", "list"])
    def test_save_load_preserves_dtype(self, tmp_path, encoding):
        oracle, _ = self._float32_oracle()
        path = str(tmp_path / "oracle.json")
        oracle.save(path, matrix_encoding=encoding)
        loaded = DistanceOracle.load(path)
        assert loaded.estimate.dtype == np.float32
        assert np.array_equal(loaded.estimate, oracle.estimate)
        assert np.array_equal(loaded.next_hop, oracle.next_hop)
        assert loaded.content_key() == oracle.content_key()

    def test_float64_payloads_still_round_trip(self, tmp_path):
        rng = make_rng(82)
        graph = erdos_renyi(24, 0.3, rng)
        oracle = DistanceOracle.build(graph, toy_estimate(graph, rng))
        path = str(tmp_path / "oracle.json")
        oracle.save(path)
        loaded = DistanceOracle.load(path)
        assert loaded.estimate.dtype == np.float64
        assert loaded.content_key() == oracle.content_key()


class TestMemmapBackedOracles:
    def test_build_with_memmap_dir(self, tmp_path):
        rng = make_rng(91)
        graph = erdos_renyi(32, 0.25, rng)
        estimate = toy_estimate(graph, rng)
        dense = DistanceOracle.build(graph, estimate)
        spilled = DistanceOracle.build(
            graph, estimate, memmap_dir=str(tmp_path)
        )
        assert _memmap_backed(spilled.next_hop)
        assert _memmap_backed(spilled.hop_weight)
        assert np.array_equal(spilled.next_hop, dense.next_hop)
        assert spilled.resident_nbytes < spilled.nbytes
        assert dense.resident_nbytes == dense.nbytes

    def test_load_memmap_dir_and_serve(self, tmp_path):
        rng = make_rng(92)
        graph = erdos_renyi(32, 0.25, rng)
        oracle = DistanceOracle.build(graph, toy_estimate(graph, rng))
        path = str(tmp_path / "oracle.json")
        oracle.save(path)
        loaded = DistanceOracle.load(path, memmap_dir=str(tmp_path))
        for name in ("estimate", "next_hop", "hop_weight"):
            assert _memmap_backed(getattr(loaded, name)), name
        assert loaded.resident_nbytes == 0
        assert loaded.describe()["resident_nbytes"] == 0
        # Queries and routing still serve bit-identical answers.
        sources = rng.integers(0, 32, 20)
        targets = rng.integers(0, 32, 20)
        assert np.array_equal(
            loaded.query_many(sources, targets),
            oracle.query_many(sources, targets),
        )
        got = route_batch(loaded, sources, targets)
        want = route_batch(oracle, sources, targets)
        assert np.array_equal(got.status, want.status)
        assert np.array_equal(got.lengths, want.lengths)

    def test_finalizer_removes_backing_dir(self, tmp_path):
        rng = make_rng(93)
        graph = erdos_renyi(16, 0.4, rng)
        oracle = DistanceOracle.build(graph, toy_estimate(graph, rng))
        clone = oracle.memmap_to(str(tmp_path))
        assert any(tmp_path.iterdir())
        del clone
        import gc

        gc.collect()
        assert not any(tmp_path.iterdir())


class TestStoreByteAccounting:
    def test_store_charges_resident_bytes(self, tmp_path):
        rng = make_rng(101)
        graph = erdos_renyi(24, 0.3, rng)
        estimate = toy_estimate(graph, rng)
        dense = DistanceOracle.build(
            graph, estimate, meta={"variant": "dense"}
        )
        spilled = dense.memmap_to(str(tmp_path))
        store = OracleStore(max_entries=8, max_bytes=10 * dense.nbytes)
        store.put(dense, key="dense")
        assert store.nbytes == dense.nbytes
        store.put(spilled, key="spilled")
        # The memmap clone adds nothing resident.
        assert store.nbytes == dense.nbytes
        assert spilled.resident_nbytes == 0

    def test_eviction_uses_resident_bytes(self, tmp_path):
        rng = make_rng(102)
        graph = erdos_renyi(24, 0.3, rng)
        estimate = toy_estimate(graph, rng)
        dense = DistanceOracle.build(graph, estimate)
        spilled = dense.memmap_to(str(tmp_path))
        # Budget below one dense oracle: memmap clones still all fit.
        store = OracleStore(max_entries=8, max_bytes=dense.nbytes // 2)
        for i in range(4):
            store.put(spilled, key=f"mm-{i}")
        assert len(store) == 4 and store.evictions == 0
        store.put(dense, key="dense")
        # The oversized dense entry evicts LRU entries but is itself kept.
        assert "dense" in [k for k in store._store]


class TestEstimateDigest:
    def test_float64_digest_unchanged(self):
        rng = make_rng(111)
        arr = rng.uniform(0, 10, (37, 53))
        expected = hashlib.sha256(
            np.ascontiguousarray(arr, dtype=np.float64).tobytes()
        ).hexdigest()
        assert estimate_digest(arr) == expected

    def test_float32_hashes_raw_bytes(self):
        rng = make_rng(112)
        arr = rng.uniform(0, 10, (20, 20)).astype(np.float32)
        expected = hashlib.sha256(arr.tobytes()).hexdigest()
        assert estimate_digest(arr) == expected
        # Distinct from the float64 digest of the same values.
        assert estimate_digest(arr) != estimate_digest(
            arr.astype(np.float64)
        )

    def test_integer_input_casts_to_float64(self):
        arr = np.arange(16, dtype=np.int64).reshape(4, 4)
        expected = hashlib.sha256(
            arr.astype(np.float64).tobytes()
        ).hexdigest()
        assert estimate_digest(arr) == expected
