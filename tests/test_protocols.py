"""Tests for the message-level protocols and their cross-validation.

The key property: each protocol's output is *identical* to the
corresponding global-state implementation, demonstrating that the ledger
layer charges rounds for communication schedules that genuinely exist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import SimulatedClique
from repro.core import build_knearest_hopset, knearest_one_round
from repro.graphs import erdos_renyi, exact_apsp, grid_graph
from repro.protocols import (
    elect_leader,
    global_edge_list,
    global_min,
    global_sum,
    run_bin_exchange,
    run_distributed_bellman_ford,
    run_hopset_protocol,
    run_knearest_broadcast_protocol,
    share_flags,
)

from tests.helpers import make_rng, synthetic_approximation


class TestAggregation:
    def test_leader_is_minimum(self):
        clique = SimulatedClique(8, bandwidth_words=2)
        leader, rounds = elect_leader(clique, ids=[5, 3, 9, 1, 7, 2, 8, 6])
        assert leader == 1
        assert rounds == 2

    def test_leader_default_ids(self):
        clique = SimulatedClique(5, bandwidth_words=2)
        leader, _ = elect_leader(clique)
        assert leader == 0

    def test_global_min(self):
        clique = SimulatedClique(6, bandwidth_words=2)
        value, rounds = global_min(clique, [4.0, 2.0, 9.0, 7.0, 3.0, 5.0])
        assert value == 2.0
        assert rounds == 2

    def test_global_sum(self):
        clique = SimulatedClique(4, bandwidth_words=2)
        value, _ = global_sum(clique, [1.0, 2.0, 3.0, 4.0])
        assert value == 10.0

    def test_share_flags(self):
        clique = SimulatedClique(5, bandwidth_words=2)
        flags = [True, False, True, True, False]
        table, rounds = share_flags(clique, flags)
        assert table == flags
        assert rounds == 1

    def test_arity_validation(self):
        clique = SimulatedClique(3, bandwidth_words=2)
        with pytest.raises(ValueError):
            global_min(clique, [1.0])
        with pytest.raises(ValueError):
            share_flags(clique, [True])


class TestHopsetProtocol:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_to_global_implementation(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(20, 0.25, rng)
        exact = exact_apsp(graph)
        delta = synthetic_approximation(exact, 3.0, rng)
        global_result = build_knearest_hopset(graph, delta, 3.0)
        protocol = run_hopset_protocol(graph, delta, k=global_result.k)
        assert set(protocol.hopset.edges()) == set(global_result.hopset.edges())

    def test_round_count_constant_ish(self):
        rng = make_rng(3)
        graph = erdos_renyi(24, 0.2, rng)
        exact = exact_apsp(graph)
        protocol = run_hopset_protocol(graph, exact)
        # three routed instances, each a measured constant
        assert protocol.rounds <= 36

    def test_shape_validation(self):
        rng = make_rng(4)
        graph = erdos_renyi(10, 0.3, rng)
        with pytest.raises(ValueError):
            run_hopset_protocol(graph, np.zeros((3, 3)))


class TestKNearestBroadcastProtocol:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_to_global_implementation(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(18, 0.3, rng)
        k, h = 3, 2
        protocol = run_knearest_broadcast_protocol(graph, k, h)
        reference = knearest_one_round(graph.matrix(), k, h, validate=False)
        assert np.array_equal(protocol.result.indices, reference.indices)
        finite = np.isfinite(reference.values)
        assert np.allclose(
            protocol.result.values[finite], reference.values[finite]
        )

    def test_rounds_scale_with_k(self):
        rng = make_rng(2)
        graph = erdos_renyi(16, 0.4, rng)
        small = run_knearest_broadcast_protocol(graph, 2, 2)
        large = run_knearest_broadcast_protocol(graph, 5, 2)
        assert large.rounds >= small.rounds


class TestBinExchange:
    def test_owner_receives_its_bins(self):
        rng = make_rng(5)
        n, k, h = 64, 8, 2
        graph = erdos_renyi(n, 0.2, rng)
        result = run_bin_exchange(graph, k, h)
        edges = global_edge_list(graph, k)
        for owner, combination in enumerate(result.assignments):
            expected = set()
            for bin_index in combination:
                start = bin_index * result.plan.bin_size
                stop = min(len(edges), start + result.plan.bin_size)
                for source, endpoint, weight in edges[start:stop]:
                    if np.isfinite(weight):
                        expected.add((source, endpoint, weight))
            assert set(result.received[owner]) == expected

    def test_receive_load_linear(self):
        rng = make_rng(6)
        n, k, h = 64, 8, 2
        graph = erdos_renyi(n, 0.2, rng)
        result = run_bin_exchange(graph, k, h)
        # Lemma 5.3: each owner learns h bins of O(n/h) edges = O(n).
        assert result.stats.max_received_per_node <= 4 * n
        assert result.stats.rounds <= 16

    def test_path_coverage_claim(self):
        """Lemma 5.4's structural fact: every 2-edge path of the filtered
        graph lies inside the bins of some h-combination whose first bin
        holds the first edge."""
        rng = make_rng(7)
        n, k, h = 64, 8, 2
        graph = erdos_renyi(n, 0.2, rng)
        result = run_bin_exchange(graph, k, h)
        edges = global_edge_list(graph, k)
        plan = result.plan
        # bin index of each (position in M)
        combos = {
            (combo[0], frozenset(combo)) for combo in result.assignments
        }
        # sample some 2-edge paths u -> x -> y from the filtered lists
        lists = [graph.k_shortest_out_edges(u, k) for u in range(n)]
        checked = 0
        for u in range(0, n, 7):
            for x, _ in lists[u][:2]:
                for y, _ in lists[x][:2]:
                    first_positions = [
                        u * k + j for j, (e, _) in enumerate(lists[u]) if e == x
                    ]
                    second_positions = [
                        x * k + j for j, (e, _) in enumerate(lists[x]) if e == y
                    ]
                    found = False
                    for p1 in first_positions:
                        for p2 in second_positions:
                            b1 = plan.bin_of_global_index(p1)
                            b2 = plan.bin_of_global_index(p2)
                            if b1 == b2:
                                continue  # needs distinct bins
                            if (b1, frozenset((b1, b2))) in combos:
                                found = True
                    if first_positions and second_positions:
                        # distinct-bin requirement can fail only when both
                        # edges share a bin; then a combination with that
                        # bin first also covers the path (same owner holds
                        # both edges).
                        same_bin = any(
                            plan.bin_of_global_index(p1)
                            == plan.bin_of_global_index(p2)
                            for p1 in first_positions
                            for p2 in second_positions
                        )
                        assert found or same_bin
                        checked += 1
        assert checked > 0

    def test_trivial_plan_rejected(self):
        rng = make_rng(8)
        graph = erdos_renyi(16, 0.4, rng)
        with pytest.raises(ValueError):
            run_bin_exchange(graph, 1, 8)


class TestDistributedBellmanFord:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_exact_convergence(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(12, 0.35, rng)
        run = run_distributed_bellman_ford(graph)
        assert np.allclose(run.estimate, exact_apsp(graph))

    def test_grid_convergence(self):
        rng = make_rng(2)
        graph = grid_graph(3, rng)
        run = run_distributed_bellman_ford(graph, horizon_factor=4)
        assert np.allclose(run.estimate, exact_apsp(graph))

    def test_rounds_grow_with_hop_diameter(self):
        """The contrast with the paper: gossip rounds track the diameter."""
        from repro.graphs import WeightedGraph

        short = WeightedGraph(8, [(i, j, 1) for i in range(8) for j in range(i + 1, 8)])
        path = WeightedGraph(8, [(i, i + 1, 1) for i in range(7)])
        short_run = run_distributed_bellman_ford(short)
        path_run = run_distributed_bellman_ford(path, horizon_factor=4)
        assert np.allclose(path_run.estimate, exact_apsp(path))
        assert np.allclose(short_run.estimate, exact_apsp(short))

    def test_directed_rejected(self):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(3, [(0, 1, 1)], directed=True)
        with pytest.raises(ValueError):
            run_distributed_bellman_ford(graph)
