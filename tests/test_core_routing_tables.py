"""Tests for greedy routing tables built from APSP estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.routing_tables import (
    greedy_route,
    next_hop_table,
    next_hop_table_reference,
    routing_quality,
)
from repro.graphs import WeightedGraph, erdos_renyi, exact_apsp, grid_graph

from tests.helpers import make_rng


class TestNextHopTable:
    def test_exact_estimates_give_shortest_next_hop(self):
        graph = WeightedGraph(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)])
        exact = exact_apsp(graph)
        table = next_hop_table(graph, exact)
        assert table[0, 3] == 1  # via the cheap path, not the direct edge
        assert table[0, 1] == 1
        assert table[3, 0] == 2

    def test_diagonal_self(self):
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1)])
        table = next_hop_table(graph, exact_apsp(graph))
        assert np.array_equal(np.diag(table), np.arange(3))

    def test_isolated_node(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        table = next_hop_table(graph, exact_apsp(graph))
        assert table[2, 0] == -1
        assert table[0, 2] == -1

    def test_shape_validation(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            next_hop_table(graph, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            next_hop_table_reference(graph, np.zeros((2, 2)))

    def test_score_tie_broken_strictly_by_id(self):
        """Regression: a heavy low-ID and a light high-ID neighbour tie.

        Node 0 can forward to 1 (weight 5) or 2 (weight 1); the estimate
        makes both scores equal (5 + 0 == 1 + 4).  The documented rule is
        "ties strictly by ID", so node 1 must win even though the
        adjacency's (weight, id) sort lists node 2 first — the historical
        ``lexsort((ids, weights))`` key order picked 2.
        """
        graph = WeightedGraph(4, [(0, 1, 5), (0, 2, 1), (1, 3, 1), (2, 3, 1)])
        estimate = np.zeros((4, 4))
        estimate[1, 3] = 0.0
        estimate[2, 3] = 4.0
        assert next_hop_table(graph, estimate)[0, 3] == 1
        assert next_hop_table_reference(graph, estimate)[0, 3] == 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("p", [0.05, 0.2])
    def test_vectorized_matches_reference_random(self, seed, p):
        """Differential: the array program == the per-node reference."""
        rng = make_rng(seed)
        graph = erdos_renyi(40, p, rng)
        exact = exact_apsp(graph)
        noisy = exact * (1.0 + rng.random((40, 40)))
        np.fill_diagonal(noisy, 0.0)
        for estimate in (exact, noisy):
            expected = next_hop_table_reference(graph, estimate)
            assert np.array_equal(next_hop_table(graph, estimate), expected)
            # tiny chunks exercise the row-chunk loop
            assert np.array_equal(
                next_hop_table(graph, estimate, chunk_elems=64), expected
            )

    def test_vectorized_matches_reference_directed(self):
        rng = make_rng(9)
        n = 24
        u = rng.integers(0, n, size=120)
        v = rng.integers(0, n, size=120)
        w = rng.integers(1, 10, size=120).astype(float)
        keep = u != v
        graph = WeightedGraph.from_arrays(
            n, u[keep], v[keep], w[keep], directed=True
        )
        estimate = exact_apsp(graph)
        assert np.array_equal(
            next_hop_table(graph, estimate),
            next_hop_table_reference(graph, estimate),
        )


class TestGreedyRoute:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_estimates_route_optimally(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(30, 0.15, rng)
        exact = exact_apsp(graph)
        for _ in range(20):
            s, t = rng.integers(0, 30, size=2)
            if s == t:
                continue
            route = greedy_route(graph, exact, int(s), int(t))
            assert route.delivered
            assert route.length == pytest.approx(exact[s, t])

    def test_unreachable_target(self):
        graph = WeightedGraph(4, [(0, 1, 1), (2, 3, 1)])
        exact = exact_apsp(graph)
        route = greedy_route(graph, exact, 0, 3)
        assert not route.delivered

    def test_source_equals_target(self):
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1)])
        route = greedy_route(graph, exact_apsp(graph), 1, 1)
        assert route.delivered
        assert route.hops == 0
        assert route.length == 0.0

    def test_hop_budget_respected(self):
        graph = WeightedGraph(5, [(i, i + 1, 1) for i in range(4)])
        exact = exact_apsp(graph)
        route = greedy_route(graph, exact, 0, 4, max_hops=2)
        assert not route.delivered
        assert route.hops <= 3

    def test_loop_failure_excludes_cycle_closing_edge_weight(self):
        """Regression: a revisit must not add the final edge into length.

        On the 3-cycle a doctored table sends 0 -> 1 -> 0 for target 2:
        the failed route's length is the one traversed edge (1), not 2 —
        the packet is dropped at the revisited node, and the path still
        records the hop that closed the cycle.
        """
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        table = np.array([[0, 1, 1], [0, 1, 0], [0, 1, 2]], dtype=np.int64)
        route = greedy_route(graph, exact_apsp(graph), 0, 2, table=table)
        assert not route.delivered
        assert route.path == [0, 1, 0]
        assert route.length == pytest.approx(1.0)
        assert route.hops == 2


class TestRoutingQuality:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_approximate_estimates_still_route_well(self, seed):
        """Routing on a Theorem 7.1 estimate: high delivery, low stretch."""
        from repro.core import apsp_small_diameter

        rng = make_rng(seed)
        graph = erdos_renyi(48, 0.12, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        quality = routing_quality(graph, result.estimate, exact, rng, samples=100)
        assert quality.attempts > 0
        # greedy forwarding on approximate tables can loop on a few pairs;
        # delivery stays high but is legitimately below 100%.
        assert quality.delivery_rate >= 0.8
        if quality.delivered:
            assert quality.max_stretch <= result.factor + 1e-9

    def test_exact_estimates_stretch_one(self):
        rng = make_rng(5)
        graph = grid_graph(6, rng)
        exact = exact_apsp(graph)
        quality = routing_quality(graph, exact, exact, rng, samples=100)
        assert quality.delivery_rate == 1.0
        assert quality.mean_stretch == pytest.approx(1.0)

    def test_zero_attempts_reported_honestly(self):
        """Regression: no attempted pair must not read as 100% delivery."""
        graph = WeightedGraph(2, [])  # every sampled pair self/unreachable
        exact = exact_apsp(graph)
        quality = routing_quality(
            graph, exact, exact, make_rng(6), samples=30
        )
        assert quality.attempts == 0
        assert quality.delivered == 0
        assert np.isnan(quality.delivery_rate)

    def test_zero_distance_pairs_skipped_and_flagged(self):
        """Regression: exact distance 0 must not become an inf stretch."""
        graph = WeightedGraph(2, [(0, 1, 1)])
        estimate = exact_apsp(graph)
        zero_exact = np.zeros((2, 2))  # Theorem 2.1-style zero component
        quality = routing_quality(
            graph, estimate, zero_exact, make_rng(7), samples=50
        )
        assert quality.attempts == 0
        assert quality.skipped_zero > 0
        assert np.isnan(quality.delivery_rate)
