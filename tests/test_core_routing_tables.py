"""Tests for greedy routing tables built from APSP estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.routing_tables import (
    Route,
    greedy_route,
    next_hop_table,
    routing_quality,
)
from repro.graphs import WeightedGraph, erdos_renyi, exact_apsp, grid_graph

from tests.helpers import make_rng


class TestNextHopTable:
    def test_exact_estimates_give_shortest_next_hop(self):
        graph = WeightedGraph(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)])
        exact = exact_apsp(graph)
        table = next_hop_table(graph, exact)
        assert table[0, 3] == 1  # via the cheap path, not the direct edge
        assert table[0, 1] == 1
        assert table[3, 0] == 2

    def test_diagonal_self(self):
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1)])
        table = next_hop_table(graph, exact_apsp(graph))
        assert np.array_equal(np.diag(table), np.arange(3))

    def test_isolated_node(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        table = next_hop_table(graph, exact_apsp(graph))
        assert table[2, 0] == -1
        assert table[0, 2] == -1

    def test_shape_validation(self):
        graph = WeightedGraph(3, [(0, 1, 1)])
        with pytest.raises(ValueError):
            next_hop_table(graph, np.zeros((2, 2)))


class TestGreedyRoute:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_estimates_route_optimally(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(30, 0.15, rng)
        exact = exact_apsp(graph)
        for _ in range(20):
            s, t = rng.integers(0, 30, size=2)
            if s == t:
                continue
            route = greedy_route(graph, exact, int(s), int(t))
            assert route.delivered
            assert route.length == pytest.approx(exact[s, t])

    def test_unreachable_target(self):
        graph = WeightedGraph(4, [(0, 1, 1), (2, 3, 1)])
        exact = exact_apsp(graph)
        route = greedy_route(graph, exact, 0, 3)
        assert not route.delivered

    def test_source_equals_target(self):
        graph = WeightedGraph(3, [(0, 1, 1), (1, 2, 1)])
        route = greedy_route(graph, exact_apsp(graph), 1, 1)
        assert route.delivered
        assert route.hops == 0
        assert route.length == 0.0

    def test_hop_budget_respected(self):
        graph = WeightedGraph(5, [(i, i + 1, 1) for i in range(4)])
        exact = exact_apsp(graph)
        route = greedy_route(graph, exact, 0, 4, max_hops=2)
        assert not route.delivered
        assert route.hops <= 3


class TestRoutingQuality:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_approximate_estimates_still_route_well(self, seed):
        """Routing on a Theorem 7.1 estimate: high delivery, low stretch."""
        from repro.core import apsp_small_diameter

        rng = make_rng(seed)
        graph = erdos_renyi(48, 0.12, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        quality = routing_quality(graph, result.estimate, exact, rng, samples=100)
        assert quality.attempts > 0
        # greedy forwarding on approximate tables can loop on a few pairs;
        # delivery stays high but is legitimately below 100%.
        assert quality.delivery_rate >= 0.8
        if quality.delivered:
            assert quality.max_stretch <= result.factor + 1e-9

    def test_exact_estimates_stretch_one(self):
        rng = make_rng(5)
        graph = grid_graph(6, rng)
        exact = exact_apsp(graph)
        quality = routing_quality(graph, exact, exact, rng, samples=100)
        assert quality.delivery_rate == 1.0
        assert quality.mean_stretch == pytest.approx(1.0)
