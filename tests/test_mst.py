"""Tests for the Borůvka MSF engine (substrate of Theorem 2.1)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import WeightedGraph, clustered_zero_weight_graph, erdos_renyi
from repro.mst import (
    DisjointSets,
    connected_components_zero_subgraph,
    minimum_spanning_forest,
)


def nx_mst_weight(graph: WeightedGraph) -> float:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True))


class TestDisjointSets:
    def test_union_find(self):
        ds = DisjointSets(4)
        assert ds.union(0, 1)
        assert not ds.union(1, 0)
        assert ds.find(0) == ds.find(1)
        assert ds.find(2) != ds.find(0)


class TestMinimumSpanningForest:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_weight_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(40, 0.2, rng)
        forest = minimum_spanning_forest(graph)
        assert len(forest) == graph.n - 1
        assert sum(w for _, _, w in forest) == pytest.approx(nx_mst_weight(graph))

    def test_disconnected_forest(self):
        graph = WeightedGraph(5, [(0, 1, 1), (2, 3, 2)])
        forest = minimum_spanning_forest(graph)
        assert len(forest) == 2

    def test_deterministic(self, rng):
        graph = erdos_renyi(30, 0.3, rng)
        assert minimum_spanning_forest(graph) == minimum_spanning_forest(graph)

    def test_directed_rejected(self):
        graph = WeightedGraph(3, [(0, 1, 1)], directed=True)
        with pytest.raises(ValueError):
            minimum_spanning_forest(graph)


class TestZeroComponents:
    def test_labels_are_minimum_member(self):
        graph = WeightedGraph(
            6,
            [(0, 1, 0), (1, 2, 0), (3, 4, 0), (2, 3, 5), (4, 5, 7)],
            require_positive=False,
        )
        labels = connected_components_zero_subgraph(graph)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    def test_no_zero_edges(self):
        graph = WeightedGraph(4, [(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        labels = connected_components_zero_subgraph(graph)
        assert labels.tolist() == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cluster_graph_components(self, seed):
        rng = np.random.default_rng(seed)
        clusters, size = 5, 6
        graph = clustered_zero_weight_graph(clusters, size, rng)
        labels = connected_components_zero_subgraph(graph)
        # every cluster collapses to one label; there are exactly `clusters`
        assert len(np.unique(labels)) == clusters
        for c in range(clusters):
            block = labels[c * size : (c + 1) * size]
            assert len(np.unique(block)) == 1

    def test_zero_component_distances_are_zero(self):
        """Nodes in the same zero-component are at distance 0 (minimax
        property of MSTs guarantees the filter finds exactly them)."""
        rng = np.random.default_rng(3)
        graph = clustered_zero_weight_graph(4, 5, rng)
        from repro.graphs import exact_apsp

        exact = exact_apsp(graph)
        labels = connected_components_zero_subgraph(graph)
        same = labels[:, None] == labels[None, :]
        assert np.all(exact[same] == 0)
        assert np.all(exact[~same] > 0)
