"""Tests for skeleton graphs (Section 6, Lemmas 3.4 / 6.1-6.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core import (
    build_hitting_set,
    build_skeleton,
    extend_estimate,
    verify_skeleton_conditions,
)
from repro.core.skeleton import SkeletonError
from repro.graphs import (
    WeightedGraph,
    check_estimate,
    erdos_renyi,
    exact_apsp,
    grid_graph,
)
from repro.semiring import k_smallest_in_rows

from tests.helpers import make_rng

SEEDS = [0, 1, 2]


def exact_nearest_tables(exact: np.ndarray, k: int):
    return k_smallest_in_rows(exact, k)


class TestHittingSet:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_hits_every_set(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(50, 0.15, rng)
        exact = exact_apsp(graph)
        k = 7
        idx, _ = exact_nearest_tables(exact, k)
        members = build_hitting_set(idx, 50, k, rng)
        member_set = set(members.tolist())
        for u in range(50):
            assert member_set & set(idx[u].tolist()), f"set of {u} missed"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_size_near_bound(self, seed):
        """|S| stays within the O(n log k / k) bound (explicit constant)."""
        rng = make_rng(seed)
        n, k = 100, 10
        graph = erdos_renyi(n, 0.2, rng)
        exact = exact_apsp(graph)
        idx, _ = exact_nearest_tables(exact, k)
        members = build_hitting_set(idx, n, k, rng)
        assert len(members) <= 4 * n * np.log(k) / k + k

    def test_k_one_degenerates_gracefully(self, rng):
        # k = 1: every node's set is itself, so S = V.
        n = 10
        idx = np.arange(n, dtype=np.int64).reshape(n, 1)
        members = build_hitting_set(idx, n, 1, rng)
        assert len(members) == n

    def test_ledger_charged(self, rng):
        n = 20
        idx = np.arange(n, dtype=np.int64).reshape(n, 1)
        ledger = RoundLedger(n)
        build_hitting_set(idx, n, 1, rng, ledger=ledger)
        assert ledger.total_rounds > 0


class TestSkeletonSimplified:
    """Lemma 3.4: exact k-nearest inputs (a = 1)."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transfer_guarantee_exact_inner(self, seed):
        """With exact APSP on G_S (l = 1), eta is a 7-approximation."""
        rng = make_rng(seed)
        n, k = 48, 7
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        inner = exact_apsp(skeleton.graph)
        eta, factor = extend_estimate(skeleton, inner, 1.0)
        assert factor == pytest.approx(7.0)
        report = check_estimate(exact, eta)
        assert report.sound
        assert report.max_stretch <= 7.0 + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transfer_guarantee_spanner_inner(self, seed):
        """With an l-approximation on G_S, eta is a 7l-approximation."""
        rng = make_rng(seed)
        n, k = 48, 7
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        inner_exact = exact_apsp(skeleton.graph)
        l = 3.0
        inner = inner_exact * l  # synthetic worst-case l-approximation
        np.fill_diagonal(inner, 0.0)
        eta, factor = extend_estimate(skeleton, inner, l)
        assert factor == pytest.approx(21.0)
        report = check_estimate(exact, eta)
        assert report.sound
        assert report.max_stretch <= 21.0 + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_size_bound(self, seed):
        rng = make_rng(seed)
        n, k = 100, 10
        graph = erdos_renyi(n, 0.1, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        assert skeleton.num_nodes <= skeleton.size_bound + k

    def test_grid_graph(self, rng):
        graph = grid_graph(7, rng)
        exact = exact_apsp(graph)
        k = 7
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        eta, _ = extend_estimate(skeleton, exact_apsp(skeleton.graph), 1.0)
        report = check_estimate(exact, eta)
        assert report.sound
        assert report.max_stretch <= 7.0 + 1e-9

    def test_rounds_charged_constant(self, rng):
        n, k = 48, 7
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        ledger = RoundLedger(n)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0, ledger=ledger)
        extend_estimate(skeleton, exact_apsp(skeleton.graph), 1.0, ledger)
        assert 0 < ledger.total_rounds <= 20

    def test_eta_symmetric_and_zero_diagonal(self, rng):
        n, k = 40, 6
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        eta, _ = extend_estimate(skeleton, exact_apsp(skeleton.graph), 1.0)
        assert np.allclose(eta, eta.T)
        assert np.all(np.diag(eta) == 0)


class TestSkeletonFullVersion:
    """Lemma 6.1: approximate ~N_k inputs with factor a."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transfer_guarantee_with_approximate_sets(self, seed):
        rng = make_rng(seed)
        n, k = 48, 7
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        a = 1.5
        # Build an a-approximation and derive ~N_k from it (the Theorem 8.1
        # situation); conditions (C1)/(C2) hold by the paper's argument.
        noise = rng.uniform(1.0, a, size=(n, n))
        delta = exact * np.maximum(noise, noise.T)
        np.fill_diagonal(delta, 0.0)
        idx, val = k_smallest_in_rows(delta, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=a)
        inner = exact_apsp(skeleton.graph)
        eta, factor = extend_estimate(skeleton, inner, 1.0)
        assert factor == pytest.approx(7.0 * a * a)
        report = check_estimate(exact, eta)
        assert report.sound
        assert report.max_stretch <= factor + 1e-9

    def test_verify_conditions_helper(self, rng):
        n, k = 30, 5
        graph = erdos_renyi(n, 0.2, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        assert verify_skeleton_conditions(exact, idx, val, a=1.0)
        # Corrupt one value below the true distance: (C1) must fail.
        bad = val.copy()
        bad[0, -1] = 0.0
        assert not verify_skeleton_conditions(exact, idx, bad, a=1.0)


class TestSkeletonValidation:
    def test_directed_rejected(self, rng):
        graph = WeightedGraph(4, [(0, 1, 1)], directed=True)
        idx = np.zeros((4, 1), dtype=np.int64)
        val = np.zeros((4, 1))
        with pytest.raises(SkeletonError):
            build_skeleton(graph, idx, val, 1, rng)

    def test_shape_mismatch(self, rng):
        graph = WeightedGraph(4, [(0, 1, 1)])
        idx = np.zeros((3, 1), dtype=np.int64)
        val = np.zeros((3, 1))
        with pytest.raises(SkeletonError):
            build_skeleton(graph, idx, val, 1, rng)

    def test_extend_shape_mismatch(self, rng):
        n, k = 20, 4
        graph = erdos_renyi(n, 0.3, rng)
        exact = exact_apsp(graph)
        idx, val = exact_nearest_tables(exact, k)
        skeleton = build_skeleton(graph, idx, val, k, rng, a=1.0)
        with pytest.raises(SkeletonError):
            extend_estimate(skeleton, np.zeros((2, 2)), 1.0)
