"""Tests for the baseline algorithms (Section 1.1 landscape)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core import exact_apsp_baseline, spanner_only_baseline, uy90_baseline
from repro.graphs import check_estimate, erdos_renyi, exact_apsp
from repro.semiring.kernels import minplus_square

from tests.helpers import make_rng

SEEDS = [0, 1, 2]


class TestExactBaseline:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_dijkstra(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(40, 0.15, rng)
        result = exact_apsp_baseline(graph)
        assert np.allclose(result.estimate, exact_apsp(graph))
        assert result.factor == 1.0

    def test_rounds_polynomial(self):
        rng = make_rng(3)
        graph = erdos_renyi(64, 0.1, rng)
        ledger = RoundLedger(64)
        exact_apsp_baseline(graph, ledger=ledger)
        # ceil(log2 64) = 6 products, each n^(1/3) = 4 rounds.
        assert ledger.total_rounds == 6 * 4


class TestUY90Baseline:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_exact_whp(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(48, 0.12, rng)
        result = uy90_baseline(graph, rng)
        assert np.allclose(result.estimate, exact_apsp(graph))

    def test_hop_extension_charge_scales_with_s(self):
        """The Bellman-Ford stage costs exactly s rounds (the broadcast
        stage shrinks with s, so the *total* is not monotone at small n)."""
        rng = make_rng(4)
        graph = erdos_renyi(48, 0.12, rng)

        def hop_charge(s):
            ledger = RoundLedger(48)
            uy90_baseline(graph, make_rng(4), ledger=ledger, hop_parameter=s)
            return sum(
                e.rounds for e in ledger.entries if "Bellman-Ford" in e.detail
            )

        assert hop_charge(4) == 4
        assert hop_charge(16) == 16

    def test_estimate_is_sound_even_with_tiny_sample(self):
        """Even when the hitting argument fails, the estimate never
        underestimates (it is built from real path lengths)."""
        rng = make_rng(5)
        graph = erdos_renyi(48, 0.12, rng)
        result = uy90_baseline(graph, rng, hop_parameter=2, oversample=0.1)
        report = check_estimate(exact_apsp(graph), result.estimate)
        assert report.sound


class TestSpannerOnlyBaseline:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_guarantee(self, seed):
        rng = make_rng(seed)
        graph = erdos_renyi(64, 0.1, rng)
        exact = exact_apsp(graph)
        result = spanner_only_baseline(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_constant_rounds(self):
        rng = make_rng(6)
        graph = erdos_renyi(64, 0.1, rng)
        ledger = RoundLedger(64)
        spanner_only_baseline(graph, rng, ledger=ledger)
        exact_ledger = RoundLedger(64)
        exact_apsp_baseline(graph, ledger=exact_ledger)
        # the frontier: spanner-only must be cheaper than exact matmul
        assert ledger.total_rounds < exact_ledger.total_rounds + 50


class TestPingPongBufferReuse:
    """Regression: the squaring loops write into a reused spare buffer
    (``out=`` ping-pong) instead of allocating ``(n, n)`` per iteration.
    ``out=`` computes the same float64 values, so the results must stay
    bit-identical to the fresh-allocation formulation."""

    def test_exact_baseline_bit_identical_to_fresh_allocations(self):
        rng = make_rng(7)
        graph = erdos_renyi(48, 0.12, rng)
        reference = np.array(graph.matrix())
        squarings = max(1, math.ceil(math.log2(max(2, graph.n))))
        for _ in range(squarings):
            reference = minplus_square(reference)
        result = exact_apsp_baseline(graph)
        assert np.array_equal(result.estimate, reference)

    def test_uy90_bit_identical_across_runs(self):
        graph = erdos_renyi(40, 0.2, make_rng(11))
        first = uy90_baseline(graph, make_rng(5))
        second = uy90_baseline(graph, make_rng(5))
        assert np.array_equal(first.estimate, second.estimate)
        assert first.meta == second.meta
