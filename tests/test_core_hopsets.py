"""Tests for k-nearest beta-hopsets (Section 4, Lemma 3.2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core import build_knearest_hopset
from repro.graphs import (
    WeightedGraph,
    erdos_renyi,
    exact_apsp,
    heavy_tail_weights,
    path_with_shortcuts,
)
from repro.semiring import minplus_power

from tests.helpers import brute_force_k_nearest, make_rng

SEEDS = [0, 1, 2]


def synthetic_approximation(exact: np.ndarray, a: float, rng) -> np.ndarray:
    """A worst-case-ish a-approximation: random per-pair stretch in [1, a]."""
    n = exact.shape[0]
    noise = rng.uniform(1.0, a, size=(n, n))
    noise = np.maximum(noise, noise.T)  # keep it symmetric
    delta = exact * noise
    np.fill_diagonal(delta, 0.0)
    return delta


class TestHopsetConstruction:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_distances_preserved(self, seed):
        """G and G ∪ H have identical distances (hopset edges are paths)."""
        rng = make_rng(seed)
        graph = erdos_renyi(40, 0.15, rng)
        exact = exact_apsp(graph)
        delta = synthetic_approximation(exact, 4.0, rng)
        result = build_knearest_hopset(graph, delta, 4.0)
        augmented = result.augmented(graph)
        assert np.allclose(exact_apsp(augmented), exact)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_beta_hop_exactness_to_k_nearest(self, seed):
        """Lemma 4.2: every node reaches its sqrt(n)-nearest nodes by a
        beta-hop path of exact length in G ∪ H."""
        rng = make_rng(seed)
        n = 36
        graph = erdos_renyi(n, 0.12, rng)
        exact = exact_apsp(graph)
        a = 4.0
        delta = synthetic_approximation(exact, a, rng)
        result = build_knearest_hopset(graph, delta, a)
        augmented = result.augmented(graph)
        beta_hop = minplus_power(augmented.matrix(), result.beta_bound)
        k = result.k
        for u in range(n):
            ids, dists = brute_force_k_nearest(exact, u, k)
            assert np.allclose(beta_hop[u, ids], dists), (
                f"node {u}: beta-hop distances differ from exact on N_k(u)"
            )

    def test_large_diameter_graph(self):
        """The log d factor at work: a path graph with heavy weights."""
        rng = make_rng(7)
        graph = path_with_shortcuts(32, rng, weights=heavy_tail_weights())
        exact = exact_apsp(graph)
        a = 3.0
        delta = synthetic_approximation(exact, a, rng)
        result = build_knearest_hopset(graph, delta, a)
        augmented = result.augmented(graph)
        beta_hop = minplus_power(augmented.matrix(), result.beta_bound)
        for u in range(graph.n):
            ids, dists = brute_force_k_nearest(exact, u, result.k)
            assert np.allclose(beta_hop[u, ids], dists)

    def test_exact_input_gives_one_hop(self):
        """With a = 1 (exact input) the hopset contains direct edges to the
        approximate k-nearest sets, so 1 hop suffices for N_k."""
        rng = make_rng(11)
        graph = erdos_renyi(25, 0.2, rng)
        exact = exact_apsp(graph)
        result = build_knearest_hopset(graph, exact, 1.0)
        augmented = result.augmented(graph)
        one_hop = augmented.matrix()
        for u in range(graph.n):
            ids, dists = brute_force_k_nearest(exact, u, result.k)
            assert np.allclose(one_hop[u, ids], dists)

    def test_directed_graph_supported(self):
        """Lemma 3.2 holds for directed graphs."""
        rng = make_rng(13)
        n = 20
        edges = []
        for i in range(n):
            edges.append((i, (i + 1) % n, 1 + int(rng.integers(1, 5))))
        for _ in range(30):
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.append((int(u), int(v), int(rng.integers(1, 9))))
        graph = WeightedGraph(n, edges, directed=True)
        exact = exact_apsp(graph)
        result = build_knearest_hopset(graph, exact * 2.0, 2.0)
        assert result.hopset.directed
        augmented = result.augmented(graph)
        assert np.allclose(exact_apsp(augmented), exact)
        beta_hop = minplus_power(augmented.matrix(), result.beta_bound)
        for u in range(n):
            ids, dists = brute_force_k_nearest(exact, u, result.k)
            assert np.allclose(beta_hop[u, ids], dists)

    def test_default_k_is_sqrt_n(self, rng):
        graph = erdos_renyi(49, 0.2, rng)
        exact = exact_apsp(graph)
        result = build_knearest_hopset(graph, exact, 1.0)
        assert result.k == 7

    def test_beta_bound_formula(self, rng):
        graph = erdos_renyi(30, 0.2, rng)
        exact = exact_apsp(graph)
        a = 5.0
        result = build_knearest_hopset(graph, exact * a, a)
        d = result.diameter_bound
        assert result.beta_bound == 2 * (math.ceil(a * math.log(d)) + 1) + 1

    def test_ledger_charged_constant(self, rng):
        graph = erdos_renyi(36, 0.2, rng)
        exact = exact_apsp(graph)
        ledger = RoundLedger(36)
        build_knearest_hopset(graph, exact, 1.0, ledger=ledger)
        # O(1): request + routing + endpoint notification.
        assert 0 < ledger.total_rounds <= 12

    def test_bad_inputs(self, rng):
        graph = erdos_renyi(10, 0.3, rng)
        exact = exact_apsp(graph)
        with pytest.raises(ValueError):
            build_knearest_hopset(graph, exact[:5, :5], 1.0)
        with pytest.raises(ValueError):
            build_knearest_hopset(graph, exact, 0.5)


class TestSection4ProofStructure:
    """Direct checks of the structural claims inside the Lemma 3.2 proof."""

    def test_claim_4_3_ell_triangle_inequality(self):
        """Claim 4.3: ell(v) - ell(u) <= d(v, u), where ell(v) is the
        distance to the sqrt(n)-th nearest node."""
        rng = make_rng(21)
        graph = erdos_renyi(36, 0.15, rng)
        exact = exact_apsp(graph)
        k = math.isqrt(36)
        ell = np.sort(exact, axis=1)[:, k - 1]
        for v in range(36):
            for u in range(36):
                assert ell[v] - ell[u] <= exact[v, u] + 1e-9

    def test_claim_4_2_ball_inside_approximate_set(self):
        """Claim 4.2: B_{(ell(v)-1)/a}(v) is contained in ~N_k(v)."""
        rng = make_rng(22)
        n = 36
        graph = erdos_renyi(n, 0.15, rng)
        exact = exact_apsp(graph)
        a = 3.0
        delta = synthetic_approximation(exact, a, rng)
        k = math.isqrt(n)
        from repro.semiring import k_smallest_in_rows

        approx_sets, _ = k_smallest_in_rows(delta, k)
        ell = np.sort(exact, axis=1)[:, k - 1]
        for v in range(n):
            radius = (ell[v] - 1.0) / a
            ball = np.flatnonzero(exact[v] <= radius)
            members = set(int(x) for x in approx_sets[v] if x >= 0)
            for node in ball:
                assert int(node) in members, (
                    f"node {node} at distance {exact[v, node]} <= {radius} "
                    f"missing from ~N_k({v})"
                )

    def test_lemma_4_1_exactness_inside_small_ball(self):
        """Lemma 4.1: hopset edges to nodes within (ell(v)-1)/a are exact."""
        rng = make_rng(23)
        n = 30
        graph = erdos_renyi(n, 0.2, rng)
        exact = exact_apsp(graph)
        a = 2.0
        delta = synthetic_approximation(exact, a, rng)
        result = build_knearest_hopset(graph, delta, a)
        hop_weights = result.hopset.matrix()
        k = result.k
        ell = np.sort(exact, axis=1)[:, k - 1]
        for v in range(n):
            radius = (ell[v] - 1.0) / a
            for u in np.flatnonzero(exact[v] <= radius):
                if u == v:
                    continue
                # the hopset stores d'(v, u); Lemma 4.1 says it is exact
                assert hop_weights[v, int(u)] <= exact[v, int(u)] + 1e-9
