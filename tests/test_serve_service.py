"""Tests for the async serving tier (service, batching, metrics, store
concurrency)."""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.graphs import erdos_renyi, exact_apsp, graph_content_hash
from repro.serve import (
    AdmissionError,
    DistanceOracle,
    LatencyReservoir,
    MicroBatcher,
    OracleService,
    OracleStore,
    ServiceConfig,
    ServiceMetrics,
    oracle_handle,
    route_batch,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.metrics import quantile

from tests.helpers import make_rng


def build_case(seed: int, n: int = 32, p: float = 0.15):
    rng = make_rng(seed)
    graph = erdos_renyi(n, p, rng)
    exact = exact_apsp(graph)
    estimate = exact * (1.0 + 0.5 * rng.random((n, n)))
    np.fill_diagonal(estimate, 0.0)
    return graph, estimate


# ---------------------------------------------------------------------- #
# OracleStore concurrency (single-flight, bounds under hammering)
# ---------------------------------------------------------------------- #


class TestStoreConcurrency:
    def test_single_flight_builds_once(self, monkeypatch):
        """Concurrent misses on one key run exactly one (slow) build."""
        graph, estimate = build_case(0)
        builds = []
        original = DistanceOracle.build.__func__

        def slow_build(cls, graph, source, meta=None):
            builds.append(threading.get_ident())
            time.sleep(0.05)  # wide window for the stampede to pile into
            return original(cls, graph, source, meta=meta)

        monkeypatch.setattr(
            DistanceOracle, "build", classmethod(slow_build)
        )
        store = OracleStore()
        workers = 8
        with ThreadPoolExecutor(max_workers=workers) as pool:
            oracles = list(
                pool.map(
                    lambda _: store.get_or_build(graph, estimate),
                    range(workers),
                )
            )
        assert len(builds) == 1
        assert store.builds == 1
        assert store.misses == 1
        assert store.hits == workers - 1
        assert store.build_seconds > 0
        # Every waiter shares the one artifact.
        assert all(o is oracles[0] for o in oracles)

    def test_single_flight_failure_releases_waiters(self, monkeypatch):
        """A failed build unblocks waiters; the next caller retries."""
        graph, estimate = build_case(1)
        original = DistanceOracle.build.__func__
        fail_first = {"pending": True}

        def flaky_build(cls, graph, source, meta=None):
            if fail_first["pending"]:
                fail_first["pending"] = False
                time.sleep(0.02)
                raise RuntimeError("injected build failure")
            return original(cls, graph, source, meta=meta)

        monkeypatch.setattr(DistanceOracle, "build", classmethod(flaky_build))
        store = OracleStore()
        with pytest.raises(RuntimeError, match="injected"):
            store.get_or_build(graph, estimate)
        # The key is not wedged: the next call becomes the builder.
        oracle = store.get_or_build(graph, estimate)
        assert oracle.n == graph.n
        assert store.builds == 1

    def test_parallel_hammer_respects_bounds(self):
        """Mixed put/get across threads keeps both LRU bounds honest."""
        cases = [build_case(seed, n=16) for seed in range(10)]
        store = OracleStore(max_entries=4)
        errors = []

        def worker(offset: int) -> None:
            rng = make_rng(offset)
            try:
                for index in rng.permutation(len(cases)).tolist() * 3:
                    graph, estimate = cases[index]
                    oracle = store.get_or_build(graph, estimate)
                    assert oracle.n == graph.n
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store) <= 4
        stats = store.stats()
        assert stats["entries"] == len(store)
        assert stats["evictions"] >= stats["builds"] - 4
        # The byte counter matches what is actually resident.
        resident = sum(o.nbytes for o in store._store.values())
        assert store.nbytes == resident

    def test_eviction_counts_and_prunes_aliases(self):
        store = OracleStore(max_entries=1)
        (graph_a, est_a), (graph_b, est_b) = build_case(2), build_case(3)
        store.get_or_build(graph_a, est_a, alias="a")
        store.get_or_build(graph_b, est_b, alias="b")
        assert store.evictions == 1
        assert store.lookup("a") is None
        assert store.lookup("b") is not None
        assert store.stats()["aliases"] == 1

    def test_alias_survives_clear_reset(self):
        store = OracleStore()
        graph, estimate = build_case(4)
        store.get_or_build(graph, estimate, alias="x")
        assert store.lookup("x") is not None
        store.clear()
        assert store.lookup("x") is None
        assert store.stats()["builds"] == 0


# ---------------------------------------------------------------------- #
# MicroBatcher semantics
# ---------------------------------------------------------------------- #


class TestMicroBatcher:
    def test_flush_on_size(self):
        """max_batch concurrent submits flush immediately, not on deadline."""
        flushed = []

        def flush(items):
            flushed.append(list(items))
            return [i * 10 for i in items]

        # A deadline far beyond the test's patience: results arriving at
        # all proves the size trigger fired.
        batcher = MicroBatcher(flush, max_batch=4, max_delay_ms=60_000)

        async def main():
            return await asyncio.gather(*(batcher.submit(i) for i in range(4)))

        results = asyncio.run(asyncio.wait_for(main(), timeout=5))
        assert results == [0, 10, 20, 30]
        assert flushed == [[0, 1, 2, 3]]
        assert batcher.stats.size_flushes == 1
        assert batcher.stats.deadline_flushes == 0
        assert batcher.stats.max_batch_seen == 4

    def test_flush_on_deadline(self):
        """A partial batch flushes when max_delay_ms elapses."""
        flushed = []

        def flush(items):
            flushed.append(list(items))
            return items

        batcher = MicroBatcher(flush, max_batch=100, max_delay_ms=10)

        async def main():
            start = time.perf_counter()
            results = await asyncio.gather(
                batcher.submit("a"), batcher.submit("b")
            )
            return results, time.perf_counter() - start

        results, elapsed = asyncio.run(main())
        assert results == ["a", "b"]
        assert flushed == [["a", "b"]]
        assert elapsed >= 0.008  # waited for the window, not the size bound
        assert batcher.stats.deadline_flushes == 1
        assert batcher.stats.size_flushes == 0

    def test_oversubmission_splits_into_size_batches(self):
        def flush(items):
            return [i + 1 for i in items]

        batcher = MicroBatcher(flush, max_batch=8, max_delay_ms=5)

        async def main():
            return await asyncio.gather(
                *(batcher.submit(i) for i in range(30))
            )

        results = asyncio.run(main())
        assert results == [i + 1 for i in range(30)]
        stats = batcher.stats
        assert stats.submitted == stats.completed == 30
        assert stats.size_flushes >= 3  # 30 // 8 full windows
        assert stats.max_batch_seen == 8

    def test_flush_error_fails_every_request(self):
        def flush(items):
            raise ValueError("boom")

        batcher = MicroBatcher(flush, max_batch=2, max_delay_ms=5)

        async def main():
            return await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )

        results = asyncio.run(main())
        assert all(isinstance(r, ValueError) for r in results)
        assert batcher.stats.errors == 1

    def test_flush_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda items: [0], max_batch=2, max_delay_ms=5)

        async def main():
            return await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_drain_flushes_pending(self):
        flushed = []

        def flush(items):
            flushed.append(list(items))
            return items

        batcher = MicroBatcher(flush, max_batch=100, max_delay_ms=60_000)

        async def main():
            task = asyncio.ensure_future(batcher.submit("x"))
            await asyncio.sleep(0)  # enqueue before draining
            await batcher.drain()
            return await task

        assert asyncio.run(asyncio.wait_for(main(), timeout=5)) == "x"
        assert flushed == [["x"]]
        assert batcher.stats.drain_flushes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, max_delay_ms=-1)


# ---------------------------------------------------------------------- #
# Metrics plane
# ---------------------------------------------------------------------- #


class TestMetrics:
    def test_reservoir_exact_quantiles_below_capacity(self):
        reservoir = LatencyReservoir(capacity=256)
        for value in range(101):  # 0..100
            reservoir.record(float(value))
        assert reservoir.quantile(0.5) == pytest.approx(50.0)
        assert reservoir.quantile(0.99) == pytest.approx(99.0)
        assert reservoir.quantile(0.0) == 0.0
        assert reservoir.quantile(1.0) == 100.0
        snap = reservoir.snapshot()
        assert snap["count"] == 101
        assert snap["max"] == 100.0
        assert snap["p50"] == pytest.approx(50.0)

    def test_reservoir_bounds_memory_and_tracks_totals(self):
        reservoir = LatencyReservoir(capacity=16, seed=1)
        for value in range(10_000):
            reservoir.record(float(value))
        assert len(reservoir._samples) == 16
        assert reservoir.count == 10_000
        assert reservoir.max_value == 9999.0
        # The retained sample stays representative, not the first 16.
        assert reservoir.quantile(0.5) > 100.0

    def test_empty_reservoir_is_json_safe(self):
        snap = LatencyReservoir().snapshot()
        assert snap == json.loads(json.dumps(snap, allow_nan=False))
        assert snap["p50"] is None and snap["mean"] is None

    def test_quantile_helper_validates(self):
        assert quantile([], 0.5) is None
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        assert quantile([1.0, 3.0], 0.5) == pytest.approx(2.0)

    def test_service_metrics_streams_and_round_trip(self):
        metrics = ServiceMetrics()
        metrics.record_request("distance", 0.001, batched=True)
        metrics.record_request("distance", 0.002, batched=False)
        metrics.record_request("distance", 0.0, batched=True, error=True)
        metrics.record_batch("distance", 7)
        metrics.record_batch("distance", 3)
        metrics.bump("warms")
        snap = metrics.snapshot()
        assert snap == json.loads(json.dumps(snap, allow_nan=False))
        assert snap["endpoints"]["distance/batched"]["requests"] == 2
        assert snap["endpoints"]["distance/batched"]["errors"] == 1
        assert snap["endpoints"]["distance/single"]["requests"] == 1
        assert snap["batching"]["distance"] == {
            "batches": 2,
            "items": 10,
            "max_batch": 7,
            "mean_batch": 5.0,
        }
        assert snap["counters"]["warms"] == 1


# ---------------------------------------------------------------------- #
# OracleService
# ---------------------------------------------------------------------- #


def small_service(**overrides):
    config = dict(
        max_batch=8, max_delay_ms=1.0, max_workers=2, max_tenants=4
    )
    config.update(overrides)
    return OracleService(ServiceConfig(**config))


class TestOracleService:
    def test_warm_returns_graph_hash_addressed_handle(self):
        graph, estimate = build_case(5)
        with small_service() as service:
            handle = service.warm(graph, variant="", seed=3, result=estimate)
            assert handle == oracle_handle(graph, "", 3)
            assert handle.startswith(graph_content_hash(graph))
            oracle = service.oracle(handle)
            assert oracle.n == graph.n

    def test_rewarm_hits_store_and_skips_build(self):
        graph, estimate = build_case(6)
        with small_service() as service:
            first = service.warm(graph, variant="", seed=0, result=estimate)
            second = service.warm(graph, variant="", seed=0, result=estimate)
            assert first == second
            stats = service.store().stats()
            assert stats["builds"] == 1
            counters = service.snapshot()["metrics"]["counters"]
            assert counters["warms"] == 1
            assert counters["warm_hits"] == 1

    def test_warm_solves_when_no_result_given(self):
        rng = make_rng(7)
        graph = erdos_renyi(24, 0.2, rng)
        with small_service() as service:
            handle = service.warm(graph, variant="small-diameter", seed=1)
            oracle = service.oracle(handle)
            assert oracle.meta["variant"] == "small-diameter"
            assert oracle.meta["seed"] == 1

    def test_unwarmed_handle_raises(self):
        with small_service() as service:
            with pytest.raises(KeyError, match="no warmed oracle"):
                service.oracle("missing-handle")

    def test_tenant_admission_cap(self):
        with small_service(max_tenants=2) as service:
            service.store("a")
            service.store("b")
            service.store("a")  # readmission of a known tenant is free
            with pytest.raises(AdmissionError):
                service.store("c")
            counters = service.snapshot()["metrics"]["counters"]
            assert counters["tenants_admitted"] == 2
            assert counters["tenants_rejected"] == 1

    def test_tenants_are_isolated(self):
        graph, estimate = build_case(8)
        with small_service() as service:
            handle = service.warm(graph, variant="", seed=0, result=estimate,
                                  tenant="a")
            with pytest.raises(KeyError):
                service.oracle(handle, tenant="b")
            snapshot = service.snapshot()
            assert snapshot["tenants"]["a"]["builds"] == 1
            assert snapshot["tenants"]["b"]["builds"] == 0

    def test_eviction_surfaces_on_next_request(self):
        (graph_a, est_a), (graph_b, est_b) = build_case(9), build_case(10)
        with small_service(store_max_entries=1) as service:
            handle_a = service.warm(graph_a, variant="", seed=0, result=est_a)
            service.warm(graph_b, variant="", seed=0, result=est_b)
            assert service.store().stats()["evictions"] == 1

            async def query():
                return await service.distance(handle_a, 0, 1)

            with pytest.raises(KeyError):
                asyncio.run(query())

    def test_batched_results_bit_identical_to_single(self):
        graph, estimate = build_case(11, n=40)
        with small_service(max_batch=16) as service:
            handle = service.warm(graph, variant="", seed=0, result=estimate)
            rng = make_rng(99)
            sources = rng.integers(0, graph.n, size=64)
            targets = rng.integers(0, graph.n, size=64)

            async def both(endpoint):
                call = getattr(service, endpoint)
                batched = await asyncio.gather(
                    *(
                        call(handle, int(s), int(t), batched=True)
                        for s, t in zip(sources, targets)
                    )
                )
                single = await asyncio.gather(
                    *(
                        call(handle, int(s), int(t), batched=False)
                        for s, t in zip(sources, targets)
                    )
                )
                return batched, single

            for endpoint in ("distance", "route"):
                batched, single = asyncio.run(both(endpoint))
                assert batched == single, endpoint

            async def knn(batched):
                return await asyncio.gather(
                    *(
                        service.k_nearest(
                            handle, int(s), 3 + (i % 3), batched=batched
                        )
                        for i, s in enumerate(sources)
                    )
                )

            assert asyncio.run(knn(True)) == asyncio.run(knn(False))

    def test_batched_answers_match_engine_directly(self):
        graph, estimate = build_case(12, n=36)
        with small_service(max_batch=4) as service:
            handle = service.warm(graph, variant="", seed=0, result=estimate)
            oracle = service.oracle(handle)
            rng = make_rng(5)
            sources = rng.integers(0, graph.n, size=12)
            targets = rng.integers(0, graph.n, size=12)

            async def main():
                distances = await asyncio.gather(
                    *(
                        service.distance(handle, int(s), int(t))
                        for s, t in zip(sources, targets)
                    )
                )
                routes = await asyncio.gather(
                    *(
                        service.route(handle, int(s), int(t))
                        for s, t in zip(sources, targets)
                    )
                )
                nearest = await service.k_nearest(handle, int(sources[0]), 4)
                return distances, routes, nearest

            distances, routes, nearest = asyncio.run(main())
            expected = oracle.query_many(sources, targets)
            assert distances == [float(v) for v in expected]
            assert routes == route_batch(oracle, sources, targets).to_records()
            ids, dists = oracle.k_nearest(4, sources=[int(sources[0])])
            assert nearest == {
                "ids": [int(v) for v in ids[0]],
                "dists": [float(d) for d in dists[0]],
            }

    def test_requests_batch_within_window(self):
        graph, estimate = build_case(13)
        with small_service(max_batch=16, max_delay_ms=5.0) as service:
            handle = service.warm(graph, variant="", seed=0, result=estimate)

            async def main():
                return await asyncio.gather(
                    *(service.distance(handle, i % 8, (i * 3) % 8)
                      for i in range(16))
                )

            asyncio.run(main())
            batching = service.snapshot()["metrics"]["batching"]["distance"]
            assert batching["batches"] < 16  # actually coalesced
            assert batching["items"] == 16
            assert batching["max_batch"] >= 2

    def test_closed_service_rejects_requests(self):
        graph, estimate = build_case(14)
        service = small_service()
        handle = service.warm(graph, variant="", seed=0, result=estimate)
        service.close()

        async def query():
            return await service.distance(handle, 0, 1)

        with pytest.raises(RuntimeError, match="closed"):
            asyncio.run(query())

    def test_snapshot_json_round_trip(self):
        graph, estimate = build_case(15)
        with small_service() as service:
            handle = service.warm(graph, variant="", seed=0, result=estimate)

            async def main():
                await asyncio.gather(
                    *(service.distance(handle, i % 8, (i * 5) % 8)
                      for i in range(10))
                )
                await service.route(handle, 0, 5, batched=False)

            asyncio.run(main())
            snapshot = service.snapshot()
        assert snapshot == json.loads(json.dumps(snapshot, allow_nan=False))
        assert "distance/batched" in snapshot["metrics"]["endpoints"]
        assert "route/single" in snapshot["metrics"]["endpoints"]
        latency = snapshot["metrics"]["endpoints"]["distance/batched"]["latency"]
        assert latency["count"] == 10
        assert latency["p50"] is not None and latency["p99"] is not None

    def test_service_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_tenants=0)

    def test_oracle_handle_includes_t(self):
        graph, _ = build_case(16)
        plain = oracle_handle(graph, "tradeoff", 0)
        with_t = oracle_handle(graph, "tradeoff", 0, t=2)
        assert plain != with_t
        assert with_t.endswith(":t=2")


# ---------------------------------------------------------------------- #
# Load generators
# ---------------------------------------------------------------------- #


class TestLoadGenerators:
    def test_closed_loop_counts_and_bounds_concurrency(self):
        peak = {"now": 0, "max": 0}

        async def request(_):
            peak["now"] += 1
            peak["max"] = max(peak["max"], peak["now"])
            await asyncio.sleep(0.001)
            peak["now"] -= 1

        report = asyncio.run(run_closed_loop(request, 40, 4))
        assert report.requests == 40
        assert report.errors == 0
        assert len(report.latencies) == 40
        assert peak["max"] <= 4
        snap = report.snapshot()
        assert snap == json.loads(json.dumps(snap, allow_nan=False))
        assert snap["qps"] > 0
        assert snap["latency"]["p99"] >= snap["latency"]["p50"]

    def test_closed_loop_counts_errors(self):
        async def request(i):
            if i % 2:
                raise ValueError("odd")

        report = asyncio.run(run_closed_loop(request, 10, 2))
        assert report.errors == 5
        assert len(report.latencies) == 5

    def test_open_loop_fires_all_requests(self):
        seen = []

        async def request(i):
            seen.append(i)

        report = asyncio.run(run_open_loop(request, 25, 10_000.0))
        assert sorted(seen) == list(range(25))
        assert report.mode == "open"
        assert report.offered == 10_000.0

    def test_generator_validation(self):
        async def request(_):
            return None

        with pytest.raises(ValueError):
            asyncio.run(run_closed_loop(request, 5, 0))
        with pytest.raises(ValueError):
            asyncio.run(run_open_loop(request, 5, 0.0))


# ---------------------------------------------------------------------- #
# Robustness: request timeouts, bounded retry, shutdown fan-out (PR 7)
# ---------------------------------------------------------------------- #


class TestTimeoutRetry:
    def warm_service(self, **overrides):
        graph, estimate = build_case(11)
        service = small_service(**overrides)
        handle = service.warm(graph, variant="", seed=0, result=estimate)
        return service, handle

    def test_transient_slowness_is_retried_to_success(self):
        # Workers stay parked on the timed-out sleep (cancelling the
        # awaiting future does not interrupt the thread), so the pool
        # needs headroom for the retry to start promptly.
        service, handle = self.warm_service(
            request_timeout_s=0.1,
            max_retries=3,
            retry_backoff_ms=1.0,
            max_workers=4,
        )
        real_execute = service._execute
        calls = {"count": 0}

        def flaky(endpoint, tenant, oracle_handle, payloads):
            calls["count"] += 1
            if calls["count"] == 1:
                time.sleep(0.5)  # blow through the per-attempt timeout
            return real_execute(endpoint, tenant, oracle_handle, payloads)

        service._execute = flaky
        with service:
            value = asyncio.run(service.distance(handle, 0, 1, batched=False))
        assert np.isfinite(value) or value == float("inf")
        counters = service.metrics.snapshot()["counters"]
        assert counters["timeouts"] == 1
        assert counters["retries"] == 1

    def test_final_timeout_propagates_after_budget(self):
        service, handle = self.warm_service(
            request_timeout_s=0.02, max_retries=1, retry_backoff_ms=1.0
        )
        real_execute = service._execute

        def always_slow(endpoint, tenant, oracle_handle, payloads):
            time.sleep(0.25)
            return real_execute(endpoint, tenant, oracle_handle, payloads)

        service._execute = always_slow
        with service:
            with pytest.raises(asyncio.TimeoutError):
                asyncio.run(service.distance(handle, 0, 1, batched=False))
        counters = service.metrics.snapshot()["counters"]
        assert counters["timeouts"] == 2  # initial attempt + one retry
        assert counters["retries"] == 1
        endpoints = service.metrics.snapshot()["endpoints"]
        assert endpoints["distance/single"]["errors"] == 1

    def test_evicted_oracle_is_not_retried(self):
        service, handle = self.warm_service(
            request_timeout_s=1.0, max_retries=5, retry_backoff_ms=1.0
        )
        with service:
            with pytest.raises(KeyError):
                asyncio.run(
                    service.distance("no:such:handle", 0, 1, batched=False)
                )
        counters = service.metrics.snapshot()["counters"]
        assert counters["retries"] == 0

    def test_counters_pre_seeded_on_clean_service(self):
        service = small_service()
        with service:
            counters = service.metrics.snapshot()["counters"]
        assert counters["timeouts"] == 0
        assert counters["retries"] == 0

    def test_timeout_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ServiceConfig(retry_backoff_ms=-1.0)
        config = ServiceConfig(request_timeout_s=0.5, max_retries=2)
        assert config.to_dict()["request_timeout_s"] == 0.5
        assert config.to_dict()["max_retries"] == 2


class TestShutdownFanout:
    def test_fail_pending_cancels_parked_futures(self):
        batcher = MicroBatcher(lambda items: items, max_batch=100,
                               max_delay_ms=60_000)

        async def main():
            task = asyncio.ensure_future(batcher.submit("x"))
            await asyncio.sleep(0)  # parked, deadline far away
            assert batcher.fail_pending() == 1
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(asyncio.wait_for(main(), timeout=5))
        assert batcher.stats.cancelled == 1
        assert batcher.pending == 0

    def test_fail_pending_with_explicit_exception(self):
        batcher = MicroBatcher(lambda items: items, max_batch=100,
                               max_delay_ms=60_000)

        async def main():
            task = asyncio.ensure_future(batcher.submit("x"))
            await asyncio.sleep(0)
            batcher.fail_pending(RuntimeError("shutting down"))
            with pytest.raises(RuntimeError, match="shutting down"):
                await task

        asyncio.run(asyncio.wait_for(main(), timeout=5))

    def test_close_fails_requests_parked_at_close_time(self):
        graph, estimate = build_case(12)
        # A window so long the deadline never fires during the test.
        service = small_service(max_batch=64, max_delay_ms=60_000.0)
        handle = service.warm(graph, variant="", seed=0, result=estimate)

        async def main():
            task = asyncio.ensure_future(service.distance(handle, 0, 1))
            await asyncio.sleep(0)  # parked in the batcher, never flushed
            service.close()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(asyncio.wait_for(main(), timeout=5))
        counters = service.metrics.snapshot()["counters"]
        assert counters["cancelled_at_close"] == 1

    def test_drain_flushes_request_parked_during_final_flush(self):
        # Regression: a submit that parks while drain() awaits the last
        # in-flight batch must still be flushed before drain returns.
        batcher = MicroBatcher(lambda items: items, max_batch=100,
                               max_delay_ms=60_000)

        async def main():
            first = asyncio.ensure_future(batcher.submit("a"))
            await asyncio.sleep(0)
            drainer = asyncio.ensure_future(batcher.drain())
            await asyncio.sleep(0)  # drain launched the first flush
            second = asyncio.ensure_future(batcher.submit("b"))
            await drainer
            assert await first == "a"
            assert await second == "b"

        asyncio.run(asyncio.wait_for(main(), timeout=5))
        assert batcher.stats.completed == 2
        assert batcher.pending == 0


class TestMetricsFiniteGuard:
    """Regression for the json-nan-leak fix: the reservoir rejects
    non-finite samples at the door and sanitizes its snapshot."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_record_rejects_non_finite(self, bad):
        reservoir = LatencyReservoir()
        with pytest.raises(ValueError, match="finite"):
            reservoir.record(bad)
        assert reservoir.count == 0

    def test_snapshot_sanitizes_poisoned_samples(self):
        # Defense in depth: even if a non-finite value bypassed record()
        # (e.g. legacy pickled state), the snapshot must stay strict-JSON.
        reservoir = LatencyReservoir()
        reservoir.record(0.5)
        reservoir._samples.append(float("inf"))
        snap = reservoir.snapshot()
        assert snap == json.loads(json.dumps(snap, allow_nan=False))
        assert snap["p99"] is None  # inf quantile sanitized, not leaked
        assert snap["mean"] == pytest.approx(0.5)

    def test_finite_or_none(self):
        from repro.serve.metrics import finite_or_none

        assert finite_or_none(None) is None
        assert finite_or_none(float("nan")) is None
        assert finite_or_none(float("inf")) is None
        assert finite_or_none(1.5) == 1.5
        assert finite_or_none(np.float64(2.5)) == 2.5
        assert type(finite_or_none(np.float64(2.5))) is float
