"""Tests for the sharded out-of-core min-plus plane (repro.semiring.sharded).

The load-bearing contract is the same as for every other kernel: the
float64 arm must be **bit-identical** to the ``broadcast`` reference —
min over identically computed float64 sums is order-independent, so any
tile decomposition, worker count, and operand placement (inline,
shared-memory, memmap) must produce the same bytes.  float32 is the
opt-in out-of-core dtype policy; it is exact for integer weights below
2**23 and always flagged on solver artifacts via ``meta["shard_plan"]``.

Also covered: ShardPlan resolution precedence (argument > ``use_shard_plan``
context > ``REPRO_SHARD_*`` environment > defaults), ``out=`` buffer
semantics of the dispatcher, the ping-pong buffer reuse of
``minplus_power``, the solver-facade hand-off, and the CLI flags that
compile into a plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ApspSolver, SolverConfig
from repro.graphs import erdos_renyi
from repro.semiring import (
    SHARD_DTYPE_ENV,
    SHARD_PLACEMENT_ENV,
    SHARD_TILE_ENV,
    SHARD_WORKERS_ENV,
    ShardPlan,
    current_shard_plan,
    kernel_names,
    minplus,
    minplus_power,
    resolve_shard_plan,
    sharded_minplus,
    use_shard_plan,
)

from tests.helpers import make_rng

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def reference(a, b):
    return minplus(a, b, kernel="broadcast")


def random_matrix(rng, shape, *, integral=True, inf_frac=0.25, lo=1, hi=100):
    if integral:
        out = rng.integers(lo, hi, shape).astype(np.float64)
    else:
        out = rng.uniform(lo, hi, shape)
    out[rng.random(shape) < inf_frac] = np.inf
    return out


class TestShardPlan:
    def test_defaults(self):
        plan = ShardPlan()
        assert plan.tile == 256
        assert plan.placement == "auto"
        assert plan.dtype == "float64"
        assert plan.resolved_workers() >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tile": 0},
            {"workers": -1},
            {"placement": "cloud"},
            {"dtype": "float16"},
            {"memmap_threshold": -1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardPlan(**kwargs)

    def test_dict_round_trip(self):
        plan = ShardPlan(tile=33, workers=2, placement="memmap", dtype="float32")
        clone = ShardPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert plan.to_dict()["resolved_workers"] == 2

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(SHARD_TILE_ENV, "48")
        monkeypatch.setenv(SHARD_WORKERS_ENV, "3")
        monkeypatch.setenv(SHARD_PLACEMENT_ENV, "shared")
        monkeypatch.setenv(SHARD_DTYPE_ENV, "float32")
        plan = ShardPlan.from_env()
        assert (plan.tile, plan.workers) == (48, 3)
        assert (plan.placement, plan.dtype) == ("shared", "float32")

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv(SHARD_TILE_ENV, "64")
        # Environment only: picked up by current/resolve.
        assert current_shard_plan().tile == 64
        # Context beats environment.
        with use_shard_plan(ShardPlan(tile=16)):
            assert current_shard_plan().tile == 16
            # Explicit argument beats everything.
            assert resolve_shard_plan({"tile": 8}).tile == 8
        assert resolve_shard_plan().tile == 64
        # No env, no context: defaults.
        monkeypatch.delenv(SHARD_TILE_ENV)
        assert current_shard_plan() is None
        assert resolve_shard_plan() == ShardPlan()

    def test_use_shard_plan_accepts_mapping(self):
        with use_shard_plan({"tile": 12, "workers": 0}) as plan:
            assert isinstance(plan, ShardPlan)
            assert current_shard_plan() == ShardPlan(tile=12, workers=0)


class TestShardedEquivalence:
    """float64 sharded results are bit-identical to broadcast."""

    def test_registered(self):
        assert "sharded" in kernel_names()

    @pytest.mark.parametrize("placement", ["inline", "shared", "memmap"])
    @pytest.mark.parametrize("tile", [8, 33])
    @pytest.mark.parametrize("n", [31, 64])
    def test_placements_and_tiles(self, placement, tile, n):
        rng = make_rng(100 * n + tile)
        a = random_matrix(rng, (n, n))
        b = random_matrix(rng, (n, n), integral=False, inf_frac=0.4)
        plan = ShardPlan(tile=tile, workers=0, placement=placement)
        got = sharded_minplus(a, b, plan=plan)
        assert np.array_equal(got, reference(a, b))

    @pytest.mark.parametrize("placement", ["shared", "memmap"])
    def test_multiprocess_bit_identical(self, placement):
        rng = make_rng(7)
        a = random_matrix(rng, (97, 41))
        b = random_matrix(rng, (41, 103), integral=False, inf_frac=0.5)
        plan = ShardPlan(tile=33, workers=2, placement=placement)
        got = sharded_minplus(a, b, plan=plan)
        assert got.dtype == np.float64
        assert np.array_equal(got, reference(a, b))

    def test_non_divisible_tile(self):
        rng = make_rng(9)
        a = random_matrix(rng, (65, 65))
        got = sharded_minplus(a, a, plan=ShardPlan(tile=64, workers=0))
        assert np.array_equal(got, reference(a, a))

    def test_dispatcher_route(self, monkeypatch):
        rng = make_rng(11)
        a = random_matrix(rng, (40, 40))
        monkeypatch.setenv(SHARD_TILE_ENV, "16")
        monkeypatch.setenv(SHARD_WORKERS_ENV, "0")
        assert np.array_equal(minplus(a, a, kernel="sharded"), reference(a, a))

    def test_memmap_threshold_triggers_out_of_core(self, tmp_path):
        rng = make_rng(13)
        a = random_matrix(rng, (48, 48))
        plan = ShardPlan(
            tile=16,
            workers=0,
            placement="auto",
            memmap_threshold=1,  # everything is out-of-core
            memmap_dir=str(tmp_path),
        )
        got = sharded_minplus(a, a, plan=plan)
        assert np.array_equal(got, reference(a, a))
        # Staging directories are torn down on completion.
        assert not any(tmp_path.iterdir())

    def test_return_memmap_hands_over_result(self, tmp_path):
        rng = make_rng(14)
        a = random_matrix(rng, (32, 32))
        plan = ShardPlan(
            tile=16, workers=0, placement="memmap", memmap_dir=str(tmp_path)
        )
        got = sharded_minplus(a, a, plan=plan, return_memmap=True)
        assert isinstance(got, np.memmap)
        assert np.array_equal(np.asarray(got), reference(a, a))

    def test_empty_inner_dimension(self):
        out = sharded_minplus(
            np.empty((3, 0)), np.empty((0, 4)), plan=ShardPlan(workers=0)
        )
        assert out.shape == (3, 4) and np.all(np.isinf(out))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            sharded_minplus(np.zeros((2, 3)), np.zeros((2, 3)))


class TestFloat32Policy:
    def test_exact_for_small_integer_weights(self):
        rng = make_rng(21)
        a = random_matrix(rng, (50, 50), lo=1, hi=1000)
        plan = ShardPlan(tile=16, workers=0, dtype="float32")
        got = sharded_minplus(a, a, plan=plan)
        assert got.dtype == np.float64  # result surface stays float64
        assert np.array_equal(got, reference(a, a))

    def test_fractional_weights_downcast(self):
        # Documented loss: float32 rounds fractional inputs; results stay
        # close but are not bit-identical, which is why the policy is
        # opt-in and flagged in Estimate.meta.
        rng = make_rng(22)
        a = random_matrix(rng, (40, 40), integral=False)
        got = sharded_minplus(
            a, a, plan=ShardPlan(tile=16, workers=0, dtype="float32")
        )
        ref = reference(a, a)
        finite = np.isfinite(ref)
        assert np.array_equal(np.isfinite(got), finite)
        rel = np.abs(got[finite] - ref[finite]) / np.maximum(ref[finite], 1e-30)
        assert float(rel.max()) < 1e-6


class TestOutBuffer:
    def test_dispatcher_writes_into_out(self):
        rng = make_rng(31)
        a = random_matrix(rng, (30, 30))
        for kernel in kernel_names():
            out = np.empty((30, 30))
            result = minplus(a, a, kernel=kernel, out=out)
            assert result is out, kernel
            assert np.array_equal(out, reference(a, a)), kernel

    def test_out_validation(self):
        a = np.zeros((4, 4))
        with pytest.raises(ValueError, match="shape"):
            minplus(a, a, out=np.empty((3, 4)))
        with pytest.raises(ValueError, match="float64"):
            minplus(a, a, out=np.empty((4, 4), dtype=np.float32))
        with pytest.raises(ValueError, match="share memory"):
            minplus(a, a, out=a)
        frozen = np.empty((4, 4))
        frozen.flags.writeable = False
        with pytest.raises(ValueError, match="writable"):
            minplus(a, a, out=frozen)

    def test_sharded_out_across_placements(self):
        rng = make_rng(32)
        a = random_matrix(rng, (40, 40))
        expected = reference(a, a)
        for placement in ("inline", "shared", "memmap"):
            out = np.empty((40, 40))
            plan = ShardPlan(tile=16, workers=0, placement=placement)
            result = sharded_minplus(a, a, plan=plan, out=out)
            assert result is out
            assert np.array_equal(out, expected), placement


class TestMinplusPowerPingPong:
    @pytest.mark.parametrize("kernel", ["broadcast", "tiled", "sharded"])
    @pytest.mark.parametrize("exponent", [1, 2, 3, 5, 8])
    def test_matches_iterated_product(self, kernel, exponent):
        rng = make_rng(41 + exponent)
        a = random_matrix(rng, (24, 24))
        np.fill_diagonal(a, 0.0)
        expected = a
        for _ in range(exponent - 1):
            expected = reference(expected, a)
        with use_shard_plan(ShardPlan(tile=16, workers=0)):
            got = minplus_power(a, exponent, kernel=kernel)
        assert np.array_equal(got, expected)

    def test_input_not_mutated(self):
        rng = make_rng(43)
        a = random_matrix(rng, (20, 20))
        np.fill_diagonal(a, 0.0)
        snapshot = a.copy()
        minplus_power(a, 5)
        assert np.array_equal(a, snapshot)


class TestSolverHandOff:
    def test_meta_records_plan_for_sharded_runs(self):
        graph = erdos_renyi(24, 0.3, make_rng(51))
        plan = ShardPlan(tile=16, workers=0, placement="inline")
        solver = ApspSolver(SolverConfig(variant="small-diameter", seed=0))
        with use_shard_plan(plan):
            with pytest.MonkeyPatch.context() as mp:
                mp.setenv("REPRO_MINPLUS_KERNEL", "sharded")
                result = solver.solve(graph)
        assert result.meta["kernel_pin"] == "sharded"
        assert result.meta["shard_plan"]["tile"] == 16
        assert result.meta["shard_plan"]["placement"] == "inline"

    def test_solve_many_threads_carry_the_plan(self):
        graphs = [erdos_renyi(20, 0.3, make_rng(s)) for s in (1, 2, 3)]
        plan = ShardPlan(tile=8, workers=0)
        config = SolverConfig(variant="small-diameter", seed=0, kernel="sharded")
        solver = ApspSolver(config)
        with use_shard_plan(plan):
            batch = solver.solve_many(graphs, executor="thread", max_workers=3)
        serial = ApspSolver(
            SolverConfig(variant="small-diameter", seed=0)
        ).solve_many(graphs, executor="serial")
        for result, expected in zip(batch, serial):
            assert result.meta["shard_plan"]["tile"] == 8
            # Bit-identity of the full pipeline under the sharded kernel.
            assert np.array_equal(result.estimate, expected.estimate)

    def test_plain_runs_do_not_carry_plan_meta(self):
        graph = erdos_renyi(20, 0.3, make_rng(52))
        result = ApspSolver(SolverConfig(variant="small-diameter", seed=0)).solve(
            graph
        )
        assert "shard_plan" not in result.meta


class TestCliFlags:
    def test_kernels_lists_sharded_and_plan(self, capsys):
        from repro.cli import main

        assert main(["kernels", "--n", "16", "--workers", "3",
                     "--tile", "32"]) == 0
        captured = capsys.readouterr().out
        assert "sharded" in captured
        assert "tile=32" in captured and "workers=3" in captured

    def test_run_accepts_shard_flags(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--n", "24", "--variant", "small-diameter",
            "--kernel", "sharded", "--workers", "0", "--tile", "16",
        ]) == 0
        assert "variant : small-diameter" in capsys.readouterr().out

    def test_profile_accepts_shard_flags(self, capsys):
        from repro.cli import main

        assert main([
            "profile", "--n", "24", "--variant", "small-diameter",
            "--kernel", "sharded", "--workers", "0", "--tile", "16",
        ]) == 0
        capsys.readouterr()

    def test_flags_override_environment(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(SHARD_TILE_ENV, "200")
        monkeypatch.setenv(SHARD_DTYPE_ENV, "float32")
        assert main(["kernels", "--n", "16", "--tile", "64"]) == 0
        captured = capsys.readouterr().out
        # The flag wins for tile; untouched env fields survive.
        assert "tile=64" in captured and "dtype=float32" in captured


class TestPoolSwapOutsideLock:
    """Regression for the conc-blocking-in-lock fix: resizing the
    persistent tile pool drains the stale pool *outside* ``_pool_lock``,
    so concurrent resizers never deadlock and the swapped-in pool works."""

    def test_resize_swaps_and_old_pool_is_shut_down(self):
        from repro.semiring import sharded

        sharded.shutdown_shard_pool()
        try:
            first = sharded._get_pool(1)
            second = sharded._get_pool(2)
            assert second is not first
            # The stale pool was drained; submitting to it must fail.
            with pytest.raises(RuntimeError):
                first.submit(int, 0)
            assert second.submit(int, 7).result() == 7
            # Same size is a no-op: the pool is reused, not rebuilt.
            assert sharded._get_pool(2) is second
        finally:
            sharded.shutdown_shard_pool()

    def test_concurrent_resizes_complete(self):
        import threading

        from repro.semiring import sharded

        sharded.shutdown_shard_pool()
        errors = []

        def resize(workers):
            try:
                pool = sharded._get_pool(workers)
                pool.submit(int, workers).result(timeout=30)
            except RuntimeError:
                # A concurrent resize drained this pool between the get
                # and the submit — acceptable; the point is no deadlock.
                pass
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=resize, args=(1 + (i % 2),))
            for i in range(6)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []
        finally:
            sharded.shutdown_shard_pool()

    def test_shutdown_idempotent(self):
        from repro.semiring import sharded

        sharded.shutdown_shard_pool()
        sharded.shutdown_shard_pool()
