"""Tests for the fault-injection pipeline (repro.cclique.faults).

Covers the PR-7 acceptance properties: an empty plan is bit-identical
to the unfaulted engine, injection is deterministic in (plan, seed),
each fault kind does what its spec says, the ledger stays byte-bounded,
and the resilient routing mode recovers delivery under loss/crashes.
"""

import numpy as np
import pytest

from repro.cclique import (
    ArrayClique,
    BandwidthDegrade,
    FaultPlan,
    FaultTrace,
    InvalidNodeError,
    LinkDrop,
    MessageBatch,
    MessageDelay,
    NodeCrash,
    PayloadCorrupt,
    route_batch_two_phase,
)
from repro.cclique.faults import FaultRound
from repro.cclique.trace import TraceRecorder


def full_load_traffic(n, seed, loads=3):
    """Seeded all-pairs-ish traffic: ``loads`` permutations per node."""
    rng = np.random.default_rng(seed)
    src = np.tile(np.arange(n, dtype=np.int64), loads)
    dst = np.concatenate([rng.permutation(n) for _ in range(loads)])
    payload = np.arange(loads * n, dtype=np.float64).reshape(-1, 1) + 0.25
    return src, dst, payload


def run_and_collect(clique, src, dst, payload):
    clique.stage(src, dst, payload)
    rounds = clique.drain()
    inboxes = []
    for node in range(clique.n):
        view = clique.inbox_arrays(node)
        order = np.lexsort((view.payload[:, 0], view.src))
        inboxes.append((view.src[order], view.payload[order]))
    return rounds, inboxes


class TestSpecValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            LinkDrop(probability=-0.1)
        with pytest.raises(ValueError):
            LinkDrop(probability=1.5)

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            LinkDrop(probability=0.5, from_round=3, until_round=3)

    def test_delay_and_bit_ranges(self):
        with pytest.raises(ValueError):
            MessageDelay(probability=0.5, max_delay=0)
        with pytest.raises(ValueError):
            PayloadCorrupt(probability=0.5, bit=64)
        with pytest.raises(ValueError):
            BandwidthDegrade(capacity_words=-1)
        with pytest.raises(ValueError):
            NodeCrash(node=-1)

    def test_plan_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultPlan(specs=("not a spec",))

    def test_activate_validates_node_ids(self):
        clique = ArrayClique(4, bandwidth_words=2, strict=False)
        with pytest.raises(InvalidNodeError):
            clique.attach_faults(FaultPlan(specs=(NodeCrash(node=7),)))
        with pytest.raises(InvalidNodeError):
            clique.attach_faults(
                FaultPlan(specs=(LinkDrop(probability=0.5, src=9),))
            )

    def test_plan_describe_is_json_safe(self):
        import json

        plan = FaultPlan(
            specs=(NodeCrash(node=1), LinkDrop(probability=0.25)), seed=7
        )
        text = json.dumps(plan.describe())
        assert "node-crash" in text and "link-drop" in text


class TestEmptyPlanIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bit_identical_to_unfaulted_engine(self, seed):
        n = 16
        src, dst, payload = full_load_traffic(n, seed)

        plain = ArrayClique(n, bandwidth_words=1, strict=False)
        faulted = ArrayClique(n, bandwidth_words=1, strict=False)
        faulted.attach_faults(FaultPlan())

        rounds_a, inbox_a = run_and_collect(plain, src, dst, payload)
        rounds_b, inbox_b = run_and_collect(faulted, src, dst, payload)

        assert rounds_a == rounds_b
        assert plain.spill_rounds == faulted.spill_rounds
        assert plain.messages_delivered == faulted.messages_delivered
        assert plain.words_delivered == faulted.words_delivered
        for (src_a, pay_a), (src_b, pay_b) in zip(inbox_a, inbox_b):
            np.testing.assert_array_equal(src_a, src_b)
            np.testing.assert_array_equal(pay_a, pay_b)

    def test_empty_plan_trace_records_clean_rounds(self):
        n = 8
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        trace = clique.attach_faults(FaultPlan())
        src, dst, payload = full_load_traffic(n, 0)
        clique.stage(src, dst, payload)
        clique.drain()
        assert trace.total_injected == 0
        assert trace.rounds_seen == clique.round_index


class TestDeterminism:
    def plan(self, seed):
        return FaultPlan(
            specs=(
                LinkDrop(probability=0.2),
                MessageDelay(probability=0.1, max_delay=2),
                PayloadCorrupt(probability=0.1),
            ),
            seed=seed,
        )

    def run_once(self, plan, traffic_seed=3):
        n = 16
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        trace = clique.attach_faults(plan)
        src, dst, payload = full_load_traffic(n, traffic_seed)
        clique.stage(src, dst, payload)
        clique.drain(max_rounds=500)
        return trace.signature()

    def test_same_seed_same_trace(self):
        sig_a = self.run_once(self.plan(11))
        sig_b = self.run_once(self.plan(11))
        assert sig_a == sig_b

    def test_different_seed_different_trace(self):
        sig_a = self.run_once(self.plan(11))
        sig_b = self.run_once(self.plan(12))
        assert sig_a != sig_b


class TestFaultKinds:
    def test_crash_silences_node(self):
        n = 8
        crash = 3
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        trace = clique.attach_faults(
            FaultPlan(specs=(NodeCrash(node=crash, at_round=0),))
        )
        src, dst, payload = full_load_traffic(n, 5)
        clique.stage(src, dst, payload)
        clique.drain()
        for node in range(n):
            view = clique.inbox_arrays(node)
            if node == crash:
                assert len(view) == 0
            else:
                assert not np.any(view.src == crash)
        expected = int(np.sum((src == crash) | (dst == crash)))
        assert trace.totals["crashed"] == expected

    def test_link_drop_scoped_to_one_link(self):
        n = 6
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        trace = clique.attach_faults(
            FaultPlan(specs=(LinkDrop(probability=1.0, src=0, dst=1),))
        )
        src = np.array([0, 0, 2], dtype=np.int64)
        dst = np.array([1, 2, 1], dtype=np.int64)
        clique.stage(src, dst, np.array([[1.0], [2.0], [3.0]]))
        clique.drain()
        assert len(clique.inbox_arrays(2)) == 1
        view = clique.inbox_arrays(1)
        np.testing.assert_array_equal(view.src, [2])  # 0->1 dropped
        assert trace.totals["dropped"] == 1

    def test_delay_defers_by_exactly_one_round(self):
        n = 4
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        trace = clique.attach_faults(
            FaultPlan(
                # Window [0, 1): the release at round 1 is not re-delayed.
                specs=(
                    MessageDelay(
                        probability=1.0, max_delay=1, until_round=1
                    ),
                )
            )
        )
        clique.stage(0, 1, np.array([[9.0]]))
        clique.step()
        assert len(clique.inbox_arrays(1, clear=False)) == 0
        assert clique.pending_messages() == 1  # deferred rows count
        clique.step()
        assert len(clique.inbox_arrays(1)) == 1
        assert trace.totals["delayed"] == 1
        assert trace.totals["released"] == 1

    def test_degrade_window_blocks_then_delivers(self):
        n = 4
        clique = ArrayClique(n, bandwidth_words=4, strict=False)
        clique.attach_faults(
            FaultPlan(
                specs=(
                    BandwidthDegrade(
                        capacity_words=1, from_round=0, until_round=2
                    ),
                )
            )
        )
        clique.stage(0, 1, np.array([[1.0, 2.0, 3.0]]))  # 3 words > cap 1
        clique.step()
        assert len(clique.inbox_arrays(1, clear=False)) == 0
        clique.step()  # still inside window
        assert len(clique.inbox_arrays(1, clear=False)) == 0
        clique.step()  # window closed: full bandwidth again
        assert len(clique.inbox_arrays(1)) == 1
        assert clique.spill_rounds == 2

    def test_corrupt_flips_pinned_bit_outside_prefix(self):
        n = 4
        clique = ArrayClique(n, bandwidth_words=2, strict=False)
        trace = clique.attach_faults(
            FaultPlan(
                specs=(
                    PayloadCorrupt(probability=1.0, bit=0, protect_prefix=1),
                )
            )
        )
        original = np.array([[5.0, 7.0]])
        clique.stage(0, 1, original)
        clique.step()
        view = clique.inbox_arrays(1)
        # Column 0 is protected; column 1 had mantissa bit 0 flipped.
        assert view.payload[0, 0] == 5.0
        assert view.payload[0, 1] != 7.0
        expected = np.array([7.0])
        expected.view(np.int64)[0] ^= 1
        assert view.payload[0, 1] == expected[0]
        assert trace.totals["corrupted"] == 1

    def test_corrupt_is_deterministic(self):
        def run():
            n = 8
            clique = ArrayClique(n, bandwidth_words=1, strict=False)
            clique.attach_faults(
                FaultPlan(specs=(PayloadCorrupt(probability=0.5),), seed=4)
            )
            src, dst, payload = full_load_traffic(n, 9)
            clique.stage(src, dst, payload)
            clique.drain()
            return np.concatenate(
                [clique.inbox_arrays(v).payload.ravel() for v in range(n)]
            )

        np.testing.assert_array_equal(run(), run())


class TestFaultTrace:
    def test_ring_is_byte_bounded_with_exact_totals(self):
        trace = FaultTrace(max_bytes=5 * 112)  # room for 5 records
        for r in range(50):
            trace.record(FaultRound(round_index=r, dropped=2))
        assert len(trace.records) == 5
        assert trace.dropped_records == 45
        assert trace.rounds_seen == 50
        assert trace.totals["dropped"] == 100
        assert trace.total_injected == 100
        assert trace.summary()["retained_rounds"] == 5

    def test_recorder_integration_carries_fault_rounds(self):
        n = 6
        clique = ArrayClique(n, bandwidth_words=1, strict=False)
        clique.attach_faults(
            FaultPlan(specs=(LinkDrop(probability=1.0, src=0, dst=1),))
        )
        recorder = TraceRecorder(clique, record_faults=True)
        src = np.array([0, 2], dtype=np.int64)
        dst = np.array([1, 3], dtype=np.int64)
        clique.stage(src, dst, np.ones((2, 1)))
        clique.step()
        recorder.snapshot()
        snap = recorder.snapshots[-1]
        assert snap.faults is not None
        assert snap.faults.dropped == 1


class TestResilientRouting:
    def make_batch(self, n, seed=0, loads=2):
        src, dst, payload = full_load_traffic(n, seed, loads=loads)
        return MessageBatch(src=src, dst=dst, payload=payload)

    def test_retries_recover_dropped_rows(self):
        n = 24
        batch = self.make_batch(n)
        plan = FaultPlan(specs=(LinkDrop(probability=0.3),), seed=1)

        lossy_delivery, lossy = route_batch_two_phase(
            batch, n, faults=plan, max_retries=0
        )
        rec_delivery, recovered = route_batch_two_phase(
            batch, n, faults=plan, max_retries=6
        )
        assert len(lossy_delivery) < len(batch)
        assert len(rec_delivery) > len(lossy_delivery)
        assert recovered.undelivered < lossy.undelivered
        assert recovered.retries > 0
        assert recovered.fault_totals["dropped"] > 0

    def test_resilient_mode_is_deterministic(self):
        n = 16
        batch = self.make_batch(n)
        plan = FaultPlan(specs=(LinkDrop(probability=0.25),), seed=2)
        runs = [
            route_batch_two_phase(batch, n, faults=plan, max_retries=4)
            for _ in range(2)
        ]
        (del_a, stats_a), (del_b, stats_b) = runs
        assert stats_a.undelivered == stats_b.undelivered
        assert stats_a.rounds == stats_b.rounds
        np.testing.assert_array_equal(del_a.dst, del_b.dst)
        np.testing.assert_array_equal(del_a.payload, del_b.payload)

    def test_crash_replanning_beats_static_relays(self):
        n = 20
        batch = self.make_batch(n)
        from repro.cclique.routing import two_phase_relays

        relay = two_phase_relays(batch.src, batch.dst, n)
        crash = int(np.bincount(relay, minlength=n).argmax())
        plan = FaultPlan(specs=(NodeCrash(node=crash, at_round=0),))

        static_delivery, _ = route_batch_two_phase(
            batch, n, faults=plan, max_retries=0, avoid_crashed=False
        )
        replanned_delivery, replanned = route_batch_two_phase(
            batch, n, faults=plan, max_retries=2, avoid_crashed=True
        )
        deliverable = int(np.sum((batch.src != crash) & (batch.dst != crash)))
        assert len(replanned_delivery) > len(static_delivery)
        assert len(replanned_delivery) == deliverable
        assert replanned.undelivered == len(batch) - deliverable

    def test_zero_fault_resilient_path_is_perfect(self):
        n = 12
        batch = self.make_batch(n)
        plain, plain_stats = route_batch_two_phase(batch, n)
        resil, resil_stats = route_batch_two_phase(
            batch, n, faults=FaultPlan(), max_retries=3
        )
        assert len(resil) == len(batch) and resil_stats.undelivered == 0
        assert resil_stats.retries == 0
        assert len(plain) == len(batch)
        # Same rows reach the same destinations in both modes.
        order_a = np.lexsort((plain.payload[:, 0], plain.dst))
        order_b = np.lexsort((resil.payload[:, 0], resil.dst))
        np.testing.assert_array_equal(
            plain.dst[order_a], resil.dst[order_b]
        )
        np.testing.assert_array_equal(
            plain.payload[order_a], resil.payload[order_b]
        )
