"""Tests for the APSP pipelines: Lemma 3.1, Theorems 7.1, 8.1, 1.1, 1.2."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cclique import RoundLedger
from repro.core import (
    apsp_large_bandwidth,
    apsp_round_limited,
    apsp_small_diameter,
    apsp_theorem11,
    apsp_tradeoff,
    reduce_approximation,
)
from repro.graphs import check_estimate, erdos_renyi, exact_apsp, grid_graph

from tests.helpers import graph_family, make_rng, synthetic_approximation

SEEDS = [0, 1, 2]


class TestFactorReduction:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("a", [16.0, 64.0])
    def test_lemma31_guarantee(self, seed, a):
        """15 sqrt(a) promised; chained factor and measured stretch comply."""
        rng = make_rng(seed)
        graph = erdos_renyi(48, 0.12, rng)
        exact = exact_apsp(graph)
        delta = synthetic_approximation(exact, a, rng)
        result = reduce_approximation(graph, delta, a, rng)
        assert result.factor <= 15.0 * math.sqrt(a) + 1e-9
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_constant_rounds(self):
        rng = make_rng(5)
        graph = erdos_renyi(48, 0.12, rng)
        exact = exact_apsp(graph)
        delta = synthetic_approximation(exact, 16.0, rng)
        ledger = RoundLedger(48)
        reduce_approximation(graph, delta, 16.0, rng, ledger=ledger)
        # "O(1)" with our explicit constants: well under 200 even with the
        # O(i) k-nearest iterations at small n.
        assert 0 < ledger.total_rounds < 200

    def test_meta_reports_plan(self):
        rng = make_rng(6)
        graph = erdos_renyi(40, 0.15, rng)
        exact = exact_apsp(graph)
        result = reduce_approximation(graph, exact * 9.0, 9.0, rng)
        assert result.meta["promised_factor"] == pytest.approx(45.0)
        assert result.meta["skeleton_nodes"] >= 1

    def test_directed_rejected(self, rng):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(3, [(0, 1, 1)], directed=True)
        with pytest.raises(ValueError):
            reduce_approximation(graph, np.zeros((3, 3)), 1.0, rng)


class TestTheorem71:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cc_variant_guarantee(self, seed):
        """Standard model path: factor at most 21."""
        rng = make_rng(seed)
        graph = erdos_renyi(56, 0.1, rng)
        exact = exact_apsp(graph)
        result = apsp_small_diameter(graph, rng)
        assert result.factor <= 21.0 + 1e-9
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cc3_variant_guarantee(self, seed):
        """CC[log^3 n] path: factor at most 7."""
        rng = make_rng(seed)
        n = 56
        graph = erdos_renyi(n, 0.1, rng)
        exact = exact_apsp(graph)
        words = max(1, math.ceil(math.log2(n) ** 2))
        ledger = RoundLedger(n, bandwidth_words=words)
        result = apsp_small_diameter(graph, rng, ledger=ledger, mode="cc3")
        assert result.factor <= 7.0 + 1e-9
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_graph_families(self):
        for name, graph in graph_family(3):
            rng = make_rng(99)
            exact = exact_apsp(graph)
            result = apsp_small_diameter(graph, rng)
            report = check_estimate(exact, result.estimate)
            assert report.sound, name
            assert report.max_stretch <= result.factor + 1e-9, name

    def test_small_graph_exact_fallback(self, rng):
        graph = erdos_renyi(8, 0.5, rng)
        result = apsp_small_diameter(graph, rng)
        assert result.factor == 1.0
        assert np.allclose(result.estimate, exact_apsp(graph))

    def test_invalid_mode(self, rng):
        graph = erdos_renyi(32, 0.2, rng)
        with pytest.raises(ValueError):
            apsp_small_diameter(graph, rng, mode="bogus")

    def test_final_stage_skippable(self, rng):
        graph = erdos_renyi(56, 0.1, rng)
        result = apsp_small_diameter(graph, rng, final_stage=False)
        # Without the final stage the factor is the bootstrap/reduction one.
        exact = exact_apsp(graph)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9


class TestLemma82RoundLimited:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_sound_for_all_t(self, t):
        rng = make_rng(t)
        graph = erdos_renyi(48, 0.12, rng)
        exact = exact_apsp(graph)
        result = apsp_round_limited(graph, t, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_rounds_grow_with_t_at_most_linearly(self):
        rng = make_rng(4)
        graph = erdos_renyi(48, 0.12, rng)
        rounds = []
        for t in (1, 3):
            ledger = RoundLedger(48)
            apsp_round_limited(graph, t, make_rng(4), ledger=ledger)
            rounds.append(ledger.total_rounds)
        # O(t) scaling: t=3 costs at most ~3x of t=1 plus the constant floor.
        assert rounds[1] <= 3 * rounds[0] + 50

    def test_invalid_t(self, rng):
        graph = erdos_renyi(16, 0.3, rng)
        with pytest.raises(ValueError):
            apsp_round_limited(graph, 0, rng)


class TestTheorem81:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_guarantee(self, seed):
        """Factor at most 7^3 (1+eps)^2; estimate sound; stretch within."""
        rng = make_rng(seed)
        graph = erdos_renyi(56, 0.1, rng)
        exact = exact_apsp(graph)
        result = apsp_large_bandwidth(graph, rng, eps=0.1)
        assert result.factor <= 7**3 * 1.1**2 + 1e-6
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_heavy_weights_use_multiple_scales(self):
        from repro.graphs import polynomial_weights

        rng = make_rng(8)
        graph = erdos_renyi(56, 0.1, rng, weights=polynomial_weights(56, 3.0))
        exact = exact_apsp(graph)
        result = apsp_large_bandwidth(graph, rng)
        assert len(result.meta["scales"]) >= 2
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_parallel_ledger_composition(self):
        rng = make_rng(9)
        n = 56
        graph = erdos_renyi(n, 0.1, rng)
        ledger = RoundLedger(n)
        apsp_large_bandwidth(graph, rng, ledger=ledger)
        parallel_entries = [
            e for e in ledger.entries if "parallel composition" in e.detail
        ]
        assert len(parallel_entries) == 1
        assert parallel_entries[0].bandwidth_words >= 1


class TestTheorem11:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_guarantee(self, seed):
        """The headline: factor at most 7^4 (1+eps)^2."""
        rng = make_rng(seed)
        graph = erdos_renyi(64, 0.08, rng)
        exact = exact_apsp(graph)
        result = apsp_theorem11(graph, rng, eps=0.1)
        assert result.factor <= 7**4 * 1.1**2 + 1e-6
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_grid(self):
        rng = make_rng(3)
        graph = grid_graph(8, rng)
        exact = exact_apsp(graph)
        result = apsp_theorem11(graph, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9

    def test_meta_structure(self):
        rng = make_rng(4)
        graph = erdos_renyi(64, 0.08, rng)
        result = apsp_theorem11(graph, rng)
        assert result.meta["k0"] >= 2
        h, i = result.meta["hop_schedule"]
        assert h**i >= result.meta["k0"]
        assert result.meta["skeleton_nodes"] < 64

    def test_directed_rejected(self, rng):
        from repro.graphs import WeightedGraph

        graph = WeightedGraph(3, [(0, 1, 1)], directed=True)
        with pytest.raises(ValueError):
            apsp_theorem11(graph, rng)


class TestTheorem12Tradeoff:
    @pytest.mark.parametrize("t", [1, 2])
    def test_sound_and_within_chained_factor(self, t):
        rng = make_rng(t + 10)
        graph = erdos_renyi(64, 0.08, rng)
        exact = exact_apsp(graph)
        result = apsp_tradeoff(graph, t, rng)
        report = check_estimate(exact, result.estimate)
        assert report.sound
        assert report.max_stretch <= result.factor + 1e-9
        assert result.meta["t"] == t
        assert result.meta["tradeoff_bound"] > 0

    def test_invalid_t(self, rng):
        graph = erdos_renyi(16, 0.3, rng)
        with pytest.raises(ValueError):
            apsp_tradeoff(graph, 0, rng)
