"""Array-plane equivalence and engine tests.

The contract of the communication-plane refactor: the struct-of-arrays
engine (:class:`repro.cclique.engine.ArrayClique`) and everything built on
it are *semantically identical* to the frozen per-message object simulator
(:mod:`repro.cclique.reference`) — same round counts, same spill
statistics, same delivered inboxes — while being usable at full load and
four-digit n.  These tests enforce that equivalence on seeded instances
and pin down the engine's own behaviours (strict checks, FIFO spill,
words accounting, ring-buffered tracing).

One deliberate fidelity *improvement* is also pinned here: the array
router delivers the **original** message objects, so the sender field
survives relaying (the legacy router rebuilt forwarded messages with the
relay as sender); equivalence is therefore asserted on (receiver, payload,
tag) and on all statistics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cclique import (
    ArrayClique,
    BandwidthExceededError,
    InvalidNodeError,
    Message,
    MessageBatch,
    MessageTooLargeError,
    ObjectSimulatedClique,
    SimulatedClique,
    TraceRecorder,
    route_batch_two_phase,
    route_two_phase,
    route_two_phase_reference,
    traced_drain,
    two_phase_relays,
)
from repro.cclique.trace import LinkEvent


def full_load_messages(n: int, rng: np.random.Generator):
    """n permutation rounds: every node sends and receives exactly n."""
    messages = []
    for _ in range(n):
        perm = rng.permutation(n)
        messages.extend(Message(s, int(perm[s]), (s,)) for s in range(n))
    return messages


def full_load_batch(n: int, rng: np.random.Generator) -> MessageBatch:
    perms = np.stack([rng.permutation(n) for _ in range(n)])
    src = np.tile(np.arange(n, dtype=np.int64), n)
    return MessageBatch(
        src=src, dst=perms.reshape(-1), payload=src.astype(np.float64).reshape(-1, 1)
    )


def random_instance(n: int, rng: np.random.Generator):
    """A skewed random instance (duplicate links, uneven loads)."""
    m = int(rng.integers(1, 5 * n))
    return [
        Message(int(rng.integers(n)), int(rng.integers(n)), (int(rng.integers(99)),))
        for _ in range(m)
    ]


def inbox_signature(delivered, n):
    """Comparable inbox content: sorted (payload, tag) per receiver."""
    return [
        sorted((m.payload, m.tag) for m in delivered.get(v, [])) for v in range(n)
    ]


# --------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------- #


class TestArrayCliqueEngine:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ArrayClique(0)
        with pytest.raises(ValueError):
            ArrayClique(4, bandwidth_words=0)

    def test_stage_and_deliver_arrays(self):
        clique = ArrayClique(4, bandwidth_words=2, strict=False)
        clique.stage([0, 1], [2, 2], [[7.0], [8.0]])
        clique.step()
        view = clique.inbox_arrays(2)
        assert sorted(view.payload[:, 0].tolist()) == [7.0, 8.0]
        assert sorted(view.src.tolist()) == [0, 1]

    def test_strict_duplicate_link_raises(self):
        clique = ArrayClique(4, strict=True)
        with pytest.raises(BandwidthExceededError):
            clique.stage([0, 0], [1, 1], [[1.0], [2.0]])

    def test_strict_duplicate_across_stages(self):
        clique = ArrayClique(4, strict=True)
        clique.stage(0, 1, 1.0)
        with pytest.raises(BandwidthExceededError):
            clique.stage(0, 1, 2.0)

    def test_invalid_node_and_oversize(self):
        clique = ArrayClique(4, bandwidth_words=1)
        with pytest.raises(InvalidNodeError):
            clique.stage(0, 9, 1.0)
        with pytest.raises(MessageTooLargeError):
            clique.stage(0, 1, np.ones((1, 5)))

    def test_fifo_spill_schedule(self):
        clique = ArrayClique(4, strict=False)
        clique.stage([0, 0, 0], [1, 1, 1], [[0.0], [1.0], [2.0]])
        rounds = clique.drain()
        assert rounds == 3
        assert clique.spill_rounds == 2
        view = clique.inbox_arrays(1)
        # FIFO: delivered in staging order across the three rounds.
        assert view.payload[:, 0].tolist() == [0.0, 1.0, 2.0]

    def test_words_accounting_decoupled_from_payload(self):
        clique = ArrayClique(8, bandwidth_words=4, strict=False)
        clique.stage(0, 1, [[1.0]], words=3)
        clique.step()
        assert clique.words_delivered == 3

    def test_collect_groups_by_destination(self):
        clique = ArrayClique(4, strict=False)
        clique.stage([0, 1, 2], [3, 1, 3], [[1.0], [2.0], [3.0]])
        clique.step()
        node, view = clique.collect()
        assert node.tolist() == [1, 3, 3]
        assert len(view) == 3

    def test_refs_round_trip(self):
        clique = ArrayClique(4, strict=False)
        payloads = ["alpha", "beta"]
        clique.stage([0, 1], [2, 2], refs=payloads)
        clique.step()
        view = clique.inbox_arrays(2)
        assert [clique.ref_object(int(r)) for r in view.ref] == payloads


# --------------------------------------------------------------------- #
# Adapter vs frozen object simulator
# --------------------------------------------------------------------- #


class TestAdapterEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_send_sequences_match(self, seed):
        """Same sends -> same rounds, spills, stats, and inboxes."""
        n = 12
        rng = np.random.default_rng(seed)
        adapter = SimulatedClique(n, bandwidth_words=2, strict=False)
        reference = ObjectSimulatedClique(n, bandwidth_words=2, strict=False)
        for _ in range(4):  # four rounds of random staging
            for msg in random_instance(n, np.random.default_rng(rng.integers(1 << 30))):
                adapter.send(msg)
                reference.send(msg)
            adapter.step()
            reference.step()
        adapter.drain()
        reference.drain()
        assert adapter.round_index == reference.round_index
        assert adapter.spill_rounds == reference.spill_rounds
        assert adapter.messages_delivered == reference.messages_delivered
        assert adapter.words_delivered == reference.words_delivered
        for v in range(n):
            got = sorted((m.sender, m.payload) for m in adapter.inbox(v))
            want = sorted((m.sender, m.payload) for m in reference.inbox(v))
            assert got == want


# --------------------------------------------------------------------- #
# Routing: array plane vs object plane (the acceptance property)
# --------------------------------------------------------------------- #


class TestRoutingPlaneEquivalence:
    @pytest.mark.parametrize("n", [16, 32, 64])
    def test_full_load_planes_identical(self, n):
        rng = np.random.default_rng(100 + n)
        messages = full_load_messages(n, rng)
        delivered_arr, stats_arr = route_two_phase(messages, n)
        delivered_ref, stats_ref = route_two_phase_reference(messages, n)
        assert stats_arr.rounds == stats_ref.rounds
        assert stats_arr.spill_rounds == stats_ref.spill_rounds
        assert stats_arr.relay_max_load == stats_ref.relay_max_load
        assert stats_arr.max_received_per_node == stats_ref.max_received_per_node
        assert inbox_signature(delivered_arr, n) == inbox_signature(delivered_ref, n)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_instances_planes_identical(self, seed):
        n = 24
        rng = np.random.default_rng(seed)
        messages = random_instance(n, rng)
        delivered_arr, stats_arr = route_two_phase(messages, n)
        delivered_ref, stats_ref = route_two_phase_reference(messages, n)
        assert (stats_arr.rounds, stats_arr.spill_rounds) == (
            stats_ref.rounds,
            stats_ref.spill_rounds,
        )
        assert inbox_signature(delivered_arr, n) == inbox_signature(delivered_ref, n)

    def test_original_senders_survive_relaying(self):
        """The array plane's fidelity improvement over the legacy router."""
        n = 8
        messages = [Message(s, 0, (s * 11,)) for s in range(n)]
        delivered, _ = route_two_phase(messages, n)
        assert sorted(m.sender for m in delivered[0]) == list(range(n))
        assert all(m.payload == (m.sender * 11,) for m in delivered[0])

    def test_empty_receivers_default_to_empty_list(self):
        """Legacy contract: the delivered dict never KeyErrors on a node."""
        delivered, _ = route_two_phase([Message(0, 1, (1.0,))], 4)
        assert delivered[3] == []

    def test_batch_tags_survive_materialization(self):
        batch = MessageBatch(
            src=np.array([0]), dst=np.array([1]),
            payload=np.array([[5.0]]), tag="mytag",
        )
        delivery, _ = route_batch_two_phase(batch, 4)
        message = delivery.to_messages()[1][0]
        assert message.tag == "mytag"
        assert message.payload == (5.0,)

    def test_empty_broadcast_still_advances_two_rounds(self):
        from repro.cclique import broadcast_words

        clique = SimulatedClique(4, bandwidth_words=2)
        _, rounds = broadcast_words(clique, 0, [])
        assert rounds == 2
        assert clique.round_index == 2

    def test_relay_plan_matches_reference_formula(self):
        n = 16
        rng = np.random.default_rng(5)
        batch = full_load_batch(n, rng)
        relay = two_phase_relays(batch.src, batch.dst, n)
        # slots per destination are globally distinct -> per-(dst, relay)
        # load is at most ceil(n / n) + 1 with the rotation
        load = np.bincount(batch.dst * n + relay, minlength=n * n)
        assert load.max() <= 2

    @pytest.mark.parametrize("n", [64, 128, 256])
    def test_full_load_round_count_constant(self, n, full_load_round_counts):
        """Lemma 2.1 at scale: the round count does not grow with n."""
        assert full_load_round_counts[n] <= 12

    def test_full_load_round_count_flat_across_sizes(self, full_load_round_counts):
        """16x more messages, same O(1) round budget: the spread across a
        4x size range stays within the spill tail's +-2, nowhere near the
        Theta(n) growth direct routing would show."""
        counts = list(full_load_round_counts.values())
        assert max(counts) - min(counts) <= 2


@pytest.fixture(scope="module")
def full_load_round_counts():
    """Measured two-phase rounds for seeded full load at n in {64,128,256}."""
    counts = {}
    for n in (64, 128, 256):
        rng = np.random.default_rng(7)
        batch = full_load_batch(n, rng)
        _, stats = route_batch_two_phase(batch, n)
        assert stats.messages == n * n
        counts[n] = stats.rounds
    return counts


# --------------------------------------------------------------------- #
# Trace ring buffer
# --------------------------------------------------------------------- #


class TestTraceRingBuffer:
    def _congested(self, rounds: int) -> SimulatedClique:
        clique = SimulatedClique(4, strict=False)
        for i in range(rounds):
            clique.send(Message(0, 1, (i,)))
        return clique

    def test_unbounded_mode_keeps_everything(self):
        clique = self._congested(10)
        recorder = traced_drain(clique, max_bytes=None)
        assert recorder.rounds == 10
        assert recorder.retained_rounds == 10
        assert recorder.dropped_events == 0

    def test_ring_drops_oldest_and_counts(self):
        clique = self._congested(50)
        recorder = traced_drain(clique, max_bytes=96 * 10)
        assert recorder.rounds == 50  # cumulative counters survive eviction
        assert recorder.total_messages == 50
        assert recorder.retained_rounds <= 10
        assert recorder.dropped_events == 50 - recorder.retained_rounds
        # the retained window is the most recent rounds
        assert recorder.snapshots[-1].round_index == clique.round_index
        assert "dropped" in recorder.timeline()

    def test_link_events_recorded_from_engine(self):
        clique = SimulatedClique(4, strict=False)
        for i in range(3):
            clique.send(Message(0, 1, (i,)))
        clique.send(Message(2, 3, (9,)))
        recorder = traced_drain(clique, record_links=True)
        assert recorder.link_events
        first = recorder.link_events[0]
        assert isinstance(first, LinkEvent)
        links = {
            (int(s), int(d)): int(c)
            for s, d, c in zip(first.src, first.dst, first.count)
        }
        # round 1 delivers one message per congested link
        assert links == {(0, 1): 1, (2, 3): 1}

    def test_link_events_respect_byte_budget(self):
        clique = self._congested(60)
        recorder = traced_drain(clique, max_bytes=1500, record_links=True)
        assert recorder.dropped_events > 0
        assert recorder.bytes_used <= 1500

    def test_recorder_works_on_bare_engine(self):
        engine = ArrayClique(4, strict=False)
        engine.stage([0, 0], [1, 1], [[1.0], [2.0]])
        recorder = TraceRecorder(engine, record_links=True)
        engine.step()
        recorder.snapshot()
        assert recorder.total_messages == 1
        assert recorder.link_events
