"""Tests for the chaos harness (repro.chaos): registry, scoring, scenarios."""

import json

import numpy as np
import pytest

from repro.chaos import (
    ChaosReport,
    RunMetrics,
    delivery_rate,
    get_scenario,
    recovery_score,
    register_scenario,
    run_scenario,
    scenario_names,
    stretch_degradation,
)
from repro.chaos.registry import ScenarioSpec

BUILTIN_SCENARIOS = (
    "route-drop",
    "route-crash",
    "route-degrade-delay",
    "route-corrupt",
    "bellman-ford-drop",
    "byzantine-corrupt",
    "pipeline-degrade",
)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = scenario_names()
        for name in BUILTIN_SCENARIOS:
            assert name in names

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario(
                "route-drop", summary="dup", faults="x", recovery="y"
            )
            def runner(n, seed, params):  # pragma: no cover - never runs
                return ChaosReport()

    def test_unknown_param_raises(self):
        spec = get_scenario("route-drop")
        with pytest.raises(ValueError, match="does not accept"):
            spec.resolve_params(no_such_knob=1)

    def test_none_params_fall_back_to_defaults(self):
        spec = get_scenario("route-drop")
        resolved = spec.resolve_params(drop=None)
        assert resolved["drop"] == spec.default_params["drop"]

    def test_specs_are_frozen(self):
        spec = get_scenario("route-drop")
        assert isinstance(spec, ScenarioSpec)
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestScoring:
    def test_delivery_rate(self):
        assert delivery_rate(3, 4) == 0.75
        assert delivery_rate(0, 0) == 1.0

    def test_stretch_degradation_identity(self):
        ref = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = stretch_degradation(ref, ref.copy())
        assert out["mean_ratio"] == 1.0
        assert out["max_ratio"] == 1.0
        assert out["degraded_pairs"] == 0
        assert out["disconnected_pairs"] == 0

    def test_stretch_degradation_counts_disconnects(self):
        ref = np.array([[0.0, 2.0], [2.0, 0.0]])
        bad = np.array([[0.0, np.inf], [4.0, 0.0]])
        out = stretch_degradation(ref, bad)
        assert out["disconnected_pairs"] == 1
        assert out["max_ratio"] == 2.0

    def test_recovery_score_shape(self):
        clean = RunMetrics(name="clean", attempted=10, delivered=10, rounds=5)
        faulted = RunMetrics(name="faulted", attempted=10, delivered=6, rounds=5)
        recovered = RunMetrics(
            name="recovered", attempted=10, delivered=9, rounds=8, retries=2
        )
        score = recovery_score(clean, faulted, recovered)
        assert score["delivery_no_recovery"] == 0.6
        assert score["delivery_rate"] == 0.9
        assert score["recovery_gain"] == pytest.approx(0.3)
        assert score["rounds_to_recovery"] == 3
        assert score["retries_used"] == 2
        assert score["perfect"] is False

    def test_report_json_round_trip(self):
        report = run_scenario("route-drop", n=16, seed=1)
        clone = ChaosReport.from_json(report.to_json())
        assert clone.snapshot() == report.snapshot()
        json.dumps(report.snapshot())  # JSON-safe throughout


class TestScenarios:
    def test_zero_drop_is_perfect(self):
        report = run_scenario("route-drop", n=16, seed=0, drop=0.0)
        assert report.score["delivery_no_recovery"] == 1.0
        assert report.score["delivery_rate"] == 1.0
        assert report.score["recovery_gain"] == 0.0
        assert report.score["perfect"] is True

    def test_drop_recovery_strictly_improves(self):
        report = run_scenario("route-drop", n=24, seed=0, drop=0.15, retries=5)
        assert report.score["delivery_no_recovery"] < 1.0
        assert report.score["recovery_gain"] > 0.0
        assert (
            report.score["delivery_rate"]
            > report.score["delivery_no_recovery"]
        )

    def test_crash_replanning_improves_delivery(self):
        report = run_scenario("route-crash", n=24, seed=0)
        assert report.score["recovery_gain"] > 0.0
        # Every row whose endpoints survived was delivered after replan;
        # rows touching the crashed node are gone for good.
        assert report.score["deliverable_rate"] == 1.0
        assert report.score["delivery_rate"] < 1.0
        assert 0 <= report.score["crashed_node"] < 24

    def test_degrade_delay_degrades_gracefully(self):
        report = run_scenario("route-degrade-delay", n=16, seed=0)
        assert report.score["delivery_rate"] == 1.0
        assert report.score["rounds_to_recovery"] > 0

    def test_corrupt_measures_integrity(self):
        report = run_scenario("route-corrupt", n=16, seed=0, corrupt_p=0.5)
        assert report.score["delivery_rate"] == 1.0
        assert report.score["corrupted_rows"] > 0
        assert report.score["payload_integrity"] < 1.0

    def test_corrupt_protected_prefix_keeps_headers_routable(self):
        # Even at p=1.0 every row still arrives (headers shielded).
        report = run_scenario("route-corrupt", n=12, seed=0, corrupt_p=1.0)
        assert report.score["delivery_rate"] == 1.0
        assert report.score["payload_integrity"] == 0.0

    def test_bellman_ford_drop_measures_stretch(self):
        report = run_scenario("bellman-ford-drop", n=24, seed=0, drop=0.1)
        assert report.score["stretch_degradation"] >= 1.0
        assert report.score["compared_pairs"] > 0

    def test_byzantine_corrupt_detection_gap(self):
        report = run_scenario("byzantine-corrupt", n=24, seed=0)
        # The whole point: without checksums nothing is detected, with
        # them every flipped row is quarantined and re-requested.
        assert report.score["detection_rate_baseline"] == 0.0
        assert report.score["detection_rate"] == 1.0
        assert report.score["payload_integrity_baseline"] < 1.0
        assert report.score["payload_integrity"] == 1.0
        assert report.score["payload_integrity_erasure"] == 1.0
        assert report.score["delivery_rate"] == 1.0
        assert "signature" in report.plan

    def test_byzantine_corrupt_records_per_run_detection(self):
        report = run_scenario("byzantine-corrupt", n=16, seed=2)
        runs = report.runs
        assert runs["baseline"]["extra"]["detection_rate"] == 0.0
        assert runs["detected"]["extra"]["detection_rate"] == 1.0
        assert runs["detected"]["fault_totals"]["detected"] > 0

    def test_pipeline_degrade_recovers_estimate(self):
        report = run_scenario("pipeline-degrade", n=32, seed=0)
        # Erasure-coded retransmit ships every edge, so the recovered
        # estimate matches the clean differential reference exactly.
        assert report.score["delivery_no_recovery"] < 1.0
        assert report.score["delivery_rate"] == 1.0
        assert report.score["recovered"] is True
        assert report.score["stretch_recovered"] == 1.0
        assert report.score["stretch_degradation"] >= 1.0
        assert report.runs["recovered"]["reconstructed"] >= 0

    def test_reports_are_deterministic(self):
        a = run_scenario("route-drop", n=16, seed=3)
        b = run_scenario("route-drop", n=16, seed=3)
        assert a.snapshot() == b.snapshot()

    def test_all_scenarios_run_small(self):
        for name in BUILTIN_SCENARIOS:
            report = run_scenario(name, n=12, seed=0)
            assert report.scenario == name
            assert report.n == 12
            assert report.runs  # every scenario logs its runs
            json.dumps(report.snapshot())
