"""Tests for the weight scaling lemma (Section 8.1, Lemma 8.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    assemble_eta,
    build_scaled_graph,
    clip_estimate,
    plan_scaling,
    verify_scaling_guarantees,
)
from repro.graphs import (
    erdos_renyi,
    exact_apsp,
    polynomial_weights,
    weighted_diameter_from_matrix,
)
from repro.semiring import minplus_power

from tests.helpers import make_rng

SEEDS = [0, 1, 2]


def heavy_graph(seed: int, n: int = 30):
    rng = make_rng(seed)
    return erdos_renyi(n, 0.15, rng, weights=polynomial_weights(n, 2.5))


class TestScalingPlan:
    def test_index_selection_rule(self):
        h, eps = 3, 0.5
        B = math.ceil(2 / eps)  # 4
        base = B * h * h  # 36
        delta = np.array(
            [
                [0.0, 10.0, base - 1.0],
                [10.0, 0.0, 4 * base, ],
                [base - 1.0, 4 * base, 0.0],
            ]
        )
        plan = plan_scaling(delta, h, eps)
        assert plan.index[0, 1] == 0  # below B/2 h^2
        assert plan.index[0, 2] == 0  # in [B/2 h^2, B h^2)
        assert plan.index[1, 2] == 3  # 4 * B h^2 is in [2^2 B h^2, 2^3 B h^2)

    def test_needed_is_sorted_unique(self):
        delta = np.array([[0.0, 1.0], [1.0, 0.0]])
        plan = plan_scaling(delta, 2, 0.25)
        assert plan.needed == [0]

    def test_number_of_scales_logarithmic(self):
        """Polynomially bounded distances need O(log n) scales."""
        n = 20
        delta = np.full((n, n), float(n**3))
        np.fill_diagonal(delta, 0.0)
        plan = plan_scaling(delta, 2, 0.5)
        assert max(plan.needed) <= math.log2(n**3) + 2

    def test_invalid_inputs(self):
        delta = np.zeros((2, 2))
        with pytest.raises(ValueError):
            plan_scaling(delta, 0, 0.5)
        with pytest.raises(ValueError):
            plan_scaling(delta, 2, 0.0)


class TestScaledGraphs:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_diameter_cap(self, seed):
        """Every G_i has weighted diameter at most B h^2 (with the implicit
        clique edges, i.e. after clipping)."""
        graph = heavy_graph(seed)
        exact = exact_apsp(graph)
        plan = plan_scaling(exact, h=4, eps=0.5)
        for i in plan.needed:
            scaled = build_scaled_graph(graph, i, plan)
            clipped = clip_estimate(exact_apsp(scaled), plan)
            assert weighted_diameter_from_matrix(clipped) <= plan.cap

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sparse_plus_clip_equals_materialized_clique(self, seed):
        """The representation note: min(d_sparse, cap) = d_{K_i}."""
        graph = heavy_graph(seed, n=16)
        exact = exact_apsp(graph)
        plan = plan_scaling(exact, h=3, eps=0.5)
        for i in plan.needed[:3]:
            sparse = build_scaled_graph(graph, i, plan)
            full = build_scaled_graph(graph, i, plan, materialize_clique=True)
            clipped = clip_estimate(exact_apsp(sparse), plan)
            assert np.allclose(clipped, exact_apsp(full))

    def test_rounding_is_ceil(self):
        graph = heavy_graph(0, n=10)
        plan = plan_scaling(exact_apsp(graph), h=2, eps=0.5)
        i = 2  # x = 4
        scaled = build_scaled_graph(graph, i, plan)
        orig = {(u, v): w for u, v, w in graph.edges()}
        for u, v, w in scaled.edges():
            assert w == min(math.ceil(orig[(u, v)] / 4.0), plan.cap)

    def test_negative_scale_rejected(self):
        graph = heavy_graph(0, n=8)
        plan = plan_scaling(exact_apsp(graph), h=2, eps=0.5)
        with pytest.raises(ValueError):
            build_scaled_graph(graph, -1, plan)


class TestEtaAssembly:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lemma_conclusions_with_exact_per_scale(self, seed):
        """With exact per-scale solutions (l = 1): eta >= d everywhere and
        eta <= (1+eps) d on h-hop-covered pairs."""
        graph = heavy_graph(seed)
        exact = exact_apsp(graph)
        h, eps = 6, 0.5
        plan = plan_scaling(exact, h=h, eps=eps)  # delta = exact (1-approx)
        estimates = {}
        for i in plan.needed:
            scaled = build_scaled_graph(graph, i, plan)
            estimates[i] = clip_estimate(exact_apsp(scaled), plan)
        eta = assemble_eta(estimates, plan)
        hop_ok = np.isclose(minplus_power(graph.matrix(), h), exact)
        assert verify_scaling_guarantees(exact, eta, hop_ok, l_factor=1.0, eps=eps)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lemma_conclusions_with_l_approx_per_scale(self, seed):
        """With synthetic l-approximate per-scale solutions."""
        graph = heavy_graph(seed)
        exact = exact_apsp(graph)
        h, eps, l = 6, 0.5, 3.0
        plan = plan_scaling(exact, h=h, eps=eps)
        estimates = {}
        for i in plan.needed:
            scaled = build_scaled_graph(graph, i, plan)
            worst = exact_apsp(scaled) * l
            np.fill_diagonal(worst, 0.0)
            estimates[i] = clip_estimate(worst, plan)
        eta = assemble_eta(estimates, plan)
        hop_ok = np.isclose(minplus_power(graph.matrix(), h), exact)
        assert verify_scaling_guarantees(exact, eta, hop_ok, l_factor=l, eps=eps)

    def test_missing_scale_rejected(self):
        graph = heavy_graph(1, n=10)
        exact = exact_apsp(graph)
        plan = plan_scaling(exact, h=2, eps=0.5)
        with pytest.raises(ValueError):
            assemble_eta({}, plan)

    def test_coarse_delta_still_sound(self):
        """Using an h-approximation (not exact) to pick scales, the lower
        bound eta >= d must still hold everywhere."""
        graph = heavy_graph(2)
        exact = exact_apsp(graph)
        h, eps = 8, 0.5
        delta = exact * 2.0  # 2-approximation, 2 <= h
        np.fill_diagonal(delta, 0.0)
        plan = plan_scaling(delta, h=h, eps=eps)
        estimates = {}
        for i in plan.needed:
            scaled = build_scaled_graph(graph, i, plan)
            estimates[i] = clip_estimate(exact_apsp(scaled), plan)
        eta = assemble_eta(estimates, plan)
        hop_ok = np.isclose(minplus_power(graph.matrix(), h), exact)
        assert verify_scaling_guarantees(exact, eta, hop_ok, l_factor=1.0, eps=eps)
