"""Legacy setup shim (environment lacks the `wheel` package for PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Improved All-Pairs Approximate Shortest Paths "
        "in Congested Clique' (PODC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
