"""Micro-batching: coalesce concurrent point queries into array calls.

The query plane (PR 5) made *batches* cheap — ``query_many`` is one
gather, ``route_batch`` one numpy step per hop for every in-flight
packet — but a serving front-end receives point queries one ``await``
at a time.  :class:`MicroBatcher` closes that gap: requests that arrive
within a flush window ride the same vectorized call.

A batch flushes when either bound trips:

* **size** — the pending list reaches ``max_batch`` (flush now; the
  deadline timer is cancelled), or
* **deadline** — ``max_delay_ms`` elapsed since the *first* pending
  request (bounded worst-case latency: a lone request waits at most one
  window).

The flush function receives the pending payloads as one list, runs on
the executor (numpy work must not block the event loop), and must
return one result per payload, in order; results resolve the per-request
futures.  An exception fails every request in that batch — item ``i``'s
result never silently becomes item ``j``'s.

Single event loop: a batcher instance serves one running loop at a time
(futures and timers belong to the submitting loop).  Sequential
``asyncio.run`` blocks are fine — each run drains its own submissions.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

FlushFn = Callable[[List[Any]], Sequence[Any]]


@dataclass
class BatcherStats:
    """Counters for one :class:`MicroBatcher` (JSON-safe via snapshot)."""

    submitted: int = 0
    completed: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    errors: int = 0
    cancelled: int = 0
    max_batch_seen: int = 0

    @property
    def mean_batch(self) -> Optional[float]:
        """Mean flushed batch size; ``None`` before the first flush."""
        if not self.flushes:
            return None
        return self.completed / self.flushes

    def snapshot(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "flushes": self.flushes,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch": self.mean_batch,
        }


@dataclass
class _Pending:
    """One coalesced request: its payload and the future to resolve."""

    payload: Any
    future: "asyncio.Future[Any]" = field(repr=False)


class MicroBatcher:
    """Coalesce awaited point requests into vectorized flush calls.

    ``flush`` maps a list of payloads to an equal-length sequence of
    results.  ``executor=None`` uses the loop's default thread pool.
    """

    def __init__(
        self,
        flush: FlushFn,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        executor: Optional[Any] = None,
        on_flush: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self._flush = flush
        self.max_batch = int(max_batch)
        self.max_delay_ms = float(max_delay_ms)
        self._executor = executor
        self._on_flush = on_flush
        self._pending: List[_Pending] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self.stats = BatcherStats()

    @property
    def pending(self) -> int:
        """Requests currently waiting for a flush."""
        return len(self._pending)

    async def submit(self, payload: Any) -> Any:
        """Enqueue one payload; resolves with its flush result."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._pending.append(_Pending(payload, future))
        self.stats.submitted += 1
        if len(self._pending) >= self.max_batch:
            self._launch(loop, "size")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_delay_ms / 1000.0, self._deadline, loop
            )
        return await future

    def _deadline(self, loop: asyncio.AbstractEventLoop) -> None:
        self._timer = None
        if self._pending:
            self._launch(loop, "deadline")

    def _launch(self, loop: asyncio.AbstractEventLoop, reason: str) -> None:
        """Detach the pending list and start one flush task over it."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self.stats.flushes += 1
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "deadline":
            self.stats.deadline_flushes += 1
        else:
            self.stats.drain_flushes += 1
        if len(batch) > self.stats.max_batch_seen:
            self.stats.max_batch_seen = len(batch)
        task = loop.create_task(self._run(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, batch: List[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        payloads = [item.payload for item in batch]
        try:
            results = await loop.run_in_executor(
                self._executor, self._flush, payloads
            )
            if len(results) != len(payloads):
                raise RuntimeError(
                    f"flush returned {len(results)} results for "
                    f"{len(payloads)} payloads"
                )
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            self.stats.errors += 1
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        # Bookkeeping before resolving: once results land, the awaiting
        # coroutines may finish the event loop with this task mid-body.
        self.stats.completed += len(batch)
        if self._on_flush is not None:
            self._on_flush(len(batch))
        for item, result in zip(batch, results):
            if not item.future.done():
                item.future.set_result(result)

    async def drain(self) -> None:
        """Flush anything pending and wait for every in-flight batch.

        Loops until both the pending list and the in-flight set are
        empty, so a request that parks *while* the final batch is being
        awaited is flushed too — drain never returns with a caller
        silently left hanging on an unarmed batch.
        """
        loop = asyncio.get_running_loop()
        while self._pending or self._inflight:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            if self._pending:
                self._launch(loop, "drain")
            if self._inflight:
                await asyncio.gather(
                    *tuple(self._inflight), return_exceptions=True
                )

    def fail_pending(self, exc: Optional[BaseException] = None) -> int:
        """Fail every still-parked request instead of leaving it hung.

        The shutdown path for callers that cannot ``await drain()`` (no
        running loop — e.g. a service ``close()`` after its event loop
        exited): cancels the deadline timer, detaches the pending list,
        and cancels each parked future (or fails it with ``exc``).
        Returns the number of requests failed; they are counted in
        ``stats.cancelled``.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        failed = 0
        for item in batch:
            if item.future.done():
                continue
            try:
                if exc is not None:
                    item.future.set_exception(exc)
                else:
                    item.future.cancel()
            except RuntimeError:
                # The owning loop is already closed; nobody is listening,
                # but the request is detached either way.
                pass
            failed += 1
        self.stats.cancelled += failed
        return failed


__all__ = ["BatcherStats", "MicroBatcher", "FlushFn"]
