"""LRU store of :class:`DistanceOracle` artifacts.

Keyed the same way as :class:`repro.graphs.ExactOracleCache` — by the
graph's content hash — extended with the variant label *and a digest of
the estimate matrix*.  The exact-oracle cache can key on graph content
alone because exact distances are seed-independent; approximate results
are not (two seeds of a randomized variant give different estimates),
so the estimate content is part of an oracle's identity.  Thread-safe,
bounded by entry count *and* total bytes (the artifacts are three
``O(n^2)`` matrices each), LRU eviction enforcing both; the same policy
the exact-oracle cache uses.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from ..core.results import Estimate
from ..graphs.distances import graph_content_hash
from ..graphs.graph import WeightedGraph
from .oracle import DistanceOracle


def estimate_digest(estimate: Union[Estimate, np.ndarray]) -> str:
    """Content digest of an estimate matrix (the seed-sensitive part).

    float64 and float32 arrays are hashed over their raw bytes in row
    chunks — a memmap-backed estimate streams through a bounded window
    instead of being densified, and the float64 digest is byte-for-byte
    the digest this function always produced.  Other dtypes are cast to
    float64 first (the historical behaviour).
    """
    if isinstance(estimate, Estimate):
        estimate = estimate.estimate
    arr = np.asarray(estimate)
    if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        arr = np.ascontiguousarray(estimate, dtype=np.float64)
    digest = hashlib.sha256()
    if arr.ndim == 2 and arr.shape[0] > 1:
        per = max(1, (4 << 20) // max(1, arr.shape[1] * arr.itemsize))
        for lo in range(0, arr.shape[0], per):
            digest.update(np.ascontiguousarray(arr[lo: lo + per]).tobytes())
    else:
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def oracle_key(
    graph_hash: str, variant: str = "", estimate_hash: str = ""
) -> str:
    """The store key for one (graph content, variant, estimate) triple.

    ``estimate_hash`` is abbreviated — the graph hash already pins the
    instance; the estimate digest only needs to separate different
    solves of it.
    """
    return f"{graph_hash}:{variant}:{estimate_hash[:16]}"


class OracleStore:
    """Content-keyed LRU of built distance oracles.

    ``get_or_build`` is the serving entry point: repeated requests for
    the same (graph content, variant) pay the ``next_hop_table`` build
    exactly once.  Returned oracles are immutable, so a hit can be
    shared across threads safely.
    """

    def __init__(
        self, max_entries: int = 16, max_bytes: int = 1024 * 2**20
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_seconds = 0.0
        self.evictions = 0
        self._store: "OrderedDict[str, DistanceOracle]" = OrderedDict()
        # Friendly names (e.g. ``graph_hash:variant:seed``) -> store key,
        # so a caller who has not re-run the solver can still find the
        # oracle a previous solve produced.  Pruned with their entries.
        self._aliases: Dict[str, str] = {}
        # Single-flight state: key -> event set when its build finishes.
        self._building: Dict[str, threading.Event] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by stored oracles."""
        return self._bytes

    def key_for(
        self,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        variant: Optional[str] = None,
    ) -> str:
        """The key ``get_or_build`` would use for this (graph, source)."""
        if variant is None:
            variant = str(getattr(source, "variant", "") or "")
        return oracle_key(
            graph_content_hash(graph), variant, estimate_digest(source)
        )

    def peek(self, key: str) -> Optional[DistanceOracle]:
        """The stored oracle for ``key``, or ``None`` — never builds."""
        with self._lock:
            oracle = self._store.get(key)
            if oracle is not None:
                self._store.move_to_end(key)
                self.hits += 1
            return oracle

    def put(self, oracle: DistanceOracle, key: Optional[str] = None) -> str:
        """Insert (or refresh) an oracle; returns the key used.

        The default key is derived from the oracle's own metadata
        (``graph_hash`` + ``variant``), which is how oracles loaded from
        disk re-enter the store under their original identity.
        """
        if key is None:
            key = oracle_key(
                str(oracle.meta.get("graph_hash", "")),
                str(oracle.meta.get("variant", "")),
                estimate_digest(oracle.estimate),
            )
        with self._lock:
            self._insert_locked(key, oracle)
        return key

    def lookup(self, alias: str) -> Optional[DistanceOracle]:
        """Resolve a registered alias; ``None`` if unknown or evicted.

        A hit counts and LRU-touches like :meth:`peek`; absence is
        uncharged (``misses`` keeps meaning "a build was required").
        This is how a caller that did not re-run the solver — a fresh
        CLI invocation, a service front-end holding only a handle —
        finds the oracle a previous solve produced.
        """
        with self._lock:
            key = self._aliases.get(alias)
            oracle = self._store.get(key) if key is not None else None
            if oracle is None:
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return oracle

    def register_alias(self, alias: str, key: str) -> None:
        """Point ``alias`` at an existing store key (no-op if absent)."""
        with self._lock:
            if key in self._store:
                self._aliases[str(alias)] = key

    def get_or_build(
        self,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        variant: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
        alias: Optional[str] = None,
    ) -> DistanceOracle:
        """The oracle for ``(graph, variant)``, built at most once.

        ``source`` and ``meta`` are forwarded to
        :meth:`DistanceOracle.build` on a miss; ``variant`` defaults to
        the source's own variant label (empty for bare matrices).  The
        key includes a digest of the source estimate, so two solves of
        the same graph with different seeds get *different* entries —
        the estimate, not just the instance, is the oracle's identity.

        Builds are **single-flight**: concurrent misses on the same key
        block until the one in-flight build finishes and then share its
        artifact (waiters count as hits; exactly one ``builds`` tick and
        one ``misses`` tick per actual build).  Misses on *different*
        keys still build in parallel.  ``alias`` (optional) registers a
        friendly name for the entry, resolvable later via
        :meth:`lookup` without re-solving.
        """
        if variant is None:
            variant = str(getattr(source, "variant", "") or "")
        key = self.key_for(graph, source, variant)
        while True:
            with self._lock:
                cached = self._store.get(key)
                if cached is not None:
                    self._store.move_to_end(key)
                    self.hits += 1
                    if alias is not None:
                        self._aliases[str(alias)] = key
                    return cached
                waiter = self._building.get(key)
                if waiter is None:
                    done = threading.Event()
                    self._building[key] = done
                    break
            # Another thread is building this exact key: wait for it and
            # re-check (the loop also covers the builder having failed —
            # the next thread through simply becomes the new builder).
            waiter.wait()
        # Build outside the lock: concurrent misses on *different* keys
        # must not serialise.  The keying variant lands in the artifact's
        # meta so ``put`` re-derives this exact key for it (and for
        # reloaded clones).
        try:
            build_meta = dict(meta or {})
            if variant:
                build_meta.setdefault("variant", variant)
            start = time.perf_counter()
            oracle = DistanceOracle.build(
                graph, source, meta=build_meta or None
            )
            elapsed = time.perf_counter() - start
            with self._lock:
                self.misses += 1
                self.builds += 1
                self.build_seconds += elapsed
                self._insert_locked(key, oracle)
                if alias is not None:
                    self._aliases[str(alias)] = key
        finally:
            with self._lock:
                self._building.pop(key, None)
            done.set()
        return oracle

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (the service metrics plane's view)."""
        with self._lock:
            return {
                "entries": len(self._store),
                "bytes": int(self._bytes),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "build_seconds": float(self.build_seconds),
                "evictions": self.evictions,
                "aliases": len(self._aliases),
            }

    @staticmethod
    def _charged_bytes(oracle: DistanceOracle) -> int:
        """What an oracle costs against the byte budget.

        ``resident_nbytes`` when available: memmap-backed (out-of-core)
        matrices occupy disk, not the RAM this budget protects, and a
        float32 estimate is half the float64 ``nbytes`` assumption.
        """
        return int(getattr(oracle, "resident_nbytes", oracle.nbytes))

    def _insert_locked(self, key: str, oracle: DistanceOracle) -> None:
        """Insert under the held lock and evict LRU-first to both bounds."""
        previous = self._store.pop(key, None)
        if previous is not None:
            self._bytes -= self._charged_bytes(previous)
        self._store[key] = oracle
        self._bytes += self._charged_bytes(oracle)
        # A single artifact larger than max_bytes is kept alone (evicting
        # it immediately would just thrash on every request).
        while len(self._store) > self.max_entries or (
            self._bytes > self.max_bytes and len(self._store) > 1
        ):
            evicted_key, evicted = self._store.popitem(last=False)
            self._bytes -= self._charged_bytes(evicted)
            self.evictions += 1
            self._aliases = {
                a: k for a, k in self._aliases.items() if k != evicted_key
            }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._aliases.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.builds = 0
            self.build_seconds = 0.0
            self.evictions = 0


#: Process-wide store shared by the CLI and any embedding service.
DEFAULT_STORE = OracleStore()


__all__ = ["OracleStore", "DEFAULT_STORE", "estimate_digest", "oracle_key"]
