"""LRU store of :class:`DistanceOracle` artifacts.

Keyed the same way as :class:`repro.graphs.ExactOracleCache` — by the
graph's content hash — extended with the variant label *and a digest of
the estimate matrix*.  The exact-oracle cache can key on graph content
alone because exact distances are seed-independent; approximate results
are not (two seeds of a randomized variant give different estimates),
so the estimate content is part of an oracle's identity.  Thread-safe,
bounded by entry count *and* total bytes (the artifacts are three
``O(n^2)`` matrices each), LRU eviction enforcing both; the same policy
the exact-oracle cache uses.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Mapping, Optional, Union

import numpy as np

from ..core.results import Estimate
from ..graphs.distances import graph_content_hash
from ..graphs.graph import WeightedGraph
from .oracle import DistanceOracle


def estimate_digest(estimate: Union[Estimate, np.ndarray]) -> str:
    """Content digest of an estimate matrix (the seed-sensitive part)."""
    if isinstance(estimate, Estimate):
        estimate = estimate.estimate
    dense = np.ascontiguousarray(estimate, dtype=np.float64)
    return hashlib.sha256(dense.tobytes()).hexdigest()


def oracle_key(
    graph_hash: str, variant: str = "", estimate_hash: str = ""
) -> str:
    """The store key for one (graph content, variant, estimate) triple.

    ``estimate_hash`` is abbreviated — the graph hash already pins the
    instance; the estimate digest only needs to separate different
    solves of it.
    """
    return f"{graph_hash}:{variant}:{estimate_hash[:16]}"


class OracleStore:
    """Content-keyed LRU of built distance oracles.

    ``get_or_build`` is the serving entry point: repeated requests for
    the same (graph content, variant) pay the ``next_hop_table`` build
    exactly once.  Returned oracles are immutable, so a hit can be
    shared across threads safely.
    """

    def __init__(
        self, max_entries: int = 16, max_bytes: int = 1024 * 2**20
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[str, DistanceOracle]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by stored oracles."""
        return self._bytes

    def key_for(
        self,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        variant: Optional[str] = None,
    ) -> str:
        """The key ``get_or_build`` would use for this (graph, source)."""
        if variant is None:
            variant = str(getattr(source, "variant", "") or "")
        return oracle_key(
            graph_content_hash(graph), variant, estimate_digest(source)
        )

    def peek(self, key: str) -> Optional[DistanceOracle]:
        """The stored oracle for ``key``, or ``None`` — never builds."""
        with self._lock:
            oracle = self._store.get(key)
            if oracle is not None:
                self._store.move_to_end(key)
                self.hits += 1
            return oracle

    def put(self, oracle: DistanceOracle, key: Optional[str] = None) -> str:
        """Insert (or refresh) an oracle; returns the key used.

        The default key is derived from the oracle's own metadata
        (``graph_hash`` + ``variant``), which is how oracles loaded from
        disk re-enter the store under their original identity.
        """
        if key is None:
            key = oracle_key(
                str(oracle.meta.get("graph_hash", "")),
                str(oracle.meta.get("variant", "")),
                estimate_digest(oracle.estimate),
            )
        with self._lock:
            self._insert_locked(key, oracle)
        return key

    def get_or_build(
        self,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        variant: Optional[str] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> DistanceOracle:
        """The oracle for ``(graph, variant)``, built at most once.

        ``source`` and ``meta`` are forwarded to
        :meth:`DistanceOracle.build` on a miss; ``variant`` defaults to
        the source's own variant label (empty for bare matrices).  The
        key includes a digest of the source estimate, so two solves of
        the same graph with different seeds get *different* entries —
        the estimate, not just the instance, is the oracle's identity.
        """
        if variant is None:
            variant = str(getattr(source, "variant", "") or "")
        key = self.key_for(graph, source, variant)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._store.move_to_end(key)
                self.hits += 1
                return cached
        # Build outside the lock: concurrent misses on *different* keys
        # must not serialise (a duplicated build of the same key merely
        # wastes one table construction and is resolved on insert).
        # The keying variant lands in the artifact's meta so ``put``
        # re-derives this exact key for it (and for reloaded clones).
        build_meta = dict(meta or {})
        if variant:
            build_meta.setdefault("variant", variant)
        oracle = DistanceOracle.build(graph, source, meta=build_meta or None)
        with self._lock:
            existing = self._store.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._insert_locked(key, oracle)
        return oracle

    def _insert_locked(self, key: str, oracle: DistanceOracle) -> None:
        """Insert under the held lock and evict LRU-first to both bounds."""
        previous = self._store.pop(key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        self._store[key] = oracle
        self._bytes += oracle.nbytes
        # A single artifact larger than max_bytes is kept alone (evicting
        # it immediately would just thrash on every request).
        while len(self._store) > self.max_entries or (
            self._bytes > self.max_bytes and len(self._store) > 1
        ):
            _, evicted = self._store.popitem(last=False)
            self._bytes -= evicted.nbytes

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0


#: Process-wide store shared by the CLI and any embedding service.
DEFAULT_STORE = OracleStore()


__all__ = ["OracleStore", "DEFAULT_STORE", "estimate_digest", "oracle_key"]
