"""The vectorized batch query engine over a :class:`DistanceOracle`.

:func:`route_batch` replaces the per-hop, per-query Python loop of
:func:`repro.core.routing_tables.greedy_route` with one numpy step per
hop that advances *all* in-flight packets at once: a gather from the
next-hop table, a dead-end mask, a revisit check against a ``(q, n)``
visited bitmap, and a scatter of lengths/positions.  Semantics are
bit-identical to the (fixed) per-call router — same paths, same float
accumulation order per packet, same loop/dead-end/budget outcomes —
which the differential tests and ``benchmarks/bench_query.py`` pin.

:func:`audit_stretch` is the sampling measurement built on top: it
subsumes :func:`repro.core.routing_tables.routing_quality` with honest
accounting (zero attempts stay zero; zero-distance exact pairs are
flagged, not divided by) plus per-outcome failure counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .oracle import DistanceOracle

#: Per-query outcome codes in :attr:`BatchRoutes.status`.
STATUS_DELIVERED = 0
STATUS_DEAD_END = 1
STATUS_LOOP = 2
STATUS_BUDGET = 3

STATUS_NAMES = {
    STATUS_DELIVERED: "delivered",
    STATUS_DEAD_END: "dead-end",
    STATUS_LOOP: "loop",
    STATUS_BUDGET: "budget",
}


@dataclass
class BatchRoutes:
    """Outcome of one :func:`route_batch` call (arrays indexed by query).

    ``lengths`` accumulates exactly the edges a packet traversed: a loop
    failure records the cycle-closing hop in ``paths``/``hops`` but not
    in ``lengths`` (the packet is dropped at the revisited node), and a
    dead end stops before any further accrual — matching
    :func:`repro.core.routing_tables.greedy_route`.
    """

    sources: np.ndarray  # (q,) int64
    targets: np.ndarray  # (q,) int64
    delivered: np.ndarray  # (q,) bool
    lengths: np.ndarray  # (q,) float64
    hops: np.ndarray  # (q,) int64
    status: np.ndarray  # (q,) int8, STATUS_* codes
    paths: Optional[np.ndarray] = None  # (q, max_hops_taken + 1), -1-padded

    @property
    def size(self) -> int:
        return len(self.sources)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction; ``nan`` for an empty batch."""
        if not self.size:
            return float("nan")
        return float(np.mean(self.delivered))

    def path(self, i: int) -> List[int]:
        """Query ``i``'s node sequence (requires ``record_paths=True``)."""
        if self.paths is None:
            raise ValueError("paths were not recorded; pass record_paths=True")
        row = self.paths[i]
        return row[: int(self.hops[i]) + 1].tolist()

    def outcome_counts(self) -> dict:
        """``{outcome name: count}`` over the whole batch."""
        return {
            name: int(np.count_nonzero(self.status == code))
            for code, name in STATUS_NAMES.items()
        }

    def to_records(self) -> List[dict]:
        """Per-query JSON-safe records (the serving tier's wire shape).

        Plain ``int``/``float``/``bool``/``str`` fields only, so a
        record drops straight into a metrics snapshot or a service
        response without further conversion.
        """
        return [
            {
                "source": int(s),
                "target": int(t),
                "delivered": bool(d),
                "length": float(length),
                "hops": int(h),
                "status": STATUS_NAMES[int(code)],
            }
            for s, t, d, length, h, code in zip(
                self.sources,
                self.targets,
                self.delivered,
                self.lengths,
                self.hops,
                self.status,
            )
        ]


def route_batch(
    oracle: DistanceOracle,
    sources: Sequence[int],
    targets: Sequence[int],
    max_hops: Optional[int] = None,
    record_paths: bool = False,
    chunk_queries: Optional[int] = None,
) -> BatchRoutes:
    """Greedily forward many packets at once over the oracle's table.

    One numpy step per hop moves every in-flight packet: packets retire
    on arrival, dead end, revisit (loop), or after ``max_hops`` (default
    ``2 n``, as in ``greedy_route``).  ``record_paths=True`` additionally
    materialises the ``(q, hops+1)`` node-sequence matrix (``-1``-padded).

    ``chunk_queries`` row-shards the batch: at most that many packets are
    in flight at once, bounding the ``(q, n)`` visited bitmap (the
    routing state that dominates memory at ``n = 4096``).  Queries are
    mutually independent, so the chunked result is bit-identical to the
    unchunked one — the shards are simply concatenated back in order.
    """
    n = oracle.n
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    sources, targets = np.broadcast_arrays(sources, targets)
    sources = sources.reshape(-1).copy()
    targets = targets.reshape(-1).copy()
    q = len(sources)
    if q and (
        min(sources.min(), targets.min()) < 0
        or max(sources.max(), targets.max()) >= n
    ):
        raise ValueError(f"sources/targets out of range [0, {n})")
    if max_hops is None:
        max_hops = 2 * n
    max_hops = int(max_hops)
    if chunk_queries is not None:
        chunk_queries = int(chunk_queries)
        if chunk_queries < 1:
            raise ValueError("chunk_queries must be >= 1")
        if q > chunk_queries:
            shards = [
                _route_arrays(
                    oracle,
                    sources[lo: lo + chunk_queries],
                    targets[lo: lo + chunk_queries],
                    max_hops,
                    record_paths,
                )
                for lo in range(0, q, chunk_queries)
            ]
            return _concat_routes(shards, record_paths)
    return _route_arrays(oracle, sources, targets, max_hops, record_paths)


def _concat_routes(shards: List[BatchRoutes], record_paths: bool) -> BatchRoutes:
    """Stitch per-shard results back into one in-order batch."""
    status = np.concatenate([s.status for s in shards])
    paths: Optional[np.ndarray] = None
    if record_paths:
        total = sum(s.size for s in shards)
        width = max(s.paths.shape[1] for s in shards)
        paths = np.full((total, width), -1, dtype=np.int64)
        row = 0
        for shard in shards:
            paths[row: row + shard.size, : shard.paths.shape[1]] = shard.paths
            row += shard.size
    return BatchRoutes(
        sources=np.concatenate([s.sources for s in shards]),
        targets=np.concatenate([s.targets for s in shards]),
        delivered=status == STATUS_DELIVERED,
        lengths=np.concatenate([s.lengths for s in shards]),
        hops=np.concatenate([s.hops for s in shards]),
        status=status,
        paths=paths,
    )


def _route_arrays(
    oracle: DistanceOracle,
    sources: np.ndarray,
    targets: np.ndarray,
    max_hops: int,
    record_paths: bool,
) -> BatchRoutes:
    """The hop loop over one validated, already-broadcast query block."""
    n = oracle.n
    table = oracle.next_hop
    hop_weight = oracle.hop_weight
    q = len(sources)

    current = sources.copy()
    lengths = np.zeros(q, dtype=np.float64)
    hops = np.zeros(q, dtype=np.int64)
    status = np.full(q, STATUS_BUDGET, dtype=np.int8)
    status[current == targets] = STATUS_DELIVERED
    visited = np.zeros((q, n), dtype=bool)
    if q:
        visited[np.arange(q), current] = True
    # In-flight packets as a dense index array: every packet here has
    # taken exactly ``step`` hops, so per-step cost is O(active), not
    # O(q), and path reconstruction is a column scatter per step.
    inflight = np.nonzero(status != STATUS_DELIVERED)[0]
    step_log: List[Tuple[np.ndarray, np.ndarray]] = []

    for _ in range(max_hops):
        if not inflight.size:
            break
        cur = current[inflight]
        tgt = targets[inflight]
        nxt = table[cur, tgt]
        weight = hop_weight[cur, tgt]
        # Dead end: no neighbour / missing edge — retire without a hop.
        dead = (nxt < 0) | ~np.isfinite(weight)
        if dead.any():
            status[inflight[dead]] = STATUS_DEAD_END
            alive = ~dead
            inflight = inflight[alive]
            nxt = nxt[alive]
            weight = weight[alive]
            if not inflight.size:
                break
        # Every surviving packet takes the hop (it appears in the path)...
        hops[inflight] += 1
        if record_paths:
            step_log.append((inflight, nxt))
        # ...but a revisit is a loop: drop the packet *before* paying the
        # cycle-closing edge weight.
        revisit = visited[inflight, nxt]
        if revisit.any():
            status[inflight[revisit]] = STATUS_LOOP
            moving = ~revisit
            inflight = inflight[moving]
            nxt = nxt[moving]
            weight = weight[moving]
        lengths[inflight] += weight
        visited[inflight, nxt] = True
        current[inflight] = nxt
        arrived = nxt == targets[inflight]
        if arrived.any():
            status[inflight[arrived]] = STATUS_DELIVERED
            inflight = inflight[~arrived]

    paths: Optional[np.ndarray] = None
    if record_paths:
        paths = np.full((q, int(hops.max(initial=0)) + 1), -1, dtype=np.int64)
        if q:
            paths[:, 0] = sources
        for step, (idx, nodes) in enumerate(step_log):
            paths[idx, step + 1] = nodes
    return BatchRoutes(
        sources=sources,
        targets=targets,
        delivered=status == STATUS_DELIVERED,
        lengths=lengths,
        hops=hops,
        status=status,
        paths=paths,
    )


@dataclass
class StretchAudit:
    """Sampled forwarding quality of an oracle, honestly accounted.

    ``attempts`` counts only routable pairs (distinct, finitely-distant,
    positive exact distance); ``skipped_self`` / ``skipped_unreachable``
    / ``skipped_zero`` record why the rest of the sample was excluded —
    a zero-distance exact pair would make any positive route length an
    infinite stretch, so it is flagged rather than divided by.
    """

    samples: int
    attempts: int
    delivered: int
    loops: int
    dead_ends: int
    budget_exhausted: int
    skipped_self: int
    skipped_unreachable: int
    skipped_zero: int
    mean_stretch: float
    max_stretch: float

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction; ``nan`` when no pair was ever attempted."""
        if not self.attempts:
            return float("nan")
        return self.delivered / self.attempts


def audit_stretch(
    oracle: DistanceOracle,
    exact: np.ndarray,
    rng: np.random.Generator,
    samples: int = 200,
    max_hops: Optional[int] = None,
) -> StretchAudit:
    """Sample pairs, batch-route them, and measure delivery and stretch.

    The vectorized successor of
    :func:`repro.core.routing_tables.routing_quality`: one
    :func:`route_batch` call instead of ``samples`` Python routing loops,
    with the failure modes broken out per outcome.
    """
    n = oracle.n
    exact = np.asarray(exact, dtype=np.float64)
    if exact.shape != (n, n):
        raise ValueError("exact must be (n, n)")
    sources = rng.integers(0, n, size=samples)
    targets = rng.integers(0, n, size=samples)
    exact_vals = exact[sources, targets]
    is_self = sources == targets
    unreachable = ~np.isfinite(exact_vals) & ~is_self
    zero = np.isfinite(exact_vals) & (exact_vals <= 0.0) & ~is_self
    keep = ~(is_self | unreachable | zero)
    routes = route_batch(
        oracle, sources[keep], targets[keep], max_hops=max_hops
    )
    ok = routes.delivered
    stretches = routes.lengths[ok] / exact_vals[keep][ok]
    counts = routes.outcome_counts()
    return StretchAudit(
        samples=int(samples),
        attempts=int(routes.size),
        delivered=int(counts["delivered"]),
        loops=int(counts["loop"]),
        dead_ends=int(counts["dead-end"]),
        budget_exhausted=int(counts["budget"]),
        skipped_self=int(np.count_nonzero(is_self)),
        skipped_unreachable=int(np.count_nonzero(unreachable)),
        skipped_zero=int(np.count_nonzero(zero)),
        mean_stretch=float(np.mean(stretches)) if stretches.size else float("nan"),
        max_stretch=float(np.max(stretches)) if stretches.size else float("nan"),
    )


__all__ = [
    "BatchRoutes",
    "StretchAudit",
    "route_batch",
    "audit_stretch",
    "STATUS_DELIVERED",
    "STATUS_DEAD_END",
    "STATUS_LOOP",
    "STATUS_BUDGET",
    "STATUS_NAMES",
]
