"""The service metrics plane: counters + streaming latency quantiles.

Serving "millions of users" is only credible if the tier can say what
it is doing, so every :class:`~repro.serve.service.OracleService`
carries a :class:`ServiceMetrics`:

* **per-endpoint counters** — requests / errors split by the batched
  and single-query paths, batches flushed, items per batch;
* **latency reservoirs** — a fixed-capacity streaming reservoir sample
  (Vitter's algorithm R) per ``endpoint/path`` stream, answering
  p50/p95/p99 over the *whole* request history in O(capacity) memory;
* **store accounting** — the per-tenant
  :meth:`~repro.serve.store.OracleStore.stats` snapshots (hits, misses,
  evictions, builds, build seconds) are folded into the same snapshot
  by the service.

Everything is thread-safe and :meth:`ServiceMetrics.snapshot` is
JSON-safe by construction (no numpy scalars, no ``NaN`` — empty
streams report ``None``), so a snapshot survives
``json.loads(json.dumps(...))`` bit-for-bit; the CI smoke run asserts
exactly that round-trip.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Any, Dict, List, Optional

#: Quantiles every latency snapshot reports, as (label, q) pairs.
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def finite_or_none(value: Optional[float]) -> Optional[float]:
    """``float(value)`` when finite, else ``None`` — the strict-JSON
    stand-in for "no data" (``NaN``/``inf`` would not survive a strict
    round-trip, and numpy scalars would not round-trip their type)."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def quantile(ordered: List[float], q: float) -> Optional[float]:
    """Linear-interpolated quantile of an already-sorted list.

    ``None`` for an empty list — the JSON-safe stand-in for "no data"
    (a ``NaN`` would not survive a strict JSON round-trip).
    """
    if not ordered:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyReservoir:
    """Streaming reservoir sample of latencies (Vitter's algorithm R).

    Holds at most ``capacity`` samples; after the reservoir fills, each
    new observation replaces a uniformly random slot with probability
    ``capacity / count``, so the retained set is a uniform sample of
    everything ever recorded.  The replacement RNG is seeded, keeping a
    single-threaded run reproducible.  Not thread-safe on its own —
    :class:`ServiceMetrics` serialises access.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        if not math.isfinite(seconds):
            # A NaN/inf sample would poison every downstream quantile and
            # leak into the (strictly JSON-safe) snapshot; reject at the
            # door so the reservoir stays finite by construction.
            raise ValueError(f"latency samples must be finite, got {seconds!r}")
        self.count += 1
        self.total += seconds
        if seconds > self.max_value:
            self.max_value = seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = seconds

    def quantile(self, q: float) -> Optional[float]:
        """Linear-interpolated quantile of the sample; ``None`` if empty."""
        return quantile(sorted(self._samples), q)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary: count/mean/max plus the standard quantiles.

        Every float is routed through :func:`finite_or_none` — defense in
        depth behind :meth:`record`'s finite-sample gate, and the shape
        the ``json-nan-leak`` lint rule checks for.
        """
        out: Dict[str, Any] = {
            "count": self.count,
            "mean": finite_or_none(
                self.total / self.count if self.count else None
            ),
            "max": finite_or_none(self.max_value if self.count else None),
        }
        for label, q in SNAPSHOT_QUANTILES:
            out[label] = finite_or_none(self.quantile(q))
        return out


class ServiceMetrics:
    """Thread-safe counters + latency streams for one serving tier.

    Streams are keyed ``f"{endpoint}/{path}"`` (path is ``"batched"``
    or ``"single"``) so the two serving paths stay comparable side by
    side — the contrast ``benchmarks/bench_serve.py`` measures.
    """

    def __init__(self, reservoir_capacity: int = 4096, seed: int = 0) -> None:
        self.reservoir_capacity = int(reservoir_capacity)
        self._seed = int(seed)
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._batches: Dict[str, int] = {}
        self._batched_items: Dict[str, int] = {}
        self._max_batch: Dict[str, int] = {}
        self._latency: Dict[str, LatencyReservoir] = {}
        self._counters: Dict[str, int] = {}

    def _stream(self, stream: str) -> LatencyReservoir:
        reservoir = self._latency.get(stream)
        if reservoir is None:
            # Derive a distinct, stable seed per stream name.
            offset = sum(stream.encode())
            reservoir = LatencyReservoir(
                self.reservoir_capacity, seed=self._seed + offset
            )
            self._latency[stream] = reservoir
        return reservoir

    def record_request(
        self,
        endpoint: str,
        seconds: float,
        batched: bool = True,
        error: bool = False,
    ) -> None:
        """One completed (or failed) request on ``endpoint``."""
        stream = f"{endpoint}/{'batched' if batched else 'single'}"
        with self._lock:
            self._requests[stream] = self._requests.get(stream, 0) + 1
            if error:
                self._errors[stream] = self._errors.get(stream, 0) + 1
            else:
                self._stream(stream).record(seconds)

    def record_batch(self, endpoint: str, size: int) -> None:
        """One flushed micro-batch of ``size`` coalesced requests."""
        with self._lock:
            self._batches[endpoint] = self._batches.get(endpoint, 0) + 1
            self._batched_items[endpoint] = (
                self._batched_items.get(endpoint, 0) + int(size)
            )
            if size > self._max_batch.get(endpoint, 0):
                self._max_batch[endpoint] = int(size)

    def bump(self, counter: str, amount: int = 1) -> int:
        """Increment a free-form service counter (admissions, warms...)."""
        with self._lock:
            value = self._counters.get(counter, 0) + int(amount)
            self._counters[counter] = value
            return value

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every counter and latency stream."""
        with self._lock:
            streams = sorted(
                set(self._requests) | set(self._errors) | set(self._latency)
            )
            endpoints: Dict[str, Any] = {}
            for stream in streams:
                endpoints[stream] = {
                    "requests": self._requests.get(stream, 0),
                    "errors": self._errors.get(stream, 0),
                    "latency": self._stream(stream).snapshot(),
                }
            batching = {
                endpoint: {
                    "batches": self._batches.get(endpoint, 0),
                    "items": self._batched_items.get(endpoint, 0),
                    "max_batch": self._max_batch.get(endpoint, 0),
                    "mean_batch": (
                        self._batched_items[endpoint] / self._batches[endpoint]
                        if self._batches.get(endpoint)
                        else None
                    ),
                }
                for endpoint in sorted(self._batches)
            }
            return {
                "endpoints": endpoints,
                "batching": batching,
                "counters": dict(sorted(self._counters.items())),
            }


__all__ = [
    "LatencyReservoir",
    "ServiceMetrics",
    "SNAPSHOT_QUANTILES",
    "finite_or_none",
    "quantile",
]
