"""The distance-oracle query plane: precompute once, serve many queries.

The solve-side planes (facade, kernels, construction, communication)
produce an :class:`~repro.api.ApspResult`; this package is the *query*
side the paper's routing motivation actually exercises:

* :class:`DistanceOracle` — the serving artifact (estimate matrix,
  vectorized next-hop table, per-hop edge weights, provenance metadata)
  with compact content-hash-keyed persistence;
* :class:`OracleStore` — a thread-safe LRU of built oracles, keyed the
  same way as the exact-distance cache;
* :func:`route_batch` — the batch greedy router: every in-flight packet
  advances one hop per numpy step (differentially tested against the
  per-call :func:`repro.core.routing_tables.greedy_route`);
* :func:`audit_stretch` — vectorized delivery/stretch sampling that
  subsumes :func:`repro.core.routing_tables.routing_quality`;
* ``DistanceOracle.query_many`` / ``DistanceOracle.k_nearest`` — bulk
  distance and nearest-neighbour queries;
* :class:`OracleService` — the async serving tier on top: per-tenant
  stores, graph-hash-addressed warm-up, a :class:`MicroBatcher` per
  ``(tenant, oracle, endpoint)`` coalescing awaited point queries into
  the vectorized calls above, and a :class:`ServiceMetrics` plane with
  streaming latency quantiles (see :mod:`repro.serve.service`).

Typical use::

    result = ApspSolver(SolverConfig(variant="theorem11")).solve(graph)
    oracle = result.oracle(graph)            # or DEFAULT_STORE.get_or_build
    dists = oracle.query_many(sources, targets)
    routes = route_batch(oracle, sources, targets, record_paths=True)
    oracle.save("oracle.json")               # b64-compact, bit-exact reload

Serving tier::

    with OracleService() as service:
        handle = service.warm(graph, variant="theorem11", seed=0)
        async def query():
            return await service.distance(handle, 0, 9)
        print(asyncio.run(query()), service.snapshot()["metrics"])
"""

from .batching import BatcherStats, MicroBatcher
from .engine import (
    STATUS_BUDGET,
    STATUS_DEAD_END,
    STATUS_DELIVERED,
    STATUS_LOOP,
    STATUS_NAMES,
    BatchRoutes,
    StretchAudit,
    audit_stretch,
    route_batch,
)
from .metrics import LatencyReservoir, ServiceMetrics
from .oracle import ORACLE_FORMAT, ORACLE_VERSION, DistanceOracle
from .service import (
    ENDPOINTS,
    AdmissionError,
    LoadReport,
    OracleService,
    ServiceConfig,
    oracle_handle,
    run_closed_loop,
    run_open_loop,
)
from .store import DEFAULT_STORE, OracleStore, estimate_digest, oracle_key

__all__ = [
    "AdmissionError",
    "BatcherStats",
    "BatchRoutes",
    "DEFAULT_STORE",
    "DistanceOracle",
    "ENDPOINTS",
    "LatencyReservoir",
    "LoadReport",
    "MicroBatcher",
    "ORACLE_FORMAT",
    "ORACLE_VERSION",
    "OracleService",
    "OracleStore",
    "ServiceConfig",
    "ServiceMetrics",
    "StretchAudit",
    "STATUS_BUDGET",
    "STATUS_DEAD_END",
    "STATUS_DELIVERED",
    "STATUS_LOOP",
    "STATUS_NAMES",
    "audit_stretch",
    "estimate_digest",
    "oracle_handle",
    "oracle_key",
    "route_batch",
    "run_closed_loop",
    "run_open_loop",
]
