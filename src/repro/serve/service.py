"""The async oracle-serving tier: front-end, tenants, warm-up, load.

PR 5 built the query plane — :class:`~repro.serve.DistanceOracle`
artifacts answering vectorized batches — but every caller still hit the
store synchronously, one query at a time.  :class:`OracleService` is
the concurrency story on top:

* **request front-end** — ``await service.distance/route/k_nearest``;
  each endpoint rides a per-``(tenant, oracle, endpoint)``
  :class:`~repro.serve.batching.MicroBatcher`, so point queries that
  arrive within one flush window coalesce into a single
  ``query_many`` / ``route_batch`` / ``k_smallest_in_rows`` call.
  Results are bit-identical to the single-query path (the per-item
  semantics of every engine call are independent of batch membership) —
  ``benchmarks/bench_serve.py`` (E21) asserts exactly that;
* **execution backend** — an asyncio event loop in front of a
  thread-pool executor; numpy work never blocks the loop;
* **per-tenant stores** — each tenant gets its own bounded
  :class:`~repro.serve.store.OracleStore` (admission capped at
  ``max_tenants``; eviction/build accounting via ``store.stats()``);
* **graph-hash-addressed warm-up** — ``service.warm(graph, variant,
  seed)`` pre-builds through single-flight ``get_or_build`` and returns
  a *handle* (``graph_hash:variant:seed[:t]``) that later requests —
  and later processes holding only the handle string — resolve without
  re-solving;
* **metrics** — a :class:`~repro.serve.metrics.ServiceMetrics` plane;
  :meth:`OracleService.snapshot` is JSON-round-trippable.

The module also hosts the synthetic load generators
(:func:`run_closed_loop`, :func:`run_open_loop`) driving
``python -m repro serve-bench`` and E21.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.results import Estimate
from ..graphs.distances import graph_content_hash
from ..graphs.graph import WeightedGraph
from .batching import MicroBatcher
from .engine import route_batch
from .metrics import ServiceMetrics, quantile
from .oracle import DistanceOracle
from .store import OracleStore

#: The point-query endpoints the front-end serves.
ENDPOINTS = ("distance", "route", "k_nearest")


class AdmissionError(RuntimeError):
    """A tenant was refused admission (``max_tenants`` reached)."""


def oracle_handle(
    graph: WeightedGraph,
    variant: str,
    seed: int,
    t: Optional[int] = None,
) -> str:
    """The graph-hash-addressed name of one warmed oracle.

    Deterministic in the *request* (graph content, variant, seed,
    tradeoff parameter), not the artifact — which is what lets a caller
    who never saw the solve address the oracle it produced.
    """
    handle = f"{graph_content_hash(graph)}:{variant}:seed={int(seed)}"
    if t is not None:
        handle += f":t={int(t)}"
    return handle


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one :class:`OracleService` (all bounds are per tenant).

    ``max_batch`` / ``max_delay_ms`` shape the micro-batching window;
    ``max_workers`` sizes the thread-pool backend; ``max_tenants``
    caps admission; ``store_max_entries`` / ``store_max_bytes`` bound
    each tenant's oracle store.

    ``request_timeout_s`` bounds each backend attempt (None = wait
    forever, the pre-robustness behaviour); a timed-out attempt is
    retried up to ``max_retries`` times with jittered exponential
    backoff starting at ``retry_backoff_ms``.  Timeouts and retries are
    surfaced as the ``timeouts`` / ``retries`` service counters.

    ``retry_jitter_seed`` seeds the backoff-jitter RNG; ``None`` (the
    default) derives it from ``metrics_seed``, so replays stay
    deterministic without coupling the backoff schedule to the metrics
    reservoir when a caller wants to vary them independently.
    """

    max_batch: int = 64
    max_delay_ms: float = 2.0
    max_workers: int = 4
    max_tenants: int = 8
    store_max_entries: int = 8
    store_max_bytes: int = 512 * 2**20
    reservoir_capacity: int = 4096
    metrics_seed: int = 0
    request_timeout_s: Optional[float] = None
    max_retries: int = 0
    retry_backoff_ms: float = 5.0
    retry_jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_ms,
            "max_workers": self.max_workers,
            "max_tenants": self.max_tenants,
            "store_max_entries": self.store_max_entries,
            "store_max_bytes": self.store_max_bytes,
            "reservoir_capacity": self.reservoir_capacity,
            "metrics_seed": self.metrics_seed,
            "request_timeout_s": self.request_timeout_s,
            "max_retries": self.max_retries,
            "retry_backoff_ms": self.retry_backoff_ms,
            "retry_jitter_seed": self.retry_jitter_seed,
        }


class OracleService:
    """Async micro-batched front-end over per-tenant oracle stores.

    Lifecycle: construct, ``warm`` the oracles the workload needs
    (blocking — do it before opening the floodgates), serve with the
    async endpoints from one running event loop, then ``close()`` (or
    use the service as a context manager).  ``batched=False`` on any
    endpoint bypasses the coalescer — the PR-5 status quo, kept as the
    benchmark's control arm.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics(
            reservoir_capacity=self.config.reservoir_capacity,
            seed=self.config.metrics_seed,
        )
        self._stores: Dict[str, OracleStore] = {}
        self._batchers: Dict[Tuple[str, str, str], MicroBatcher] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve",
        )
        self._admission_lock = threading.Lock()
        self._closed = False
        # Deterministic jitter source for retry backoff (event-loop
        # thread only); seeded so load tests replay identically.
        jitter_seed = self.config.retry_jitter_seed
        if jitter_seed is None:
            jitter_seed = self.config.metrics_seed
        self._jitter = random.Random(jitter_seed)
        # Pre-seed the robustness counters so snapshots always carry
        # them, even on services that never time out.
        self.metrics.bump("timeouts", 0)
        self.metrics.bump("retries", 0)

    # ------------------------------------------------------------------ #
    # Tenancy and warm-up
    # ------------------------------------------------------------------ #

    def store(self, tenant: str = "default") -> OracleStore:
        """The tenant's oracle store, admitting it on first contact."""
        tenant = str(tenant)
        with self._admission_lock:
            store = self._stores.get(tenant)
            if store is None:
                if len(self._stores) >= self.config.max_tenants:
                    self.metrics.bump("tenants_rejected")
                    raise AdmissionError(
                        f"tenant {tenant!r} refused: "
                        f"{self.config.max_tenants} tenants already admitted"
                    )
                store = OracleStore(
                    max_entries=self.config.store_max_entries,
                    max_bytes=self.config.store_max_bytes,
                )
                self._stores[tenant] = store
                self.metrics.bump("tenants_admitted")
            return store

    def warm(
        self,
        graph: WeightedGraph,
        variant: str = "theorem11",
        seed: int = 0,
        t: Optional[int] = None,
        tenant: str = "default",
        result: Optional[Estimate] = None,
    ) -> str:
        """Pre-build the oracle for ``(graph, variant, seed)``; returns its handle.

        Solves the instance (unless ``result`` — an
        :class:`~repro.api.ApspResult` or any estimate — is supplied)
        and builds the serving artifact through the store's single-flight
        ``get_or_build``, registering the graph-hash-addressed handle as
        its alias.  Re-warming an already-resident oracle is a store hit
        and skips both the solve and the build.  Blocking by design:
        warm before serving.
        """
        handle = oracle_handle(graph, variant, seed, t)
        store = self.store(tenant)
        start = time.perf_counter()
        if store.lookup(handle) is not None:
            self.metrics.bump("warm_hits")
            return handle
        if result is None:
            from ..api import ApspSolver, SolverConfig  # api layers below serve

            result = ApspSolver(
                SolverConfig(variant=variant, seed=seed, t=t)
            ).solve(graph)
        store.get_or_build(graph, result, variant=variant, alias=handle)
        self.metrics.bump("warms")
        self.metrics.record_request(
            "warm", time.perf_counter() - start, batched=False
        )
        return handle

    def oracle(self, handle: str, tenant: str = "default") -> DistanceOracle:
        """Resolve a warmed handle; raises ``KeyError`` if absent/evicted."""
        oracle = self.store(tenant).lookup(handle)
        if oracle is None:
            raise KeyError(
                f"no warmed oracle {handle!r} for tenant {tenant!r} "
                "(never warmed, or evicted — call warm() again)"
            )
        return oracle

    # ------------------------------------------------------------------ #
    # Async endpoints
    # ------------------------------------------------------------------ #

    async def distance(
        self,
        handle: str,
        source: int,
        target: int,
        tenant: str = "default",
        batched: bool = True,
    ) -> float:
        """Estimated distance for one pair."""
        return await self._request(
            "distance", tenant, handle, (int(source), int(target)), batched
        )

    async def route(
        self,
        handle: str,
        source: int,
        target: int,
        tenant: str = "default",
        batched: bool = True,
    ) -> Dict[str, Any]:
        """Greedy-route one packet; returns its JSON-safe record.

        The whole batch shares the engine's default hop budget (``2 n``)
        so coalesced packets stay bit-identical to solo ones.
        """
        return await self._request(
            "route", tenant, handle, (int(source), int(target)), batched
        )

    async def k_nearest(
        self,
        handle: str,
        node: int,
        k: int,
        tenant: str = "default",
        batched: bool = True,
    ) -> Dict[str, List]:
        """The ``k`` nearest nodes of ``node`` by estimated distance."""
        return await self._request(
            "k_nearest", tenant, handle, (int(node), int(k)), batched
        )

    async def _request(
        self,
        endpoint: str,
        tenant: str,
        handle: str,
        payload: Tuple,
        batched: bool,
    ) -> Any:
        if self._closed:
            raise RuntimeError("service is closed")
        start = time.perf_counter()
        try:
            result = await self._request_with_retries(
                endpoint, tenant, handle, payload, batched
            )
        except Exception:
            self.metrics.record_request(
                endpoint, time.perf_counter() - start, batched, error=True
            )
            raise
        self.metrics.record_request(
            endpoint, time.perf_counter() - start, batched
        )
        return result

    async def _request_with_retries(
        self,
        endpoint: str,
        tenant: str,
        handle: str,
        payload: Tuple,
        batched: bool,
    ) -> Any:
        """One endpoint call under the configured timeout/retry policy.

        Only *timeouts* are retried — a ``KeyError`` (evicted oracle) or
        any backend exception is a real answer and re-raising it
        immediately beats hammering a failing store.  The final timeout
        propagates as ``asyncio.TimeoutError`` after ``max_retries``
        re-attempts, each preceded by jittered exponential backoff.
        """
        timeout = self.config.request_timeout_s
        attempt = 0
        while True:
            call = self._dispatch(endpoint, tenant, handle, payload, batched)
            try:
                if timeout is None:
                    return await call
                return await asyncio.wait_for(call, timeout)
            except asyncio.TimeoutError:
                self.metrics.bump("timeouts")
                if attempt >= self.config.max_retries:
                    raise
                attempt += 1
                self.metrics.bump("retries")
                base = self.config.retry_backoff_ms / 1000.0
                delay = base * (2 ** (attempt - 1))
                delay *= 0.5 + self._jitter.random()  # jitter in [0.5, 1.5)
                if delay > 0:
                    await asyncio.sleep(delay)

    async def _dispatch(
        self,
        endpoint: str,
        tenant: str,
        handle: str,
        payload: Tuple,
        batched: bool,
    ) -> Any:
        """One attempt: through the coalescer or straight to the pool."""
        if batched:
            return await self._batcher(endpoint, tenant, handle).submit(
                payload
            )
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            self._executor,
            self._execute,
            endpoint,
            tenant,
            handle,
            [payload],
        )
        return results[0]

    def _batcher(
        self, endpoint: str, tenant: str, handle: str
    ) -> MicroBatcher:
        key = (endpoint, tenant, handle)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = MicroBatcher(
                partial(self._execute, endpoint, tenant, handle),
                max_batch=self.config.max_batch,
                max_delay_ms=self.config.max_delay_ms,
                executor=self._executor,
                on_flush=partial(self.metrics.record_batch, endpoint),
            )
            self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------ #
    # Vectorized execution (worker threads)
    # ------------------------------------------------------------------ #

    def _execute(
        self, endpoint: str, tenant: str, handle: str, payloads: List[Tuple]
    ) -> List[Any]:
        """One vectorized engine call for a whole flush window.

        The oracle is resolved per *flush*, not per request — one store
        hit (and one LRU touch) per batch, and an eviction mid-serving
        surfaces as a ``KeyError`` on the next flush rather than stale
        answers from a pinned reference.
        """
        oracle = self.oracle(handle, tenant)
        if endpoint == "distance":
            sources = np.array([p[0] for p in payloads], dtype=np.int64)
            targets = np.array([p[1] for p in payloads], dtype=np.int64)
            values = oracle.query_many(sources, targets)
            return [float(v) for v in values]
        if endpoint == "route":
            sources = np.array([p[0] for p in payloads], dtype=np.int64)
            targets = np.array([p[1] for p in payloads], dtype=np.int64)
            return route_batch(oracle, sources, targets).to_records()
        if endpoint == "k_nearest":
            # Requests with different k cannot share one engine call;
            # group by k, answer each group vectorized, and scatter the
            # rows back to request order.
            results: List[Any] = [None] * len(payloads)
            by_k: Dict[int, List[Tuple[int, int]]] = {}
            for position, (node, k) in enumerate(payloads):
                by_k.setdefault(int(k), []).append((position, int(node)))
            for k, entries in by_k.items():
                nodes = [node for _, node in entries]
                ids, dists = oracle.k_nearest(k, sources=nodes)
                for row, (position, _) in enumerate(entries):
                    results[position] = {
                        "ids": [int(v) for v in ids[row]],
                        "dists": [float(d) for d in dists[row]],
                    }
            return results
        raise ValueError(f"unknown endpoint {endpoint!r}; one of {ENDPOINTS}")

    # ------------------------------------------------------------------ #
    # Lifecycle and introspection
    # ------------------------------------------------------------------ #

    async def drain(self) -> None:
        """Flush every batcher and wait for in-flight work."""
        for batcher in list(self._batchers.values()):
            await batcher.drain()

    def close(self) -> None:
        """Shut the executor down; further requests raise.

        Requests still parked in a batcher (submitted but never
        flushed — e.g. the owning event loop exited mid-window) are
        failed via :meth:`MicroBatcher.fail_pending` rather than left
        hanging forever; the count lands in ``cancelled_at_close``.
        """
        if not self._closed:
            self._closed = True
            for batcher in self._batchers.values():
                failed = batcher.fail_pending()
                if failed:
                    self.metrics.bump("cancelled_at_close", failed)
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "OracleService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def snapshot(self) -> Dict[str, Any]:
        """The full JSON-round-trippable state of the tier."""
        with self._admission_lock:
            tenants = {
                tenant: store.stats()
                for tenant, store in sorted(self._stores.items())
            }
        batchers = {
            f"{tenant}/{endpoint}/{handle[:12]}": batcher.stats.snapshot()
            for (endpoint, tenant, handle), batcher in sorted(
                self._batchers.items()
            )
        }
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.snapshot(),
            "tenants": tenants,
            "batchers": batchers,
            "closed": self._closed,
        }


# ---------------------------------------------------------------------- #
# Synthetic load generation (serve-bench / E21)
# ---------------------------------------------------------------------- #


@dataclass
class LoadReport:
    """Outcome of one load-generator run (client-side measurements)."""

    mode: str  # "closed" or "open"
    offered: float  # concurrency (closed) or requests/s (open)
    requests: int
    errors: int
    wall_seconds: float
    latencies: List[float]  # per-request seconds, completion order

    @property
    def qps(self) -> float:
        """Completed requests per second of wall clock."""
        if self.wall_seconds <= 0:
            return float("nan")
        return (self.requests - self.errors) / self.wall_seconds

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self.latencies)
        return {
            "mode": self.mode,
            "offered": self.offered,
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "qps": self.qps if self.wall_seconds > 0 else None,
            "latency": {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered) if ordered else None,
                "max": ordered[-1] if ordered else None,
                "p50": quantile(ordered, 0.50),
                "p95": quantile(ordered, 0.95),
                "p99": quantile(ordered, 0.99),
            },
        }


async def run_closed_loop(
    make_request: Callable[[int], Awaitable[Any]],
    requests: int,
    concurrency: int,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` clients, each one request at a time.

    The classic saturation driver — offered load rises with the client
    count because a client only issues its next request after the
    previous response lands.  ``make_request(i)`` is awaited once per
    request index ``i`` in ``range(requests)``.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    latencies: List[float] = []
    errors = 0
    next_index = 0

    async def client() -> None:
        nonlocal next_index, errors
        while True:
            index = next_index
            if index >= requests:
                return
            next_index = index + 1
            start = time.perf_counter()
            try:
                await make_request(index)
            except Exception:  # noqa: BLE001 - load gen counts, not raises
                errors += 1
            else:
                latencies.append(time.perf_counter() - start)

    started = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(min(concurrency, requests) or 1)))
    wall = time.perf_counter() - started
    return LoadReport(
        mode="closed",
        offered=float(concurrency),
        requests=requests,
        errors=errors,
        wall_seconds=wall,
        latencies=latencies,
    )


async def run_open_loop(
    make_request: Callable[[int], Awaitable[Any]],
    requests: int,
    rate_per_s: float,
) -> LoadReport:
    """Open-loop load: fire at a fixed rate, independent of completions.

    Requests launch on a deterministic schedule (request ``i`` at
    ``i / rate_per_s`` seconds); in-flight counts float freely, so an
    overloaded tier shows up as latency growth rather than a silently
    reduced offered load.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be > 0")
    loop = asyncio.get_running_loop()
    latencies: List[float] = []
    errors = 0

    async def timed(index: int) -> None:
        nonlocal errors
        start = time.perf_counter()
        try:
            await make_request(index)
        except Exception:  # noqa: BLE001
            errors += 1
        else:
            latencies.append(time.perf_counter() - start)

    tasks = []
    started = time.perf_counter()
    loop_started = loop.time()
    for index in range(requests):
        delay = loop_started + index / rate_per_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(timed(index)))
    if tasks:
        await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    return LoadReport(
        mode="open",
        offered=float(rate_per_s),
        requests=requests,
        errors=errors,
        wall_seconds=wall,
        latencies=latencies,
    )


__all__ = [
    "ENDPOINTS",
    "AdmissionError",
    "LoadReport",
    "OracleService",
    "ServiceConfig",
    "oracle_handle",
    "run_closed_loop",
    "run_open_loop",
]
