"""The distance-oracle artifact: precompute once, answer queries forever.

A :class:`DistanceOracle` packages what the query plane needs from one
``(graph, ApspResult)`` pair:

* ``estimate`` — the ``(n, n)`` approximate distance matrix,
* ``next_hop`` — the vectorized greedy forwarding table
  (:func:`repro.core.routing_tables.next_hop_table`),
* ``hop_weight`` — ``w(u, next_hop[u, t])``, the edge weight each
  forwarding step pays, gathered once at build time so batch routing
  never touches the graph again,
* ``meta`` — JSON-safe provenance: the graph content hash (the same key
  :class:`repro.graphs.ExactOracleCache` uses), variant, factor, seed.

Persistence reuses the compact base64 matrix codec from
:mod:`repro.api` (``matrix_encoding="b64"``; the human-readable
``"list"`` encoding also round-trips), so a solved instance can be
shipped to a serving tier and reloaded bit-identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..api import (
    MATRIX_ENCODINGS,
    _jsonable,
    _matrix_from_b64,
    _matrix_from_jsonable,
    _matrix_to_b64,
    _matrix_to_jsonable,
)
from ..core.results import Estimate
from ..core.routing_tables import next_hop_table
from ..graphs.distances import graph_content_hash
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows

#: Format tag stored in every serialized oracle payload.
ORACLE_FORMAT = "repro.distance-oracle"
ORACLE_VERSION = 1


@dataclass
class DistanceOracle:
    """An immutable query-plane artifact built from one solved instance.

    All three arrays are frozen (read-only) at construction; queries
    return fresh arrays.  Build through :meth:`build` (or
    ``ApspResult.oracle(graph)``) rather than the raw constructor.
    """

    estimate: np.ndarray  # (n, n) float64
    next_hop: np.ndarray  # (n, n) int64, -1 = no neighbour
    hop_weight: np.ndarray  # (n, n) float64, inf where next_hop == -1
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = np.asarray(self.estimate).shape[0]
        for name in ("estimate", "next_hop", "hop_weight"):
            array = np.asarray(getattr(self, name))
            if array.shape != (n, n):
                raise ValueError(
                    f"{name} must be (n, n); got {array.shape} vs n={n}"
                )
            # Freeze a *view*, not the caller's array: the oracle's handles
            # are read-only without flipping flags on data it doesn't own.
            view = array.view()
            view.setflags(write=False)
            setattr(self, name, view)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> "DistanceOracle":
        """Assemble the artifact from a graph and an estimate.

        ``source`` is an :class:`~repro.core.results.Estimate` (including
        :class:`~repro.api.ApspResult`) or a bare ``(n, n)`` matrix.
        Provenance available on the source (variant, factor, seed) lands
        in ``meta``; explicit ``meta`` entries win.
        """
        if isinstance(source, Estimate):
            estimate = np.array(source.estimate, dtype=np.float64)
        else:
            estimate = np.array(source, dtype=np.float64)
        n = graph.n
        if estimate.shape != (n, n):
            raise ValueError(
                f"estimate must be ({n}, {n}); got {estimate.shape}"
            )
        table = next_hop_table(graph, estimate)
        matrix = graph.matrix()
        # hop_weight[u, t] = w(u, table[u, t]); the diagonal maps t -> t
        # (weight 0), -1 entries gather a dummy column and are masked.
        safe = np.where(table >= 0, table, 0)
        hop_weight = np.take_along_axis(matrix, safe, axis=1)
        hop_weight = np.where(table >= 0, hop_weight, np.inf)
        info: Dict[str, Any] = {
            "n": int(n),
            "graph_hash": graph_content_hash(graph),
            "directed": bool(graph.directed),
        }
        if isinstance(source, Estimate):
            info["factor"] = float(source.factor)
            variant = getattr(source, "variant", "")
            if variant:
                info["variant"] = str(variant)
            seed = getattr(source, "seed", None)
            if seed is not None:
                info["seed"] = int(seed)
        if meta:
            info.update(meta)
        return cls(
            estimate=estimate,
            next_hop=table,
            hop_weight=hop_weight,
            meta=_jsonable(info),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return self.estimate.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the three matrices (the store's budget unit)."""
        return (
            self.estimate.nbytes + self.next_hop.nbytes + self.hop_weight.nbytes
        )

    @property
    def factor(self) -> float:
        """Declared approximation factor (``nan`` when unknown)."""
        return float(self.meta.get("factor", float("nan")))

    def describe(self) -> Dict[str, Any]:
        """JSON-safe one-line summary (what a serving tier logs/exposes)."""
        return {
            "n": self.n,
            "variant": str(self.meta.get("variant", "")),
            "seed": self.meta.get("seed"),
            "factor": self.factor if np.isfinite(self.factor) else None,
            "graph_hash": str(self.meta.get("graph_hash", "")),
            "nbytes": int(self.nbytes),
        }

    def content_key(self) -> str:
        """Digest of the artifact content — stable across save/load."""
        digest = hashlib.sha256()
        digest.update(f"{ORACLE_FORMAT};v{ORACLE_VERSION};n={self.n};".encode())
        digest.update(self.estimate.tobytes())
        digest.update(self.next_hop.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        variant = self.meta.get("variant", "?")
        return (
            f"DistanceOracle(n={self.n}, variant={variant!r}, "
            f"factor={self.factor:.3g}, {self.nbytes / 2**20:.1f} MiB)"
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _check_nodes(self, nodes: np.ndarray, label: str) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n):
            raise ValueError(f"{label} out of range [0, {self.n})")
        return nodes

    def distance(self, source: int, target: int) -> float:
        """Estimated distance for one pair."""
        return float(self.query_many([source], [target])[0])

    def query_many(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
    ) -> np.ndarray:
        """Estimated distances for many pairs at once.

        ``sources`` and ``targets`` broadcast against each other (one
        source against many targets works); the result is a fresh float64
        array of the broadcast shape.
        """
        sources = self._check_nodes(sources, "sources")
        targets = self._check_nodes(targets, "targets")
        sources, targets = np.broadcast_arrays(sources, targets)
        return self.estimate[sources, targets]

    def k_nearest(
        self,
        k: int,
        sources: Optional[Sequence[int]] = None,
        include_self: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest nodes per source by estimated distance.

        Rides :func:`repro.semiring.minplus.k_smallest_in_rows` (node-ID
        tie-break, ``(-1, inf)`` padding).  ``sources=None`` answers for
        every node.  ``include_self=False`` (default) excludes the zero
        self-distance.
        """
        if sources is None:
            row_ids = np.arange(self.n, dtype=np.int64)
        else:
            row_ids = self._check_nodes(sources, "sources").reshape(-1)
        rows = np.array(self.estimate[row_ids], dtype=np.float64)
        if not include_self:
            rows[np.arange(len(row_ids)), row_ids] = np.inf
        return k_smallest_in_rows(rows, k)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self, matrix_encoding: str = "b64") -> Dict[str, Any]:
        """Serializable payload; ``"b64"`` (compact, default) or ``"list"``."""
        if matrix_encoding not in MATRIX_ENCODINGS:
            raise ValueError(
                f"matrix_encoding must be one of {MATRIX_ENCODINGS}, "
                f"got {matrix_encoding!r}"
            )
        if matrix_encoding == "b64":
            estimate = _matrix_to_b64(self.estimate)
            next_hop = _matrix_to_b64(self.next_hop, dtype="<i8")
            hop_weight = _matrix_to_b64(self.hop_weight)
        else:
            estimate = _matrix_to_jsonable(self.estimate)
            next_hop = self.next_hop.tolist()
            hop_weight = _matrix_to_jsonable(self.hop_weight)
        return {
            "format": ORACLE_FORMAT,
            "version": ORACLE_VERSION,
            "n": self.n,
            "meta": _jsonable(dict(self.meta)),
            "estimate": estimate,
            "next_hop": next_hop,
            "hop_weight": hop_weight,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistanceOracle":
        if data.get("format") != ORACLE_FORMAT:
            raise ValueError(
                f"not a distance-oracle payload: format={data.get('format')!r}"
            )
        version = int(data.get("version", ORACLE_VERSION))
        if version > ORACLE_VERSION:
            raise ValueError(
                f"oracle payload version {version} is newer than supported "
                f"version {ORACLE_VERSION}"
            )
        estimate = _decode_matrix(data["estimate"], np.float64)
        next_hop = _decode_matrix(data["next_hop"], np.int64)
        hop_weight = _decode_matrix(data["hop_weight"], np.float64)
        return cls(
            estimate=estimate,
            next_hop=next_hop,
            hop_weight=hop_weight,
            meta=dict(data.get("meta") or {}),
        )

    def to_json(self, matrix_encoding: str = "b64", **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(matrix_encoding=matrix_encoding),
                          **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "DistanceOracle":
        return cls.from_dict(json.loads(payload))

    def save(self, path: str, matrix_encoding: str = "b64") -> None:
        """Write the artifact to ``path`` as one JSON document."""
        with open(path, "w", encoding="utf-8") as sink:
            sink.write(self.to_json(matrix_encoding=matrix_encoding))

    @classmethod
    def load(cls, path: str) -> "DistanceOracle":
        with open(path, "r", encoding="utf-8") as source:
            return cls.from_json(source.read())


def _decode_matrix(payload: Any, dtype: type) -> np.ndarray:
    """Decode either codec into a fresh array of ``dtype``."""
    if isinstance(payload, Mapping):
        out = _matrix_from_b64(payload)
    elif dtype is np.int64:
        out = np.asarray(payload, dtype=np.int64)
    else:
        out = _matrix_from_jsonable(payload)
    return np.ascontiguousarray(out, dtype=dtype)


__all__ = ["DistanceOracle", "ORACLE_FORMAT", "ORACLE_VERSION"]
