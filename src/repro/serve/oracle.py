"""The distance-oracle artifact: precompute once, answer queries forever.

A :class:`DistanceOracle` packages what the query plane needs from one
``(graph, ApspResult)`` pair:

* ``estimate`` — the ``(n, n)`` approximate distance matrix,
* ``next_hop`` — the vectorized greedy forwarding table
  (:func:`repro.core.routing_tables.next_hop_table`),
* ``hop_weight`` — ``w(u, next_hop[u, t])``, the edge weight each
  forwarding step pays, gathered once at build time so batch routing
  never touches the graph again,
* ``meta`` — JSON-safe provenance: the graph content hash (the same key
  :class:`repro.graphs.ExactOracleCache` uses), variant, factor, seed.

Persistence reuses the compact base64 matrix codec from
:mod:`repro.api` (``matrix_encoding="b64"``; the human-readable
``"list"`` encoding also round-trips), so a solved instance can be
shipped to a serving tier and reloaded bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import weakref
from dataclasses import dataclass, field
from shutil import rmtree
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..api import (
    MATRIX_ENCODINGS,
    _jsonable,
    _matrix_from_b64,
    _matrix_from_jsonable,
    _matrix_to_b64,
    _matrix_to_jsonable,
)
from ..core.results import Estimate
from ..core.routing_tables import next_hop_table
from ..graphs.distances import graph_content_hash
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows

#: Format tag stored in every serialized oracle payload.
ORACLE_FORMAT = "repro.distance-oracle"
ORACLE_VERSION = 1


def _memmap_backed(array: np.ndarray) -> bool:
    """Whether ``array`` (or any base it views) is an ``np.memmap``."""
    seen: Optional[np.ndarray] = array
    while seen is not None:
        if isinstance(seen, np.memmap):
            return True
        seen = getattr(seen, "base", None)
    return False


@dataclass
class DistanceOracle:
    """An immutable query-plane artifact built from one solved instance.

    All three arrays are frozen (read-only) at construction; queries
    return fresh arrays.  Build through :meth:`build` (or
    ``ApspResult.oracle(graph)``) rather than the raw constructor.
    """

    estimate: np.ndarray  # (n, n) float64
    next_hop: np.ndarray  # (n, n) int64, -1 = no neighbour
    hop_weight: np.ndarray  # (n, n) float64, inf where next_hop == -1
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = np.asarray(self.estimate).shape[0]
        for name in ("estimate", "next_hop", "hop_weight"):
            array = np.asarray(getattr(self, name))
            if array.shape != (n, n):
                raise ValueError(
                    f"{name} must be (n, n); got {array.shape} vs n={n}"
                )
            # Freeze a *view*, not the caller's array: the oracle's handles
            # are read-only without flipping flags on data it doesn't own.
            view = array.view()
            view.setflags(write=False)
            setattr(self, name, view)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        graph: WeightedGraph,
        source: Union[Estimate, np.ndarray],
        meta: Optional[Mapping[str, Any]] = None,
        chunk_elems: Optional[int] = None,
        memmap_dir: Optional[str] = None,
    ) -> "DistanceOracle":
        """Assemble the artifact from a graph and an estimate.

        ``source`` is an :class:`~repro.core.results.Estimate` (including
        :class:`~repro.api.ApspResult`) or a bare ``(n, n)`` matrix.
        Provenance available on the source (variant, factor, seed) lands
        in ``meta``; explicit ``meta`` entries win.

        Construction is row-sharded: the forwarding table *and* the
        per-hop edge weights come out of one chunked
        :func:`next_hop_table` pass over the CSR adjacency, so nothing
        beyond the three output matrices is ever materialised —
        ``chunk_elems`` bounds the resident score tensors.  With
        ``memmap_dir`` the two derived ``(n, n)`` outputs are backed by
        memmap files under a fresh subdirectory there (removed when the
        oracle is garbage-collected), and a float32 or memmap-backed
        ``source`` estimate is adopted as-is instead of being copied to
        a dense float64 array — the out-of-core build path for
        ``n >= 4096``.
        """
        if isinstance(source, Estimate):
            raw = np.asarray(source.estimate)
        else:
            raw = np.asarray(source)
        n = graph.n
        if raw.shape != (n, n):
            raise ValueError(
                f"estimate must be ({n}, {n}); got {raw.shape}"
            )
        if raw.dtype == np.float32 or _memmap_backed(raw):
            # Out-of-core policy: adopt without densifying to float64 —
            # copying would defeat the point of the compact estimate.
            estimate = raw
        else:
            estimate = np.array(raw, dtype=np.float64)
        cleanup_dir: Optional[str] = None
        if memmap_dir is None:
            table = np.full((n, n), -1, dtype=np.int64)
            hop_weight = np.full((n, n), np.inf, dtype=np.float64)
        else:
            cleanup_dir = tempfile.mkdtemp(prefix="oracle-", dir=memmap_dir)
            table = np.memmap(
                os.path.join(cleanup_dir, "next_hop.bin"),
                dtype=np.int64, mode="w+", shape=(n, n),
            )
            hop_weight = np.memmap(
                os.path.join(cleanup_dir, "hop_weight.bin"),
                dtype=np.float64, mode="w+", shape=(n, n),
            )
        next_hop_table(
            graph, estimate, chunk_elems=chunk_elems,
            out=table, hop_weight_out=hop_weight,
        )
        info: Dict[str, Any] = {
            "n": int(n),
            "graph_hash": graph_content_hash(graph),
            "directed": bool(graph.directed),
        }
        if estimate.dtype != np.float64:
            info["estimate_dtype"] = str(estimate.dtype)
        if isinstance(source, Estimate):
            info["factor"] = float(source.factor)
            variant = getattr(source, "variant", "")
            if variant:
                info["variant"] = str(variant)
            seed = getattr(source, "seed", None)
            if seed is not None:
                info["seed"] = int(seed)
        if meta:
            info.update(meta)
        oracle = cls(
            estimate=estimate,
            next_hop=table,
            hop_weight=hop_weight,
            meta=_jsonable(info),
        )
        if cleanup_dir is not None:
            weakref.finalize(oracle, rmtree, cleanup_dir, ignore_errors=True)
        return oracle

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return self.estimate.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the three matrices (the store's budget unit)."""
        return (
            self.estimate.nbytes + self.next_hop.nbytes + self.hop_weight.nbytes
        )

    @property
    def resident_nbytes(self) -> int:
        """Bytes actually resident in RAM — memmap-backed matrices count 0.

        :class:`~repro.serve.store.OracleStore` charges this (not
        ``nbytes``) against its byte budget, so out-of-core artifacts are
        billed for what they really occupy; float32 estimates are billed
        at half rate through ``nbytes`` itself.
        """
        return sum(
            array.nbytes
            for array in (self.estimate, self.next_hop, self.hop_weight)
            if not _memmap_backed(array)
        )

    @property
    def factor(self) -> float:
        """Declared approximation factor (``nan`` when unknown)."""
        return float(self.meta.get("factor", float("nan")))

    def describe(self) -> Dict[str, Any]:
        """JSON-safe one-line summary (what a serving tier logs/exposes)."""
        return {
            "n": self.n,
            "variant": str(self.meta.get("variant", "")),
            "seed": self.meta.get("seed"),
            "factor": self.factor if np.isfinite(self.factor) else None,
            "graph_hash": str(self.meta.get("graph_hash", "")),
            "nbytes": int(self.nbytes),
            "resident_nbytes": int(self.resident_nbytes),
            "estimate_dtype": str(self.estimate.dtype),
        }

    def content_key(self) -> str:
        """Digest of the artifact content — stable across save/load."""
        digest = hashlib.sha256()
        digest.update(f"{ORACLE_FORMAT};v{ORACLE_VERSION};n={self.n};".encode())
        digest.update(self.estimate.tobytes())
        digest.update(self.next_hop.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        variant = self.meta.get("variant", "?")
        return (
            f"DistanceOracle(n={self.n}, variant={variant!r}, "
            f"factor={self.factor:.3g}, {self.nbytes / 2**20:.1f} MiB)"
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _check_nodes(self, nodes: np.ndarray, label: str) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.n):
            raise ValueError(f"{label} out of range [0, {self.n})")
        return nodes

    def distance(self, source: int, target: int) -> float:
        """Estimated distance for one pair."""
        return float(self.query_many([source], [target])[0])

    def query_many(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
    ) -> np.ndarray:
        """Estimated distances for many pairs at once.

        ``sources`` and ``targets`` broadcast against each other (one
        source against many targets works); the result is a fresh float64
        array of the broadcast shape.
        """
        sources = self._check_nodes(sources, "sources")
        targets = self._check_nodes(targets, "targets")
        sources, targets = np.broadcast_arrays(sources, targets)
        # The gather is already a fresh array; the cast is a no-op for
        # float64 estimates and upcasts float32 ones exactly.
        return np.asarray(self.estimate[sources, targets], dtype=np.float64)

    def k_nearest(
        self,
        k: int,
        sources: Optional[Sequence[int]] = None,
        include_self: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest nodes per source by estimated distance.

        Rides :func:`repro.semiring.minplus.k_smallest_in_rows` (node-ID
        tie-break, ``(-1, inf)`` padding).  ``sources=None`` answers for
        every node.  ``include_self=False`` (default) excludes the zero
        self-distance.
        """
        if sources is None:
            row_ids = np.arange(self.n, dtype=np.int64)
        else:
            row_ids = self._check_nodes(sources, "sources").reshape(-1)
        rows = np.array(self.estimate[row_ids], dtype=np.float64)
        if not include_self:
            rows[np.arange(len(row_ids)), row_ids] = np.inf
        return k_smallest_in_rows(rows, k)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self, matrix_encoding: str = "b64") -> Dict[str, Any]:
        """Serializable payload; ``"b64"`` (compact, default) or ``"list"``."""
        if matrix_encoding not in MATRIX_ENCODINGS:
            raise ValueError(
                f"matrix_encoding must be one of {MATRIX_ENCODINGS}, "
                f"got {matrix_encoding!r}"
            )
        if matrix_encoding == "b64":
            # The estimate keeps its storage dtype (float32 artifacts stay
            # half-size on the wire); the codec record carries it.
            estimate = _matrix_to_b64(self.estimate, dtype=self.estimate.dtype.str)
            next_hop = _matrix_to_b64(self.next_hop, dtype="<i8")
            hop_weight = _matrix_to_b64(self.hop_weight)
        else:
            estimate = _matrix_to_jsonable(self.estimate)
            next_hop = self.next_hop.tolist()
            hop_weight = _matrix_to_jsonable(self.hop_weight)
        return {
            "format": ORACLE_FORMAT,
            "version": ORACLE_VERSION,
            "n": self.n,
            "meta": _jsonable(dict(self.meta)),
            # Storage dtype of the estimate, so the ``list`` encoding (which
            # serializes float64 values) can restore float32 artifacts too.
            "estimate_dtype": self.estimate.dtype.str,
            "estimate": estimate,
            "next_hop": next_hop,
            "hop_weight": hop_weight,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistanceOracle":
        if data.get("format") != ORACLE_FORMAT:
            raise ValueError(
                f"not a distance-oracle payload: format={data.get('format')!r}"
            )
        version = int(data.get("version", ORACLE_VERSION))
        if version > ORACLE_VERSION:
            raise ValueError(
                f"oracle payload version {version} is newer than supported "
                f"version {ORACLE_VERSION}"
            )
        est_dtype = np.dtype(str(data.get("estimate_dtype", "<f8")))
        if est_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"unsupported estimate dtype {est_dtype}")
        estimate = _decode_matrix(data["estimate"], est_dtype)
        next_hop = _decode_matrix(data["next_hop"], np.int64)
        hop_weight = _decode_matrix(data["hop_weight"], np.float64)
        return cls(
            estimate=estimate,
            next_hop=next_hop,
            hop_weight=hop_weight,
            meta=dict(data.get("meta") or {}),
        )

    def to_json(self, matrix_encoding: str = "b64", **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(matrix_encoding=matrix_encoding),
                          **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "DistanceOracle":
        return cls.from_dict(json.loads(payload))

    def save(self, path: str, matrix_encoding: str = "b64") -> None:
        """Write the artifact to ``path`` as one JSON document."""
        with open(path, "w", encoding="utf-8") as sink:
            sink.write(self.to_json(matrix_encoding=matrix_encoding))

    @classmethod
    def load(
        cls, path: str, memmap_dir: Optional[str] = None
    ) -> "DistanceOracle":
        """Read an artifact back; ``memmap_dir`` rehomes it out-of-core.

        With ``memmap_dir`` set, the decoded matrices are spilled to
        memmap files under a fresh subdirectory there (removed when the
        oracle is garbage-collected) — a serving tier can then hold a
        large reloaded oracle with near-zero resident footprint.
        """
        with open(path, "r", encoding="utf-8") as source:
            oracle = cls.from_json(source.read())
        if memmap_dir is None:
            return oracle
        return oracle.memmap_to(memmap_dir)

    def memmap_to(self, directory: str) -> "DistanceOracle":
        """A clone of this oracle backed by memmap files under ``directory``.

        Each matrix keeps its dtype (float32 estimates stay float32 on
        disk).  The backing subdirectory is tied to the clone's lifetime
        via a finalizer.
        """
        target = tempfile.mkdtemp(prefix="oracle-", dir=directory)
        arrays: Dict[str, np.ndarray] = {}
        for name in ("estimate", "next_hop", "hop_weight"):
            source = getattr(self, name)
            spilled = np.memmap(
                os.path.join(target, f"{name}.bin"),
                dtype=source.dtype, mode="w+", shape=source.shape,
            )
            spilled[...] = source
            spilled.flush()
            arrays[name] = spilled
        clone = DistanceOracle(meta=dict(self.meta), **arrays)
        weakref.finalize(clone, rmtree, target, ignore_errors=True)
        return clone


def _decode_matrix(payload: Any, dtype: Any) -> np.ndarray:
    """Decode either codec into a fresh array of ``dtype``."""
    dtype = np.dtype(dtype)
    if isinstance(payload, Mapping):
        out = _matrix_from_b64(payload)
    elif dtype.kind == "i":
        out = np.asarray(payload, dtype=dtype)
    else:
        out = _matrix_from_jsonable(payload)
    return np.ascontiguousarray(out, dtype=dtype)


__all__ = ["DistanceOracle", "ORACLE_FORMAT", "ORACLE_VERSION"]
