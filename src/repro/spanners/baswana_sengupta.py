"""Baswana–Sengupta (2k-1)-spanner construction.

Lemma 7.1 of the paper imports constant-round spanner algorithms from
[CZ22].  The *object* those algorithms produce is a multiplicative spanner
with the classic guarantees:

* stretch ``2k - 1``,
* expected ``O(k * n^{1 + 1/k})`` edges.

This module implements the randomized clustering construction of Baswana &
Sengupta (2007), which yields exactly those guarantees; the
:mod:`repro.spanners.cz22` wrapper charges the [CZ22] round cost on the
ledger (see DESIGN.md section 2 for the substitution note).

The implementation follows the two-phase description:

* **Phase 1** (``k - 1`` iterations): maintain a clustering; sample cluster
  centers with probability ``n^{-1/k}``; unsampled vertices either leave the
  process (adding their lightest edge to every adjacent cluster) or join the
  nearest sampled cluster (adding that edge plus the lighter-than-it edges
  to other adjacent clusters).  Intra-cluster edges are discarded.
* **Phase 2**: every surviving vertex adds its lightest edge to each
  adjacent final cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..graphs.graph import WeightedGraph


def _lightest_edges_per_cluster(
    edges: Dict[int, Dict[int, float]],
    cluster_of: np.ndarray,
    vertex: int,
) -> Dict[int, Tuple[float, int]]:
    """Map adjacent cluster -> (weight, neighbour) of the lightest edge.

    Ties are broken by neighbour ID, matching the repo-wide convention.
    """
    best: Dict[int, Tuple[float, int]] = {}
    for neighbour, weight in edges[vertex].items():
        cluster = int(cluster_of[neighbour])
        if cluster < 0:
            continue
        key = (weight, neighbour)
        if cluster not in best or key < best[cluster]:
            best[cluster] = key
    return best


def baswana_sengupta_spanner(
    graph: WeightedGraph,
    k: int,
    rng: np.random.Generator,
) -> WeightedGraph:
    """Compute a (2k-1)-spanner with expected ``O(k n^{1+1/k})`` edges.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    k:
        Stretch parameter; ``k = 1`` returns the graph itself.
    rng:
        Randomness source for center sampling.
    """
    if graph.directed:
        raise ValueError("spanners are defined for undirected graphs")
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.n
    if k == 1 or graph.num_edges == 0:
        return WeightedGraph(
            n, list(graph.edges()), require_positive=False, require_integer=False
        )

    sample_probability = n ** (-1.0 / k)

    # Mutable residual edge structure (both directions).
    edges: Dict[int, Dict[int, float]] = {v: {} for v in range(n)}
    for u, v, w in graph.edges():
        edges[u][v] = min(w, edges[u].get(v, np.inf))
        edges[v][u] = min(w, edges[v].get(u, np.inf))

    spanner: Set[Tuple[int, int, float]] = set()

    def add_edge(u: int, v: int, w: float) -> None:
        spanner.add((min(u, v), max(u, v), w))

    def drop_edges_to_cluster(vertex: int, cluster: int, cluster_of: np.ndarray) -> None:
        for neighbour in [
            x for x in edges[vertex] if int(cluster_of[x]) == cluster
        ]:
            del edges[vertex][neighbour]
            del edges[neighbour][vertex]

    cluster_of = np.arange(n, dtype=np.int64)  # every vertex its own center

    for _ in range(k - 1):
        centers = set(int(c) for c in np.unique(cluster_of[cluster_of >= 0]))
        sampled = {c for c in centers if rng.random() < sample_probability}
        new_cluster = np.full(n, -1, dtype=np.int64)
        for vertex in range(n):
            c = int(cluster_of[vertex])
            if c >= 0 and c in sampled:
                new_cluster[vertex] = c

        for vertex in range(n):
            old = int(cluster_of[vertex])
            if old < 0 or old in sampled:
                continue  # vertex already left, or stays via its sampled cluster
            best = _lightest_edges_per_cluster(edges, cluster_of, vertex)
            sampled_adjacent = {
                c: key for c, key in best.items() if c in sampled
            }
            if not sampled_adjacent:
                # Leave the process: lightest edge to every adjacent cluster.
                for cluster, (weight, neighbour) in best.items():
                    add_edge(vertex, neighbour, weight)
                    drop_edges_to_cluster(vertex, cluster, cluster_of)
            else:
                target_cluster, (target_w, target_nbr) = min(
                    sampled_adjacent.items(), key=lambda item: item[1]
                )
                add_edge(vertex, target_nbr, target_w)
                new_cluster[vertex] = target_cluster
                drop_edges_to_cluster(vertex, target_cluster, cluster_of)
                for cluster, (weight, neighbour) in best.items():
                    if cluster == target_cluster:
                        continue
                    if (weight, neighbour) < (target_w, target_nbr):
                        add_edge(vertex, neighbour, weight)
                        drop_edges_to_cluster(vertex, cluster, cluster_of)

        cluster_of = new_cluster
        # Discard intra-cluster edges.
        for vertex in range(n):
            own = int(cluster_of[vertex])
            if own < 0:
                continue
            same = [
                x
                for x in edges[vertex]
                if int(cluster_of[x]) == own and x > vertex
            ]
            for neighbour in same:
                del edges[vertex][neighbour]
                del edges[neighbour][vertex]

    # Phase 2: lightest edge to each adjacent final cluster.
    for vertex in range(n):
        best = _lightest_edges_per_cluster(edges, cluster_of, vertex)
        for cluster, (weight, neighbour) in best.items():
            add_edge(vertex, neighbour, weight)

    return WeightedGraph(
        n,
        [(u, v, w) for (u, v, w) in sorted(spanner)],
        require_positive=False,
        require_integer=False,
    )


def spanner_edge_bound(n: int, k: int) -> float:
    """The classic expected-size bound ``k * n^{1 + 1/k}`` (Lemma 7.1 form)."""
    if n < 1 or k < 1:
        raise ValueError("need n >= 1 and k >= 1")
    return float(k) * float(n) ** (1.0 + 1.0 / k)
