"""Baswana–Sengupta (2k-1)-spanner construction, array-native.

Lemma 7.1 of the paper imports constant-round spanner algorithms from
[CZ22].  The *object* those algorithms produce is a multiplicative spanner
with the classic guarantees:

* stretch ``2k - 1``,
* expected ``O(k * n^{1 + 1/k})`` edges.

This module implements the randomized clustering construction of Baswana &
Sengupta (2007), which yields exactly those guarantees; the
:mod:`repro.spanners.cz22` wrapper charges the [CZ22] round cost on the
ledger (see DESIGN.md section 2 for the substitution note).

The implementation follows the two-phase description with the *round
semantics of the distributed algorithm*: in each of the ``k - 1`` Phase-1
iterations every vertex decides simultaneously from the residual edge set
at the start of the iteration (sample cluster centers with probability
``n^{-1/k}``; unsampled vertices either leave the process — adding their
lightest edge to every adjacent cluster — or join the nearest sampled
cluster, adding that edge plus the lighter-than-it edges to other
adjacent clusters); removals take effect at the end of the iteration.
Phase 2 adds every surviving vertex's lightest edge to each adjacent
final cluster.

Everything is computed on edge *arrays* (the graph's CSR view feeds
them): the per-vertex/per-cluster "lightest edge" maps are one
``group_argmin`` over ``(vertex, cluster)`` keys per iteration instead of
the historical quadruple-nested Python loops over dict-of-dict residual
adjacency.  Randomness is pre-drawn as one uniform per vertex ID per
iteration (``rng.random(n)``), a fixed order independent of the residual
state — the determinism contract tested by
``tests/test_construction_determinism.py``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graphs.adjacency import group_argmin
from ..graphs.graph import WeightedGraph


def baswana_sengupta_spanner(
    graph: WeightedGraph,
    k: int,
    rng: np.random.Generator,
) -> WeightedGraph:
    """Compute a (2k-1)-spanner with expected ``O(k n^{1+1/k})`` edges.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    k:
        Stretch parameter; ``k = 1`` returns the graph itself.
    rng:
        Randomness source for center sampling; draws exactly ``n`` uniforms
        per Phase-1 iteration (one per vertex ID, in ID order), so equal
        seeds give bit-identical spanners.
    """
    if graph.directed:
        raise ValueError("spanners are defined for undirected graphs")
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.n
    if k == 1 or graph.num_edges == 0:
        return WeightedGraph.from_arrays(
            n,
            graph.edge_u,
            graph.edge_v,
            graph.edge_w,
            require_positive=False,
            require_integer=False,
        )

    sample_probability = n ** (-1.0 / k)

    # Residual edge set: the canonical (u < v) arrays plus a liveness mask.
    eu = graph.edge_u
    ev = graph.edge_v
    ew = graph.edge_w
    alive = np.ones(len(eu), dtype=bool)

    # Spanner accumulator (edges may repeat across iterations; the final
    # from_arrays constructor min-dedups).
    span_u: List[np.ndarray] = []
    span_v: List[np.ndarray] = []
    span_w: List[np.ndarray] = []

    def add_edges(src: np.ndarray, dst: np.ndarray, wgt: np.ndarray) -> None:
        span_u.append(src)
        span_v.append(dst)
        span_w.append(wgt)

    cluster_of = np.arange(n, dtype=np.int64)  # every vertex its own center

    # (vertex, dropped-cluster) removal mask, reused across iterations —
    # refilling in place keeps the peak allocation at one (n, n) board.
    drop_pair = np.zeros((n, n), dtype=bool)

    for _ in range(k - 1):
        # --- sample centers: one pre-drawn uniform per vertex ID. ------ #
        draws = rng.random(n)
        is_center = np.zeros(n, dtype=bool)
        clustered = cluster_of >= 0
        is_center[cluster_of[clustered]] = True
        sampled = is_center & (draws < sample_probability)

        # --- directed view of the residual edges. ---------------------- #
        live = np.flatnonzero(alive)
        du = np.concatenate([eu[live], ev[live]])
        dv = np.concatenate([ev[live], eu[live]])
        dw = np.concatenate([ew[live], ew[live]])
        eid = np.concatenate([live, live])

        nbr_cluster = cluster_of[dv]
        valid = nbr_cluster >= 0
        g_rows = np.flatnonzero(valid)

        # --- lightest edge per (vertex, adjacent cluster). ------------- #
        keys = du[g_rows] * np.int64(n) + nbr_cluster[g_rows]
        _, best = group_argmin(keys, dw[g_rows], dv[g_rows])
        best = g_rows[best]
        g_vertex = du[best]
        g_cluster = nbr_cluster[best]
        g_w = dw[best]
        g_nbr = dv[best]

        # --- classify vertices. ---------------------------------------- #
        # Vertices still in an unsampled cluster act this iteration; the
        # rest either left already (cluster < 0) or stay put (sampled).
        safe_cluster = np.where(clustered, cluster_of, 0)
        stays = clustered & sampled[safe_cluster]
        acting = clustered & ~stays

        # Best *sampled-cluster* edge per acting vertex (the join target).
        target_w = np.full(n, np.inf)
        target_nbr = np.full(n, -1, dtype=np.int64)
        target_cluster = np.full(n, -1, dtype=np.int64)
        sampled_rows = np.flatnonzero(sampled[g_cluster] & acting[g_vertex])
        if len(sampled_rows):
            verts, best_s = group_argmin(
                g_vertex[sampled_rows], g_w[sampled_rows], g_nbr[sampled_rows]
            )
            rows = sampled_rows[best_s]
            target_w[verts] = g_w[rows]
            target_nbr[verts] = g_nbr[rows]
            target_cluster[verts] = g_cluster[rows]
        joins = acting & (target_nbr >= 0)
        leaves = acting & (target_nbr < 0)

        # --- spanner additions and cluster drops, per group row. ------- #
        leave_row = leaves[g_vertex]
        join_row = joins[g_vertex]
        lighter = (g_w < target_w[g_vertex]) | (
            (g_w == target_w[g_vertex]) & (g_nbr < target_nbr[g_vertex])
        )
        add_row = leave_row | (join_row & lighter)
        drop_row = add_row | (join_row & (g_cluster == target_cluster[g_vertex]))

        add_edges(g_vertex[add_row], g_nbr[add_row], g_w[add_row])
        join_ids = np.flatnonzero(joins)
        add_edges(join_ids, target_nbr[joins], target_w[joins])

        # --- apply removals: E(v, dropped cluster) for both endpoints. - #
        drop_pair[:] = False
        drop_pair[g_vertex[drop_row], g_cluster[drop_row]] = True
        dead_rows = np.flatnonzero(valid & drop_pair[du, np.maximum(nbr_cluster, 0)])
        alive[eid[dead_rows]] = False

        # --- reassign clusters; discard intra-cluster edges. ----------- #
        new_cluster = np.full(n, -1, dtype=np.int64)
        new_cluster[stays] = cluster_of[stays]
        new_cluster[joins] = target_cluster[joins]
        cluster_of = new_cluster
        intra = (
            alive
            & (cluster_of[eu] >= 0)
            & (cluster_of[eu] == cluster_of[ev])
        )
        alive[intra] = False

    # Phase 2: lightest edge to each adjacent final cluster, every vertex.
    live = np.flatnonzero(alive)
    du = np.concatenate([eu[live], ev[live]])
    dv = np.concatenate([ev[live], eu[live]])
    dw = np.concatenate([ew[live], ew[live]])
    nbr_cluster = cluster_of[dv]
    g_rows = np.flatnonzero(nbr_cluster >= 0)
    keys = du[g_rows] * np.int64(n) + nbr_cluster[g_rows]
    _, best = group_argmin(keys, dw[g_rows], dv[g_rows])
    best = g_rows[best]
    add_edges(du[best], dv[best], dw[best])

    return WeightedGraph.from_arrays(
        n,
        np.concatenate(span_u) if span_u else np.zeros(0, dtype=np.int64),
        np.concatenate(span_v) if span_v else np.zeros(0, dtype=np.int64),
        np.concatenate(span_w) if span_w else np.zeros(0, dtype=np.float64),
        require_positive=False,
        require_integer=False,
    )


def spanner_edge_bound(n: int, k: int) -> float:
    """The classic expected-size bound ``k * n^{1 + 1/k}`` (Lemma 7.1 form)."""
    if n < 1 or k < 1:
        raise ValueError("need n >= 1 and k >= 1")
    return float(k) * float(n) ** (1.0 + 1.0 / k)
