"""Spanner substrate: Baswana–Sengupta engine, CZ22 interface, bootstrap."""

from .baswana_sengupta import baswana_sengupta_spanner, spanner_edge_bound
from .cz22 import SpannerResult, cz22_spanner
from .logn_approx import (
    ApproxResult,
    approx_apsp_via_spanner,
    bootstrap_b,
    logn_bootstrap,
)

__all__ = [
    "ApproxResult",
    "SpannerResult",
    "approx_apsp_via_spanner",
    "baswana_sengupta_spanner",
    "bootstrap_b",
    "cz22_spanner",
    "logn_bootstrap",
    "spanner_edge_bound",
]
