"""APSP approximation by spanner broadcast (Corollaries 7.1 and 7.2).

Corollary 7.1: on a subgraph ``G_S`` with ``N ∈ O(n^{1-1/b})`` nodes, build a
``(1+eps)(2b-1)``-spanner with ``O(N^{1+1/b}) ⊆ O(n)`` edges, broadcast it
to everyone, and let every node compute exact APSP on the spanner locally.
Corollary 7.2 is the special case ``G_S = G`` with ``b ≈ (alpha log n) / 3``,
yielding the O(log n)-approximation that bootstraps the whole paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.distances import exact_apsp
from ..graphs.graph import WeightedGraph
from .cz22 import SpannerResult, cz22_spanner


@dataclass
class ApproxResult:
    """A distance estimate plus the factor it is guaranteed to satisfy."""

    estimate: np.ndarray
    factor: float
    spanner: Optional[SpannerResult] = None


def approx_apsp_via_spanner(
    graph: WeightedGraph,
    b: int,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 0.1,
) -> ApproxResult:
    """Corollary 7.1: ``(1+eps)(2b-1)``-approximate APSP via spanner broadcast.

    ``graph`` is the (sub)graph to approximate (the skeleton graph in the
    paper; the caller has already reduced to it).  The broadcast is charged
    at the spanner's *measured* edge count: ``ceil(words / n)`` linear
    broadcasts, where ``n`` is the ledger's clique size.  When the spanner
    is O(n) edges, this is O(1) rounds, as the corollary requires.
    """
    if b < 1:
        raise ValueError("b must be >= 1")
    result = cz22_spanner(graph, b, rng, ledger=ledger, eps=eps)
    if ledger is not None:
        # An edge is (u, v, w): three words.
        ledger.charge_broadcast(
            3 * result.num_edges, detail=f"broadcast spanner ({result.num_edges} edges)"
        )
    estimate = exact_apsp(result.spanner)
    return ApproxResult(estimate=estimate, factor=result.stretch_bound, spanner=result)


def bootstrap_b(n: int, alpha: float = 1.0) -> int:
    """The spanner parameter of Corollary 7.2: ``b = floor(alpha log2 n / 3)``.

    Floored at 2 so small test graphs still take the spanner path (with
    ``b = 1`` the "spanner" would be the graph itself).
    """
    if n < 2:
        return 2
    return max(2, int(alpha * math.log2(n) / 3))


def logn_bootstrap(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    alpha: float = 1.0,
    eps: float = 0.1,
) -> ApproxResult:
    """Corollary 7.2: the O(log n)-approximation that seeds every pipeline.

    The guaranteed factor is ``(1+eps)(2b-1)`` with ``b`` from
    :func:`bootstrap_b`; for ``n`` beyond the small-graph floor this is at
    most ``alpha * log2 n``, matching the corollary.
    """
    b = bootstrap_b(graph.n, alpha=alpha)
    return approx_apsp_via_spanner(graph, b, rng, ledger=ledger, eps=eps)
