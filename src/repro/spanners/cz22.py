"""Constant-round spanner interface (Lemma 7.1, from [CZ22]).

The paper uses two spanner guarantees from [CZ22]:

* a ``(1+eps)(2k-1)``-spanner with ``O(n^{1+1/k})`` edges (Theorem 1.2), and
* a ``(2k-1)``-spanner with ``O(k * n^{1+1/k})`` edges (Theorem 1.3),

both constructible in O(1) rounds of the Congested Clique.  We build the
spanner object with the Baswana–Sengupta engine (same stretch family) and
charge the [CZ22] constant round cost on the ledger; the stretch bound
reported is the conservative ``(1+eps)(2k-1)`` of the variant requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from .baswana_sengupta import baswana_sengupta_spanner, spanner_edge_bound


@dataclass
class SpannerResult:
    """A spanner together with its advertised guarantees."""

    spanner: WeightedGraph
    stretch_bound: float
    edge_bound: float
    k: int

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def cz22_spanner(
    graph: WeightedGraph,
    k: int,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 0.0,
) -> SpannerResult:
    """Constant-round ``(1+eps)(2k-1)``-spanner (Lemma 7.1).

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    k:
        Stretch parameter.
    rng:
        Randomness source.
    ledger:
        Round ledger to charge the O(1)-round [CZ22] cost on.
    eps:
        The epsilon of the [CZ22] Theorem 1.2 variant; only the advertised
        stretch bound changes (the constructed spanner's true stretch is at
        most ``2k-1``, which is within both variants' guarantees).
    """
    if eps < 0:
        raise ValueError("eps must be >= 0")
    spanner = baswana_sengupta_spanner(graph, k, rng)
    if ledger is not None:
        ledger.charge_spanner(detail=f"(1+{eps})(2*{k}-1)-spanner [CZ22]")
    return SpannerResult(
        spanner=spanner,
        stretch_bound=(1.0 + eps) * (2 * k - 1),
        edge_bound=spanner_edge_bound(graph.n, k),
        k=k,
    )
