"""Checksum-verified payloads: the integrity layer of the clique engine.

PR 7's fault pipeline made payload corruption *survivable* — protocols
keep running on flipped bits — but nothing *detected* it: a corrupted
row was delivered like any other and poisoned whatever consumed it.
This module closes that gap with a vectorized checksum word carried
alongside every staged payload row:

* :func:`payload_checksums` — a seeded multiply-xorshift (splitmix64
  finalizer) over the int64 bit view of each payload word, salted by
  column position, XOR-folded to a 52-bit word.  Any single bit flip in
  any word (header prefix included — the checksum protects the whole
  row, not just the data suffix) changes the checksum except with
  probability ``2**-52``; swapped words are caught by the column salt.
  NaN cells are excluded on both sides, so the cross-chunk NaN padding
  :func:`~repro.cclique.engine._concat_rows` appends never perturbs a
  row's checksum, while a corruption that turns a word *into* NaN
  (an ``inf`` mantissa flip) still mismatches.
* :class:`IntegrityPolicy` — the frozen, reusable configuration
  (checksum seed), attached to an engine via
  :meth:`~repro.cclique.engine.ArrayClique.attach_integrity`.
* :class:`IntegrityState` — one policy activated on one engine:
  computes checksums at :meth:`~repro.cclique.engine.ArrayClique.stage`
  time, screens rows at delivery, and **quarantines** mismatches —
  the row never reaches an inbox, its ``(src, dst)`` identity is
  buffered for protocols to re-request, and the engine reports it to
  the attached fault pipeline as a ``detected`` ledger count.

The 52-bit fold keeps the checksum an exactly-representable
nonnegative float64 integer: it rides the engine's float columns
without ever colliding with the NaN padding sentinel, and it survives
JSON untouched.  The word is **not charged** against the bandwidth
budget — it models a CRC trailer inside the per-word framing overhead,
which is what keeps empty-plan runs bit-identical (same spills, same
rounds, same inboxes) with integrity checks enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .engine import _Rows

#: check-column value meaning "this row carries no checksum".
NO_CHECK = -1

#: Default checksum seed (any int works; plans may pin their own).
DEFAULT_CHECKSUM_SEED = 0x1DE9A17

#: The checksum is folded to 52 bits so it is an exactly-representable
#: nonnegative integer in float64 (and can never be NaN/inf).
_CHECKSUM_BITS = 52
_FOLD_MASK = np.uint64((1 << _CHECKSUM_BITS) - 1)

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer: a bijective avalanche mix on uint64."""
    x = (x ^ (x >> np.uint64(30))) * _MIX_1
    x = (x ^ (x >> np.uint64(27))) * _MIX_2
    return x ^ (x >> np.uint64(31))


def _column_salts(seed: int, width: int) -> np.ndarray:
    """Per-column salts, a pure function of ``(seed, column index)``.

    Stable under width growth: column ``j``'s salt does not depend on
    how many columns follow it, so a row checksummed at width ``w`` and
    verified inside a NaN-padded width-``w'`` chunk sees identical salts
    for its real columns.
    """
    # Wrap-around multiply in Python ints: numpy warns on scalar
    # uint64 overflow even though wrapping is exactly what we want.
    base = np.uint64((seed * int(_GOLDEN)) & 0xFFFFFFFFFFFFFFFF)
    columns = np.arange(1, width + 1, dtype=np.uint64)
    return _mix64(base ^ (columns * _MIX_1))


def payload_checksums(payload: np.ndarray, seed: int = DEFAULT_CHECKSUM_SEED) -> np.ndarray:
    """Vectorized per-row checksum words of a float64 payload matrix.

    Returns an int64 ``(m,)`` column of values in ``[0, 2**52)``.  The
    checksum is a pure function of each row's non-NaN word bit patterns,
    their column positions, and ``seed``.
    """
    payload = np.ascontiguousarray(payload, dtype=np.float64)
    if payload.ndim != 2:
        raise ValueError("payload must be 2-D")
    m, width = payload.shape
    if width == 0:
        return np.zeros(m, dtype=np.int64)
    bits = payload.view(np.uint64)
    mixed = _mix64(bits ^ _column_salts(seed, width)[None, :])
    mixed = np.where(np.isnan(payload), np.uint64(0), mixed)
    acc = np.bitwise_xor.reduce(mixed, axis=1)
    folded = (acc ^ (acc >> np.uint64(_CHECKSUM_BITS))) & _FOLD_MASK
    return folded.astype(np.int64)


def verify_checksums(
    payload: np.ndarray,
    checks: np.ndarray,
    seed: int = DEFAULT_CHECKSUM_SEED,
) -> np.ndarray:
    """Boolean ``(m,)`` mask: True where the row's checksum matches.

    Rows carrying :data:`NO_CHECK` (staged before integrity was enabled,
    or by an engine without it) are trusted — they verify as True.
    """
    checks = np.asarray(checks, dtype=np.int64)
    expected = payload_checksums(payload, seed)
    return (checks == NO_CHECK) | (checks == expected)


@dataclass(frozen=True)
class IntegrityPolicy:
    """Frozen checksum configuration, reusable across engines.

    ``seed`` keys the column salts; both sides of a link must share it
    (in the simulator they trivially do — one engine carries both).
    """

    seed: int = DEFAULT_CHECKSUM_SEED

    def activate(self) -> "IntegrityState":
        """Compile a fresh per-engine state (counters start at zero)."""
        return IntegrityState(self)


class IntegrityState:
    """One policy active on one engine: checksum, screen, quarantine.

    ``verified``/``detected`` are cumulative row counts; quarantined row
    identities accumulate until :meth:`rerequest` drains them — the
    re-request mask protocols consult to retransmit what the integrity
    layer refused to deliver.
    """

    def __init__(self, policy: IntegrityPolicy) -> None:
        self.policy = policy
        self.verified = 0
        self.detected = 0
        self._quarantined_src: List[np.ndarray] = []
        self._quarantined_dst: List[np.ndarray] = []

    def checksums(self, payload: np.ndarray) -> np.ndarray:
        """The check column for a batch of staged payload rows."""
        return payload_checksums(payload, self.policy.seed)

    def screen(
        self, rows: "_Rows"
    ) -> Tuple["_Rows", Optional[Tuple[np.ndarray, np.ndarray]]]:
        """Verify delivered rows; quarantine mismatches.

        Returns ``(kept_rows, quarantined)`` where ``quarantined`` is
        the ``(src, dst)`` columns of the refused rows (None when every
        row verified).  Quarantined rows never reach an inbox; their
        identities are also buffered for :meth:`rerequest`.
        """
        from .engine import _take  # local import: engine imports us too

        if not len(rows):
            return rows, None
        ok = verify_checksums(rows.payload, rows.check, self.policy.seed)
        self.verified += int(len(rows))
        if ok.all():
            return rows, None
        bad = np.flatnonzero(~ok)
        self.detected += len(bad)
        bad_src = rows.src[bad].copy()
        bad_dst = rows.dst[bad].copy()
        self._quarantined_src.append(bad_src)
        self._quarantined_dst.append(bad_dst)
        return _take(rows, np.flatnonzero(ok)), (bad_src, bad_dst)

    def rerequest(self) -> Tuple[np.ndarray, np.ndarray]:
        """Drain the quarantine buffer: ``(src, dst)`` of refused rows.

        This is the re-request mask: each entry names an ordered link
        whose payload was quarantined since the last drain, so a
        protocol can ask the sender to retransmit.  (The resilient
        router gets the same effect through its ack loop — a quarantined
        row is never acknowledged, so it rides the next retransmission.)
        """
        if not self._quarantined_src:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        src = np.concatenate(self._quarantined_src)
        dst = np.concatenate(self._quarantined_dst)
        self._quarantined_src = []
        self._quarantined_dst = []
        return src, dst

    @property
    def pending_rerequests(self) -> int:
        """Quarantined rows buffered since the last :meth:`rerequest`."""
        return sum(len(chunk) for chunk in self._quarantined_src)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe cumulative view of the screening counters."""
        return {
            "seed": self.policy.seed,
            "verified": self.verified,
            "detected": self.detected,
            "pending_rerequests": self.pending_rerequests,
        }


def as_integrity(policy: Any) -> Optional[IntegrityState]:
    """Coerce the user-facing ``integrity=`` argument to an active state.

    Accepts ``None`` / ``False`` (off), ``True`` (default policy), an
    :class:`IntegrityPolicy`, or an already-activated
    :class:`IntegrityState` (reused as-is, counters preserved).
    """
    if policy is None or policy is False:
        return None
    if policy is True:
        return IntegrityPolicy().activate()
    if isinstance(policy, IntegrityPolicy):
        return policy.activate()
    if isinstance(policy, IntegrityState):
        return policy
    raise TypeError(f"not an integrity policy: {policy!r}")


__all__ = [
    "DEFAULT_CHECKSUM_SEED",
    "IntegrityPolicy",
    "IntegrityState",
    "NO_CHECK",
    "as_integrity",
    "payload_checksums",
    "verify_checksums",
]
