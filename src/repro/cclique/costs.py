"""Round costs of the black-box primitives cited by the paper.

The paper composes its algorithms from a small set of routines whose round
complexity is taken from prior work.  This module is the single place where
those constants live, each with its provenance, so that every ledger charge
in the code base can be traced back to a citation.

All constants are *model rounds* in the standard Congested Clique
(``B = log n`` bits per message).  They are deliberately explicit integers:
the paper only claims ``O(1)`` for each, and the reproduction fixes a
concrete constant per primitive so the measured totals are deterministic
and comparable across runs.  The exact values do not affect any
approximation guarantee; they only scale the reported round counts by a
constant.
"""

from __future__ import annotations

import math

#: Lemma 2.1 [Len13]: deterministic routing of O(n) messages in/out per node.
#: Lenzen's construction gives a constant-round schedule; we charge 2 rounds
#: for the delivery plus 1 round of schedule setup.
LENZEN_ROUTING_ROUNDS = 3

#: Lemma 2.2 [CFG+20, Corollary 7]: routing when receivers get O(n) messages
#: and sender state is O(n log n) bits (helpers reconstruct outgoing data).
REDUNDANCY_ROUTING_ROUNDS = 4

#: One all-to-all exchange where every ordered pair exchanges one word.
ALL_TO_ALL_ROUNDS = 1

#: Broadcasting O(n) words from one node to everyone (via Lemma 2.2-style
#: helpers: send one word to each node, then all-to-all).
BROADCAST_LINEAR_ROUNDS = 2

#: Lemma 7.1 [CZ22, Theorems 1.2/1.3]: constant-round spanner construction.
CZ22_SPANNER_ROUNDS = 6

#: [Now21]: deterministic MST in O(1) rounds of Congested Clique.
NOWICKI_MST_ROUNDS = 5

#: Hitting-set construction in Lemma 6.2 (random sampling + fix-up + O(log n)
#: parallel repetitions compressed into O(1) rounds of 1-bit messages).
HITTING_SET_ROUNDS = 2

#: Local recomputation steps the paper counts as "zero rounds".
FREE = 0


def sparse_matmul_rounds(n: int, rho_s: float, rho_t: float, rho_st: float) -> int:
    """Rounds for the sparse min-plus product of [CDKL21, Theorem 8].

    ``O((rho_S * rho_T * rho_ST)^(1/3) / n^(2/3) + 1)`` rounds, where
    ``rho_M`` is the average number of finite entries per row of ``M``.
    The returned value is the ceiling of that expression with constant 1,
    which is exact enough for relative comparisons across experiments.

    Parameters
    ----------
    n:
        Matrix dimension (clique size).
    rho_s, rho_t, rho_st:
        Densities (average finite entries per row) of the two factors and of
        the product.  Callers may pass upper bounds; the formula is monotone.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rho_s = max(1.0, float(rho_s))
    rho_t = max(1.0, float(rho_t))
    rho_st = max(1.0, float(rho_st))
    work = (rho_s * rho_t * rho_st) ** (1.0 / 3.0)
    return int(math.ceil(work / n ** (2.0 / 3.0))) + 1


def dense_matmul_rounds(n: int) -> int:
    """Rounds for one dense min-plus product, ``O(n^(1/3))`` [CKK+19].

    Used only by the exact-APSP baseline.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return int(math.ceil(n ** (1.0 / 3.0)))


def bandwidth_factor(n: int, bandwidth_words: int) -> int:
    """Slowdown for simulating ``Congested-Clique[B]`` in the standard model.

    An algorithm designed for bandwidth ``B = bandwidth_words * log n`` runs
    in the standard model with a multiplicative overhead equal to the number
    of words per message, by splitting each large message into words.
    """
    if bandwidth_words < 1:
        raise ValueError("bandwidth_words must be >= 1")
    return int(bandwidth_words)
