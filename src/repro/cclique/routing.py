"""Routing primitives for the Congested Clique.

Implements executable counterparts of the two routing lemmas the paper uses:

* **Lemma 2.1 [Len13]** — any instance where each node sends O(n) messages
  and each node receives O(n) messages is deliverable in O(1) rounds.
  :func:`route_two_phase` realises this with a deterministic
  *count / offset / relay* scheme (a simplified form of Lenzen's algorithm):
  two coordination rounds compute, per destination, globally distinct slot
  numbers for every message; messages then travel through relay
  ``slot mod n``, which balances the per-destination relay load perfectly.
  The simulator measures the exact number of rounds used, and the test suite
  checks it stays a small constant at full load (n messages in and out per
  node).

* **Valiant-style randomized routing** — :func:`route_randomized` relays via
  uniformly random intermediates; with O(n)-bounded loads the per-link
  congestion is O(1) w.h.p.  Used as a comparison point in the routing
  benchmark.

Both run on a :class:`~repro.cclique.model.SimulatedClique` in *non-strict*
mode: the simulator spills over-congested links into extra rounds and counts
them, so the reported round number is the true cost of the schedule.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import LoadPreconditionError
from .message import Message
from .model import SimulatedClique


@dataclass
class RoutingStats:
    """Outcome of a routing execution on the simulator."""

    rounds: int
    messages: int
    max_sent_per_node: int
    max_received_per_node: int
    relay_max_load: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.messages} msgs in {self.rounds} rounds "
            f"(max out {self.max_sent_per_node}, max in "
            f"{self.max_received_per_node}, relay load {self.relay_max_load})"
        )


def instance_loads(messages: Sequence[Message], n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node sent/received message counts of a routing instance."""
    sent = np.zeros(n, dtype=np.int64)
    received = np.zeros(n, dtype=np.int64)
    for message in messages:
        sent[message.sender] += 1
        received[message.receiver] += 1
    return sent, received


def validate_loads(
    messages: Sequence[Message],
    n: int,
    load_constant: float = 8.0,
    check_sent: bool = True,
) -> Tuple[int, int]:
    """Check the O(n)-load precondition of Lemma 2.1 / Lemma 2.2.

    Returns ``(max_sent, max_received)``; raises
    :class:`LoadPreconditionError` when a node exceeds
    ``load_constant * n`` messages in the checked direction(s).
    """
    sent, received = instance_loads(messages, n)
    max_sent = int(sent.max(initial=0))
    max_received = int(received.max(initial=0))
    limit = load_constant * n
    if check_sent and max_sent > limit:
        raise LoadPreconditionError(
            f"a node sends {max_sent} messages > {load_constant} * n = {limit:.0f}"
        )
    if max_received > limit:
        raise LoadPreconditionError(
            f"a node receives {max_received} messages > "
            f"{load_constant} * n = {limit:.0f}"
        )
    return max_sent, max_received


def _deliver_relayed(
    clique: SimulatedClique,
    plan: List[Tuple[int, Message]],
    final: Dict[int, List[Message]],
) -> int:
    """Execute a two-hop plan: ``(relay, message)`` pairs, then forward.

    Returns rounds used.  ``final`` collects messages per destination.
    """
    # Phase A: senders -> relays.  Wrap each message so the relay knows the
    # true destination; payload grows by one word which is within the O(log n)
    # budget for the bookkeeping-free simulator (we allow 4-word payloads).
    relay_hold: Dict[int, List[Message]] = defaultdict(list)
    for relay, message in plan:
        wrapped = Message(
            sender=message.sender,
            receiver=relay,
            payload=(message.receiver,) + message.payload,
            tag="relay:" + message.tag,
        )
        clique.send(wrapped)
        relay_hold[relay].append(message)
    rounds = clique.drain()

    # Relays unwrap and forward.
    for relay in relay_hold:
        for wrapped in clique.inbox(relay):
            true_receiver = int(wrapped.payload[0])
            clique.send(
                Message(
                    sender=relay,
                    receiver=true_receiver,
                    payload=wrapped.payload[1:],
                    tag=wrapped.tag.removeprefix("relay:"),
                )
            )
    rounds += clique.drain()
    for node in range(clique.n):
        for message in clique.inbox(node):
            final[node].append(message)
    return rounds


def route_two_phase(
    messages: Sequence[Message],
    n: int,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Deterministic Lenzen-style routing on the message-level simulator.

    Protocol (each phase is O(1) rounds at O(n) load):

    1. Every sender tells every destination how many messages it has for it
       (one word per ordered pair, 1 round).
    2. Every destination prefix-sums the counts and returns each sender its
       slot offset (1 round).
    3. The ``j``-th message from sender ``s`` to destination ``d`` travels
       via relay ``(offset(s, d) + j) mod n``.  Slots for a destination are
       globally distinct, so each relay holds at most ``ceil(T_d / n)``
       messages per destination, where ``T_d <= O(n)`` is ``d``'s in-load.
    4. Relays forward to the destinations.

    Returns the delivered messages grouped by destination and the measured
    :class:`RoutingStats`.  Rounds include the two coordination rounds.
    """
    max_sent, max_received = validate_loads(messages, n)
    clique = SimulatedClique(n, bandwidth_words=bandwidth_words, strict=False)

    # Phase 1: counts.  (Local bookkeeping; one round of pairwise words.)
    counts: Dict[Tuple[int, int], int] = defaultdict(int)
    for message in messages:
        counts[(message.sender, message.receiver)] += 1
    coordination_rounds = 2  # counts out + offsets back, both 1-per-pair.

    # Phase 2: offsets, computed as each destination would.
    per_dest_senders: Dict[int, List[int]] = defaultdict(list)
    for (sender, dest) in counts:
        per_dest_senders[dest].append(sender)
    offsets: Dict[Tuple[int, int], int] = {}
    for dest, senders in per_dest_senders.items():
        senders.sort()
        running = 0
        for sender in senders:
            offsets[(sender, dest)] = running
            running += counts[(sender, dest)]

    # Phase 3 + 4: relay plan, executed on the simulator.  The relay for
    # slot ``j`` of destination ``d`` is ``(d + j) mod n``: slots are
    # globally distinct per destination (so each relay holds at most
    # ``ceil(T_d / n)`` messages per destination), and the per-destination
    # rotation ``+d`` decorrelates one sender's messages across
    # destinations (without it, prefix-sum offsets align and a sender's
    # whole batch would target the same relay).
    next_slot: Dict[Tuple[int, int], int] = defaultdict(int)
    plan: List[Tuple[int, Message]] = []
    relay_load = np.zeros(n, dtype=np.int64)
    for message in messages:
        key = (message.sender, message.receiver)
        slot = offsets[key] + next_slot[key]
        next_slot[key] += 1
        relay = (message.receiver + slot) % n
        relay_load[relay] += 1
        plan.append((relay, message))

    final: Dict[int, List[Message]] = defaultdict(list)
    data_rounds = _deliver_relayed(clique, plan, final)

    stats = RoutingStats(
        rounds=coordination_rounds + data_rounds,
        messages=len(messages),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=int(relay_load.max(initial=0)),
    )
    return final, stats


def route_randomized(
    messages: Sequence[Message],
    n: int,
    rng: np.random.Generator,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Valiant-style randomized routing: relay via a uniform intermediate."""
    max_sent, max_received = validate_loads(messages, n)
    clique = SimulatedClique(n, bandwidth_words=bandwidth_words, strict=False)
    relay_load = np.zeros(n, dtype=np.int64)
    plan: List[Tuple[int, Message]] = []
    relays = rng.integers(0, n, size=len(messages))
    for relay, message in zip(relays, messages):
        relay_load[relay] += 1
        plan.append((int(relay), message))
    final: Dict[int, List[Message]] = defaultdict(list)
    data_rounds = _deliver_relayed(clique, plan, final)
    stats = RoutingStats(
        rounds=data_rounds,
        messages=len(messages),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=int(relay_load.max(initial=0)),
    )
    return final, stats


def route_direct(
    messages: Sequence[Message],
    n: int,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Naive direct routing (no relays); rounds grow with pair congestion.

    Used as the baseline in the routing benchmark: sending k messages across
    one ordered pair costs k rounds, so skewed instances are slow.
    """
    max_sent, max_received = validate_loads(messages, n)
    clique = SimulatedClique(n, bandwidth_words=bandwidth_words, strict=False)
    for message in messages:
        clique.send(message)
    rounds = clique.drain()
    final: Dict[int, List[Message]] = defaultdict(list)
    for node in range(n):
        for message in clique.inbox(node):
            final[node].append(message)
    stats = RoutingStats(
        rounds=rounds,
        messages=len(messages),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=0,
    )
    return final, stats
