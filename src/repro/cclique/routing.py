"""Routing primitives for the Congested Clique — array-plane edition.

Implements executable counterparts of the two routing lemmas the paper uses:

* **Lemma 2.1 [Len13]** — any instance where each node sends O(n) messages
  and each node receives O(n) messages is deliverable in O(1) rounds.
  :func:`route_two_phase` realises this with a deterministic
  *count / offset / relay* scheme (a simplified form of Lenzen's algorithm):
  two coordination rounds compute, per destination, globally distinct slot
  numbers for every message; messages then travel through relay
  ``slot mod n``, which balances the per-destination relay load perfectly.
  The simulator measures the exact number of rounds used, and the test suite
  checks it stays a small constant at full load (n messages in and out per
  node).

* **Valiant-style randomized routing** — :func:`route_randomized` relays via
  uniformly random intermediates; with O(n)-bounded loads the per-link
  congestion is O(1) w.h.p.  Used as a comparison point in the routing
  benchmark.

Everything runs on the struct-of-arrays engine
(:class:`~repro.cclique.engine.ArrayClique`) in *non-strict* mode: the
engine spills over-congested links into extra rounds and counts them, so
the reported round number is the true cost of the schedule.  The plan
(counts, prefix-sum offsets, slot→relay assignment) is computed with flat
numpy reductions — no per-message Python.  Protocols stage
:class:`~repro.cclique.engine.MessageBatch` columns through
:func:`route_batch_two_phase` and read back a :class:`BatchDelivery`;
the legacy ``Sequence[Message]`` entry points are thin wrappers that ride
the same plane with payload objects attached as refs, and are asserted
round- and inbox-identical to the frozen object-plane reference
(:mod:`repro.cclique.reference`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .engine import ArrayClique, MessageBatch, NO_REF
from .errors import LoadPreconditionError
from .message import Message


@dataclass
class RoutingStats:
    """Outcome of a routing execution on the simulator.

    ``retries``/``undelivered``/``fault_totals`` are only populated by
    the resilient mode of :func:`route_batch_two_phase` (fault plan
    attached or ``max_retries > 0``); the clean path leaves them at
    their defaults.
    """

    rounds: int
    messages: int
    max_sent_per_node: int
    max_received_per_node: int
    relay_max_load: int
    spill_rounds: int = 0
    retries: int = 0
    undelivered: int = 0
    reconstructed: int = 0
    parity_words: int = 0
    fault_totals: Optional[Dict[str, int]] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.messages} msgs in {self.rounds} rounds "
            f"(max out {self.max_sent_per_node}, max in "
            f"{self.max_received_per_node}, relay load {self.relay_max_load})"
        )


@dataclass
class BatchDelivery:
    """Delivered rows of a routed batch, grouped by destination.

    ``src``/``payload`` rows are sorted by ``dst``; ``starts`` is the
    ``(n + 1,)`` prefix index so ``rows for node v`` is the slice
    ``starts[v]:starts[v + 1]`` (what :meth:`for_node` returns).  ``refs``
    holds the engine's object store when the batch carried refs; ``tag``
    holds interned tag ids resolvable through ``tag_names``.
    """

    n: int
    dst: np.ndarray
    src: np.ndarray
    payload: np.ndarray
    starts: np.ndarray
    ref: np.ndarray
    refs: Optional[List] = None
    tag: Optional[np.ndarray] = None
    tag_names: Optional[List[str]] = None

    def __len__(self) -> int:
        return len(self.dst)

    def for_node(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, payload)`` rows delivered to ``node``."""
        window = slice(self.starts[node], self.starts[node + 1])
        return self.src[window], self.payload[window]

    def counts(self) -> np.ndarray:
        """Delivered rows per destination node."""
        return np.diff(self.starts)

    def to_messages(self) -> Dict[int, List[Message]]:
        """Materialize the delivery as the legacy per-destination dict.

        Like the historical router's return value, the dict defaults to an
        empty list for destinations that received nothing.
        """
        out: Dict[int, List[Message]] = defaultdict(list)
        for node in range(self.n):
            window = slice(self.starts[node], self.starts[node + 1])
            if window.start == window.stop:
                continue
            rows: List[Message] = []
            for i in range(window.start, window.stop):
                ref = int(self.ref[i])
                if self.refs is not None and ref != NO_REF:
                    rows.append(self.refs[ref])
                else:
                    row = self.payload[i]
                    # Strip only *trailing* NaNs (cross-batch width
                    # padding); interior NaNs are legitimate payload.
                    finite = np.flatnonzero(~np.isnan(row))
                    width = int(finite[-1]) + 1 if len(finite) else 0
                    tag = ""
                    if self.tag is not None and self.tag_names is not None:
                        tag = self.tag_names[int(self.tag[i])]
                    rows.append(
                        Message(
                            int(self.src[i]),
                            node,
                            tuple(row[:width].tolist()),
                            tag,
                        )
                    )
            out[node] = rows
        return out


# --------------------------------------------------------------------- #
# Load preconditions
# --------------------------------------------------------------------- #


def _message_columns(
    messages: Sequence[Message], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    m = len(messages)
    src = np.fromiter((msg.sender for msg in messages), np.int64, m)
    dst = np.fromiter((msg.receiver for msg in messages), np.int64, m)
    return src, dst


def instance_loads(messages: Sequence[Message], n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node sent/received message counts of a routing instance."""
    src, dst = _message_columns(messages, n)
    return np.bincount(src, minlength=n), np.bincount(dst, minlength=n)


def _validate_load_columns(
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    load_constant: float,
    check_sent: bool,
) -> Tuple[int, int]:
    sent = np.bincount(src, minlength=n)
    received = np.bincount(dst, minlength=n)
    max_sent = int(sent.max(initial=0))
    max_received = int(received.max(initial=0))
    limit = load_constant * n
    if check_sent and max_sent > limit:
        raise LoadPreconditionError(
            f"a node sends {max_sent} messages > {load_constant} * n = {limit:.0f}"
        )
    if max_received > limit:
        raise LoadPreconditionError(
            f"a node receives {max_received} messages > "
            f"{load_constant} * n = {limit:.0f}"
        )
    return max_sent, max_received


def validate_loads(
    messages: Sequence[Message],
    n: int,
    load_constant: float = 8.0,
    check_sent: bool = True,
) -> Tuple[int, int]:
    """Check the O(n)-load precondition of Lemma 2.1 / Lemma 2.2.

    Returns ``(max_sent, max_received)``; raises
    :class:`LoadPreconditionError` when a node exceeds
    ``load_constant * n`` messages in the checked direction(s).
    """
    src, dst = _message_columns(messages, n)
    return _validate_load_columns(src, dst, n, load_constant, check_sent)


# --------------------------------------------------------------------- #
# The deterministic two-phase plan, vectorized
# --------------------------------------------------------------------- #


def two_phase_relays(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Relay assignment of the count/offset scheme, one flat computation.

    Reproduces the object-plane plan exactly: per destination ``d``, pairs
    ``(s, d)`` are laid out by ascending sender with prefix-sum offsets;
    the ``j``-th message of a pair (in staging order) gets slot
    ``offset + j`` and relay ``(d + slot) % n``.  Slots for a destination
    are globally distinct, so each relay holds at most ``ceil(T_d / n)``
    messages per destination; the ``+d`` rotation decorrelates one
    sender's batches across destinations.
    """
    m = len(src)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    pair_key = dst * n + src  # sorts by (dst, then src) — the offset order
    order = np.argsort(pair_key, kind="stable")
    sorted_key = pair_key[order]
    new_pair = np.r_[True, sorted_key[1:] != sorted_key[:-1]]
    pair_starts = np.flatnonzero(new_pair)
    pair_of = np.cumsum(new_pair) - 1
    # j: staging-order index within the pair (stable sort preserves it).
    j_sorted = np.arange(m) - pair_starts[pair_of]
    # offsets: exclusive prefix sums of pair counts, reset at each dst.
    pair_counts = np.diff(np.r_[pair_starts, m])
    exclusive = np.r_[0, np.cumsum(pair_counts[:-1])]
    pair_dst = sorted_key[pair_starts] // n
    dst_first = np.r_[True, pair_dst[1:] != pair_dst[:-1]]
    dst_of = np.cumsum(dst_first) - 1
    pair_offset = exclusive - exclusive[np.flatnonzero(dst_first)][dst_of]
    slot_sorted = pair_offset[pair_of] + j_sorted
    relay_sorted = (pair_dst[pair_of] + slot_sorted) % n
    relay = np.empty(m, dtype=np.int64)
    relay[order] = relay_sorted
    return relay


def _execute_relayed(
    clique: ArrayClique,
    batch: MessageBatch,
    relay: np.ndarray,
) -> Tuple[BatchDelivery, int]:
    """Run the two-hop schedule on the engine; returns delivery + rounds.

    Phase A wraps each row with its true destination as an extra leading
    payload word (one word of bookkeeping, charged); relays strip it and
    forward in phase B.  Ref attachments flow through both hops untouched.
    """
    m = len(batch)
    words = (
        batch.words
        if batch.words is not None
        else np.full(m, max(1, batch.payload.shape[1]), dtype=np.int64)
    )
    wrapped = np.column_stack([batch.dst.astype(np.float64), batch.payload])
    if batch.refs is not None:
        ref_ids = clique.add_refs(list(batch.refs))
    else:
        ref_ids = None
    clique.stage(
        batch.src,
        relay,
        wrapped,
        words=words + 1,
        tag=batch.tag,
        refs=None,
        ref_ids=ref_ids,
    )
    rounds = clique.drain()

    # Relays unwrap and forward.
    holder, held = clique.collect()
    if len(held):
        clique.stage(
            holder,
            held.payload[:, 0].astype(np.int64),
            held.payload[:, 1:],
            words=held.words - 1,  # strip the bookkeeping word's charge
            tag=batch.tag,
            ref_ids=held.ref,
        )
        rounds += clique.drain()

    node, view = clique.collect()
    starts = np.searchsorted(node, np.arange(clique.n + 1))
    delivery = BatchDelivery(
        n=clique.n,
        dst=node,
        src=view.src,
        payload=view.payload,
        starts=starts,
        ref=view.ref,
        refs=clique.refs if batch.refs is not None else None,
        tag=view.tag,
        tag_names=clique.tag_table,
    )
    return delivery, rounds


def route_batch_two_phase(
    batch: MessageBatch,
    n: int,
    bandwidth_words: int = 4,
    load_constant: float = 8.0,
    *,
    faults=None,
    max_retries: int = 0,
    avoid_crashed: bool = True,
    recovery: Optional[str] = None,
    erasure_group: int = 4,
    integrity=None,
    adapt_lossy: bool = True,
) -> Tuple[BatchDelivery, RoutingStats]:
    """Deterministic Lenzen-style routing of a numpy message batch.

    Protocol (each phase is O(1) rounds at O(n) load):

    1. Every sender tells every destination how many messages it has for it
       (one word per ordered pair, 1 round).
    2. Every destination prefix-sums the counts and returns each sender its
       slot offset (1 round).
    3. The ``j``-th message from sender ``s`` to destination ``d`` travels
       via relay ``(offset(s, d) + j) mod n``.
    4. Relays forward to the destinations.

    Returns the delivered rows grouped by destination and the measured
    :class:`RoutingStats`; rounds include the two coordination rounds.

    **Resilient mode** (``faults`` set or ``max_retries > 0``): the batch
    runs on a fault-injected engine (see :mod:`repro.cclique.faults`)
    with an ack/timeout-driven bounded-retry loop — destinations
    acknowledge delivered row ids (one extra round per attempt), senders
    retransmit the unacknowledged remainder through a freshly planned
    relay schedule, at most ``max_retries`` times.  With
    ``avoid_crashed=True`` the replan also routes around nodes the plan
    has crashed (rows whose *endpoints* are dead are undeliverable and
    counted in ``stats.undelivered`` instead of being retried forever).
    Delivered payloads are whatever arrived — corruption shows up in the
    rows, loss in the delivery rate (unless ``integrity`` is set, which
    quarantines corrupted rows so they retry instead of delivering bad).

    ``recovery="erasure"`` additionally ships one XOR-parity row per
    group of up to ``erasure_group`` same-destination rows each attempt,
    so a destination missing exactly one group member reconstructs it
    locally — recovery without waiting a full retransmission cycle
    (``stats.reconstructed``/``stats.parity_words`` account for it).
    ``integrity`` attaches a checksum policy (see
    :mod:`repro.cclique.integrity`); ``adapt_lossy`` lets retry replans
    steer relays away from statistically lossy nodes, not just dead
    ones.  An ``integrity`` policy alone (no faults, no retries) rides
    the clean path, which stays bit-identical to an unchecked run.
    """
    if recovery not in (None, "retry", "erasure"):
        raise ValueError(f"unknown recovery mode: {recovery!r}")
    if erasure_group < 1:
        raise ValueError("erasure_group must be >= 1")
    if faults is not None or max_retries > 0 or recovery == "erasure":
        return _route_batch_resilient(
            batch, n, bandwidth_words, load_constant, faults,
            int(max_retries), avoid_crashed,
            recovery=recovery or "retry",
            erasure_group=erasure_group,
            integrity=integrity,
            adapt_lossy=adapt_lossy,
        )
    max_sent, max_received = _validate_load_columns(
        batch.src, batch.dst, n, load_constant, check_sent=True
    )
    clique = ArrayClique(n, bandwidth_words=bandwidth_words, strict=False)
    if integrity is not None:
        clique.attach_integrity(integrity)
    relay = two_phase_relays(batch.src, batch.dst, n)
    delivery, data_rounds = _execute_relayed(clique, batch, relay)
    stats = RoutingStats(
        rounds=2 + data_rounds,  # counts out + offsets back, 1 round each
        messages=len(batch),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=int(np.bincount(relay, minlength=n).max(initial=0)),
        spill_rounds=clique.spill_rounds,
    )
    return delivery, stats


def _erasure_groups(
    dst_round: np.ndarray, group_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chunk same-destination rows into parity groups of ``group_size``.

    Returns ``(grp_of, grp_dst, grp_sizes, first_of)`` where ``grp_of``
    maps each row (in input order) to its group id, ``grp_dst`` /
    ``grp_sizes`` describe each group, and ``first_of`` is the input
    index of each group's first member (whose sender ships the parity).
    Grouping is a pure function of the destination column, so sender and
    receiver derive the same plan from the shared coordination rounds.
    """
    k = len(dst_round)
    order = np.argsort(dst_round, kind="stable")
    d_sorted = dst_round[order]
    new_dst = np.r_[True, d_sorted[1:] != d_sorted[:-1]]
    run_start = np.flatnonzero(new_dst)
    run_of = np.cumsum(new_dst) - 1
    pos_in_run = np.arange(k) - run_start[run_of]
    chunk = pos_in_run // group_size
    new_grp = np.r_[True, (run_of[1:] != run_of[:-1]) | (chunk[1:] != chunk[:-1])]
    grp_sorted = np.cumsum(new_grp) - 1
    grp_of = np.empty(k, dtype=np.int64)
    grp_of[order] = grp_sorted
    first_of = order[np.flatnonzero(new_grp)]
    grp_dst = dst_round[first_of]
    num_groups = len(first_of)
    grp_sizes = np.bincount(grp_sorted, minlength=num_groups)
    return grp_of, grp_dst, grp_sizes, first_of


def _erasure_decode(
    view_payload: np.ndarray,
    node: np.ndarray,
    accepted: np.ndarray,
    data_rowids: np.ndarray,
    attempt_rows: np.ndarray,
    still_missing: np.ndarray,
    grp_of: np.ndarray,
    grp_dst: np.ndarray,
    grp_sizes: np.ndarray,
    batch_src: np.ndarray,
    token_base: int,
    c_width: int,
    m: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct missing rows from delivered parity, per destination.

    For every group whose parity row arrived and exactly one member did
    not, XOR the parity block with the delivered members' wire blocks:
    the result is the missing member's ``[rowid, src, payload]`` block.
    The embedded rowid/src must match the member the (plan-shared)
    group layout says is missing — a corrupted parity or member block
    fails that check and the row simply rides the next retransmission.
    Returns ``(rowids, payloads)`` of the validated reconstructions.
    """
    empty = (np.empty(0, dtype=np.int64), np.empty((0, c_width - 2)))
    num_groups = len(grp_dst)
    token = view_payload[:, 0]
    finite = np.isfinite(token)
    tok = np.where(finite, token, -1).astype(np.int64)
    is_parity = (
        finite & ~accepted & (tok >= token_base) & (tok < token_base + num_groups)
    )
    pidx = np.flatnonzero(is_parity)
    if not len(pidx):
        return empty
    g_ids = tok[pidx] - token_base
    ok = node[pidx] == grp_dst[g_ids]
    pidx, g_ids = pidx[ok], g_ids[ok]
    if not len(pidx):
        return empty
    g_ids, first = np.unique(g_ids, return_index=True)
    pidx = pidx[first]

    k = len(attempt_rows)
    pos_of = np.full(m, -1, dtype=np.int64)
    pos_of[attempt_rows] = np.arange(k)
    del_pos = pos_of[data_rowids]
    recv = np.bincount(grp_of[del_pos], minlength=num_groups)
    missing = grp_sizes - recv
    cand = missing[g_ids] == 1
    pidx, g_ids = pidx[cand], g_ids[cand]
    if not len(pidx):
        return empty

    # XOR-accumulate the delivered members' wire blocks per group, then
    # fold in the parity block: what remains is the missing block.
    acc = np.zeros((num_groups, c_width), dtype=np.uint64)
    if len(del_pos):
        wire = np.ascontiguousarray(view_payload[accepted][:, 3:])
        np.bitwise_xor.at(acc, grp_of[del_pos], wire.view(np.uint64))
    parity = np.ascontiguousarray(view_payload[pidx][:, 3:]).view(np.uint64)
    rec = parity ^ acc[g_ids]

    # The missing member per group: positions sum minus delivered sum.
    pos_sum = np.zeros(num_groups, dtype=np.int64)
    np.add.at(pos_sum, grp_of, np.arange(k))
    del_sum = np.zeros(num_groups, dtype=np.int64)
    if len(del_pos):
        np.add.at(del_sum, grp_of[del_pos], del_pos)
    miss_pos = (pos_sum - del_sum)[g_ids]
    expected = attempt_rows[miss_pos]
    rec_rowid = rec[:, 0].astype(np.int64)
    rec_src = rec[:, 1].astype(np.int64)
    valid = (rec_rowid == expected) & (rec_src == batch_src[expected])
    valid &= np.isin(expected, still_missing)
    if not valid.any():
        return empty
    expected = expected[valid]
    payloads = np.ascontiguousarray(rec[valid][:, 2:]).view(np.float64)
    return expected, payloads


def _route_batch_resilient(
    batch: MessageBatch,
    n: int,
    bandwidth_words: int,
    load_constant: float,
    faults,
    max_retries: int,
    avoid_crashed: bool,
    recovery: str = "retry",
    erasure_group: int = 4,
    integrity=None,
    adapt_lossy: bool = True,
) -> Tuple[BatchDelivery, RoutingStats]:
    """Two-phase routing with retransmit/replan recovery on one engine.

    One clique carries every attempt, so the fault plan's round windows
    and per-round RNG advance consistently across retries — a
    retransmitted row faces *fresh* loss draws, which is exactly why
    bounded retry recovers delivery rate.  Each row is wrapped as
    ``[dst, rowid, payload...]`` (two charged bookkeeping words); the
    rowid doubles as the ack token, and a delivered rowid is validated
    against the row's true destination so a corrupted header cannot
    acknowledge somebody else's message.

    **Erasure mode** (``recovery="erasure"``) extends each attempt with
    one XOR-parity row per group of up to ``erasure_group``
    same-destination rows.  The coded block is ``[rowid, src, payload]``
    as raw float64 bit patterns; the parity block is the XOR of its
    members' blocks, so a destination holding all but one member plus
    the parity recovers the stragglers's block locally — and the
    embedded ``(rowid, src)`` words double as a reconstruction check
    against the expected missing member.  Group membership is a pure
    function of the (plan-shared) destination layout; the two extra
    transport columns carrying it are uncharged bookkeeping, and parity
    rows are charged like data rows (``stats.parity_words``).

    **Adaptive replan** (``adapt_lossy=True``): retransmission attempts
    consult the :class:`~repro.cclique.faults.FaultTrace` per-node loss
    ledger and remap relay slots away from statistically lossy nodes
    (≥ 4× the mean observed loss) exactly like dead ones — targeted
    link faults stop eating the retry budget.  Under uniform loss no
    node crosses the threshold and the replan is a no-op.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    max_sent, max_received = _validate_load_columns(
        batch.src, batch.dst, n, load_constant, check_sent=True
    )
    m = len(batch)
    width = batch.payload.shape[1]
    erasure = recovery == "erasure"
    clique = ArrayClique(n, bandwidth_words=bandwidth_words, strict=False)
    active = None
    if faults is not None:
        clique.attach_faults(faults)
        active = clique.faults
    if integrity is not None:
        clique.attach_integrity(integrity)
    words = (
        batch.words
        if batch.words is not None
        else np.full(m, max(1, width), dtype=np.int64)
    )
    ref_ids = clique.add_refs(list(batch.refs)) if batch.refs is not None else None
    tag_id = clique.tag_id(batch.tag)

    outstanding = np.arange(m, dtype=np.int64)
    delivered_rows: List[np.ndarray] = []
    delivered_payloads: List[np.ndarray] = []
    relay_max = 0
    retries = 0
    attempt = 0
    reconstructed = 0
    parity_words_total = 0
    c_width = 2 + width  # the coded block: [rowid, src, payload...]
    while len(outstanding):
        src_round = batch.src[outstanding]
        dst_round = batch.dst[outstanding]
        dead = (
            active.dead_nodes(clique.round_index)
            if active is not None
            else None
        )
        if dead is not None and dead.any():
            # Rows with a dead endpoint can never deliver — stop
            # retrying them instead of burning the retry budget.
            viable = ~(dead[src_round] | dead[dst_round])
            if not viable.all():
                outstanding = outstanding[viable]
                if not len(outstanding):
                    break
                src_round = src_round[viable]
                dst_round = dst_round[viable]
        k = len(outstanding)

        banned = None
        if dead is not None and avoid_crashed and dead.any():
            if not (~dead).any():
                outstanding = outstanding[:0]
                break
            banned = dead.copy()
        if (
            adapt_lossy
            and retries > 0
            and active is not None
            and active.trace.node_loss is not None
            and active.trace.node_loss.any()
        ):
            # Down-weight statistically lossy relays, not just dead
            # ones: a node at >= 4x the mean observed loss (and at
            # least 4 losses) is treated like a crashed relay for this
            # replan.  Uniform loss never crosses the threshold.
            loss = active.trace.node_loss
            threshold = max(4.0 * float(loss.mean()), 4.0)
            lossy = loss >= threshold
            widened = lossy if banned is None else (banned | lossy)
            # Keep a healthy relay majority: adaptation never bans more
            # than half the clique.
            if widened.any() and int(widened.sum()) <= n // 2:
                banned = widened

        if erasure:
            attempt_rows = outstanding  # the row set grp_of aligns with
            grp_of, grp_dst, grp_sizes, first_of = _erasure_groups(
                dst_round, erasure_group
            )
            num_groups = len(grp_dst)
            token_base = m * (1 + attempt)  # attempt-scoped parity tokens
            blocks = np.empty((k, c_width), dtype=np.float64)
            block_bits = blocks.view(np.uint64)
            block_bits[:, 0] = outstanding.astype(np.uint64)
            block_bits[:, 1] = src_round.astype(np.uint64)
            blocks[:, 2:] = batch.payload[outstanding]
            parity = np.zeros((num_groups, c_width), dtype=np.uint64)
            np.bitwise_xor.at(parity, grp_of, block_bits)
            stage_src = np.concatenate([src_round, src_round[first_of]])
            final_dst = np.concatenate([dst_round, grp_dst])
            wrapped = np.empty((k + num_groups, 4 + c_width), dtype=np.float64)
            wrapped[:k, 0] = dst_round
            wrapped[k:, 0] = grp_dst
            wrapped[:k, 1] = outstanding
            wrapped[k:, 1] = token_base + np.arange(num_groups)
            wrapped[:k, 2] = grp_of
            wrapped[k:, 2] = np.arange(num_groups)
            wrapped[:k, 3] = grp_sizes[grp_of]
            wrapped[k:, 3] = grp_sizes
            wrapped[:k, 4:] = blocks
            wrapped[k:, 4:] = parity.view(np.float64)
            p_words = words[outstanding][first_of] + 2
            parity_words_total += int(p_words.sum())
            stage_words = np.concatenate([words[outstanding] + 2, p_words])
            stage_refs = None
            if ref_ids is not None:
                stage_refs = np.concatenate(
                    [
                        ref_ids[outstanding],
                        np.full(num_groups, NO_REF, dtype=np.int64),
                    ]
                )
        else:
            stage_src = src_round
            final_dst = dst_round
            wrapped = np.column_stack(
                [
                    dst_round.astype(np.float64),
                    outstanding.astype(np.float64),
                    batch.payload[outstanding],
                ]
            )
            stage_words = words[outstanding] + 2
            stage_refs = ref_ids[outstanding] if ref_ids is not None else None

        relay = two_phase_relays(stage_src, final_dst, n)
        if banned is not None and banned.any():
            open_nodes = np.flatnonzero(~banned)
            hit = banned[relay]
            if hit.any():
                # Deterministic replan: remap each banned relay slot
                # onto the usable nodes, preserving the slot's spread.
                relay = relay.copy()
                relay[hit] = open_nodes[relay[hit] % len(open_nodes)]
        relay_max = max(
            relay_max, int(np.bincount(relay, minlength=n).max(initial=0))
        )
        clique.stage(
            stage_src,
            relay,
            wrapped,
            words=stage_words,
            tag=batch.tag,
            ref_ids=stage_refs,
        )
        clique.drain()
        holder, held = clique.collect()
        if len(held):
            # A corrupted destination header would crash stage() with an
            # invalid node; the relay drops such garbage instead (the row
            # is simply never acked and rides the next retransmission).
            header = held.payload[:, 0]
            sane = np.isfinite(header)
            forward = np.where(sane, header, 0).astype(np.int64)
            sane &= (forward >= 0) & (forward < n)
            index = np.flatnonzero(sane)
            if len(index):
                clique.stage(
                    holder[index],
                    forward[index],
                    held.payload[index, 1:],
                    words=held.words[index] - 1,
                    tag=batch.tag,
                    ref_ids=held.ref[index],
                )
                clique.drain()
        node, view = clique.collect()
        if len(view):
            token = view.payload[:, 0]
            accepted = np.isfinite(token)
            rowid = np.where(accepted, token, -1).astype(np.int64)
            accepted &= (rowid >= 0) & (rowid < m)
            safe = np.clip(rowid, 0, m - 1)
            accepted &= node == batch.dst[safe]
            accepted &= np.isin(rowid, outstanding)
            rowid = rowid[accepted]
            # Payload starts after the transport columns: [token] in
            # retry mode, [token, group, gsize, rowid, src] in erasure.
            payload_col = 5 if erasure else 1
            if len(rowid):
                delivered_rows.append(rowid)
                delivered_payloads.append(view.payload[accepted, payload_col:])
                outstanding = outstanding[~np.isin(outstanding, rowid)]
            if erasure:
                rec_ids, rec_payloads = _erasure_decode(
                    view.payload, node, accepted, rowid,
                    attempt_rows, outstanding,
                    grp_of, grp_dst, grp_sizes,
                    batch.src, token_base, c_width, m,
                )
                if len(rec_ids):
                    reconstructed += len(rec_ids)
                    delivered_rows.append(rec_ids)
                    delivered_payloads.append(rec_payloads)
                    outstanding = outstanding[~np.isin(outstanding, rec_ids)]
        if not len(outstanding) or retries >= max_retries:
            break
        retries += 1
        attempt += 1
        clique.step()  # the ack round: destinations confirm row ids

    if delivered_rows:
        rowids = np.concatenate(delivered_rows)
        payloads = np.concatenate(delivered_payloads)
    else:
        rowids = np.empty(0, dtype=np.int64)
        payloads = np.empty((0, width), dtype=np.float64)
    order = np.argsort(batch.dst[rowids], kind="stable")
    rowids = rowids[order]
    payloads = payloads[order]
    dst_sorted = batch.dst[rowids]
    starts = np.searchsorted(dst_sorted, np.arange(n + 1))
    delivery = BatchDelivery(
        n=n,
        dst=dst_sorted,
        src=batch.src[rowids],
        payload=payloads,
        starts=starts,
        ref=(
            ref_ids[rowids]
            if ref_ids is not None
            else np.full(len(rowids), NO_REF, dtype=np.int64)
        ),
        refs=clique.refs if batch.refs is not None else None,
        tag=np.full(len(rowids), tag_id, dtype=np.int64),
        tag_names=clique.tag_table,
    )
    stats = RoutingStats(
        rounds=2 + clique.round_index,  # coordination + every data/ack round
        messages=m,
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=relay_max,
        spill_rounds=clique.spill_rounds,
        retries=retries,
        undelivered=m - len(rowids),
        reconstructed=reconstructed,
        parity_words=parity_words_total,
        fault_totals=(
            active.trace.summary() if active is not None else None
        ),
    )
    return delivery, stats


def route_batch_randomized(
    batch: MessageBatch,
    n: int,
    rng: np.random.Generator,
    bandwidth_words: int = 4,
    load_constant: float = 8.0,
) -> Tuple[BatchDelivery, RoutingStats]:
    """Valiant-style randomized routing: relay via a uniform intermediate."""
    max_sent, max_received = _validate_load_columns(
        batch.src, batch.dst, n, load_constant, check_sent=True
    )
    clique = ArrayClique(n, bandwidth_words=bandwidth_words, strict=False)
    relay = rng.integers(0, n, size=len(batch))
    delivery, data_rounds = _execute_relayed(clique, batch, relay)
    stats = RoutingStats(
        rounds=data_rounds,
        messages=len(batch),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=int(np.bincount(relay, minlength=n).max(initial=0)),
        spill_rounds=clique.spill_rounds,
    )
    return delivery, stats


# --------------------------------------------------------------------- #
# Legacy Message-sequence entry points (same plane, refs attached)
# --------------------------------------------------------------------- #


def route_two_phase(
    messages: Sequence[Message],
    n: int,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Deterministic Lenzen-style routing of ``Message`` objects.

    Thin wrapper over :func:`route_batch_two_phase`: the messages ride the
    array plane as ref attachments (payloads and tags are preserved
    verbatim, any payload type allowed), and the returned dict holds the
    original objects.  Round counts, spill statistics, and delivered
    inboxes are bit-identical to the frozen object-plane reference
    (:func:`repro.cclique.reference.route_two_phase_reference`) — enforced
    by the equivalence tests.
    """
    batch = MessageBatch.from_messages(messages)
    delivery, stats = route_batch_two_phase(batch, n, bandwidth_words=bandwidth_words)
    return delivery.to_messages(), stats


def route_randomized(
    messages: Sequence[Message],
    n: int,
    rng: np.random.Generator,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Valiant-style randomized routing of ``Message`` objects."""
    batch = MessageBatch.from_messages(messages)
    delivery, stats = route_batch_randomized(
        batch, n, rng, bandwidth_words=bandwidth_words
    )
    return delivery.to_messages(), stats


def route_direct(
    messages: Sequence[Message],
    n: int,
    bandwidth_words: int = 4,
    load_constant: float = 8.0,
) -> Tuple[Dict[int, List[Message]], RoutingStats]:
    """Naive direct routing (no relays); rounds grow with pair congestion.

    Used as the baseline in the routing benchmark: sending k messages across
    one ordered pair costs k rounds, so skewed instances are slow.
    """
    batch = MessageBatch.from_messages(messages)
    max_sent, max_received = _validate_load_columns(
        batch.src, batch.dst, n, load_constant, check_sent=True
    )
    clique = ArrayClique(n, bandwidth_words=bandwidth_words, strict=False)
    ref_ids = clique.add_refs(list(batch.refs)) if batch.refs is not None else None
    clique.stage(
        batch.src, batch.dst, batch.payload, words=batch.words, ref_ids=ref_ids
    )
    rounds = clique.drain()
    node, view = clique.collect()
    starts = np.searchsorted(node, np.arange(n + 1))
    delivery = BatchDelivery(
        n=n,
        dst=node,
        src=view.src,
        payload=view.payload,
        starts=starts,
        ref=view.ref,
        refs=clique.refs,
        tag=view.tag,
        tag_names=clique.tag_table,
    )
    stats = RoutingStats(
        rounds=rounds,
        messages=len(batch),
        max_sent_per_node=max_sent,
        max_received_per_node=max_received,
        relay_max_load=0,
        spill_rounds=clique.spill_rounds,
    )
    return delivery.to_messages(), stats
