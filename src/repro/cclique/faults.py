"""Vectorized fault injection for the struct-of-arrays round engine.

The simulator models a *perfect* Congested Clique; production networks
crash, drop, delay, throttle, and corrupt.  This module turns those five
failure dimensions into composable, seeded specs that compile to masks
over the flat round columns inside :meth:`ArrayClique.step`:

* :class:`NodeCrash` — node ``v`` dies at round ``r``; every row with a
  dead endpoint is dropped from then on (fail-stop, no recovery).
* :class:`LinkDrop` — i.i.d. Bernoulli loss per row, optionally scoped
  to one ordered link and a round window.
* :class:`MessageDelay` — selected rows are deferred whole by a uniform
  ``1..max_delay`` rounds and re-enter the engine as if re-staged (they
  give up their link slot, exactly like a late network packet).
* :class:`BandwidthDegrade` — rows charged more than ``capacity_words``
  cannot cross the degraded link while the window lasts; they are
  carried FIFO like any spill, so degradation shows up as extra rounds,
  not loss.
* :class:`PayloadCorrupt` — a single bit-flip in one payload word
  (mantissa bits only by default, so values change without turning into
  inf/NaN); ``protect_prefix`` shields leading bookkeeping words such as
  the routing header.

Determinism: all randomness is drawn from ``default_rng((seed, round))``
— a pure function of the plan seed and the round index — so the same
plan over the same staged traffic injects byte-identical faults, and a
retransmitted row faces *fresh* draws in later rounds (what makes
bounded retry an effective recovery strategy).  The injection ledger
(:class:`FaultTrace`) rides the same byte-bounded ring-buffer discipline
as :mod:`repro.cclique.trace`: per-round records are evicted oldest
first under a byte budget while cumulative totals stay exact.

An **empty plan is free**: every hook returns its input untouched
without creating an RNG, and the equivalence suite asserts the faulted
engine is bit-identical to the plain one in that case.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import astuple, dataclass, field, fields
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from .engine import ArrayClique, _Rows, _take
from .errors import InvalidNodeError
from .trace import DEFAULT_TRACE_BYTES

#: Crash-round value meaning "this node never crashes".
NEVER = np.iinfo(np.int64).max

#: Approximate retained size of one :class:`FaultRound` for ring
#: accounting (seven ints plus container overhead).
_FAULT_ROUND_BYTES = 112

#: Highest bit eligible for corruption by default — the float64 mantissa
#: (bits 0..51); flipping exponent/sign bits would turn finite payloads
#: into inf/NaN, which models a different failure than "corrupted value".
_MANTISSA_BITS = 52


def _window_active(spec: Any, round_index: int) -> bool:
    until = spec.until_round
    return spec.from_round <= round_index and (until is None or round_index < until)


def _link_mask(rows: _Rows, spec: Any) -> np.ndarray:
    """Boolean selector for the rows a link-scoped spec applies to."""
    mask = np.ones(len(rows), dtype=bool)
    if spec.src is not None:
        mask &= rows.src == spec.src
    if spec.dst is not None:
        mask &= rows.dst == spec.dst
    return mask


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")


def _check_window(from_round: int, until_round: Optional[int]) -> None:
    if from_round < 0:
        raise ValueError("from_round must be >= 0")
    if until_round is not None and until_round <= from_round:
        raise ValueError("until_round must be > from_round")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of ``node`` at the start of round ``at_round``."""

    node: int
    at_round: int = 0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at_round < 0:
            raise ValueError("at_round must be >= 0")


@dataclass(frozen=True)
class LinkDrop:
    """I.i.d. per-row message loss, optionally scoped to one link/window."""

    probability: float
    src: Optional[int] = None
    dst: Optional[int] = None
    from_round: int = 0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.from_round, self.until_round)


@dataclass(frozen=True)
class MessageDelay:
    """Defer selected rows whole by a uniform ``1..max_delay`` rounds.

    Released rows re-enter the round pipeline as staged traffic and face
    the *same* delay draw again — total delay is geometric in
    ``probability``.  ``probability=1.0`` with an unbounded window
    therefore re-delays forever (``drain`` hits its round guard); give a
    certain delay an ``until_round``.
    """

    probability: float
    max_delay: int = 3
    src: Optional[int] = None
    dst: Optional[int] = None
    from_round: int = 0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.from_round, self.until_round)
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")


@dataclass(frozen=True)
class BandwidthDegrade:
    """Cap a link at ``capacity_words`` per message while the window lasts.

    Rows charged more than the cap are carried FIFO into later rounds
    (counted in ``spill_rounds``), never dropped — an unbounded window
    therefore starves over-cap rows forever and ``drain`` will hit its
    round guard; give degradation an ``until_round``.
    """

    capacity_words: int
    src: Optional[int] = None
    dst: Optional[int] = None
    from_round: int = 0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity_words < 0:
            raise ValueError("capacity_words must be >= 0")
        _check_window(self.from_round, self.until_round)


@dataclass(frozen=True)
class PayloadCorrupt:
    """Flip one payload bit per selected row at delivery time.

    ``protect_prefix`` exempts the leading payload columns (routing
    headers); ``bit`` pins the flipped bit, otherwise a uniform mantissa
    bit is drawn per row.
    """

    probability: float
    bit: Optional[int] = None
    protect_prefix: int = 0
    src: Optional[int] = None
    dst: Optional[int] = None
    from_round: int = 0
    until_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.from_round, self.until_round)
        if self.bit is not None and not 0 <= self.bit < 64:
            raise ValueError("bit must be in [0, 64)")
        if self.protect_prefix < 0:
            raise ValueError("protect_prefix must be >= 0")


FaultSpec = Union[NodeCrash, LinkDrop, MessageDelay, BandwidthDegrade, PayloadCorrupt]

_SPEC_KINDS: Dict[type, str] = {
    NodeCrash: "node-crash",
    LinkDrop: "link-drop",
    MessageDelay: "message-delay",
    BandwidthDegrade: "bandwidth-degrade",
    PayloadCorrupt: "payload-corrupt",
}


@dataclass(frozen=True)
class FaultRound:
    """Injection counts of one engine round (the ledger's unit record)."""

    round_index: int
    crashed: int = 0
    dropped: int = 0
    delayed: int = 0
    released: int = 0
    throttled: int = 0
    corrupted: int = 0
    detected: int = 0

    @property
    def injected(self) -> int:
        """Rows touched by any fault this round (releases excluded).

        ``detected`` is excluded too: a detected row is a corrupted row
        the integrity layer caught, already counted under ``corrupted``.
        """
        return (
            self.crashed + self.dropped + self.delayed
            + self.throttled + self.corrupted
        )


#: The cumulative-counter keys a :class:`FaultTrace` maintains.
_TOTAL_KEYS = (
    "crashed", "dropped", "delayed", "released", "throttled",
    "corrupted", "detected",
)


class FaultTrace:
    """Byte-bounded ring of per-round injection records + exact totals.

    Mirrors :class:`~repro.cclique.trace.TraceRecorder`: when a new
    record would exceed ``max_bytes``, the oldest rounds are evicted and
    counted in :attr:`dropped_records`, while :attr:`totals` and
    :attr:`rounds_seen` are running counters that stay correct no matter
    how much history was evicted.
    """

    def __init__(self, max_bytes: Optional[int] = DEFAULT_TRACE_BYTES) -> None:
        self.max_bytes = max_bytes
        self.records: Deque[FaultRound] = deque()
        self.dropped_records = 0
        self.bytes_used = 0
        self.rounds_seen = 0
        self.totals: Dict[str, int] = {key: 0 for key in _TOTAL_KEYS}
        #: Per-node loss ledger ``(n,)`` — drops and detected corruptions
        #: charged to both endpoints.  Set by :class:`ActiveFaults` (the
        #: trace alone does not know ``n``); the adaptive relay replanner
        #: consults it to steer retransmissions away from lossy nodes.
        self.node_loss: Optional[np.ndarray] = None

    def record(self, fault_round: FaultRound) -> None:
        self.records.append(fault_round)
        self.bytes_used += _FAULT_ROUND_BYTES
        self.rounds_seen += 1
        for key in _TOTAL_KEYS:
            self.totals[key] += getattr(fault_round, key)
        if self.max_bytes is not None:
            while self.bytes_used > self.max_bytes and len(self.records) > 1:
                self.records.popleft()
                self.bytes_used -= _FAULT_ROUND_BYTES
                self.dropped_records += 1

    @property
    def last(self) -> Optional[FaultRound]:
        return self.records[-1] if self.records else None

    @property
    def total_injected(self) -> int:
        return sum(
            self.totals[key]
            for key in _TOTAL_KEYS
            if key not in ("released", "detected")
        )

    def signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable view of the retained records (determinism tests)."""
        return tuple(astuple(record) for record in self.records)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe cumulative view of the ledger."""
        return {
            "rounds_seen": self.rounds_seen,
            "retained_rounds": len(self.records),
            "dropped_records": self.dropped_records,
            "total_injected": self.total_injected,
            **dict(self.totals),
        }


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seeded set of fault specs for one clique execution.

    Frozen and reusable: :meth:`activate` compiles a fresh
    :class:`ActiveFaults` per engine, so attaching the same plan to two
    engines injects identical faults on identical traffic.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if type(spec) not in _SPEC_KINDS:
                raise TypeError(f"not a fault spec: {spec!r}")

    @property
    def empty(self) -> bool:
        return not self.specs

    def describe(self) -> Dict[str, Any]:
        """JSON-safe description (the ``ChaosReport.plan`` field)."""
        described = []
        for spec in self.specs:
            entry: Dict[str, Any] = {"kind": _SPEC_KINDS[type(spec)]}
            for spec_field in fields(spec):
                entry[spec_field.name] = getattr(spec, spec_field.name)
            described.append(entry)
        payload = {"seed": self.seed, "specs": described}
        return {**payload, "signature": self.signature()}

    def signature(self) -> str:
        """Content hash of the plan (seed + specs) for provenance.

        Stable across processes and spec ordering-preserving: two plans
        with the same seed and the same specs in the same order share a
        signature, so a ``ChaosReport`` can be traced back to the exact
        fault configuration that produced it.
        """
        described = []
        for spec in self.specs:
            entry: Dict[str, Any] = {"kind": _SPEC_KINDS[type(spec)]}
            for spec_field in fields(spec):
                entry[spec_field.name] = getattr(spec, spec_field.name)
            described.append(entry)
        blob = json.dumps(
            {"seed": self.seed, "specs": described}, sort_keys=True
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def activate(self, clique: ArrayClique) -> "ActiveFaults":
        """Compile the plan against one engine's node count."""
        for spec in self.specs:
            if isinstance(spec, NodeCrash) and spec.node >= clique.n:
                raise InvalidNodeError(spec.node, clique.n)
            for endpoint in ("src", "dst"):
                value = getattr(spec, endpoint, None)
                if value is not None and not 0 <= value < clique.n:
                    raise InvalidNodeError(value, clique.n)
        return ActiveFaults(self, clique.n)


class ActiveFaults:
    """One plan compiled against one engine — the per-round mask pipeline.

    :meth:`ArrayClique.step` calls the hooks in a fixed order::

        release -> filter (crash | drop | delay) -> rank -> throttle
                -> corrupt -> commit

    Crash/drop/delay run *before* the rank-within-link computation, so a
    dropped or delayed row gives up its link slot for the round;
    degradation runs after (it blocks the slot winner, which is then
    carried FIFO); corruption touches only the rows actually delivered.
    """

    def __init__(self, plan: FaultPlan, n: int) -> None:
        self.plan = plan
        self.n = n
        self.trace = FaultTrace()
        self.trace.node_loss = np.zeros(n, dtype=np.int64)
        self._crash_round = np.full(n, NEVER, dtype=np.int64)
        self._drops: List[LinkDrop] = []
        self._delays: List[MessageDelay] = []
        self._degrades: List[BandwidthDegrade] = []
        self._corrupts: List[PayloadCorrupt] = []
        for spec in plan.specs:
            if isinstance(spec, NodeCrash):
                self._crash_round[spec.node] = min(
                    int(self._crash_round[spec.node]), spec.at_round
                )
            elif isinstance(spec, LinkDrop):
                self._drops.append(spec)
            elif isinstance(spec, MessageDelay):
                self._delays.append(spec)
            elif isinstance(spec, BandwidthDegrade):
                self._degrades.append(spec)
            else:
                self._corrupts.append(spec)
        self._any_crash = bool((self._crash_round != NEVER).any())
        self._deferred: List[Tuple[int, _Rows]] = []
        self._counts: Dict[str, int] = {key: 0 for key in _TOTAL_KEYS}
        self._rng: Optional[np.random.Generator] = None
        self._rng_round = -1

    # ------------------------------------------------------------------ #
    # Deterministic randomness
    # ------------------------------------------------------------------ #

    def _round_rng(self, round_index: int) -> np.random.Generator:
        """RNG that is a pure function of ``(plan seed, round index)``."""
        if self._rng is None or self._rng_round != round_index:
            self._rng = np.random.default_rng((self.plan.seed, round_index))
            self._rng_round = round_index
        return self._rng

    # ------------------------------------------------------------------ #
    # Hooks, in pipeline order
    # ------------------------------------------------------------------ #

    def dead_nodes(self, round_index: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of nodes crashed by ``round_index``."""
        return self._crash_round <= round_index

    def release(self, round_index: int) -> List[_Rows]:
        """Deferred chunks whose delay matured; they re-enter as staged."""
        if not self._deferred:
            return []
        matured = [rows for due, rows in self._deferred if due <= round_index]
        if not matured:
            return []
        self._deferred = [
            (due, rows) for due, rows in self._deferred if due > round_index
        ]
        self._counts["released"] += sum(len(rows) for rows in matured)
        return matured

    def filter(self, rows: _Rows, round_index: int) -> _Rows:
        """Apply crash drops, link drops, and delays; returns kept rows.

        Order matters for the ledger: a row on a dead endpoint counts as
        ``crashed`` even if a drop spec would also have hit it.
        """
        keep = np.ones(len(rows), dtype=bool)
        if self._any_crash:
            dead = self.dead_nodes(round_index)
            hit = dead[rows.src] | dead[rows.dst]
            if hit.any():
                self._counts["crashed"] += int(hit.sum())
                keep &= ~hit
        for spec in self._drops:
            if spec.probability <= 0.0 or not _window_active(spec, round_index):
                continue
            candidates = np.flatnonzero(keep & _link_mask(rows, spec))
            if not len(candidates):
                continue
            draws = self._round_rng(round_index).random(len(candidates))
            dropped = candidates[draws < spec.probability]
            if len(dropped):
                self._counts["dropped"] += len(dropped)
                keep[dropped] = False
                self._charge_loss(rows.src[dropped], rows.dst[dropped])
        for spec in self._delays:
            if spec.probability <= 0.0 or not _window_active(spec, round_index):
                continue
            candidates = np.flatnonzero(keep & _link_mask(rows, spec))
            if not len(candidates):
                continue
            rng = self._round_rng(round_index)
            delayed = candidates[rng.random(len(candidates)) < spec.probability]
            if not len(delayed):
                continue
            delays = rng.integers(1, spec.max_delay + 1, size=len(delayed))
            for delay in np.unique(delays):
                chunk = delayed[delays == delay]
                self._deferred.append(
                    (round_index + int(delay), _take(rows, chunk))
                )
            self._counts["delayed"] += len(delayed)
            keep[delayed] = False
        if keep.all():
            return rows
        return _take(rows, np.flatnonzero(keep))

    def throttle(
        self, rows: _Rows, deliver: np.ndarray, round_index: int
    ) -> np.ndarray:
        """Block slot winners that exceed a degraded link's capacity."""
        for spec in self._degrades:
            if not _window_active(spec, round_index):
                continue
            blocked = deliver & _link_mask(rows, spec) & (
                rows.words > spec.capacity_words
            )
            count = int(blocked.sum())
            if count:
                self._counts["throttled"] += count
                deliver = deliver & ~blocked
        return deliver

    def corrupt(self, rows: _Rows, round_index: int) -> None:
        """Flip bits in delivered rows' payload words, in place."""
        if not self._corrupts or not len(rows):
            return
        width = rows.payload.shape[1]
        if width == 0:
            return
        for spec in self._corrupts:
            if spec.probability <= 0.0 or not _window_active(spec, round_index):
                continue
            if spec.protect_prefix >= width:
                continue
            candidates = np.flatnonzero(_link_mask(rows, spec))
            if not len(candidates):
                continue
            rng = self._round_rng(round_index)
            chosen = candidates[rng.random(len(candidates)) < spec.probability]
            if not len(chosen):
                continue
            columns = rng.integers(spec.protect_prefix, width, size=len(chosen))
            if spec.bit is not None:
                bits = np.full(len(chosen), spec.bit, dtype=np.int64)
            else:
                bits = rng.integers(0, _MANTISSA_BITS, size=len(chosen))
            # NaN cells are cross-chunk width padding, not payload.
            real = ~np.isnan(rows.payload[chosen, columns])
            chosen, columns, bits = chosen[real], columns[real], bits[real]
            if not len(chosen):
                continue
            as_bits = rows.payload.view(np.int64)
            as_bits[chosen, columns] ^= np.int64(1) << bits.astype(np.int64)
            self._counts["corrupted"] += len(chosen)

    def _charge_loss(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Charge lost rows to both endpoints in the per-node loss ledger."""
        if self.trace.node_loss is None:
            return
        np.add.at(self.trace.node_loss, src, 1)
        np.add.at(self.trace.node_loss, dst, 1)

    def record_detected(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Ledger hook for the integrity layer's quarantined rows.

        Called by the engine when :class:`~repro.cclique.integrity.\
IntegrityState` refuses delivery of corrupted rows; counts them under
        ``detected`` and charges the loss ledger (a quarantined row is a
        lost row from the protocol's perspective).
        """
        count = len(src)
        if not count:
            return
        self._counts["detected"] += count
        self._charge_loss(np.asarray(src), np.asarray(dst))

    def deferred_count(self) -> int:
        """Rows held back by delay specs, awaiting release."""
        return sum(len(rows) for _, rows in self._deferred)

    def commit(self, round_index: int) -> FaultRound:
        """Close the round's ledger entry and reset the per-round counts."""
        record = FaultRound(round_index=round_index, **self._counts)
        self.trace.record(record)
        self._counts = {key: 0 for key in _TOTAL_KEYS}
        return record


__all__ = [
    "ActiveFaults",
    "BandwidthDegrade",
    "FaultPlan",
    "FaultRound",
    "FaultSpec",
    "FaultTrace",
    "LinkDrop",
    "MessageDelay",
    "NEVER",
    "NodeCrash",
    "PayloadCorrupt",
]
