"""Struct-of-arrays round engine for the Congested Clique simulator.

This is the array-native core of the communication plane: each round is a
set of flat numpy columns ``(src, dst, words, payload, ...)``, bandwidth
checks are vectorized ``np.bincount``-style reductions over ``src * n +
dst`` link keys, spill scheduling in non-strict mode is a stable
rank-within-link computation, and inbox delivery is one group-by-destination
pass.  The semantics are *bit-identical* to the historical per-message
object simulator (kept in :mod:`repro.cclique.reference` as the
differential-testing target): the same messages spill in the same rounds,
``spill_rounds``/``round_index``/``messages_delivered`` match exactly, and
per-destination delivery order is the staging order of the round.

Two front ends sit on top:

* :class:`~repro.cclique.model.SimulatedClique` — the legacy object API
  (``send(Message)`` / ``inbox() -> List[Message]``), now a thin adapter
  that buffers messages and stages them as one batch per round; arbitrary
  payload objects ride along as *refs* (opaque row attachments) so nothing
  about the old API is lossy.
* array programs — routing, broadcast, and the protocol layer stage numpy
  payload batches directly via :meth:`ArrayClique.stage` and read inboxes
  as arrays, which is what makes full-load validation feasible at n=1024.

A row's *charged* size (``words``) is decoupled from its numeric payload
width so ref-backed rows are billed for the words their object payload
occupies, keeping the model accounting faithful either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import (
    BandwidthExceededError,
    InvalidNodeError,
    MessageTooLargeError,
    ProtocolError,
)
from .integrity import NO_CHECK, as_integrity
from .message import Message, word_bits

#: ref column value meaning "no object attachment".
NO_REF = -1


def _as_index_column(value, m: int, name: str) -> np.ndarray:
    """Coerce a scalar or array-like to an int64 column of length ``m``."""
    arr = np.asarray(value, dtype=np.int64)
    if arr.ndim == 0:
        return np.full(m, int(arr), dtype=np.int64)
    if arr.shape != (m,):
        raise ValueError(f"{name} must be scalar or shape ({m},), got {arr.shape}")
    return np.ascontiguousarray(arr)


def _as_payload(payload, m: int) -> np.ndarray:
    """Coerce payload to a float64 ``(m, w)`` matrix (``w`` may be 0)."""
    if payload is None:
        return np.empty((m, 0), dtype=np.float64)
    arr = np.asarray(payload, dtype=np.float64)
    if arr.ndim == 0:
        return np.full((m, 1), float(arr))
    if arr.ndim == 1:
        arr = arr.reshape(m, 1) if arr.shape == (m,) else arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError("payload must be at most 2-D")
    if arr.shape[0] == 1 and m != 1:
        arr = np.broadcast_to(arr, (m, arr.shape[1]))
    if arr.shape[0] != m:
        raise ValueError(f"payload has {arr.shape[0]} rows, expected {m}")
    return np.ascontiguousarray(arr)


@dataclass
class _Rows:
    """One staged chunk of messages, column-oriented."""

    src: np.ndarray  # int64 (m,)
    dst: np.ndarray  # int64 (m,)
    words: np.ndarray  # int64 (m,) — charged machine words
    payload: np.ndarray  # float64 (m, w) — numeric payload words
    tag: np.ndarray  # int64 (m,) — interned tag ids
    ref: np.ndarray  # int64 (m,) — object attachment ids, NO_REF if none
    check: np.ndarray  # int64 (m,) — checksum words, NO_CHECK if none

    def __len__(self) -> int:
        return len(self.src)


def _concat_rows(chunks: Sequence[_Rows]) -> _Rows:
    """Concatenate chunks, padding payload widths with NaN."""
    if len(chunks) == 1:
        return chunks[0]
    width = max(c.payload.shape[1] for c in chunks)
    pads = []
    for c in chunks:
        if c.payload.shape[1] == width:
            pads.append(c.payload)
        else:
            padded = np.full((len(c), width), np.nan)
            padded[:, : c.payload.shape[1]] = c.payload
            pads.append(padded)
    return _Rows(
        src=np.concatenate([c.src for c in chunks]),
        dst=np.concatenate([c.dst for c in chunks]),
        words=np.concatenate([c.words for c in chunks]),
        payload=np.concatenate(pads) if width else np.empty((sum(map(len, chunks)), 0)),
        tag=np.concatenate([c.tag for c in chunks]),
        ref=np.concatenate([c.ref for c in chunks]),
        check=np.concatenate([c.check for c in chunks]),
    )


def _take(rows: _Rows, index: np.ndarray) -> _Rows:
    return _Rows(
        src=rows.src[index],
        dst=rows.dst[index],
        words=rows.words[index],
        payload=rows.payload[index],
        tag=rows.tag[index],
        ref=rows.ref[index],
        check=rows.check[index],
    )


@dataclass
class InboxView:
    """Array view of one node's delivered messages.

    ``payload`` is padded to the widest delivered row; ``tag`` holds
    interned ids (resolve via :meth:`ArrayClique.tag_name`), ``ref`` holds
    object-attachment ids (resolve via :meth:`ArrayClique.ref_object`) or
    :data:`NO_REF`.
    """

    src: np.ndarray
    payload: np.ndarray
    words: np.ndarray
    tag: np.ndarray
    ref: np.ndarray

    def __len__(self) -> int:
        return len(self.src)


class ArrayClique:
    """Vectorized synchronous fully connected message-passing network.

    Drop-in semantic twin of the historical object simulator: ``n`` nodes,
    one message per ordered pair per round, ``bandwidth_words`` machine
    words per message, strict mode raising on per-link overflow and
    non-strict mode spilling the excess into subsequent rounds FIFO
    (``spill_rounds`` counts the extra rounds caused by congestion).
    """

    def __init__(self, n: int, bandwidth_words: int = 1, strict: bool = True) -> None:
        if n < 1:
            raise ValueError("clique size must be >= 1")
        if bandwidth_words < 1:
            raise ValueError("bandwidth_words must be >= 1")
        self.n = int(n)
        self.bandwidth_words = int(bandwidth_words)
        self.strict = bool(strict)
        self.round_index = 0
        self.messages_delivered = 0
        self.words_delivered = 0
        self.spill_rounds = 0
        self._staged: List[_Rows] = []
        self._staged_count = 0
        self._pending: Optional[_Rows] = None  # spill carry, FIFO
        self._round_keys: Optional[np.ndarray] = None  # strict-mode link keys
        self._inbox_chunks: List[List[_Rows]] = [
            [] for _ in range(self.n)
        ]
        self._tags: List[str] = [""]
        self._tag_ids: Dict[str, int] = {"": 0}
        self._refs: List[Any] = []
        #: ``(src, dst, words)`` of the most recent round's deliveries —
        #: the hook the trace layer uses for per-link utilization events.
        self.last_delivered: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        #: Compiled fault plan (see :mod:`repro.cclique.faults`), or None.
        self._faults: Optional[Any] = None
        #: The most recent round's injection record (``FaultRound``) —
        #: the hook the trace layer uses when ``record_faults`` is on.
        self.last_faults: Optional[Any] = None
        #: Active integrity state (see :mod:`repro.cclique.integrity`),
        #: or None when rows ride unchecked.
        self._integrity: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #

    @property
    def faults(self) -> Optional[Any]:
        """The active fault pipeline, or None when running clean."""
        return self._faults

    def attach_faults(self, plan: Optional[Any]) -> Optional[Any]:
        """Attach a ``FaultPlan`` (or pre-compiled ``ActiveFaults``).

        Returns the pipeline's ``FaultTrace`` ledger (None when
        detaching).  Attach before staging traffic: faults apply from the
        next ``step()`` on.  An empty plan leaves every round bit-identical
        to the unfaulted engine.
        """
        if plan is None:
            self._faults = None
            self.last_faults = None
            return None
        active = plan.activate(self) if hasattr(plan, "activate") else plan
        self._faults = active
        return active.trace

    # ------------------------------------------------------------------ #
    # Integrity (checksum-verified payloads)
    # ------------------------------------------------------------------ #

    @property
    def integrity(self) -> Optional[Any]:
        """The active integrity state, or None when running unchecked."""
        return self._integrity

    def attach_integrity(self, policy: Optional[Any]) -> Optional[Any]:
        """Attach an ``IntegrityPolicy`` (or ``True`` for the default).

        Returns the activated ``IntegrityState`` (None when detaching).
        From the next :meth:`stage` on, every row carries a checksum
        word; at delivery, rows whose payload no longer matches are
        quarantined instead of delivered, counted as ``detected`` in the
        attached fault ledger, and surfaced through the state's
        re-request buffer.  With no corruption in flight the engine is
        bit-identical to an unchecked one.
        """
        self._integrity = as_integrity(policy)
        return self._integrity

    # ------------------------------------------------------------------ #
    # Tag / ref interning
    # ------------------------------------------------------------------ #

    def tag_id(self, tag: str) -> int:
        """Intern ``tag`` and return its id."""
        tid = self._tag_ids.get(tag)
        if tid is None:
            tid = len(self._tags)
            self._tags.append(tag)
            self._tag_ids[tag] = tid
        return tid

    def tag_name(self, tag_id: int) -> str:
        return self._tags[tag_id]

    @property
    def tag_table(self) -> List[str]:
        """Snapshot of the interned tag table (indexed by tag id)."""
        return list(self._tags)

    def ref_object(self, ref_id: int) -> Any:
        return self._refs[ref_id]

    @property
    def refs(self) -> List[Any]:
        """The object-attachment store (indexed by ref id)."""
        return self._refs

    def add_refs(self, objects: Sequence[Any]) -> np.ndarray:
        """Attach opaque objects; returns their ref-id column."""
        start = len(self._refs)
        self._refs.extend(objects)
        return np.arange(start, start + len(objects), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Staging / stepping
    # ------------------------------------------------------------------ #

    @property
    def bits_per_message(self) -> int:
        """Per-message bit budget in this model variant."""
        return self.bandwidth_words * word_bits(self.n)

    def stage(
        self,
        src,
        dst,
        payload=None,
        *,
        words=None,
        tag: str = "",
        refs: Optional[Sequence[Any]] = None,
        ref_ids: Optional[np.ndarray] = None,
    ) -> int:
        """Stage a batch of rows for delivery at the end of this round.

        ``src``/``dst`` are scalars or int columns; ``payload`` an optional
        ``(m, w)`` numeric matrix (a 1-D column is treated as ``w=1``).
        ``words`` overrides the charged size (default ``max(1, w)``), which
        matters when the billed content lives in ``refs`` — arbitrary
        Python objects attached per row — rather than the numeric columns.
        Returns the number of rows staged.
        """
        if refs is not None and ref_ids is not None:
            raise ValueError("pass refs or ref_ids, not both")
        m = None
        for candidate in (src, dst, refs, ref_ids):
            if candidate is not None and not np.isscalar(candidate):
                arr = np.asarray(candidate)
                if arr.ndim > 0:
                    m = len(arr)
                    break
        if m is None:
            m = 1
        if m == 0:
            return 0
        src_col = _as_index_column(src, m, "src")
        dst_col = _as_index_column(dst, m, "dst")
        pay = _as_payload(payload, m)
        if np.isscalar(words) or words is None:
            fill = int(words) if words is not None else max(1, pay.shape[1])
            words_col = np.full(m, fill, dtype=np.int64)
        else:
            words_col = _as_index_column(words, m, "words")

        # Vectorized model checks.
        bad = (src_col < 0) | (src_col >= self.n)
        if bad.any():
            raise InvalidNodeError(int(src_col[np.argmax(bad)]), self.n)
        bad = (dst_col < 0) | (dst_col >= self.n)
        if bad.any():
            raise InvalidNodeError(int(dst_col[np.argmax(bad)]), self.n)
        over = words_col > self.bandwidth_words
        if over.any():
            worst = int(words_col[np.argmax(over)])
            raise MessageTooLargeError(
                worst * word_bits(self.n), self.bits_per_message
            )

        if self.strict:
            key = src_col * self.n + dst_col
            combined = (
                key
                if self._round_keys is None
                else np.concatenate([self._round_keys, key])
            )
            uniq, counts = np.unique(combined, return_counts=True)
            if (counts > 1).any():
                dup = int(uniq[counts > 1][0])
                raise BandwidthExceededError(
                    dup // self.n, dup % self.n, self.round_index
                )
            self._round_keys = combined

        if ref_ids is not None:
            ref_col = _as_index_column(ref_ids, m, "ref_ids")
        elif refs is not None:
            if len(refs) != m:
                raise ValueError(f"need {m} refs, got {len(refs)}")
            ref_col = self.add_refs(refs)
        else:
            ref_col = np.full(m, NO_REF, dtype=np.int64)

        if self._integrity is not None:
            check_col = self._integrity.checksums(pay)
        else:
            check_col = np.full(m, NO_CHECK, dtype=np.int64)
        self._staged.append(
            _Rows(
                src=src_col,
                dst=dst_col,
                words=words_col,
                payload=pay,
                tag=np.full(m, self.tag_id(tag), dtype=np.int64),
                ref=ref_col,
                check=check_col,
            )
        )
        self._staged_count += m
        return m

    def step(self) -> int:
        """Deliver one synchronous round; returns the new round index.

        Spill-carried rows from previous rounds are considered staged
        *first* (they hold their link's slot, exactly as the object
        simulator's re-staging did), newly staged rows follow; within each
        ordered pair the earliest staged row is delivered and the rest are
        carried FIFO into the next round.
        """
        faults = self._faults
        chunks: List[_Rows] = []
        if self._pending is not None:
            chunks.append(self._pending)
        if faults is not None:
            chunks.extend(faults.release(self.round_index))
        chunks.extend(self._staged)
        self._staged = []
        self._staged_count = 0
        self._round_keys = None
        if not chunks:
            if faults is not None:
                self.last_faults = faults.commit(self.round_index)
            self.round_index += 1
            self.last_delivered = None
            return self.round_index

        rows = _concat_rows(chunks)
        if faults is not None:
            rows = faults.filter(rows, self.round_index)
            if not len(rows):
                self._pending = None
                self.last_faults = faults.commit(self.round_index)
                self.round_index += 1
                self.last_delivered = None
                return self.round_index
        key = rows.src * self.n + rows.dst
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        new_group = np.empty(len(sorted_key), dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        group_of = np.cumsum(new_group) - 1
        rank_sorted = np.arange(len(sorted_key)) - starts[group_of]
        rank = np.empty(len(sorted_key), dtype=np.int64)
        rank[order] = rank_sorted
        deliver = rank == 0
        if faults is not None:
            deliver = faults.throttle(rows, deliver, self.round_index)

        delivered = _take(rows, np.flatnonzero(deliver))
        if faults is not None:
            faults.corrupt(delivered, self.round_index)
        if self._integrity is not None and len(delivered):
            delivered, quarantined = self._integrity.screen(delivered)
            if quarantined is not None and faults is not None:
                faults.record_detected(*quarantined)
        self._deliver(delivered)
        self.messages_delivered += len(delivered)
        self.words_delivered += int(delivered.words.sum())
        self.last_delivered = (delivered.src, delivered.dst, delivered.words)

        carry_index = np.flatnonzero(~deliver)
        if len(carry_index):
            self.spill_rounds += 1
            self._pending = _take(rows, carry_index)
        else:
            self._pending = None
        if faults is not None:
            self.last_faults = faults.commit(self.round_index)
        self.round_index += 1
        return self.round_index

    def _deliver(self, rows: _Rows) -> None:
        """Append delivered rows to per-destination inbox chunk lists."""
        if not len(rows):
            return
        order = np.argsort(rows.dst, kind="stable")
        sorted_dst = rows.dst[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_dst[1:] != sorted_dst[:-1]]
        )
        stops = np.r_[boundaries[1:], len(sorted_dst)]
        for begin, end in zip(boundaries, stops):
            node = int(sorted_dst[begin])
            index = order[begin:end]
            self._inbox_chunks[node].append(_take(rows, index))

    def drain(self, max_rounds: int = 10_000) -> int:
        """Step until no staged or spilled rows remain; returns rounds used."""
        used = 0
        while self.pending_messages():
            if used >= max_rounds:
                raise ProtocolError(
                    f"drain did not finish within {max_rounds} rounds"
                )
            self.step()
            used += 1
        return used

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def inbox_arrays(self, node: int, clear: bool = True) -> InboxView:
        """Array view of messages delivered to ``node`` since the last read."""
        if not 0 <= node < self.n:
            raise InvalidNodeError(node, self.n)
        chunks = self._inbox_chunks[node]
        if clear:
            self._inbox_chunks[node] = []
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return InboxView(
                empty, np.empty((0, 0)), empty.copy(), empty.copy(), empty.copy()
            )
        merged = _concat_rows(chunks)
        return InboxView(
            src=merged.src,
            payload=merged.payload,
            words=merged.words,
            tag=merged.tag,
            ref=merged.ref,
        )

    def collect(self, clear: bool = True) -> Tuple[np.ndarray, InboxView]:
        """All nodes' inboxes at once: ``(node_column, rows)``.

        The batched group-by-destination read protocols use after a drain;
        rows are ordered by destination, delivery order within each.
        """
        nodes: List[np.ndarray] = []
        views: List[InboxView] = []
        for node in range(self.n):
            if not self._inbox_chunks[node]:
                continue
            view = self.inbox_arrays(node, clear=clear)
            nodes.append(np.full(len(view), node, dtype=np.int64))
            views.append(view)
        if not views:
            empty = np.empty(0, dtype=np.int64)
            return empty, InboxView(
                empty.copy(), np.empty((0, 0)), empty.copy(), empty.copy(), empty.copy()
            )
        width = max(v.payload.shape[1] for v in views)
        payloads = []
        for view in views:
            if view.payload.shape[1] == width:
                payloads.append(view.payload)
            else:
                padded = np.full((len(view), width), np.nan)
                padded[:, : view.payload.shape[1]] = view.payload
                payloads.append(padded)
        merged = InboxView(
            src=np.concatenate([v.src for v in views]),
            payload=(
                np.concatenate(payloads)
                if width
                else np.empty((sum(map(len, views)), 0))
            ),
            words=np.concatenate([v.words for v in views]),
            tag=np.concatenate([v.tag for v in views]),
            ref=np.concatenate([v.ref for v in views]),
        )
        return np.concatenate(nodes), merged

    def pending_messages(self) -> int:
        """Rows staged (plus spill-carried and delay-deferred) undelivered."""
        deferred = 0 if self._faults is None else self._faults.deferred_count()
        return self._staged_count + deferred + (
            0 if self._pending is None else len(self._pending)
        )

    # ------------------------------------------------------------------ #
    # Object materialisation (used by the adapter layer)
    # ------------------------------------------------------------------ #

    def materialize(self, node: int, view: InboxView) -> List[Message]:
        """Turn an :class:`InboxView` back into :class:`Message` objects.

        Ref-backed rows return the original object untouched; array-native
        rows build a Message from the numeric payload (trailing NaN padding
        stripped) and the interned tag.
        """
        out: List[Message] = []
        payload = view.payload
        for i in range(len(view)):
            ref = int(view.ref[i])
            if ref != NO_REF:
                out.append(self._refs[ref])
                continue
            row = payload[i]
            keep = ~np.isnan(row)
            out.append(
                Message(
                    sender=int(view.src[i]),
                    receiver=node,
                    payload=tuple(row[keep].tolist()),
                    tag=self._tags[int(view.tag[i])],
                )
            )
        return out


@dataclass
class MessageBatch:
    """A flat batch of point-to-point messages (the array-plane unit).

    ``payload`` is an ``(m, w)`` float64 matrix — one row of numeric words
    per message.  ``words`` optionally overrides the charged size per row
    (defaults to ``max(1, w)``); ``refs`` optionally attaches one opaque
    object per row (how the legacy ``Message`` API rides the array plane).
    """

    src: np.ndarray
    dst: np.ndarray
    payload: np.ndarray
    tag: str = ""
    words: Optional[np.ndarray] = None
    refs: Optional[Sequence[Any]] = None

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=np.int64)
        self.dst = np.ascontiguousarray(self.dst, dtype=np.int64)
        self.payload = _as_payload(self.payload, len(self.src))
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src and dst must be equal-length 1-D columns")

    def __len__(self) -> int:
        return len(self.src)

    @classmethod
    def from_messages(cls, messages: Sequence[Message]) -> "MessageBatch":
        """Column-ize Message objects; payloads ride as refs (lossless)."""
        m = len(messages)
        src = np.fromiter((msg.sender for msg in messages), np.int64, m)
        dst = np.fromiter((msg.receiver for msg in messages), np.int64, m)
        words = np.fromiter((msg.size_words() for msg in messages), np.int64, m)
        return cls(
            src=src,
            dst=dst,
            payload=np.empty((m, 0)),
            words=words,
            refs=list(messages),
        )


__all__ = [
    "ArrayClique",
    "InboxView",
    "MessageBatch",
    "NO_REF",
]
