"""Congested Clique substrate: simulator, routing, and round accounting.

Two layers (see DESIGN.md, section 2):

* :mod:`repro.cclique.model` — message-level simulator with per-pair
  bandwidth enforcement; :mod:`~repro.cclique.routing` and
  :mod:`~repro.cclique.broadcast` run real communication schedules on it.
* :mod:`repro.cclique.accounting` — the :class:`RoundLedger` cost model the
  APSP algorithms charge their communication against, with load validation.
"""

from .accounting import LedgerEntry, RoundLedger
from .broadcast import all_to_all_one_word, broadcast_words, gather_one_word
from .errors import (
    BandwidthExceededError,
    CongestedCliqueError,
    InvalidNodeError,
    LoadPreconditionError,
    MessageTooLargeError,
    ProtocolError,
)
from .message import Envelope, Message, word_bits
from .model import NodeProgram, SimulatedClique
from .routing import (
    RoutingStats,
    route_direct,
    route_randomized,
    route_two_phase,
    validate_loads,
)
from .trace import RoundSnapshot, TraceRecorder, traced_drain

__all__ = [
    "BandwidthExceededError",
    "CongestedCliqueError",
    "Envelope",
    "InvalidNodeError",
    "LedgerEntry",
    "LoadPreconditionError",
    "Message",
    "MessageTooLargeError",
    "NodeProgram",
    "ProtocolError",
    "RoundLedger",
    "RoundSnapshot",
    "RoutingStats",
    "SimulatedClique",
    "TraceRecorder",
    "traced_drain",
    "all_to_all_one_word",
    "broadcast_words",
    "gather_one_word",
    "route_direct",
    "route_randomized",
    "route_two_phase",
    "validate_loads",
    "word_bits",
]
