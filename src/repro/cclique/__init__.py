"""Congested Clique substrate: simulator, routing, and round accounting.

Three layers (see DESIGN.md, sections 2 and 8):

* :mod:`repro.cclique.engine` — the struct-of-arrays round engine
  (:class:`ArrayClique`): vectorized bandwidth checks, spill scheduling,
  and batched inbox delivery; :mod:`repro.cclique.model` keeps the
  historical per-message object API as a thin adapter on top.
* :mod:`repro.cclique.routing` / :mod:`repro.cclique.broadcast` — real
  communication schedules (Lenzen-style routing, Section 2.3 broadcast)
  written as array programs on the engine.
* :mod:`repro.cclique.accounting` — the :class:`RoundLedger` cost model the
  APSP algorithms charge their communication against, with load validation.

:mod:`repro.cclique.reference` preserves the original object-plane
simulator as the differential-testing target for the array engine.
:mod:`repro.cclique.faults` injects seeded crash/drop/delay/degrade/
corrupt faults as vectorized masks inside the engine's round loop — the
substrate of the chaos harness (:mod:`repro.chaos`).
"""

from .accounting import LedgerEntry, RoundLedger
from .broadcast import all_to_all_one_word, broadcast_words, gather_one_word
from .engine import ArrayClique, InboxView, MessageBatch
from .errors import (
    BandwidthExceededError,
    CongestedCliqueError,
    InvalidNodeError,
    LoadPreconditionError,
    MessageTooLargeError,
    ProtocolError,
)
from .faults import (
    ActiveFaults,
    BandwidthDegrade,
    FaultPlan,
    FaultRound,
    FaultTrace,
    LinkDrop,
    MessageDelay,
    NodeCrash,
    PayloadCorrupt,
)
from .integrity import (
    IntegrityPolicy,
    IntegrityState,
    payload_checksums,
    verify_checksums,
)
from .message import Envelope, Message, word_bits
from .model import NodeProgram, SimulatedClique
from .reference import ObjectSimulatedClique, route_two_phase_reference
from .routing import (
    BatchDelivery,
    RoutingStats,
    route_batch_randomized,
    route_batch_two_phase,
    route_direct,
    route_randomized,
    route_two_phase,
    two_phase_relays,
    validate_loads,
)
from .trace import RoundSnapshot, TraceRecorder, traced_drain

__all__ = [
    "ActiveFaults",
    "ArrayClique",
    "BandwidthDegrade",
    "BandwidthExceededError",
    "BatchDelivery",
    "CongestedCliqueError",
    "Envelope",
    "FaultPlan",
    "FaultRound",
    "FaultTrace",
    "LinkDrop",
    "MessageDelay",
    "NodeCrash",
    "PayloadCorrupt",
    "InboxView",
    "IntegrityPolicy",
    "IntegrityState",
    "InvalidNodeError",
    "LedgerEntry",
    "LoadPreconditionError",
    "Message",
    "MessageBatch",
    "MessageTooLargeError",
    "NodeProgram",
    "ObjectSimulatedClique",
    "ProtocolError",
    "RoundLedger",
    "RoundSnapshot",
    "RoutingStats",
    "SimulatedClique",
    "TraceRecorder",
    "traced_drain",
    "all_to_all_one_word",
    "broadcast_words",
    "gather_one_word",
    "payload_checksums",
    "route_batch_randomized",
    "route_batch_two_phase",
    "route_direct",
    "route_randomized",
    "route_two_phase",
    "route_two_phase_reference",
    "two_phase_relays",
    "validate_loads",
    "verify_checksums",
    "word_bits",
]
