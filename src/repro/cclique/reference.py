"""Frozen object-plane simulator — the differential-testing reference.

This module preserves the original per-message Python-object simulator
(dict outboxes, list inboxes, ``Message`` instances) and the original
per-message two-phase router exactly as they shipped before the array
engine (:mod:`repro.cclique.engine`) replaced them on the hot path.

It exists for two reasons:

* **equivalence enforcement** — the test suite routes seeded full-load
  instances through both planes and asserts round counts, spill counts,
  and delivered inboxes are identical (see ``tests/test_array_plane.py``);
* **benchmarking** — ``benchmarks/bench_routing.py`` measures both planes
  and reports the array plane's speedup in ``BENCH_routing.json``.

Nothing in the production path imports this module; do not "optimize" it —
its value is being the slow, obviously correct semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .errors import (
    BandwidthExceededError,
    InvalidNodeError,
    MessageTooLargeError,
    ProtocolError,
)
from .message import Message, word_bits


class ObjectSimulatedClique:
    """The historical per-message simulator (see module docstring)."""

    def __init__(self, n: int, bandwidth_words: int = 1, strict: bool = True) -> None:
        if n < 1:
            raise ValueError("clique size must be >= 1")
        if bandwidth_words < 1:
            raise ValueError("bandwidth_words must be >= 1")
        self.n = n
        self.bandwidth_words = bandwidth_words
        self.strict = strict
        self.round_index = 0
        self._outboxes: Dict[Tuple[int, int], Message] = {}
        self._spill: List[Message] = []
        self._inboxes: List[List[Message]] = [[] for _ in range(n)]
        self.messages_delivered = 0
        self.words_delivered = 0
        self.spill_rounds = 0

    @property
    def bits_per_message(self) -> int:
        return self.bandwidth_words * word_bits(self.n)

    def send(self, message: Message) -> None:
        self._check_node(message.sender)
        self._check_node(message.receiver)
        bits = message.size_bits(self.n)
        if bits > self.bits_per_message:
            raise MessageTooLargeError(bits, self.bits_per_message)
        key = (message.sender, message.receiver)
        if key in self._outboxes:
            if self.strict:
                raise BandwidthExceededError(
                    message.sender, message.receiver, self.round_index
                )
            self._spill.append(message)
            return
        self._outboxes[key] = message

    def send_all(self, messages: Iterable[Message]) -> None:
        for message in messages:
            self.send(message)

    def step(self) -> int:
        delivered = self._outboxes
        self._outboxes = {}
        for (_, receiver), message in delivered.items():
            self._inboxes[receiver].append(message)
            self.messages_delivered += 1
            self.words_delivered += message.size_words()
        self.round_index += 1
        if self._spill:
            self.spill_rounds += 1
            pending, self._spill = self._spill, []
            for message in pending:
                self.send(message)
        return self.round_index

    def drain(self, max_rounds: int = 10_000) -> int:
        used = 0
        while self._outboxes or self._spill:
            if used >= max_rounds:
                raise ProtocolError(
                    f"drain did not finish within {max_rounds} rounds"
                )
            self.step()
            used += 1
        return used

    def inbox(self, node: int, clear: bool = True) -> List[Message]:
        self._check_node(node)
        messages = self._inboxes[node]
        if clear:
            self._inboxes[node] = []
        return messages

    def pending_messages(self) -> int:
        return len(self._outboxes) + len(self._spill)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise InvalidNodeError(node, self.n)


def _deliver_relayed_reference(
    clique: ObjectSimulatedClique,
    plan: List[Tuple[int, Message]],
    final: Dict[int, List[Message]],
) -> int:
    """The original two-hop executor: senders -> relays -> destinations."""
    relay_hold: Dict[int, List[Message]] = defaultdict(list)
    for relay, message in plan:
        wrapped = Message(
            sender=message.sender,
            receiver=relay,
            payload=(message.receiver,) + message.payload,
            tag="relay:" + message.tag,
        )
        clique.send(wrapped)
        relay_hold[relay].append(message)
    rounds = clique.drain()

    for relay in relay_hold:
        for wrapped in clique.inbox(relay):
            true_receiver = int(wrapped.payload[0])
            clique.send(
                Message(
                    sender=relay,
                    receiver=true_receiver,
                    payload=wrapped.payload[1:],
                    tag=wrapped.tag.removeprefix("relay:"),
                )
            )
    rounds += clique.drain()
    for node in range(clique.n):
        for message in clique.inbox(node):
            final[node].append(message)
    return rounds


def route_two_phase_reference(
    messages: Sequence[Message],
    n: int,
    bandwidth_words: int = 4,
) -> Tuple[Dict[int, List[Message]], "ReferenceRoutingStats"]:
    """The original per-message Lenzen-style router, verbatim.

    Returns the delivered messages grouped by destination plus a stats
    record that also exposes the simulator's spill count, so the array
    plane can be asserted bit-identical against it.
    """
    clique = ObjectSimulatedClique(n, bandwidth_words=bandwidth_words, strict=False)

    counts: Dict[Tuple[int, int], int] = defaultdict(int)
    for message in messages:
        counts[(message.sender, message.receiver)] += 1
    coordination_rounds = 2

    per_dest_senders: Dict[int, List[int]] = defaultdict(list)
    for (sender, dest) in counts:
        per_dest_senders[dest].append(sender)
    offsets: Dict[Tuple[int, int], int] = {}
    for dest, senders in per_dest_senders.items():
        senders.sort()
        running = 0
        for sender in senders:
            offsets[(sender, dest)] = running
            running += counts[(sender, dest)]

    next_slot: Dict[Tuple[int, int], int] = defaultdict(int)
    plan: List[Tuple[int, Message]] = []
    relay_load = np.zeros(n, dtype=np.int64)
    for message in messages:
        key = (message.sender, message.receiver)
        slot = offsets[key] + next_slot[key]
        next_slot[key] += 1
        relay = (message.receiver + slot) % n
        relay_load[relay] += 1
        plan.append((relay, message))

    final: Dict[int, List[Message]] = defaultdict(list)
    data_rounds = _deliver_relayed_reference(clique, plan, final)

    sent = np.zeros(n, dtype=np.int64)
    received = np.zeros(n, dtype=np.int64)
    for message in messages:
        sent[message.sender] += 1
        received[message.receiver] += 1
    stats = ReferenceRoutingStats(
        rounds=coordination_rounds + data_rounds,
        messages=len(messages),
        max_sent_per_node=int(sent.max(initial=0)),
        max_received_per_node=int(received.max(initial=0)),
        relay_max_load=int(relay_load.max(initial=0)),
        spill_rounds=clique.spill_rounds,
    )
    return final, stats


class ReferenceRoutingStats:
    """Plain stats record mirroring :class:`repro.cclique.routing.RoutingStats`."""

    def __init__(
        self,
        rounds: int,
        messages: int,
        max_sent_per_node: int,
        max_received_per_node: int,
        relay_max_load: int,
        spill_rounds: int,
    ) -> None:
        self.rounds = rounds
        self.messages = messages
        self.max_sent_per_node = max_sent_per_node
        self.max_received_per_node = max_received_per_node
        self.relay_max_load = relay_max_load
        self.spill_rounds = spill_rounds


__all__ = [
    "ObjectSimulatedClique",
    "ReferenceRoutingStats",
    "route_two_phase_reference",
]
