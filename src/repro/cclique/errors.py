"""Exception types for the Congested Clique substrate.

Every violated model constraint raises a dedicated exception so tests can
assert on the *kind* of violation (bandwidth overflow, load precondition,
protocol misuse) rather than on error strings.
"""

from __future__ import annotations


class CongestedCliqueError(Exception):
    """Base class for all Congested Clique model violations."""


class BandwidthExceededError(CongestedCliqueError):
    """A node tried to send more than one message to a peer in one round."""

    def __init__(self, sender: int, receiver: int, round_index: int) -> None:
        self.sender = sender
        self.receiver = receiver
        self.round_index = round_index
        super().__init__(
            f"node {sender} attempted a second message to node {receiver} "
            f"in round {round_index}; the model allows one message per "
            f"ordered pair per round"
        )


class MessageTooLargeError(CongestedCliqueError):
    """A message exceeded the model's per-message bit budget O(B)."""

    def __init__(self, bits: int, limit: int) -> None:
        self.bits = bits
        self.limit = limit
        super().__init__(
            f"message of {bits} bits exceeds the per-message limit of "
            f"{limit} bits"
        )


class LoadPreconditionError(CongestedCliqueError):
    """A routing lemma's load precondition was violated.

    Lemma 2.1 [Len13] and Lemma 2.2 [CFG+20] only promise O(1) rounds when
    every node sends/receives O(n) messages.  The ledger primitives count the
    actual loads and raise this error when a caller exceeds the allowed
    constant factor, because silently charging O(1) rounds for an overloaded
    routing instance would falsify every downstream round count.
    """

    def __init__(self, description: str) -> None:
        super().__init__(description)


class InvalidNodeError(CongestedCliqueError):
    """A message referenced a node ID outside ``range(n)``."""

    def __init__(self, node: int, n: int) -> None:
        self.node = node
        self.n = n
        super().__init__(f"node id {node} outside clique of size {n}")


class ProtocolError(CongestedCliqueError):
    """An algorithm used the simulator API out of order."""
