"""Broadcast and gather primitives — array programs on the round engine.

Section 2.3 of the paper sketches how a node broadcasts an O(n log n)-bit
message in O(1) rounds: the content fits in n words, the owner sends word
``i`` to node ``i``, and every node then re-sends its word to everyone.
:func:`broadcast_words` implements exactly that two-round schedule and is
verified in tests against the model's bandwidth constraints.

All primitives stage flat numpy batches (one ``stage`` call per round)
instead of per-message loops; word *values* may be arbitrary Python
objects — they ride the engine's ref store while the word index travels as
the numeric payload, so the round structure, bandwidth charges, and strict
mode checks are identical to the historical per-message schedules.  The
primitives accept either a :class:`~repro.cclique.model.SimulatedClique`
or a bare :class:`~repro.cclique.engine.ArrayClique`.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple, Union

import numpy as np

from .engine import ArrayClique, NO_REF
from .errors import LoadPreconditionError
from .model import SimulatedClique

Clique = Union[SimulatedClique, ArrayClique]


def _engine_of(clique: Clique) -> ArrayClique:
    return clique.engine if isinstance(clique, SimulatedClique) else clique


def broadcast_words(
    clique: Clique,
    source: int,
    words: Sequence[Any],
) -> Tuple[List[List[Any]], int]:
    """Broadcast up to ``n`` words from ``source`` to every node.

    Implements the dissemination trick of Section 2.3: word ``i`` goes to
    node ``i`` (round 1), node ``i`` forwards it to everyone (round 2).
    Returns ``(received, rounds)`` where ``received[v]`` is the word list
    reconstructed at node ``v`` (in original order).
    """
    engine = _engine_of(clique)
    n = engine.n
    m = len(words)
    if m > n:
        raise LoadPreconditionError(
            f"broadcast_words handles at most n = {n} words per call, "
            f"got {m}; split into batches"
        )
    word_list = list(words)
    received: List[List[Any]] = [[None] * m for _ in range(n)]
    if m == 0:
        # Nothing to ship, but the two-round schedule still elapses — keep
        # round_index consistent with the reported round count.
        clique.step()
        clique.step()
        return received, 2

    # Round 1: scatter (source -> node i gets word i, with its index).
    index = np.arange(m, dtype=np.int64)
    engine.stage(
        source, index, index.astype(np.float64), words=2,
        tag="bc:scatter", refs=word_list,
    )
    clique.step()
    holders: List[int] = []
    holder_index: List[int] = []
    holder_ref: List[int] = []
    for node in range(m):
        view = engine.inbox_arrays(node)
        for i in range(len(view)):
            if engine.tag_name(int(view.tag[i])) == "bc:scatter":
                holders.append(node)
                holder_index.append(int(view.payload[i, 0]))
                holder_ref.append(int(view.ref[i]))

    # Round 2: all-to-all forward (one flat batch: |holders| * n rows).
    h = len(holders)
    engine.stage(
        np.repeat(np.asarray(holders, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), h),
        np.repeat(np.asarray(holder_index, dtype=np.float64), n).reshape(-1, 1),
        words=2,
        tag="bc:forward",
        ref_ids=np.repeat(np.asarray(holder_ref, dtype=np.int64), n),
    )
    clique.step()
    for node in range(n):
        view = engine.inbox_arrays(node)
        for i in range(len(view)):
            if engine.tag_name(int(view.tag[i])) != "bc:forward":
                continue
            slot = int(view.payload[i, 0])
            received[node][slot] = engine.ref_object(int(view.ref[i]))
    return received, 2


def gather_one_word(
    clique: Clique,
    target: int,
    words: Sequence[Any],
) -> Tuple[List[Any], int]:
    """Every node sends one word to ``target``; one round.

    ``words[v]`` is node ``v``'s contribution.  Returns the list gathered at
    the target (indexed by sender) and the round count (always 1).
    """
    engine = _engine_of(clique)
    n = engine.n
    if len(words) != n:
        raise ValueError("need exactly one word per node")
    senders = np.arange(n, dtype=np.int64)
    engine.stage(
        senders, target, senders.astype(np.float64), words=2,
        tag="gather", refs=list(words),
    )
    clique.step()
    view = engine.inbox_arrays(target)
    slots: List[Any] = [None] * n
    for i in range(len(view)):
        if engine.tag_name(int(view.tag[i])) == "gather":
            slots[int(view.payload[i, 0])] = engine.ref_object(int(view.ref[i]))
    return slots, 1


def all_to_all_one_word(
    clique: Clique,
    words: Sequence[Sequence[Any]],
) -> Tuple[List[List[Any]], int]:
    """Every ordered pair exchanges one word; one round.

    ``words[u][v]`` is what ``u`` sends to ``v``.  Returns
    ``received[v][u]`` and the round count (always 1).
    """
    engine = _engine_of(clique)
    n = engine.n
    if len(words) != n or any(len(row) != n for row in words):
        raise ValueError("words must be an n x n table")
    flat = [words[u][v] for u in range(n) for v in range(n)]
    engine.stage(
        np.repeat(np.arange(n, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), n),
        words=1,
        tag="a2a",
        refs=flat,
    )
    clique.step()
    received: List[List[Any]] = [[None] * n for _ in range(n)]
    for v in range(n):
        view = engine.inbox_arrays(v)
        for i in range(len(view)):
            if engine.tag_name(int(view.tag[i])) == "a2a":
                ref = int(view.ref[i])
                if ref != NO_REF:
                    received[v][int(view.src[i])] = engine.ref_object(ref)
    return received, 1


def broadcast_matrix_rows(
    clique: Clique,
    values: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Numeric all-to-all: node ``u`` ships row ``values[u]`` word-by-word.

    The fully array-native variant protocols use when the content is
    numeric: ``values`` is ``(n, n)``; the return is the transpose view
    every node reconstructs (``received[v][u] = values[u][v]``) plus the
    round count (always 1).  One ``stage`` call, no Python per-pair loop.
    """
    engine = _engine_of(clique)
    n = engine.n
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (n, n):
        raise ValueError("values must be an n x n matrix")
    engine.stage(
        np.repeat(np.arange(n, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), n),
        values.reshape(-1, 1),
        tag="a2a:num",
    )
    clique.step()
    received = np.full((n, n), np.nan)
    for v in range(n):
        view = engine.inbox_arrays(v)
        if not len(view):
            continue
        keep = np.fromiter(
            (engine.tag_name(int(t)) == "a2a:num" for t in view.tag),
            bool,
            len(view),
        )
        received[v, view.src[keep]] = view.payload[keep, 0]
    return received, 1
