"""Broadcast and gather primitives on the message-level simulator.

Section 2.3 of the paper sketches how a node broadcasts an O(n log n)-bit
message in O(1) rounds: the content fits in n words, the owner sends word
``i`` to node ``i``, and every node then re-sends its word to everyone.
:func:`broadcast_words` implements exactly that two-round schedule and is
verified in tests against the model's bandwidth constraints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import LoadPreconditionError
from .message import Message
from .model import SimulatedClique


def broadcast_words(
    clique: SimulatedClique,
    source: int,
    words: Sequence[Any],
) -> Tuple[List[List[Any]], int]:
    """Broadcast up to ``n`` words from ``source`` to every node.

    Implements the dissemination trick of Section 2.3: word ``i`` goes to
    node ``i`` (round 1), node ``i`` forwards it to everyone (round 2).
    Returns ``(received, rounds)`` where ``received[v]`` is the word list
    reconstructed at node ``v`` (in original order).
    """
    n = clique.n
    if len(words) > n:
        raise LoadPreconditionError(
            f"broadcast_words handles at most n = {n} words per call, "
            f"got {len(words)}; split into batches"
        )
    # Round 1: scatter (source -> node i gets word i, with its index).
    for index, word in enumerate(words):
        clique.send(Message(source, index, (index, word), tag="bc:scatter"))
    clique.step()
    holders: Dict[int, Tuple[int, Any]] = {}
    for node in range(n):
        for message in clique.inbox(node):
            if message.tag == "bc:scatter":
                holders[node] = (int(message.payload[0]), message.payload[1])
    # Round 2: all-to-all forward.
    for node, (index, word) in holders.items():
        for target in range(n):
            clique.send(Message(node, target, (index, word), tag="bc:forward"))
    clique.step()
    received: List[List[Any]] = []
    for node in range(n):
        slots: List[Optional[Any]] = [None] * len(words)
        for message in clique.inbox(node):
            if message.tag == "bc:forward":
                slots[int(message.payload[0])] = message.payload[1]
        received.append(list(slots))
    return received, 2


def gather_one_word(
    clique: SimulatedClique,
    target: int,
    words: Sequence[Any],
) -> Tuple[List[Any], int]:
    """Every node sends one word to ``target``; one round.

    ``words[v]`` is node ``v``'s contribution.  Returns the list gathered at
    the target (indexed by sender) and the round count (always 1).
    """
    n = clique.n
    if len(words) != n:
        raise ValueError("need exactly one word per node")
    for node, word in enumerate(words):
        clique.send(Message(node, target, (node, word), tag="gather"))
    clique.step()
    slots: List[Any] = [None] * n
    for message in clique.inbox(target):
        if message.tag == "gather":
            slots[int(message.payload[0])] = message.payload[1]
    return slots, 1


def all_to_all_one_word(
    clique: SimulatedClique,
    words: Sequence[Sequence[Any]],
) -> Tuple[List[List[Any]], int]:
    """Every ordered pair exchanges one word; one round.

    ``words[u][v]`` is what ``u`` sends to ``v``.  Returns
    ``received[v][u]`` and the round count (always 1).
    """
    n = clique.n
    if len(words) != n or any(len(row) != n for row in words):
        raise ValueError("words must be an n x n table")
    for u in range(n):
        for v in range(n):
            clique.send(Message(u, v, (words[u][v],), tag="a2a"))
    clique.step()
    received: List[List[Any]] = [[None] * n for _ in range(n)]
    for v in range(n):
        for message in clique.inbox(v):
            if message.tag == "a2a":
                received[v][message.sender] = message.payload[0]
    return received, 1
