"""Round-by-round tracing for the message-level simulator.

Wraps a :class:`~repro.cclique.model.SimulatedClique` and records, per
round, the number of messages, the words moved, and the per-link
utilization — the observability layer a simulator library needs for
debugging protocols and for the congestion plots in the routing
experiments.

The recorder is pull-based: call :meth:`TraceRecorder.snapshot` after each
:meth:`~repro.cclique.model.SimulatedClique.step` (or use
:func:`traced_drain` which does it for you) and render with
:meth:`TraceRecorder.timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .model import SimulatedClique


@dataclass
class RoundSnapshot:
    """Aggregate statistics of one simulator round."""

    round_index: int
    messages_delivered: int
    words_delivered: int
    pending_after: int
    spill_rounds_total: int


@dataclass
class TraceRecorder:
    """Accumulates per-round snapshots of a clique execution."""

    clique: SimulatedClique
    snapshots: List[RoundSnapshot] = field(default_factory=list)
    _last_messages: int = 0
    _last_words: int = 0

    def snapshot(self) -> RoundSnapshot:
        """Record the delta since the previous snapshot."""
        snap = RoundSnapshot(
            round_index=self.clique.round_index,
            messages_delivered=self.clique.messages_delivered - self._last_messages,
            words_delivered=self.clique.words_delivered - self._last_words,
            pending_after=self.clique.pending_messages(),
            spill_rounds_total=self.clique.spill_rounds,
        )
        self._last_messages = self.clique.messages_delivered
        self._last_words = self.clique.words_delivered
        self.snapshots.append(snap)
        return snap

    @property
    def rounds(self) -> int:
        return len(self.snapshots)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_delivered for s in self.snapshots)

    def peak_round(self) -> Optional[RoundSnapshot]:
        """The round that moved the most messages."""
        if not self.snapshots:
            return None
        return max(self.snapshots, key=lambda s: s.messages_delivered)

    def timeline(self, width: int = 40) -> str:
        """ASCII bar chart of messages per round."""
        if not self.snapshots:
            return "(no rounds recorded)"
        peak = max(1, max(s.messages_delivered for s in self.snapshots))
        lines = []
        for snap in self.snapshots:
            bar = "#" * max(
                1 if snap.messages_delivered else 0,
                round(width * snap.messages_delivered / peak),
            )
            lines.append(
                f"round {snap.round_index:>4}: {snap.messages_delivered:>7} msgs "
                f"|{bar:<{width}}|"
            )
        return "\n".join(lines)


def traced_drain(clique: SimulatedClique, max_rounds: int = 10_000) -> TraceRecorder:
    """Drain all staged messages, snapshotting every round."""
    recorder = TraceRecorder(clique)
    used = 0
    while clique.pending_messages():
        if used >= max_rounds:
            raise RuntimeError(f"drain exceeded {max_rounds} rounds")
        clique.step()
        recorder.snapshot()
        used += 1
    return recorder
