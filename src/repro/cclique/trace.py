"""Round-by-round tracing for the simulator — byte-bounded by default.

Wraps a clique (the object adapter or the bare array engine) and records,
per round, the number of messages, the words moved, and — optionally —
the per-link utilization of the round, the observability layer a
simulator library needs for debugging protocols and for the congestion
plots in the routing experiments.

Long simulations used to exhaust memory here: per-link events grow
O(rounds · n²) and even aggregate snapshots grow without bound.  The
recorder therefore keeps its history in a **byte-bounded ring buffer**
(default :data:`DEFAULT_TRACE_BYTES`): when a new record would exceed the
budget, the oldest records are evicted and counted in
:attr:`TraceRecorder.dropped_events`.  Cumulative totals
(:attr:`TraceRecorder.rounds`, :attr:`TraceRecorder.total_messages`) are
maintained as running counters, so they stay correct no matter how much
history was evicted.

The recorder is pull-based: call :meth:`TraceRecorder.snapshot` after each
``step()`` (or use :func:`traced_drain` which does it for you) and render
with :meth:`TraceRecorder.timeline`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional, Union

import numpy as np

from .engine import ArrayClique
from .model import SimulatedClique

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports us)
    from .faults import FaultRound

#: Default history budget (4 MiB ≈ 45k aggregate snapshots, or a few
#: hundred full-load link rounds at n = 1024).
DEFAULT_TRACE_BYTES = 4 << 20

#: Approximate retained size of one aggregate snapshot (five ints plus
#: container overhead) used for ring accounting.
_SNAPSHOT_BYTES = 96

Clique = Union[SimulatedClique, ArrayClique]


@dataclass
class RoundSnapshot:
    """Aggregate statistics of one simulator round.

    ``faults`` carries the round's injection record (a
    :class:`~repro.cclique.faults.FaultRound`) when the recorder runs
    with ``record_faults=True`` against an engine with an attached
    :class:`~repro.cclique.faults.FaultPlan`; None otherwise.
    """

    round_index: int
    messages_delivered: int
    words_delivered: int
    pending_after: int
    spill_rounds_total: int
    faults: Optional["FaultRound"] = None


@dataclass
class LinkEvent:
    """Per-link delivery counts of one round (recorded on request).

    ``src``/``dst``/``count`` are parallel columns: ``count[i]`` messages
    crossed the ordered link ``src[i] -> dst[i]`` in round
    ``round_index``.  This is the O(n²)-per-round record the ring buffer
    exists for.
    """

    round_index: int
    src: np.ndarray
    dst: np.ndarray
    count: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.src.nbytes + self.dst.nbytes + self.count.nbytes) + 48


class TraceRecorder:
    """Accumulates per-round records of a clique execution, ring-buffered.

    Parameters
    ----------
    clique:
        A :class:`SimulatedClique` adapter or a bare :class:`ArrayClique`.
    max_bytes:
        History budget; ``None`` disables the bound (the pre-ring
        behaviour — unbounded growth, caller beware).
    record_links:
        When True, every snapshot also stores a :class:`LinkEvent` with
        the round's per-link delivery counts (taken from the engine's
        ``last_delivered`` columns).
    record_faults:
        When True, every snapshot also carries the round's fault ledger
        entry (the engine's ``last_faults`` record), so the injection
        history rides the same ring as the delivery history.
    """

    def __init__(
        self,
        clique: Clique,
        max_bytes: Optional[int] = DEFAULT_TRACE_BYTES,
        record_links: bool = False,
        record_faults: bool = False,
    ) -> None:
        self.clique = clique
        self.max_bytes = max_bytes
        self.record_links = record_links
        self.record_faults = record_faults
        self.snapshots: Deque[RoundSnapshot] = deque()
        self.link_events: Deque[LinkEvent] = deque()
        self.dropped_events = 0
        self.bytes_used = 0
        self._last_messages = 0
        self._last_words = 0
        self._rounds_seen = 0
        self._total_messages = 0

    def _engine(self) -> Optional[ArrayClique]:
        if isinstance(self.clique, ArrayClique):
            return self.clique
        return getattr(self.clique, "engine", None)

    def snapshot(self) -> RoundSnapshot:
        """Record the delta since the previous snapshot."""
        fault_round = None
        if self.record_faults:
            engine = self._engine()
            if engine is not None:
                fault_round = getattr(engine, "last_faults", None)
        snap = RoundSnapshot(
            round_index=self.clique.round_index,
            messages_delivered=self.clique.messages_delivered - self._last_messages,
            words_delivered=self.clique.words_delivered - self._last_words,
            pending_after=self.clique.pending_messages(),
            spill_rounds_total=self.clique.spill_rounds,
            faults=fault_round,
        )
        self._last_messages = self.clique.messages_delivered
        self._last_words = self.clique.words_delivered
        self._rounds_seen += 1
        self._total_messages += snap.messages_delivered
        self.snapshots.append(snap)
        self.bytes_used += _SNAPSHOT_BYTES
        if snap.faults is not None:
            self.bytes_used += _SNAPSHOT_BYTES  # the riding FaultRound
        if self.record_links:
            event = self._link_event(snap.round_index)
            if event is not None:
                self.link_events.append(event)
                self.bytes_used += event.nbytes
        self._evict()
        return snap

    def _link_event(self, round_index: int) -> Optional[LinkEvent]:
        engine = self._engine()
        if engine is None or engine.last_delivered is None:
            return None
        src, dst, _ = engine.last_delivered
        if not len(src):
            return None
        key = src * engine.n + dst
        links, count = np.unique(key, return_counts=True)
        return LinkEvent(
            round_index=round_index,
            src=(links // engine.n).astype(np.int64),
            dst=(links % engine.n).astype(np.int64),
            count=count.astype(np.int64),
        )

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        while self.bytes_used > self.max_bytes and (
            len(self.snapshots) > 1 or self.link_events
        ):
            # Evict the oldest record (link events first for their round:
            # they dominate the budget and the aggregate row is the one
            # worth keeping longest).
            if self.link_events and (
                not self.snapshots
                or self.link_events[0].round_index
                <= self.snapshots[0].round_index
            ):
                event = self.link_events.popleft()
                self.bytes_used -= event.nbytes
            else:
                snap = self.snapshots.popleft()
                self.bytes_used -= _SNAPSHOT_BYTES
                if snap.faults is not None:
                    self.bytes_used -= _SNAPSHOT_BYTES
            self.dropped_events += 1

    @property
    def rounds(self) -> int:
        """Rounds snapshotted over the recorder's lifetime (cumulative)."""
        return self._rounds_seen

    @property
    def retained_rounds(self) -> int:
        """Snapshots currently held in the ring."""
        return len(self.snapshots)

    @property
    def total_messages(self) -> int:
        """Messages seen over the recorder's lifetime (cumulative)."""
        return self._total_messages

    def peak_round(self) -> Optional[RoundSnapshot]:
        """The retained round that moved the most messages."""
        if not self.snapshots:
            return None
        return max(self.snapshots, key=lambda s: s.messages_delivered)

    def timeline(self, width: int = 40) -> str:
        """ASCII bar chart of messages per retained round."""
        if not self.snapshots:
            return "(no rounds recorded)"
        peak = max(1, max(s.messages_delivered for s in self.snapshots))
        lines = []
        if self.dropped_events:
            lines.append(f"... {self.dropped_events} older records dropped ...")
        for snap in self.snapshots:
            bar = "#" * max(
                1 if snap.messages_delivered else 0,
                round(width * snap.messages_delivered / peak),
            )
            lines.append(
                f"round {snap.round_index:>4}: {snap.messages_delivered:>7} msgs "
                f"|{bar:<{width}}|"
            )
        return "\n".join(lines)


def traced_drain(
    clique: Clique,
    max_rounds: int = 10_000,
    max_bytes: Optional[int] = DEFAULT_TRACE_BYTES,
    record_links: bool = False,
    record_faults: bool = False,
) -> TraceRecorder:
    """Drain all staged messages, snapshotting every round."""
    recorder = TraceRecorder(
        clique,
        max_bytes=max_bytes,
        record_links=record_links,
        record_faults=record_faults,
    )
    used = 0
    while clique.pending_messages():
        if used >= max_rounds:
            raise RuntimeError(f"drain exceeded {max_rounds} rounds")
        clique.step()
        recorder.snapshot()
        used += 1
    return recorder
