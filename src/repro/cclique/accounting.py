"""Round accounting for Congested Clique algorithms.

The Congested Clique model charges only communication: local computation is
free and round complexity is a pure function of the communication schedule.
The :class:`RoundLedger` meters that schedule.  Every communication primitive
used by the algorithm layer (routing, broadcast, matrix products, spanner
calls, ...) charges its round cost here, tagged with a phase name and the
bandwidth context it runs in, so experiments can report per-phase and total
round counts and attribute them to the paper's lemmas.

Ledger charges also *validate* the load preconditions of the routing lemmas
they stand for: a primitive that would be overloaded in the real model raises
:class:`~repro.cclique.errors.LoadPreconditionError` instead of silently
charging a constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from . import costs
from .errors import LoadPreconditionError

#: Safety factor applied to "O(n) messages per node" preconditions.  The
#: paper's lemmas hide a constant; we allow loads up to this multiple of n
#: before declaring the instance overloaded.  32 accommodates the largest
#: constant appearing in the paper's own load arguments (Lemma 5.3 bounds
#: per-node receive loads by small multiples of n).
LOAD_CONSTANT = 32.0


@dataclass
class LedgerEntry:
    """One charge on the ledger."""

    phase: str
    rounds: int
    bandwidth_words: int = 1
    detail: str = ""

    @property
    def standard_rounds(self) -> int:
        """Rounds after simulating the bandwidth context in the standard model.

        Simulating ``Congested-Clique[c * log n]`` in the standard model
        splits each message into ``c`` words, a slowdown of exactly ``c``.
        """
        return self.rounds * max(1, int(self.bandwidth_words))


class RoundLedger:
    """Accumulates round charges for one algorithm execution.

    Parameters
    ----------
    n:
        Clique size; used to validate load preconditions.
    bandwidth_words:
        Words per message in the current model variant.  ``1`` is the
        standard Congested Clique; ``k`` models ``Congested-Clique[k log n]``.
    """

    def __init__(self, n: int, bandwidth_words: int = 1) -> None:
        if n < 1:
            raise ValueError("clique size must be >= 1")
        if bandwidth_words < 1:
            raise ValueError("bandwidth_words must be >= 1")
        self.n = n
        self.bandwidth_words = bandwidth_words
        self.entries: List[LedgerEntry] = []
        self._phase_stack: List[str] = []
        #: Measured wall-clock seconds per (dotted) phase name, accumulated
        #: by the :meth:`phase` context manager.  A nested phase's time is
        #: *included* in its ancestors' totals (the contexts overlap), so
        #: consumers should aggregate per depth, as
        #: :meth:`seconds_by_phase` notes.
        self.phase_seconds: Dict[str, float] = {}
        #: Wall-clock seconds covered by *outermost* phase contexts only —
        #: the double-counting-free total (nested contexts and flat names
        #: containing "/" make the per-phase dict unsafe to sum blindly).
        self.timed_seconds: float = 0.0
        # Per open phase context: extra seconds credited by merge()/
        # merge_parallel() of child ledgers whose compute happened outside
        # this context's own elapsed window (parallel to _phase_stack).
        self._open_credits: List[float] = []

    # ------------------------------------------------------------------ #
    # Phase management
    # ------------------------------------------------------------------ #

    def phase(self, name: str) -> "_PhaseContext":
        """Context manager scoping subsequent charges under ``name``.

        Nested phases produce dotted names, e.g. ``"thm7.1/hopset"``.
        Besides scoping round charges, the context measures its own
        wall-clock duration into :attr:`phase_seconds` — the phase-level
        observability the pipeline profiler (``python -m repro profile``,
        ``benchmarks/bench_pipeline.py``) reports.
        """
        return _PhaseContext(self, name)

    def _current_phase(self) -> str:
        return "/".join(self._phase_stack) if self._phase_stack else "<top>"

    # ------------------------------------------------------------------ #
    # Charging primitives
    # ------------------------------------------------------------------ #

    def charge(self, rounds: int, detail: str = "") -> None:
        """Charge a raw number of rounds in the current phase."""
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        if rounds == 0:
            return
        self.entries.append(
            LedgerEntry(
                phase=self._current_phase(),
                rounds=int(rounds),
                bandwidth_words=self.bandwidth_words,
                detail=detail,
            )
        )

    def charge_lenzen_routing(
        self,
        max_sent_per_node: int,
        max_received_per_node: int,
        detail: str = "Lenzen routing [Len13]",
    ) -> None:
        """Charge Lemma 2.1 after validating its O(n)-load precondition."""
        self._validate_load("Lenzen routing", max_sent_per_node, max_received_per_node)
        self.charge(costs.LENZEN_ROUTING_ROUNDS, detail)

    def charge_redundancy_routing(
        self,
        max_received_per_node: int,
        detail: str = "redundancy routing [CFG+20, Cor 7]",
    ) -> None:
        """Charge Lemma 2.2: receivers bounded by O(n); senders may duplicate.

        Lemma 2.2 drops the bound on the number of *sent* messages (senders
        with O(n log n)-bit state can be assisted by helper nodes), so only
        the receive load is validated.
        """
        self._validate_load("redundancy routing", 0, max_received_per_node)
        self.charge(costs.REDUNDANCY_ROUTING_ROUNDS, detail)

    def charge_all_to_all(self, detail: str = "all-to-all word exchange") -> None:
        """Charge one round in which every ordered pair exchanges one word."""
        self.charge(costs.ALL_TO_ALL_ROUNDS, detail)

    def charge_broadcast(
        self,
        total_words: int,
        detail: str = "broadcast",
    ) -> None:
        """Charge broadcasting ``total_words`` words to all nodes.

        A single node can broadcast O(n) words in O(1) rounds (Lemma 2.2
        discussion in Section 2.3); ``w`` words overall therefore cost
        ``ceil(w / (n * bandwidth))`` such primitives, since a wider
        bandwidth carries proportionally more words per message.
        """
        if total_words < 0:
            raise ValueError("total_words must be >= 0")
        if total_words == 0:
            return
        capacity = self.n * self.bandwidth_words
        batches = -(-int(total_words) // capacity)  # ceil division
        self.charge(batches * costs.BROADCAST_LINEAR_ROUNDS, detail)

    def charge_sparse_matmul(
        self,
        rho_s: float,
        rho_t: float,
        rho_st: float,
        detail: str = "sparse min-plus product [CDKL21, Thm 8]",
    ) -> int:
        """Charge a density-priced sparse min-plus product; returns rounds."""
        rounds = costs.sparse_matmul_rounds(self.n, rho_s, rho_t, rho_st)
        self.charge(rounds, detail)
        return rounds

    def charge_spanner(self, detail: str = "spanner [CZ22]") -> None:
        """Charge the constant-round spanner construction of Lemma 7.1."""
        self.charge(costs.CZ22_SPANNER_ROUNDS, detail)

    def charge_mst(self, detail: str = "MST [Now21]") -> None:
        """Charge the O(1)-round deterministic MST used by Theorem 2.1."""
        self.charge(costs.NOWICKI_MST_ROUNDS, detail)

    def charge_hitting_set(self, detail: str = "hitting set [DFKL21, Lem 4.1]") -> None:
        """Charge the O(1)-round hitting-set construction of Lemma 6.2."""
        self.charge(costs.HITTING_SET_ROUNDS, detail)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def total_rounds(self) -> int:
        """Total rounds in the bandwidth contexts the charges were made in."""
        return sum(entry.rounds for entry in self.entries)

    @property
    def total_standard_rounds(self) -> int:
        """Total rounds after simulating larger bandwidths word-by-word."""
        return sum(entry.standard_rounds for entry in self.entries)

    def rounds_by_phase(self) -> Dict[str, int]:
        """Aggregate charged rounds per (dotted) phase name."""
        out: Dict[str, int] = {}
        for entry in self.entries:
            out[entry.phase] = out.get(entry.phase, 0) + entry.rounds
        return out

    def seconds_by_phase(self) -> Dict[str, float]:
        """Measured wall-clock seconds per (dotted) phase name.

        Times come from the :meth:`phase` contexts; a nested phase
        (``"a/b"``) is also counted inside its parent (``"a"``), so summing
        across *all* keys double-counts — sum one nesting depth, or use the
        top-level keys only.
        """
        return dict(self.phase_seconds)

    def _add_phase_seconds(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def _credit_timed_seconds(self, seconds: float) -> None:
        """Attribute child-ledger compute time merged into this ledger.

        If phase contexts are open, every enclosing level is credited (so
        the "a parent's time includes its children's" invariant holds for
        merged sub-ledgers too) and the outermost context folds the credit
        into :attr:`timed_seconds` on exit; otherwise it counts directly.
        """
        if not seconds:
            return
        if self._open_credits:
            for level in range(len(self._open_credits)):
                self._open_credits[level] += seconds
        else:
            self.timed_seconds += seconds

    def merge(self, other: "RoundLedger", prefix: Optional[str] = None) -> None:
        """Fold another ledger's entries into this one.

        Used when a sub-algorithm runs with its own ledger (e.g. per scaled
        graph ``G_i``) and the caller wants a combined account.
        """
        for entry in other.entries:
            phase = entry.phase if prefix is None else f"{prefix}/{entry.phase}"
            self.entries.append(
                LedgerEntry(
                    phase=phase,
                    rounds=entry.rounds,
                    bandwidth_words=entry.bandwidth_words,
                    detail=entry.detail,
                )
            )
        for name, seconds in other.phase_seconds.items():
            merged = name if prefix is None else f"{prefix}/{name}"
            self._add_phase_seconds(merged, seconds)
        self._credit_timed_seconds(other.timed_seconds)

    def merge_parallel(self, others: List["RoundLedger"], prefix: str) -> None:
        """Fold ledgers of algorithms that ran *in parallel*.

        Parallel composition in the Congested Clique costs the maximum of the
        component round counts, provided the combined bandwidth fits the
        model variant (the caller is responsible for the bandwidth argument,
        as in Theorem 8.1's parallel runs over the scaled graphs).  The
        charge is recorded as a single entry whose bandwidth context is the
        sum of the components'.
        """
        if not others:
            return
        rounds = max(o.total_rounds for o in others)
        words = sum(o.bandwidth_words for o in others)
        name = f"{self._current_phase()}/{prefix}"
        self.entries.append(
            LedgerEntry(
                phase=name,
                rounds=rounds,
                bandwidth_words=words,
                detail=f"parallel composition of {len(others)} runs",
            )
        )
        # Rounds compose as the max, but the *measured* compute happened
        # sequentially on this machine: record the summed wall time.
        total = sum(o.timed_seconds for o in others)
        if total:
            self._add_phase_seconds(name, total)
            self._credit_timed_seconds(total)

    def _validate_load(self, name: str, sent: int, received: int) -> None:
        limit = LOAD_CONSTANT * self.n
        if sent > limit:
            raise LoadPreconditionError(
                f"{name}: a node sends {sent} messages, exceeding "
                f"{LOAD_CONSTANT} * n = {limit:.0f}"
            )
        if received > limit:
            raise LoadPreconditionError(
                f"{name}: a node receives {received} messages, exceeding "
                f"{LOAD_CONSTANT} * n = {limit:.0f}"
            )

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundLedger(n={self.n}, rounds={self.total_rounds}, "
            f"entries={len(self.entries)})"
        )


@dataclass
class _PhaseContext:
    ledger: RoundLedger
    name: str
    _pushed: bool = field(default=False, init=False)
    _full_name: str = field(default="", init=False)
    _start: float = field(default=0.0, init=False)

    def __enter__(self) -> RoundLedger:
        self.ledger._phase_stack.append(self.name)
        self.ledger._open_credits.append(0.0)
        self._pushed = True
        self._full_name = self.ledger._current_phase()
        # The ledger IS the measurement layer: phase wall-clock profiling
        # is its contract (``repro profile``), and no algorithm decision
        # ever reads these timings back.
        self._start = time.perf_counter()  # lint: allow[det-wallclock]
        return self.ledger

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pushed:
            elapsed = time.perf_counter() - self._start  # lint: allow[det-wallclock]
            self.ledger._phase_stack.pop()
            # Own elapsed plus any child-ledger compute merged while open.
            total = elapsed + self.ledger._open_credits.pop()
            self.ledger._add_phase_seconds(self._full_name, total)
            if not self.ledger._phase_stack:
                self.ledger.timed_seconds += total
