"""Message-level simulator for the Congested Clique model.

This is the "physical" layer of the reproduction: ``n`` nodes, synchronous
rounds, and a complete communication graph where each ordered pair of nodes
may exchange **one** message of ``O(B)`` bits per round.  The simulator
enforces both constraints and raises on violations, so algorithms validated
here are genuinely implementable in the model.

Two styles of use are supported:

* **Programmatic** — drive the clique round by round from a test or an
  algorithm harness: stage messages with :meth:`SimulatedClique.send`, call
  :meth:`SimulatedClique.step`, read inboxes.
* **Node programs** — subclass :class:`NodeProgram` and run a full synchronous
  protocol with :meth:`SimulatedClique.run`.

The heavyweight APSP algorithms use the :class:`~repro.cclique.accounting.
RoundLedger` cost layer instead (see DESIGN.md section 2); the simulator is
used to validate the communication primitives those charges stand for, and to
run small end-to-end distributed programs in tests and examples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import (
    BandwidthExceededError,
    InvalidNodeError,
    MessageTooLargeError,
    ProtocolError,
)
from .message import Message, word_bits


class SimulatedClique:
    """A synchronous fully connected message-passing network.

    Parameters
    ----------
    n:
        Number of nodes; IDs are ``0 .. n-1``.  (The paper renames IDs to
        ``1..n``; zero-based indexing is the Python-side convention.)
    bandwidth_words:
        Maximum payload size per message, in machine words of
        ``Theta(log n)`` bits.  ``1`` is the standard model; larger values
        model ``Congested-Clique[B]``.
    strict:
        When True (default), sending a second message to the same receiver
        in one round raises :class:`BandwidthExceededError`.  When False the
        extra messages spill into subsequent rounds automatically and the
        spill count is recorded — useful for measuring how congested a naive
        protocol would be.
    """

    def __init__(self, n: int, bandwidth_words: int = 1, strict: bool = True) -> None:
        if n < 1:
            raise ValueError("clique size must be >= 1")
        if bandwidth_words < 1:
            raise ValueError("bandwidth_words must be >= 1")
        self.n = n
        self.bandwidth_words = bandwidth_words
        self.strict = strict
        self.round_index = 0
        self._outboxes: Dict[Tuple[int, int], Message] = {}
        self._spill: List[Message] = []
        self._inboxes: List[List[Message]] = [[] for _ in range(n)]
        self.messages_delivered = 0
        self.words_delivered = 0
        self.spill_rounds = 0

    # ------------------------------------------------------------------ #
    # Sending / stepping
    # ------------------------------------------------------------------ #

    @property
    def bits_per_message(self) -> int:
        """Per-message bit budget in this model variant."""
        return self.bandwidth_words * word_bits(self.n)

    def send(self, message: Message) -> None:
        """Stage ``message`` for delivery at the end of the current round."""
        self._check_node(message.sender)
        self._check_node(message.receiver)
        bits = message.size_bits(self.n)
        if bits > self.bits_per_message:
            raise MessageTooLargeError(bits, self.bits_per_message)
        key = (message.sender, message.receiver)
        if key in self._outboxes:
            if self.strict:
                raise BandwidthExceededError(
                    message.sender, message.receiver, self.round_index
                )
            self._spill.append(message)
            return
        self._outboxes[key] = message

    def send_all(self, messages: Iterable[Message]) -> None:
        """Stage many messages; order within a (sender, receiver) pair matters."""
        for message in messages:
            self.send(message)

    def step(self) -> int:
        """Deliver all staged messages and advance one synchronous round.

        Returns the new round index.  In non-strict mode, spilled messages
        are re-staged first, so repeated calls eventually drain everything;
        ``spill_rounds`` counts the extra rounds caused by congestion.
        """
        delivered = self._outboxes
        self._outboxes = {}
        for (_, receiver), message in delivered.items():
            self._inboxes[receiver].append(message)
            self.messages_delivered += 1
            self.words_delivered += message.size_words()
        self.round_index += 1
        if self._spill:
            self.spill_rounds += 1
            pending, self._spill = self._spill, []
            for message in pending:
                self.send(message)
        return self.round_index

    def drain(self, max_rounds: int = 10_000) -> int:
        """Step until no staged or spilled messages remain.

        Returns the number of rounds used.  Only meaningful in non-strict
        mode (strict mode never spills).
        """
        used = 0
        while self._outboxes or self._spill:
            if used >= max_rounds:
                raise ProtocolError(
                    f"drain did not finish within {max_rounds} rounds"
                )
            self.step()
            used += 1
        return used

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def inbox(self, node: int, clear: bool = True) -> List[Message]:
        """Messages delivered to ``node`` since the last read."""
        self._check_node(node)
        messages = self._inboxes[node]
        if clear:
            self._inboxes[node] = []
        return messages

    def pending_messages(self) -> int:
        """Messages staged (plus spilled) but not yet delivered."""
        return len(self._outboxes) + len(self._spill)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise InvalidNodeError(node, self.n)

    # ------------------------------------------------------------------ #
    # Running node programs
    # ------------------------------------------------------------------ #

    def run(self, programs: Sequence["NodeProgram"], max_rounds: int = 10_000) -> int:
        """Execute one :class:`NodeProgram` per node until all halt.

        Each round: every non-halted program's :meth:`NodeProgram.on_round`
        is called with the messages received in the previous round, and its
        returned messages are staged.  Returns the number of rounds taken.
        """
        if len(programs) != self.n:
            raise ProtocolError(
                f"need exactly {self.n} programs, got {len(programs)}"
            )
        for node_id, program in enumerate(programs):
            program._attach(node_id, self)
        rounds = 0
        while any(not p.halted for p in programs):
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not halt in {max_rounds} rounds")
            for program in programs:
                if program.halted:
                    continue
                incoming = self.inbox(program.node_id)
                outgoing = program.on_round(incoming) or []
                for message in outgoing:
                    if message.sender != program.node_id:
                        raise ProtocolError(
                            f"node {program.node_id} tried to forge sender "
                            f"{message.sender}"
                        )
                    self.send(message)
            self.step()
            rounds += 1
        return rounds


class NodeProgram:
    """Base class for a per-node synchronous protocol.

    Subclasses implement :meth:`on_round`, returning the messages to send
    this round, and call :meth:`halt` when their part of the protocol is
    done.  The clique size and own ID are available after attachment.
    """

    def __init__(self) -> None:
        self.node_id: int = -1
        self.n: int = 0
        self.halted = False
        self._clique: Optional[SimulatedClique] = None

    def _attach(self, node_id: int, clique: SimulatedClique) -> None:
        self.node_id = node_id
        self.n = clique.n
        self._clique = clique
        self.halted = False

    def on_round(self, inbox: List[Message]) -> List[Message]:
        """Process one synchronous round; return messages to send.

        ``inbox`` holds the messages delivered at the end of the previous
        round.  The default implementation halts immediately.
        """
        self.halt()
        return []

    def msg(self, receiver: int, *payload, tag: str = "") -> Message:
        """Convenience constructor for a message from this node."""
        return Message(self.node_id, receiver, tuple(payload), tag)

    def halt(self) -> None:
        """Mark this node's protocol as finished."""
        self.halted = True
