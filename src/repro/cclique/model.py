"""Object-API adapter over the array-native Congested Clique engine.

This is the "physical" layer of the reproduction: ``n`` nodes, synchronous
rounds, and a complete communication graph where each ordered pair of nodes
may exchange **one** message of ``O(B)`` bits per round.  The round
mechanics — bandwidth enforcement, spill scheduling, delivery, statistics —
live in the struct-of-arrays engine (:class:`~repro.cclique.engine.
ArrayClique`); this module keeps the historical per-message object API as a
thin adapter on top, so protocols written against ``Message`` objects and
:class:`NodeProgram` run unchanged while sharing one set of semantics with
the vectorized protocol layer.

Two styles of use are supported:

* **Programmatic** — drive the clique round by round from a test or an
  algorithm harness: stage messages with :meth:`SimulatedClique.send` (or
  numpy batches with :meth:`SimulatedClique.send_array`), call
  :meth:`SimulatedClique.step`, read inboxes.
* **Node programs** — subclass :class:`NodeProgram` and run a full synchronous
  protocol with :meth:`SimulatedClique.run`.

The heavyweight APSP algorithms use the :class:`~repro.cclique.accounting.
RoundLedger` cost layer instead (see DESIGN.md section 2); the simulator is
used to validate the communication primitives those charges stand for, and
— now that the communication plane is array-native — to run full-load
protocol validation at four-digit ``n``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .engine import ArrayClique, InboxView
from .errors import (
    BandwidthExceededError,
    InvalidNodeError,
    MessageTooLargeError,
    ProtocolError,
)
from .message import Message


class SimulatedClique:
    """A synchronous fully connected message-passing network.

    Parameters
    ----------
    n:
        Number of nodes; IDs are ``0 .. n-1``.  (The paper renames IDs to
        ``1..n``; zero-based indexing is the Python-side convention.)
    bandwidth_words:
        Maximum payload size per message, in machine words of
        ``Theta(log n)`` bits.  ``1`` is the standard model; larger values
        model ``Congested-Clique[B]``.
    strict:
        When True (default), sending a second message to the same receiver
        in one round raises :class:`BandwidthExceededError`.  When False the
        extra messages spill into subsequent rounds automatically and the
        spill count is recorded — useful for measuring how congested a naive
        protocol would be.
    """

    def __init__(self, n: int, bandwidth_words: int = 1, strict: bool = True) -> None:
        #: The struct-of-arrays round engine this adapter wraps.  Array
        #: programs (routing, broadcast, protocols) stage numpy batches on
        #: it directly; both views share rounds, inboxes, and statistics.
        self.engine = ArrayClique(n, bandwidth_words=bandwidth_words, strict=strict)
        self.n = self.engine.n
        self.bandwidth_words = self.engine.bandwidth_words
        self.strict = self.engine.strict
        self._buffer: List[Message] = []
        self._round_pairs: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # Statistics (delegated to the engine)
    # ------------------------------------------------------------------ #

    @property
    def round_index(self) -> int:
        return self.engine.round_index

    @property
    def messages_delivered(self) -> int:
        return self.engine.messages_delivered

    @property
    def words_delivered(self) -> int:
        return self.engine.words_delivered

    @property
    def spill_rounds(self) -> int:
        return self.engine.spill_rounds

    @property
    def bits_per_message(self) -> int:
        """Per-message bit budget in this model variant."""
        return self.engine.bits_per_message

    # ------------------------------------------------------------------ #
    # Sending / stepping
    # ------------------------------------------------------------------ #

    def send(self, message: Message) -> None:
        """Stage ``message`` for delivery at the end of the current round."""
        self._check_node(message.sender)
        self._check_node(message.receiver)
        bits = message.size_bits(self.n)
        if bits > self.bits_per_message:
            raise MessageTooLargeError(bits, self.bits_per_message)
        if self.strict:
            key = (message.sender, message.receiver)
            if key in self._round_pairs:
                raise BandwidthExceededError(
                    message.sender, message.receiver, self.round_index
                )
            self._round_pairs.add(key)
        self._buffer.append(message)

    def send_all(self, messages: Iterable[Message]) -> None:
        """Stage many messages; order within a (sender, receiver) pair matters."""
        for message in messages:
            self.send(message)

    def send_array(
        self,
        src,
        dst,
        payload=None,
        *,
        words=None,
        tag: str = "",
    ) -> int:
        """Stage a numpy batch directly on the engine (array-plane fast path).

        See :meth:`~repro.cclique.engine.ArrayClique.stage`.  Rows staged
        this way appear to object-API readers as :class:`Message` objects
        with float payloads and the batch's tag.
        """
        return self.engine.stage(src, dst, payload, words=words, tag=tag)

    def step(self) -> int:
        """Deliver all staged messages and advance one synchronous round.

        Returns the new round index.  In non-strict mode, spilled messages
        are re-staged first, so repeated calls eventually drain everything;
        ``spill_rounds`` counts the extra rounds caused by congestion.
        """
        if self._buffer:
            staged, self._buffer = self._buffer, []
            m = len(staged)
            self.engine.stage(
                np.fromiter((msg.sender for msg in staged), np.int64, m),
                np.fromiter((msg.receiver for msg in staged), np.int64, m),
                words=np.fromiter((msg.size_words() for msg in staged), np.int64, m),
                refs=staged,
            )
        self._round_pairs.clear()
        return self.engine.step()

    def drain(self, max_rounds: int = 10_000) -> int:
        """Step until no staged or spilled messages remain.

        Returns the number of rounds used.  Only meaningful in non-strict
        mode (strict mode never spills).
        """
        used = 0
        while self.pending_messages():
            if used >= max_rounds:
                raise ProtocolError(
                    f"drain did not finish within {max_rounds} rounds"
                )
            self.step()
            used += 1
        return used

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def inbox(self, node: int, clear: bool = True) -> List[Message]:
        """Messages delivered to ``node`` since the last read."""
        self._check_node(node)
        view = self.engine.inbox_arrays(node, clear=clear)
        return self.engine.materialize(node, view)

    def inbox_array(self, node: int, clear: bool = True) -> InboxView:
        """Array view of ``node``'s inbox (array-plane fast path)."""
        return self.engine.inbox_arrays(node, clear=clear)

    def pending_messages(self) -> int:
        """Messages staged (plus spilled) but not yet delivered."""
        return len(self._buffer) + self.engine.pending_messages()

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise InvalidNodeError(node, self.n)

    # ------------------------------------------------------------------ #
    # Running node programs
    # ------------------------------------------------------------------ #

    def run(self, programs: Sequence["NodeProgram"], max_rounds: int = 10_000) -> int:
        """Execute one :class:`NodeProgram` per node until all halt.

        Each round: every non-halted program's :meth:`NodeProgram.on_round`
        is called with the messages received in the previous round, and its
        returned messages are staged.  Returns the number of rounds taken.
        """
        if len(programs) != self.n:
            raise ProtocolError(
                f"need exactly {self.n} programs, got {len(programs)}"
            )
        for node_id, program in enumerate(programs):
            program._attach(node_id, self)
        rounds = 0
        while any(not p.halted for p in programs):
            if rounds >= max_rounds:
                raise ProtocolError(f"protocol did not halt in {max_rounds} rounds")
            for program in programs:
                if program.halted:
                    continue
                incoming = self.inbox(program.node_id)
                outgoing = program.on_round(incoming) or []
                for message in outgoing:
                    if message.sender != program.node_id:
                        raise ProtocolError(
                            f"node {program.node_id} tried to forge sender "
                            f"{message.sender}"
                        )
                    self.send(message)
            self.step()
            rounds += 1
        return rounds


class NodeProgram:
    """Base class for a per-node synchronous protocol.

    Subclasses implement :meth:`on_round`, returning the messages to send
    this round, and call :meth:`halt` when their part of the protocol is
    done.  The clique size and own ID are available after attachment.
    """

    def __init__(self) -> None:
        self.node_id: int = -1
        self.n: int = 0
        self.halted = False
        self._clique: Optional[SimulatedClique] = None

    def _attach(self, node_id: int, clique: SimulatedClique) -> None:
        self.node_id = node_id
        self.n = clique.n
        self._clique = clique
        self.halted = False

    def on_round(self, inbox: List[Message]) -> List[Message]:
        """Process one synchronous round; return messages to send.

        ``inbox`` holds the messages delivered at the end of the previous
        round.  The default implementation halts immediately.
        """
        self.halt()
        return []

    def msg(self, receiver: int, *payload, tag: str = "") -> Message:
        """Convenience constructor for a message from this node."""
        return Message(self.node_id, receiver, tuple(payload), tag)

    def halt(self) -> None:
        """Mark this node's protocol as finished."""
        self.halted = True
