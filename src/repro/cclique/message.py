"""Messages exchanged in the message-level Congested Clique simulator.

The standard model allows ``O(log n)``-bit messages.  We account bits
explicitly: a message carries a tuple of small integers (a "word" each), and
its size is the number of words times the word width.  The simulator checks
each message against the configured bandwidth ``B`` (in bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Tuple


def word_bits(n: int) -> int:
    """Number of bits in one machine word for a clique on ``n`` nodes.

    The model's word is ``Theta(log n)`` bits; we use ``ceil(log2(n)) + 1``
    with a floor of 8 so tiny test cliques still have sane budgets.
    """
    if n < 2:
        return 8
    return max(8, math.ceil(math.log2(n)) + 1)


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    Attributes
    ----------
    sender:
        ID of the originating node.
    receiver:
        ID of the destination node.
    payload:
        A tuple of ints/floats (each counted as one word).  Algorithms are
        free to put structured data here; the simulator only sizes it.
    tag:
        Short string naming the protocol step (used for debugging and for
        per-phase statistics).  Tags are metadata and are not charged bits,
        mirroring the convention that message *types* are implicit in the
        round structure of a synchronous algorithm.
    """

    sender: int
    receiver: int
    payload: Tuple[Any, ...] = field(default_factory=tuple)
    tag: str = ""

    def size_words(self) -> int:
        """Number of machine words occupied by the payload."""
        return max(1, len(self.payload))

    def size_bits(self, n: int) -> int:
        """Size of the message in bits for a clique on ``n`` nodes."""
        return self.size_words() * word_bits(n)


@dataclass(frozen=True)
class Envelope:
    """A message together with the round in which it was delivered."""

    message: Message
    round_index: int
