"""Rule framework for the project-invariant static analysis plane.

The repo's correctness guarantees rest on conventions no general-purpose
linter knows about: every RNG draw must be seeded (bit-identity of the
kernel/engine/fault planes), ContextVar pins must be re-applied inside
executor workers, metrics snapshots must stay strictly JSON-safe, hot
paths must thread ``out=`` buffers.  This module is the machinery that
turns those conventions into machine-checked rules:

* :class:`Finding` — one structured violation (file, line, rule id,
  message, severity);
* :class:`RuleSpec` + :func:`register_rule` — the rule registry,
  mirroring :mod:`repro.core.registry`: a rule registers once and every
  consumer (the ``repro lint`` CLI, the CI gate, the test corpus)
  enumerates the same catalogue;
* :class:`LintContext` — one parsed file (parent-annotated AST, source
  lines, pragma table) handed to every applicable rule;
* :func:`lint_file` / :func:`lint_tree` — the drivers.

Suppression: a ``# lint: allow[rule-id]`` pragma on the flagged line or
the line directly above silences that rule there (comma-separate ids,
``*`` allows everything).  Pragmas are for *reviewed* exceptions — the
wall-clock profiling in ``RoundLedger`` is the canonical example — and
each should carry a justifying comment.

Rules are pure functions of the AST (stdlib ``ast`` only — no new
runtime dependencies), scoped by repo-relative path prefixes so e.g.
wall-clock rules bind to algorithm modules but not the serving tier.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Severities a rule may assign.  ``error`` findings gate CI; the plane
#: currently has no advisory tier, but the field keeps the report shape
#: ready for one.
SEVERITIES = ("error", "warning")

#: Directories the tree driver scans by default (repo-relative).
DEFAULT_SCAN_ROOTS = ("src", "benchmarks", "tests", "examples")

#: Path fragments the tree driver always skips: the known-bad fixture
#: corpus must never fail the live-tree gate, and caches are not code.
SKIP_FRAGMENTS = ("lint_fixtures", "__pycache__", ".git")

_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One structured lint violation."""

    path: str  # repo-relative, posix separators
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


class LintContext:
    """One parsed file: AST, source, pragmas — what every rule sees."""

    def __init__(self, rel_path: str, source: str, root: str = "") -> None:
        self.rel_path = rel_path.replace(os.sep, "/")
        self.source = source
        self.root = root
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.rel_path)
        self._annotate_parents()
        self._pragmas = self._collect_pragmas()

    def _annotate_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child._lint_parent = parent  # type: ignore[attr-defined]

    def _collect_pragmas(self) -> Dict[int, Tuple[str, ...]]:
        table: Dict[int, Tuple[str, ...]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if match:
                ids = tuple(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                )
                table[lineno] = ids
        return table

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ``node``'s parent chain up to the module."""
        current = getattr(node, "_lint_parent", None)
        while current is not None:
            yield current
            current = getattr(current, "_lint_parent", None)

    def allows(self, lineno: int, rule_id: str) -> bool:
        """Whether a pragma on ``lineno`` (or just above) allows ``rule_id``."""
        for candidate in (lineno, lineno - 1):
            ids = self._pragmas.get(candidate)
            if ids and ("*" in ids or rule_id in ids):
                return True
        return False

    def finding(
        self,
        node: ast.AST,
        rule_id: str,
        message: str,
        severity: str = "error",
    ) -> Optional[Finding]:
        """A :class:`Finding` for ``node`` — ``None`` when pragma-allowed."""
        lineno = getattr(node, "lineno", 1)
        if self.allows(lineno, rule_id):
            return None
        return Finding(
            path=self.rel_path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
            severity=severity,
        )


#: Uniform checker signature: one parsed file in, findings out.
RuleChecker = Callable[[LintContext], List[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """Everything a consumer needs to know about one registered rule."""

    rule_id: str
    checker: RuleChecker
    family: str
    summary: str
    include: Tuple[str, ...] = ("src/repro",)
    exclude: Tuple[str, ...] = ()
    severity: str = "error"

    def applies_to(self, rel_path: str) -> bool:
        rel_path = rel_path.replace(os.sep, "/")
        if not any(rel_path.startswith(prefix) for prefix in self.include):
            return False
        return not any(rel_path.startswith(prefix) for prefix in self.exclude)


_RULES: Dict[str, RuleSpec] = {}


def register_rule(
    rule_id: str,
    *,
    family: str,
    summary: str,
    include: Sequence[str] = ("src/repro",),
    exclude: Sequence[str] = (),
    severity: str = "error",
) -> Callable[[RuleChecker], RuleChecker]:
    """Decorator registering one lint rule (mirrors ``register_variant``).

    Registration order is preserved and defines enumeration order in the
    CLI rule listing and the JSON report's rule catalogue.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}")

    def decorator(checker: RuleChecker) -> RuleChecker:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} is already registered")
        _RULES[rule_id] = RuleSpec(
            rule_id=rule_id,
            checker=checker,
            family=family,
            summary=summary,
            include=tuple(include),
            exclude=tuple(exclude),
            severity=severity,
        )
        return checker

    return decorator


def get_rule(rule_id: str) -> RuleSpec:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown rule {rule_id!r}; registered: {', '.join(_RULES)}"
        ) from None


def rule_names() -> Tuple[str, ...]:
    """All registered rule ids, in registration order."""
    return tuple(_RULES)


def iter_rules() -> Iterator[RuleSpec]:
    return iter(tuple(_RULES.values()))


# --------------------------------------------------------------------- #
# Shared AST helpers (used by every rule family)
# --------------------------------------------------------------------- #


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name; ``None`` else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee, when it is a plain name chain."""
    return dotted_name(node.func)


def keyword_names(node: ast.Call) -> Tuple[str, ...]:
    return tuple(kw.arg for kw in node.keywords if kw.arg is not None)


def get_keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def enclosing_function(
    ctx: LintContext, node: ast.AST
) -> Optional[ast.AST]:
    """The nearest enclosing function/async-function definition."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def in_loop(ctx: LintContext, node: ast.AST) -> bool:
    """Whether ``node`` sits lexically inside a for/while loop.

    Stops at function boundaries: a helper *defined* inside a loop body
    is not itself "in a loop".  Comprehension generators count — they
    allocate per iteration just like statement loops.
    """
    previous: ast.AST = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
            return True
        if isinstance(
            ancestor, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ) and previous is not ancestor:
            return True
        previous = ancestor
    return False


def module_functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Top-level (and one-level-nested) function defs by name.

    Nested defs are keyed too — the ``register_*`` decorator factories
    hold their workers one level down, and the concurrency rules need to
    resolve locally-defined callables wherever they live.
    """
    table: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.setdefault(node.name, node)  # type: ignore[arg-type]
    return table


# --------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------- #


@dataclass
class LintReport:
    """The result of one lint pass, JSON-ready."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tool": "repro-lint",
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "parse_errors": list(self.parse_errors),
            "findings": [f.to_dict() for f in self.findings],
            "rules": [
                {
                    "rule": spec.rule_id,
                    "family": spec.family,
                    "summary": spec.summary,
                    "severity": spec.severity,
                }
                for spec in iter_rules()
            ],
        }


def lint_source(
    source: str,
    rel_path: str,
    rules: Optional[Sequence[RuleSpec]] = None,
    root: str = "",
) -> List[Finding]:
    """Lint one source string as if it lived at ``rel_path``.

    The unit-test entry point: the fixture corpus is linted under
    virtual paths (``src/repro/...``) so path-scoped rules engage
    without the fixtures living inside the package.
    """
    ctx = LintContext(rel_path, source, root=root)
    selected = list(rules) if rules is not None else list(iter_rules())
    findings: List[Finding] = []
    for spec in selected:
        if not spec.applies_to(ctx.rel_path):
            continue
        findings.extend(spec.checker(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str,
    root: str,
    rules: Optional[Sequence[RuleSpec]] = None,
) -> List[Finding]:
    """Lint one file on disk, scoping rules by its repo-relative path."""
    rel_path = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, rel_path, rules=rules, root=root)


def iter_python_files(
    root: str, paths: Optional[Sequence[str]] = None
) -> Iterator[str]:
    """Yield the python files a tree pass covers, deterministically sorted."""
    targets = list(paths) if paths else [
        os.path.join(root, d) for d in DEFAULT_SCAN_ROOTS
    ]
    seen: List[str] = []
    for target in targets:
        if os.path.isfile(target):
            seen.append(os.path.abspath(target))
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if not any(frag in d for frag in SKIP_FRAGMENTS)
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    seen.append(os.path.abspath(os.path.join(dirpath, filename)))
    for path in sorted(dict.fromkeys(seen)):
        if not any(frag in path for frag in SKIP_FRAGMENTS):
            yield path


def lint_tree(
    root: str,
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[RuleSpec]] = None,
) -> LintReport:
    """Lint the tree under ``root`` (or just ``paths``) with every rule."""
    report = LintReport()
    for path in iter_python_files(root, paths):
        report.files_scanned += 1
        try:
            report.findings.extend(lint_file(path, root, rules=rules))
        except SyntaxError as error:
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            report.parse_errors.append(f"{rel}: {error}")
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


__all__ = [
    "DEFAULT_SCAN_ROOTS",
    "Finding",
    "LintContext",
    "LintReport",
    "RuleChecker",
    "RuleSpec",
    "call_name",
    "dotted_name",
    "enclosing_function",
    "get_keyword",
    "get_rule",
    "in_loop",
    "iter_python_files",
    "iter_rules",
    "keyword_names",
    "lint_file",
    "lint_source",
    "lint_tree",
    "module_functions",
    "register_rule",
    "rule_names",
]
