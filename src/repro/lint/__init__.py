"""Project-invariant static analysis plane (``repro lint``).

An AST-based linter (stdlib ``ast`` only) enforcing the invariants the
repo's correctness rests on: seeded RNG draws (determinism), no
blocking under locks and ContextVar pin hand-off into executor workers
(concurrency), strictly JSON-safe snapshots (JSON-safety), ``out=``
buffer threading on hot paths (allocation hygiene), and complete
registry/benchmark metadata (contracts).

Rule families register themselves on import, mirroring
:mod:`repro.core.registry`: importing this package populates the rule
catalogue that :func:`lint_tree`, the CLI, and the CI gate enumerate.

Suppress a reviewed exception with ``# lint: allow[rule-id]`` on the
flagged line or the line above (comma-separate several ids; ``*``
allows all rules).  See DESIGN.md section 14 for the rule catalogue
and how to add a rule.
"""

from .framework import (
    DEFAULT_SCAN_ROOTS,
    Finding,
    LintContext,
    LintReport,
    RuleSpec,
    get_rule,
    iter_python_files,
    iter_rules,
    lint_file,
    lint_source,
    lint_tree,
    register_rule,
    rule_names,
)
from .reporting import (
    render_findings,
    render_report,
    render_rule_listing,
    write_json_report,
)

# Importing the rule families populates the registry (the same
# import-time self-registration pattern as repro.chaos.scenarios).
from . import allocation  # noqa: F401  (registers alloc-* rules)
from . import concurrency  # noqa: F401  (registers conc-* rules)
from . import contracts  # noqa: F401  (registers reg-* rules)
from . import determinism  # noqa: F401  (registers det-* rules)
from . import jsonsafety  # noqa: F401  (registers json-* rules)

__all__ = [
    "DEFAULT_SCAN_ROOTS",
    "Finding",
    "LintContext",
    "LintReport",
    "RuleSpec",
    "get_rule",
    "iter_python_files",
    "iter_rules",
    "lint_file",
    "lint_source",
    "lint_tree",
    "register_rule",
    "render_findings",
    "render_report",
    "render_rule_listing",
    "rule_names",
    "write_json_report",
]
