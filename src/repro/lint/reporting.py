"""Rendering for lint reports: terminal text and the CI JSON artifact.

The JSON artifact (``repro lint --json lint_report.json``) is what
``benchmarks/run_smoke.py`` and the CI gate validate: strict-JSON-safe
by construction (the findings are plain str/int payloads), with a
top-level ``clean`` flag so a gate needs exactly one key.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .framework import Finding, LintReport, iter_rules


def render_findings(findings: List[Finding]) -> str:
    return "\n".join(finding.render() for finding in findings)


def render_report(report: LintReport) -> str:
    """Human-readable summary for the terminal."""
    lines: List[str] = []
    if report.parse_errors:
        lines.append("parse errors:")
        lines.extend(f"  {error}" for error in report.parse_errors)
    if report.findings:
        lines.append(render_findings(report.findings))
        by_rule = Counter(f.rule for f in report.findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"\n{len(report.findings)} finding"
            f"{'s' if len(report.findings) != 1 else ''} "
            f"in {report.files_scanned} files ({breakdown})"
        )
    else:
        lines.append(
            f"clean: {report.files_scanned} files, "
            f"{len(tuple(iter_rules()))} rules, 0 findings"
        )
    return "\n".join(lines)


def render_rule_listing() -> str:
    """The ``--list-rules`` catalogue, grouped by family."""
    lines: List[str] = []
    current_family = None
    for spec in iter_rules():
        if spec.family != current_family:
            current_family = spec.family
            lines.append(f"[{spec.family}]")
        scope = ", ".join(spec.include)
        lines.append(f"  {spec.rule_id:<26} {spec.summary}  (scope: {scope})")
    return "\n".join(lines)


def write_json_report(report: LintReport, path: str) -> None:
    """Write the CI artifact; ``allow_nan=False`` enforces strictness."""
    with open(path, "w", encoding="utf-8") as sink:
        json.dump(
            report.to_dict(), sink, indent=2, sort_keys=True, allow_nan=False
        )
        sink.write("\n")


__all__ = [
    "render_findings",
    "render_report",
    "render_rule_listing",
    "write_json_report",
]
