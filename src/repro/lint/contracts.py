"""Registry-contract rules: catalogue metadata and benchmark artifacts.

The registries are the repo's API surface — the CLI, the experiment
runner, and the benchmark fixtures all enumerate them — so incomplete
metadata is a user-visible hole, not a style nit:

* ``reg-variant-metadata`` — every ``@register_variant`` must carry a
  literal name plus non-empty ``display_name``/``summary``/
  ``factor_formula``/``rounds_note``; every ``@register_scenario``
  non-empty ``summary``/``faults``/``recovery``.  (Empty strings render
  as blank cells in ``repro run --help`` tables and the frontier
  output.)
* ``reg-bench-tag`` — a benchmark module that writes a ``BENCH_*.json``
  artifact must stamp an ``experiment`` tag, and the (artifact, tag)
  pair must be validated by ``benchmarks/run_smoke.py``'s ``SUITES``
  table — otherwise CI silently stops checking that plane.  The SUITES
  table is parsed from the runner's AST at lint time, so the two can
  never drift apart.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Set, Tuple

from .framework import Finding, LintContext, call_name, register_rule

#: register_variant keywords that must be present, non-empty literals.
_VARIANT_REQUIRED = ("display_name", "summary", "factor_formula", "rounds_note")

#: register_scenario keywords that must be present, non-empty literals.
_SCENARIO_REQUIRED = ("summary", "faults", "recovery")

_BENCH_ARTIFACT = re.compile(r"^BENCH_\w+\.json$")
_EXPERIMENT_TAG = re.compile(r"^E\d+-[\w-]+$")


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _check_decorator_call(
    ctx: LintContext,
    node: ast.Call,
    registrar: str,
    required: Tuple[str, ...],
) -> List[Finding]:
    findings: List[Finding] = []
    name = _literal_str(node.args[0]) if node.args else None
    if name is None:
        finding = ctx.finding(
            node,
            "reg-variant-metadata",
            f"{registrar}(...) must name its entry with a string literal "
            "(consumers enumerate the catalogue by name)",
        )
        if finding:
            findings.append(finding)
        name = "<dynamic>"
    present: Dict[str, Optional[str]] = {}
    for kw in node.keywords:
        if kw.arg is not None:
            present[kw.arg] = _literal_str(kw.value)
    for key in required:
        if key not in present:
            message = (
                f"{registrar}({name!r}) is missing metadata {key!r}; "
                "every catalogue entry must be fully described"
            )
        elif present[key] == "":
            message = (
                f"{registrar}({name!r}) declares empty {key!r}; it renders "
                "as a blank cell in every enumerating consumer"
            )
        else:
            continue
        finding = ctx.finding(node, "reg-variant-metadata", message)
        if finding:
            findings.append(finding)
    return findings


@register_rule(
    "reg-variant-metadata",
    family="registry",
    summary="register_variant/register_scenario metadata completeness",
    include=("src/repro",),
)
def check_registry_metadata(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = call_name(node)
        if callee is None:
            continue
        base = callee.rsplit(".", 1)[-1]
        if base == "register_variant":
            findings.extend(
                _check_decorator_call(
                    ctx, node, "register_variant", _VARIANT_REQUIRED
                )
            )
        elif base == "register_scenario":
            findings.extend(
                _check_decorator_call(
                    ctx, node, "register_scenario", _SCENARIO_REQUIRED
                )
            )
    return findings


def _known_suites(root: str) -> Optional[Set[Tuple[str, str]]]:
    """(artifact, tag) pairs parsed from benchmarks/run_smoke.py's SUITES.

    ``None`` when the runner is absent/unparseable — the rule then only
    checks tag *presence*, not registration (fixture corpora have no
    runner to cross-reference).
    """
    path = os.path.join(root, "benchmarks", "run_smoke.py")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError):
        return None
    pairs: Set[Tuple[str, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        if not any(
            isinstance(t, ast.Name) and t.id == "SUITES" for t in targets
        ):
            continue
        value = node.value
        if not isinstance(value, ast.List):
            continue
        for element in value.elts:
            if isinstance(element, ast.Tuple) and len(element.elts) >= 3:
                artifact = _literal_str(element.elts[1])
                tag = _literal_str(element.elts[2])
                if artifact and tag:
                    pairs.add((artifact, tag))
    return pairs or None


@register_rule(
    "reg-bench-tag",
    family="registry",
    summary="BENCH_*.json emitters declare a run_smoke-validated tag",
    include=("benchmarks/",),
    exclude=("benchmarks/run_smoke.py", "benchmarks/conftest.py"),
)
def check_bench_tag(ctx: LintContext) -> List[Finding]:
    artifacts: List[Tuple[str, ast.Constant]] = []
    tags: List[str] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _BENCH_ARTIFACT.match(node.value):
                artifacts.append((node.value, node))
            elif _EXPERIMENT_TAG.match(node.value):
                tags.append(node.value)
    if not artifacts:
        return []
    findings: List[Finding] = []
    if not tags:
        first = artifacts[0][1]
        finding = ctx.finding(
            first,
            "reg-bench-tag",
            f"this module writes {artifacts[0][0]} but declares no "
            "experiment tag ('E<n>-<name>'); untagged artifacts cannot be "
            "validated by benchmarks/run_smoke.py",
        )
        if finding:
            findings.append(finding)
        return findings
    known = _known_suites(ctx.root)
    if known is None:
        return findings
    registered_artifacts = {artifact for artifact, _ in known}
    for artifact, node in artifacts:
        if artifact not in registered_artifacts:
            finding = ctx.finding(
                node,
                "reg-bench-tag",
                f"{artifact} is not validated by run_smoke.py's SUITES "
                "table; register it (artifact, tag, gate) so CI checks it",
            )
            if finding:
                findings.append(finding)
            continue
        if not any((artifact, tag) in known for tag in tags):
            finding = ctx.finding(
                node,
                "reg-bench-tag",
                f"{artifact}'s experiment tag does not match run_smoke.py's "
                f"SUITES entry (declared here: {', '.join(sorted(set(tags)))})",
            )
            if finding:
                findings.append(finding)
    return findings
