"""JSON-safety rules: snapshots must survive a strict JSON round-trip.

The metrics plane's contract (``ServiceMetrics.snapshot`` and friends)
is that every emitted payload survives ``json.loads(json.dumps(...))``
bit-for-bit under a *strict* parser: no ``NaN``, no ``Infinity``, no
numpy scalars (they serialize but don't round-trip types).  Empty
streams report ``None``, never ``float("nan")``.

``json-nan-leak`` inspects every function named ``snapshot`` /
``to_dict`` / ``to_json`` and flags value expressions that can smuggle
a non-finite or numpy value into the payload:

* numpy reductions (``np.mean``/``.min()``/``.max()``/``.item()`` ...)
  used without a finiteness guard or sanitizer in the function;
* explicit ``float("nan")`` / ``float("inf")`` literals;
* bare division used as a dict/return value outside a conditional
  expression (the ``x / y if y else None`` guard is the sanctioned
  shape).

A call is considered guarded when the enclosing function mentions a
finiteness check (``isfinite``/``isnan``) or routes values through a
sanitizer (a callee whose name contains ``jsonable``, ``json_safe``,
``finite`` or ``sanitize``).
"""

from __future__ import annotations

import ast
from typing import List

from .framework import Finding, LintContext, call_name, register_rule

#: Function names whose return value is a JSON payload by convention.
_SNAPSHOT_NAMES = {"snapshot", "to_dict", "to_json"}

#: Method reductions that yield numpy scalars (and can be NaN/inf).
_NUMPY_REDUCERS = {
    "min", "max", "mean", "sum", "std", "var", "ptp", "item",
    "nanmin", "nanmax", "nanmean", "nansum", "quantile", "percentile",
}

#: Substrings marking a sanitizing callee.
_SANITIZER_HINTS = ("jsonable", "json_safe", "finite", "sanitize", "isnan")


def _mentions_guard(func: ast.AST) -> bool:
    """Whether the function body contains any finiteness guard at all."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node) or ""
            lowered = name.lower()
            if any(hint in lowered for hint in _SANITIZER_HINTS):
                return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "isfinite", "isnan", "isinf"
        ):
            return True
    return False


def _inside_conditional(ctx: LintContext, node: ast.AST, func: ast.AST) -> bool:
    """Whether ``node`` sits under an if/ifexp within ``func``."""
    for ancestor in ctx.ancestors(node):
        if ancestor is func:
            return False
        if isinstance(ancestor, (ast.IfExp, ast.If)):
            return True
    return False


def _is_nonfinite_float_literal(node: ast.Call) -> bool:
    name = call_name(node)
    if name != "float" or len(node.args) != 1:
        return False
    arg = node.args[0]
    return isinstance(arg, ast.Constant) and isinstance(arg.value, str) and (
        arg.value.lower().strip("+-") in ("nan", "inf", "infinity")
    )


@register_rule(
    "json-nan-leak",
    family="json-safety",
    summary="snapshot/to_dict/to_json payloads must stay strictly JSON-safe",
)
def check_nan_leak(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name not in _SNAPSHOT_NAMES:
            continue
        guarded = _mentions_guard(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if _is_nonfinite_float_literal(node):
                    finding = ctx.finding(
                        node,
                        "json-nan-leak",
                        f"{func.name}() emits a non-finite float literal; "
                        "strict JSON payloads must use None for missing data",
                    )
                    if finding:
                        findings.append(finding)
                    continue
                if guarded:
                    continue
                name = call_name(node)
                if name is None:
                    # ``sorted(x).mean()``-style chains: fall back to the
                    # attribute name alone.
                    if isinstance(node.func, ast.Attribute):
                        attr = node.func.attr
                        if attr in _NUMPY_REDUCERS:
                            finding = ctx.finding(
                                node,
                                "json-nan-leak",
                                f"{func.name}() folds .{attr}() into the "
                                "payload without a finiteness guard; NaN/inf "
                                "and numpy scalars break the strict JSON "
                                "round-trip",
                            )
                            if finding:
                                findings.append(finding)
                    continue
                parts = name.split(".")
                if parts[0] in ("np", "numpy") and parts[-1] in _NUMPY_REDUCERS:
                    reducer = name
                elif parts[-1] in _NUMPY_REDUCERS and len(parts) > 1:
                    reducer = f".{parts[-1]}"
                else:
                    continue
                finding = ctx.finding(
                    node,
                    "json-nan-leak",
                    f"{func.name}() folds {reducer}() into the payload "
                    "without a finiteness guard; NaN/inf and numpy scalars "
                    "break the strict JSON round-trip",
                )
                if finding:
                    findings.append(finding)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if guarded or _inside_conditional(ctx, node, func):
                    continue
                parent = getattr(node, "_lint_parent", None)
                emitted = isinstance(parent, (ast.Dict, ast.Return)) or (
                    isinstance(parent, ast.keyword)
                )
                if not emitted:
                    continue
                finding = ctx.finding(
                    node,
                    "json-nan-leak",
                    f"{func.name}() emits a bare division; guard it "
                    "(`x / y if y else None`) so empty streams report None",
                )
                if finding:
                    findings.append(finding)
    return findings
