"""Concurrency rules: locks, shared state, and the executor pin hand-off.

Three hazards this repo has actually hit (PR 6's build stampede is the
canonical case) are machine-checked here:

* ``conc-blocking-in-lock`` — blocking while holding a lock (a future's
  ``.result()``, ``Event.wait``, ``time.sleep``, ``join``, file/process
  I/O inside a ``with <lock>:`` body) serialises every other path
  through that lock and is one waiter away from deadlock.  The
  single-flight build in ``OracleStore.get_or_build`` shows the correct
  shape: park the event *outside* the critical section.
* ``conc-global-mutation`` — mutating module-level mutable state from
  inside a function without holding a lock.  Registries mutated at
  import time by ``register_*`` decorators are exempt (imports are
  effectively single-threaded); everything else must take a lock or
  move the state into an object that owns one.
* ``conc-worker-contextvar`` — functions handed to executor
  ``submit``/``map`` run without the caller's ContextVars (always for
  processes, per-task for threads).  A worker that reaches an
  ambient-pin consumer (``minplus``, ``run_variant``, ...) must
  re-apply the captured pin (``use_kernel``/``use_shard_plan``) or pass
  the kernel explicitly — the ``solve_many`` hand-off pattern
  (capture at submit, re-apply in ``_solve_one``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .framework import (
    Finding,
    LintContext,
    call_name,
    dotted_name,
    get_keyword,
    module_functions,
    register_rule,
)

#: Callee suffixes that block the calling thread.  ``.join`` is only
#: blocking on thread/process-ish receivers (string joins are everywhere)
#: and is handled separately below.
_BLOCKING_SUFFIXES = (".result", ".wait", ".acquire", ".shutdown")

_JOINABLE_HINTS = ("thread", "process", "proc", "worker", "pool", "future")

#: Fully-qualified blocking calls.
_BLOCKING_NAMES = {
    "time.sleep", "open", "subprocess.run", "subprocess.check_output",
    "subprocess.check_call", "subprocess.call", "subprocess.Popen",
}

#: Lock-ish context expressions: the heuristic is name-based (``lock``
#: anywhere in the dotted name, case-insensitive).  Condition variables
#: release their lock while waiting, so ``cond``-named contexts are
#: deliberately not matched.
def _is_lock_expr(node: ast.AST) -> bool:
    name = dotted_name(node)
    if isinstance(node, ast.Call):
        name = call_name(node)
    return name is not None and "lock" in name.lower()


#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "collections.OrderedDict", "collections.defaultdict", "collections.deque",
}

#: Mutating method names on dict/list/set-like objects.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft",
}

#: Ambient-pin consumers: callables whose behaviour depends on the
#: kernel/shard ContextVars.  A worker that reaches one must re-apply
#: the pins captured at submit time.
_AMBIENT_CONSUMERS = {
    "minplus", "minplus_square", "minplus_power", "hop_limited_distances",
    "run_variant", "resolve_kernel", "resolve_shard_plan", "sharded_minplus",
}

#: Calls that re-establish the ambient pins inside a worker.
_PIN_APPLIERS = {"use_kernel", "use_shard_plan"}


def _with_lock_bodies(ctx: LintContext) -> List[ast.With]:
    return [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.With, ast.AsyncWith))
        and any(_is_lock_expr(item.context_expr) for item in node.items)
    ]


@register_rule(
    "conc-blocking-in-lock",
    family="concurrency",
    summary="blocking calls (.result/.wait/sleep/I-O) inside a held lock",
)
def check_blocking_in_lock(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for with_node in _with_lock_bodies(ctx):
        for node in ast.walk(with_node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            blocking = name in _BLOCKING_NAMES or any(
                name.endswith(suffix) for suffix in _BLOCKING_SUFFIXES
            )
            if name.endswith(".join"):
                receiver = name[: -len(".join")].lower()
                blocking = any(hint in receiver for hint in _JOINABLE_HINTS)
            if not blocking:
                continue
            finding = ctx.finding(
                node,
                "conc-blocking-in-lock",
                f"{name}() blocks while a lock is held; move the wait "
                "outside the critical section (see OracleStore."
                "get_or_build's single-flight pattern)",
            )
            if finding:
                findings.append(finding)
    return findings


def _module_mutable_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable literals/constructors."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set))
        if isinstance(value, ast.Call):
            callee = call_name(value)
            mutable = callee in _MUTABLE_CONSTRUCTORS
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _inside_registration(ctx: LintContext, node: ast.AST) -> bool:
    """Whether ``node`` lives under a ``register_*`` decorator factory."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if ancestor.name.startswith(("register", "_register")):
                return True
    return False


def _inside_lock(ctx: LintContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)) and any(
            _is_lock_expr(item.context_expr) for item in ancestor.items
        ):
            return True
    return False


@register_rule(
    "conc-global-mutation",
    family="concurrency",
    summary="module-level mutable state mutated in functions without a lock",
)
def check_global_mutation(ctx: LintContext) -> List[Finding]:
    mutable = _module_mutable_names(ctx.tree)
    if not mutable:
        return []
    findings: List[Finding] = []

    def flag(node: ast.AST, name: str, how: str) -> None:
        if _inside_registration(ctx, node) or _inside_lock(ctx, node):
            return
        if not any(
            isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
            for a in ctx.ancestors(node)
        ):
            return  # import-time module body is single-threaded
        finding = ctx.finding(
            node,
            "conc-global-mutation",
            f"module-level {name!r} is {how} outside a lock; thread/process "
            "workers can race this — guard it or own it in a locked object",
        )
        if finding:
            findings.append(finding)

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable
                ):
                    flag(node, target.value.id, "subscript-assigned")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in mutable
                and func.attr in _MUTATING_METHODS
            ):
                flag(node, func.value.id, f"mutated via .{func.attr}()")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable
                ):
                    flag(node, target.value.id, "del-mutated")
    return findings


def _worker_names(ctx: LintContext) -> Dict[str, ast.Call]:
    """Function names handed to executor ``submit``/``map`` calls."""
    workers: Dict[str, ast.Call] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("submit", "map"):
            continue
        owner = dotted_name(func.value) or ""
        if not any(tag in owner.lower() for tag in ("pool", "executor")):
            continue
        if node.args and isinstance(node.args[0], ast.Name):
            workers.setdefault(node.args[0].id, node)
    return workers


def _calls_in(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                names.add(name)
    return names


def _explicit_kernel_everywhere(func: ast.AST) -> bool:
    """True when every ambient-consumer call pins the kernel explicitly."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        base = name.rsplit(".", 1)[-1]
        if base in _AMBIENT_CONSUMERS and base not in (
            "resolve_kernel", "resolve_shard_plan"
        ):
            if get_keyword(node, "kernel") is None:
                return False
    return True


@register_rule(
    "conc-worker-contextvar",
    family="concurrency",
    summary="executor workers reaching ambient pins must re-apply them",
)
def check_worker_contextvar(ctx: LintContext) -> List[Finding]:
    workers = _worker_names(ctx)
    if not workers:
        return []
    functions = module_functions(ctx.tree)
    findings: List[Finding] = []
    for worker, submit_call in workers.items():
        target = functions.get(worker)
        if target is None:
            continue
        # Transitive closure over same-module callees: _solve_task ->
        # _solve_one is the shipped pattern and must resolve.
        seen: Set[str] = set()
        frontier = [target]
        reaches_consumer = False
        applies_pin = False
        while frontier:
            current = frontier.pop()
            calls = _calls_in(current)
            bases = {name.rsplit(".", 1)[-1] for name in calls}
            if bases & _PIN_APPLIERS:
                applies_pin = True
            hit = bases & _AMBIENT_CONSUMERS
            if hit and not _explicit_kernel_everywhere(current):
                reaches_consumer = True
            for name in calls:
                if name in functions and name not in seen:
                    seen.add(name)
                    frontier.append(functions[name])
        if reaches_consumer and not applies_pin:
            finding = ctx.finding(
                submit_call,
                "conc-worker-contextvar",
                f"worker {worker!r} reaches an ambient-pin consumer "
                "(minplus/run_variant/...) but never re-applies "
                "use_kernel/use_shard_plan; capture the pins at submit "
                "and re-apply them inside the worker (the solve_many "
                "hand-off)",
            )
            if finding:
                findings.append(finding)
    return findings
