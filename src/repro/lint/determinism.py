"""Determinism rules: every random draw seeded, no ambient wall clocks.

The bit-identity guarantees this repo advertises — same seed, same
spanner, same fault trace, same estimate across executors — hold only
if *every* source of nondeterminism is threaded explicitly:

* ``det-unseeded-rng`` — ``np.random.default_rng()`` (or a bare
  ``default_rng()``) with no seed mints a fresh OS-entropy generator;
  results become unreproducible.  Pass a seed or an existing generator.
* ``det-global-random-state`` — the legacy ``np.random.*`` module-level
  state (``np.random.seed``/``rand``/``randint``/``shuffle``/...) is
  process-global: any consumer can reseed it under you, and worker
  processes fork divergent copies.  Use ``default_rng(seed)`` streams.
* ``det-stdlib-random`` — same hazard for the stdlib ``random`` module
  functions and for unseeded ``random.Random()`` instances.
* ``det-wallclock`` — wall-clock reads (``time.time``,
  ``time.perf_counter``, ``datetime.now`` ...) inside *algorithm*
  modules make behaviour time-dependent.  Measurement belongs to the
  ledger/serving layers; the few legitimate algorithm-layer sites (the
  ``RoundLedger`` phase profiler) carry ``# lint: allow[det-wallclock]``
  pragmas.
"""

from __future__ import annotations

import ast
from typing import List

from .framework import Finding, LintContext, call_name, register_rule

#: np.random attributes that are deterministic constructors, not global
#: state: explicitly seeded generators and the seeding primitives.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "BitGenerator",
}

#: stdlib ``random`` module-level functions that draw from (or mutate)
#: the process-global Mersenne Twister.
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "randbytes",
}

#: Wall-clock entry points; behaviour depending on any of these inside
#: an algorithm module breaks replay determinism.
_WALLCLOCK_FNS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.today",
    "datetime.datetime.today",
}

#: Algorithm modules — where wall clocks are forbidden.  The serving
#: tier, the facade, and the CLI measure latency legitimately.
_ALGO_INCLUDE = (
    "src/repro/core", "src/repro/graphs", "src/repro/semiring",
    "src/repro/spanners", "src/repro/mst", "src/repro/protocols",
    "src/repro/cclique", "src/repro/chaos",
)

_EVERYWHERE = ("src/repro", "benchmarks", "tests", "examples")


@register_rule(
    "det-unseeded-rng",
    family="determinism",
    summary="np.random.default_rng() must be seeded (or handed a generator)",
    include=_EVERYWHERE,
)
def check_unseeded_rng(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None or not (
            name == "default_rng" or name.endswith(".default_rng")
        ):
            continue
        if node.args or node.keywords:
            continue
        finding = ctx.finding(
            node,
            "det-unseeded-rng",
            "default_rng() without a seed mints an OS-entropy generator; "
            "pass a seed (or thread an existing rng) to keep runs "
            "reproducible",
        )
        if finding:
            findings.append(finding)
    return findings


@register_rule(
    "det-global-random-state",
    family="determinism",
    summary="legacy np.random.* global-state functions are banned",
    include=_EVERYWHERE,
)
def check_global_random_state(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        for root in ("np.random.", "numpy.random."):
            if name.startswith(root):
                attr = name[len(root):].split(".", 1)[0]
                if attr not in _NP_RANDOM_OK:
                    finding = ctx.finding(
                        node,
                        "det-global-random-state",
                        f"{name}() uses process-global RNG state; draw from "
                        "an explicitly seeded np.random.default_rng(seed) "
                        "stream instead",
                    )
                    if finding:
                        findings.append(finding)
                break
    return findings


@register_rule(
    "det-stdlib-random",
    family="determinism",
    summary="stdlib random.* module functions / unseeded random.Random()",
    include=_EVERYWHERE,
)
def check_stdlib_random(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        message = None
        if name == "random.Random" and not (node.args or node.keywords):
            message = (
                "random.Random() without a seed is nondeterministic; "
                "pass a seed"
            )
        elif (
            name.startswith("random.")
            and name[len("random."):] in _STDLIB_RANDOM_FNS
        ):
            message = (
                f"{name}() draws from the process-global stdlib RNG; use a "
                "seeded random.Random(seed) or np.random.default_rng(seed)"
            )
        if message:
            finding = ctx.finding(node, "det-stdlib-random", message)
            if finding:
                findings.append(finding)
    return findings


@register_rule(
    "det-wallclock",
    family="determinism",
    summary="wall-clock reads are banned in algorithm modules",
    include=_ALGO_INCLUDE,
)
def check_wallclock(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name in _WALLCLOCK_FNS:
            finding = ctx.finding(
                node,
                "det-wallclock",
                f"{name}() makes algorithm behaviour time-dependent; "
                "measurement belongs to the ledger/serving layers "
                "(# lint: allow[det-wallclock] for reviewed profiling sites)",
            )
            if finding:
                findings.append(finding)
    return findings
