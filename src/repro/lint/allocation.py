"""Allocation-hygiene rules: hot paths must not allocate (n, n) per step.

PR 9 threaded ``out=`` destination buffers through the dense min-plus
dispatcher and the next-hop construction exactly so repeated products
stop allocating an ``(n, n)`` temporary per squaring.  These rules keep
that discipline from regressing:

* ``alloc-no-out-in-loop`` — a call to ``minplus``/``minplus_square``/
  ``next_hop_table`` lexically inside a loop that does not pass the
  available ``out=`` buffer allocates a fresh dense result every
  iteration; ping-pong two preallocated buffers instead
  (``minplus_power`` is the reference implementation).
* ``alloc-dense-temp-in-loop`` — ``np.full``/``np.zeros``/``np.empty``/
  ``np.ones`` of a square ``(n, n)`` shape inside a loop is the same
  regression in literal form.

Both rules are scoped to ``src/repro`` — benchmarks and tests allocate
freely on purpose.
"""

from __future__ import annotations

import ast
from typing import List

from .framework import (
    Finding,
    LintContext,
    call_name,
    get_keyword,
    in_loop,
    register_rule,
)

#: Callables that accept a destination buffer, and the kwarg to pass.
_OUT_CAPABLE = {
    "minplus": "out",
    "minplus_square": "out",
    "next_hop_table": "out",
}

#: numpy allocators the dense-temp rule watches.
_ALLOCATORS = {"np.full", "np.zeros", "np.empty", "np.ones",
               "numpy.full", "numpy.zeros", "numpy.empty", "numpy.ones"}


@register_rule(
    "alloc-no-out-in-loop",
    family="allocation",
    summary="looped minplus/next_hop_table calls must thread out= buffers",
)
def check_no_out_in_loop(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        base = name.rsplit(".", 1)[-1]
        out_kwarg = _OUT_CAPABLE.get(base)
        if out_kwarg is None:
            continue
        if not in_loop(ctx, node):
            continue
        if get_keyword(node, out_kwarg) is not None:
            continue
        finding = ctx.finding(
            node,
            "alloc-no-out-in-loop",
            f"{base}() inside a loop without {out_kwarg}= allocates a dense "
            "result every iteration; preallocate and ping-pong buffers "
            "(see minplus_power)",
        )
        if finding:
            findings.append(finding)
    return findings


def _square_shape(node: ast.expr) -> bool:
    """Whether a shape argument is a 2-tuple of identical expressions."""
    if not isinstance(node, (ast.Tuple, ast.List)) or len(node.elts) != 2:
        return False
    first, second = node.elts
    return ast.dump(first) == ast.dump(second)


@register_rule(
    "alloc-dense-temp-in-loop",
    family="allocation",
    summary="square (n, n) numpy allocations inside loops",
)
def check_dense_temp_in_loop(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name not in _ALLOCATORS:
            continue
        if not node.args or not _square_shape(node.args[0]):
            continue
        if not in_loop(ctx, node):
            continue
        finding = ctx.finding(
            node,
            "alloc-dense-temp-in-loop",
            f"{name}((n, n)) inside a loop allocates a dense square "
            "temporary every iteration; hoist the buffer out of the loop",
        )
        if finding:
            findings.append(finding)
    return findings
