"""Round / approximation tradeoff (Section 8.4, Theorem 1.2).

For any ``t >= 1``, an ``O(log^{2^{-t}} n)``-approximation in O(t) rounds:
the Theorem 1.1 pipeline with the per-scale Theorem 7.1 solver replaced by
the round-limited Lemma 8.2 solver with parameter ``t + 1`` (Lemma 8.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from .apsp import apsp_theorem11
from .results import Estimate
from .small_diameter import apsp_round_limited, tradeoff_factor_bound


def apsp_tradeoff(
    graph: WeightedGraph,
    t: int,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 0.1,
) -> Estimate:
    """Theorem 1.2: ``O(log^{2^{-t}} n)``-approximate APSP in O(t) rounds."""
    if t < 1:
        raise ValueError("t must be >= 1")
    result = apsp_theorem11(graph, rng, ledger=ledger, eps=eps, tradeoff_t=t)
    result.meta["t"] = t
    result.meta["tradeoff_bound"] = tradeoff_factor_bound(graph.n, t)
    return result


__all__ = [
    "apsp_round_limited",
    "apsp_tradeoff",
    "tradeoff_factor_bound",
]
