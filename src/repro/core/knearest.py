"""Fast computation of the k-nearest nodes (Section 5, Lemmas 5.1–5.3).

The paper computes, for every node ``u``, the ``h``-hop distances to its
``k`` nearest nodes ``N^h_k(u)`` in O(1) rounds whenever ``k in O(n^{1/h})``
(Lemma 5.1), then iterates ``i`` times to reach ``h^i``-hop distances in
O(i) rounds (Lemma 5.2).  Combined with a ``k``-nearest ``h^i``-hopset this
yields exact distances to ``N_k(u)`` (Lemma 3.3).

Executable content:

* the *output* of each round is the filtered power ``filter_k(Ā^h)``
  (Lemmas 5.4/5.5), computed here with the row-sparse Bellman–Ford of
  :mod:`repro.semiring.minplus` — exactly the local computation of the node
  assigned an h-combination, applied globally;
* the *communication structure* — bins, h-combinations, and their counting
  claims (``h * C(p, h) <= n``, bin assignments, the set ``S`` of queried
  nodes) — is implemented in :class:`BinPlan` and validated in tests;
* the *round cost* is charged per Lemma 5.3: two Lemma 2.2 routings per
  iteration, after validating ``k in O(n^{1/h})``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations, islice
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..cclique.errors import LoadPreconditionError
from ..semiring.minplus import (
    RowSparse,
    hop_power_row_sparse,
    k_smallest_in_rows,
    row_sparse_from_dense,
)
from . import params


@dataclass
class BinPlan:
    """The bin / h-combination bookkeeping of Section 5.2.

    The global edge list ``M`` (all nodes' k-edge lists concatenated in ID
    order) is split into ``p = floor(n^{1/h} * h / 4)`` contiguous bins; each
    way of choosing ``h`` distinct bins with a distinguished first bin is an
    *h-combination*, assigned to a distinct node.  The plan records the
    arithmetic and exposes the counting facts the correctness proof uses.
    """

    n: int
    k: int
    h: int
    p: int
    bin_size: int
    combination_count: int
    trivial: bool

    @property
    def feasible(self) -> bool:
        """Both standing assumptions of Section 5.2 hold."""
        return not self.trivial

    def assignments(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """Enumerate h-combinations as tuples ``(first, *rest)``.

        ``rest`` is an unordered set (sorted here); the first bin is
        distinguished.  ``limit`` truncates the enumeration *lazily* —
        only the requested prefix is ever materialised (tests only need
        prefixes for large instances, where the full ``h * C(p, h)`` list
        is huge).  Full enumerations are memoised per ``(p, h)``, shared
        across the equal-parameter plans each pipeline level rebuilds.
        """
        if limit is not None:
            return list(islice(_iter_assignments(self.p, self.h), max(0, limit)))
        return list(_full_assignments(self.p, self.h))

    def bin_of_global_index(self, index: int) -> int:
        """Bin containing position ``index`` of the global list ``M``."""
        if not 0 <= index < self.n * self.k:
            raise ValueError("global index out of range")
        return min(self.p - 1, index // self.bin_size)

    def bins_touching_node(self, u: int) -> List[int]:
        """Bins containing entries of node ``u``'s local list ``M(u)``.

        Since a bin is much larger than a local list, at most two bins
        intersect ``M(u)`` (used in Lemma 5.3's bound ``|S| <= 2n/p``).
        """
        first = self.bin_of_global_index(u * self.k)
        last = self.bin_of_global_index((u + 1) * self.k - 1)
        return list(range(first, last + 1))


def _iter_assignments(p: int, h: int) -> Iterator[Tuple[int, ...]]:
    """Lazily yield the Section 5.2 h-combinations ``(first, *rest)``.

    ``others`` is ascending, so ``combinations`` emits each ``rest``
    already sorted — the historical per-tuple ``sorted`` call was a no-op.
    """
    for first in range(p):
        others = [b for b in range(p) if b != first]
        yield from ((first, *rest) for rest in combinations(others, h - 1))


@lru_cache(maxsize=32)
def _full_assignments(p: int, h: int) -> Tuple[Tuple[int, ...], ...]:
    """The complete enumeration, memoised per ``(p, h)``."""
    return tuple(_iter_assignments(p, h))


def make_bin_plan(n: int, k: int, h: int) -> BinPlan:
    """Compute the Section 5.2 parameters, flagging the trivial regimes.

    The trivial regimes (``p < h`` or bin size <= k) imply ``k in O(1)`` and
    the problem is solved by direct broadcast (the paper's "Assumptions"
    paragraph); callers fall back accordingly.
    """
    if n < 1 or k < 1 or h < 1:
        raise ValueError("need n, k, h >= 1")
    p = int(math.floor(n ** (1.0 / h) * h / 4.0))
    if p < h or p <= 0:
        return BinPlan(n, k, h, max(p, 0), 0, 0, trivial=True)
    bin_size = -(-n * k // p)  # ceil
    if bin_size <= k:
        return BinPlan(n, k, h, p, bin_size, 0, trivial=True)
    count = h * math.comb(p, h)
    return BinPlan(n, k, h, p, bin_size, count, trivial=False)


@dataclass
class KNearestResult:
    """Distances to the k nearest nodes (per the relevant hop bound)."""

    indices: np.ndarray  # (n, k) node ids, -1 padding
    values: np.ndarray  # (n, k) distances, inf padding
    k: int
    h: int
    iterations: int

    def to_row_sparse(self, n_cols: int) -> RowSparse:
        return RowSparse(indices=self.indices, values=self.values, n_cols=n_cols)

    def dense(self, n: int) -> np.ndarray:
        """Dense (n, n) matrix with inf outside the known entries."""
        return self.to_row_sparse(n).to_dense()

    def known_mask(self, n: int) -> np.ndarray:
        """Boolean (n, n) mask of pairs (u, v) with v in the k-nearest set."""
        mask = np.zeros((n, n), dtype=bool)
        rows = np.repeat(np.arange(n), self.indices.shape[1])
        cols = self.indices.ravel()
        keep = cols >= 0
        mask[rows[keep], cols[keep]] = True
        return mask


def _charge_one_iteration(ledger: RoundLedger, n: int, k: int, h: int, plan: BinPlan) -> None:
    """Charge the O(1) rounds of one Lemma 5.1 execution.

    Step 3 (learning bins): each node receives h bins of O(n/h) edges =
    O(n) words.  Step 4 (queries): |S| * k <= 2 (n/p) k in O(n) words.
    Both are Lemma 2.2 routings; the loads are validated explicitly.
    """
    if plan.trivial:
        # k in O(1): all nodes broadcast their k edges directly.
        ledger.charge_broadcast(3 * n * k, detail="k-nearest trivial broadcast")
        return
    bin_messages = plan.bin_size * h
    ledger.charge_redundancy_routing(
        max_received_per_node=bin_messages,
        detail=f"bin contents (h={h} bins of {plan.bin_size} edges)",
    )
    s_size = max(1, 2 * n // plan.p + 1)
    ledger.charge_redundancy_routing(
        max_received_per_node=s_size * k,
        detail=f"k-nearest query responses (|S|<={s_size}, k={k})",
    )


def knearest_one_round(
    matrix: np.ndarray,
    k: int,
    h: int,
    ledger: Optional[RoundLedger] = None,
    validate: bool = True,
) -> KNearestResult:
    """Lemma 5.1: h-hop distances to ``N^h_k(u)`` for every ``u``, O(1) rounds.

    ``matrix`` is a min-plus adjacency matrix with zero diagonal (weights of
    ``G`` or of ``G ∪ H``).  The result rows are the k smallest entries of
    ``A^h`` per row, obtained via the filtered power ``Ā^h`` (Lemma 5.5
    guarantees they coincide; tests verify it).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if validate and not params.knearest_feasible(n, k, h):
        raise LoadPreconditionError(
            f"k = {k} exceeds O(n^(1/h)) = "
            f"{params.KNEAREST_LOAD_CONSTANT} * {n ** (1.0 / h):.2f} "
            f"for h = {h} (Lemma 5.1 precondition)"
        )
    plan = make_bin_plan(n, k, h)
    if ledger is not None:
        _charge_one_iteration(ledger, n, k, h, plan)
    sparse = row_sparse_from_dense(matrix, k)
    powered = hop_power_row_sparse(sparse, h)
    indices, values = k_smallest_in_rows(powered, k)
    return KNearestResult(indices=indices, values=values, k=k, h=h, iterations=1)


def knearest_iterated(
    matrix: np.ndarray,
    k: int,
    h: int,
    iterations: int,
    ledger: Optional[RoundLedger] = None,
    validate: bool = True,
) -> KNearestResult:
    """Lemma 5.2: ``h^i``-hop distances to ``N^{h^i}_k(u)`` in O(i) rounds.

    Iterates Lemma 5.1: the filtered output of round ``j`` (a matrix with k
    finite entries per row) is the input of round ``j + 1``.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    n = matrix.shape[0]
    current = np.asarray(matrix, dtype=np.float64)
    result: Optional[KNearestResult] = None
    for _ in range(iterations):
        result = knearest_one_round(current, k, h, ledger=ledger, validate=validate)
        current = result.to_row_sparse(n).to_dense()
        np.fill_diagonal(current, 0.0)
    assert result is not None
    return KNearestResult(
        indices=result.indices,
        values=result.values,
        k=k,
        h=h,
        iterations=iterations,
    )


def knearest_exact_via_hopset(
    augmented_matrix: np.ndarray,
    k: int,
    h: int,
    beta: int,
    ledger: Optional[RoundLedger] = None,
    validate: bool = True,
) -> KNearestResult:
    """Lemma 3.3: exact distances to ``N_k(u)`` given a k-nearest beta-hopset.

    ``augmented_matrix`` is the adjacency of ``G ∪ H``.  The iteration count
    is the smallest ``i`` with ``h^i >= beta``; the hopset guarantees an
    exact-length path of at most ``beta`` hops to every k-nearest node, so
    the ``h^i``-hop distances are the true distances on those pairs.
    """
    i = params.knearest_iterations(beta, h)
    return knearest_iterated(
        augmented_matrix, k, h, i, ledger=ledger, validate=validate
    )
