"""Approximation factor reduction (Lemma 3.1).

One application turns an ``a``-approximation of APSP into a
``15 sqrt(a)``-approximation in O(1) rounds, provided
``log d in a^{O(1)}``:

1. build a sqrt(n)-nearest ``O(a log d)``-hopset from the given estimate
   (Lemma 3.2);
2. compute exact distances to the ``k = n^{1/h}`` nearest nodes with
   ``h = a^{1/4} / 2`` (Lemma 3.3);
3. build a skeleton graph on ``O(n log k / k)`` nodes (Lemma 3.4);
4. approximate APSP on the skeleton with a ``b = sqrt(a)`` spanner
   broadcast (Corollary 7.1) — or exactly, when the skeleton is small
   enough to broadcast outright — and extend back to ``G``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.distances import exact_apsp
from ..graphs.graph import WeightedGraph
from ..graphs.validation import symmetrize_min
from ..spanners.logn_approx import approx_apsp_via_spanner
from . import params
from .hopsets import build_knearest_hopset
from .knearest import knearest_exact_via_hopset
from .results import Estimate
from .skeleton import build_skeleton, extend_estimate


def solve_skeleton_apsp(
    skeleton_graph: WeightedGraph,
    clique_n: int,
    b: int,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 1.0 / 14.0,
    exact_if_small: bool = True,
) -> Estimate:
    """Approximate (or exactly solve) APSP on a skeleton graph.

    Implements the last step of Lemma 3.1: a ``(1+eps)(2b-1)``-spanner of
    ``G_S`` is broadcast and solved locally (Corollary 7.1).  When the
    skeleton is small enough that *all* its edges fit in an O(1)-round
    broadcast — the paper's remark after Lemma 3.4 — the exact distances
    are computed instead (``l = 1``).
    """
    size = skeleton_graph.n
    if exact_if_small and (
        size <= params.exact_small_threshold(clique_n)
        or skeleton_graph.num_edges <= clique_n
    ):
        if ledger is not None:
            ledger.charge_broadcast(
                3 * skeleton_graph.num_edges,
                detail=f"broadcast full skeleton ({skeleton_graph.num_edges} edges)",
            )
        return Estimate(estimate=exact_apsp(skeleton_graph), factor=1.0)
    result = approx_apsp_via_spanner(skeleton_graph, b, rng, ledger=ledger, eps=eps)
    return Estimate(estimate=result.estimate, factor=result.factor)


def reduce_approximation(
    graph: WeightedGraph,
    delta: np.ndarray,
    a: float,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 1.0 / 14.0,
    exact_if_small: bool = True,
) -> Estimate:
    """Lemma 3.1: improve an a-approximation to a ``15 sqrt(a)`` one.

    Parameters
    ----------
    graph:
        Weighted undirected graph ``G``.
    delta:
        The current a-approximation (symmetric, ``d <= delta <= a d``).
    a:
        Its guaranteed factor.
    rng, ledger:
        Randomness and round accounting.
    eps:
        Spanner epsilon; the paper picks ``1/14`` so that
        ``7 (1 + eps)(2 sqrt(a) - 1) < 15 sqrt(a)``.
    exact_if_small:
        Solve tiny skeletons exactly instead of via a spanner.

    Returns
    -------
    Estimate
        The new estimate; ``factor`` is the *actual* chained guarantee
        ``7 * l`` (with ``l`` the skeleton solver's factor), which is at
        most the lemma's ``15 sqrt(a)``.
    """
    if graph.directed:
        raise ValueError("Lemma 3.1 applies to undirected graphs")
    n = graph.n
    plan = params.plan_reduction(n, a, _diameter_estimate(delta))

    with _phase(ledger, "lemma3.1"):
        hopset = build_knearest_hopset(graph, delta, a, ledger=ledger)
        augmented = hopset.augmented(graph)
        knn = knearest_exact_via_hopset(
            augmented.matrix(),
            plan.k,
            plan.h,
            hopset.beta_bound,
            ledger=ledger,
        )
        skeleton = build_skeleton(
            augmented,
            knn.indices,
            knn.values,
            plan.k,
            rng,
            a=1.0,
            ledger=ledger,
        )
        inner = solve_skeleton_apsp(
            skeleton.graph,
            clique_n=n,
            b=plan.b,
            rng=rng,
            ledger=ledger,
            eps=eps,
            exact_if_small=exact_if_small,
        )
        eta, factor = extend_estimate(skeleton, inner.estimate, inner.factor, ledger)
    eta = symmetrize_min(eta)
    # Combine with the input estimate (zero rounds, local): both are valid
    # upper bounds on distances, so the pointwise minimum satisfies the
    # smaller of the two factors.  This makes the lemma's 15 sqrt(a)
    # promise hold for *every* a >= 1, including the small-a regime where
    # the b >= 2 clamp would otherwise leave the chained factor slightly
    # above it (the pipelines never reduce there, but direct callers may).
    eta = np.minimum(eta, np.asarray(delta, dtype=np.float64))
    factor = min(factor, float(a))
    return Estimate(
        estimate=eta,
        factor=factor,
        meta={
            "plan": plan,
            "promised_factor": plan.promised_factor,
            "skeleton_nodes": skeleton.num_nodes,
            "skeleton_edges": skeleton.graph.num_edges,
            "hopset_beta": hopset.beta_bound,
            "inner_factor": inner.factor,
        },
    )


def _diameter_estimate(delta: np.ndarray) -> float:
    """Upper bound on the weighted diameter from an overestimate matrix."""
    finite = delta[np.isfinite(delta)]
    return float(finite.max(initial=2.0))


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *args: Any) -> None:
        return None


def _phase(ledger: Optional[RoundLedger], name: str) -> Any:
    """Ledger phase context that tolerates ``ledger is None``."""
    if ledger is None:
        return _NullContext()
    return ledger.phase(name)
