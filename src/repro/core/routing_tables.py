"""Compact routing from APSP estimates.

The introduction motivates distributed APSP by its "close connection to
network routing": once every node holds (approximate) distances to every
destination, packets can be forwarded greedily — each node hands the packet
to the neighbour minimizing ``w(u, v) + estimate(v, target)``.

With *exact* distances greedy forwarding follows shortest paths.  With an
``alpha``-approximate estimate the next hop can be suboptimal and, in the
worst case, cyclic; :func:`greedy_route` therefore tracks visited nodes and
reports failures, and :func:`routing_quality` measures the empirical
success rate and path stretch — the quantity a routing-table consumer of
this library actually cares about.

The table construction is array-native: :func:`next_hop_table` is one
vectorized program over the graph's CSR adjacency, and
:func:`next_hop_table_reference` keeps the per-node implementation as the
frozen differential-testing target (the ``cclique.reference`` pattern).
The vectorized query side — batch routing, k-nearest, stretch audits —
lives in :mod:`repro.serve`; this module remains the per-call reference it
is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graphs.graph import WeightedGraph


@dataclass
class Route:
    """One greedy forwarding attempt."""

    path: List[int]
    length: float
    delivered: bool

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


def _as_estimate_matrix(estimate: np.ndarray, n: int) -> np.ndarray:
    """Validate an estimate for table construction without copying it.

    float64 and (opt-in, out-of-core) float32 estimates pass through
    as-is — memmap-backed arrays in particular are *not* densified; the
    chunked gathers below read them row-window by row-window.  Any other
    dtype is cast to float64.
    """
    arr = np.asarray(estimate)
    if arr.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        arr = np.asarray(estimate, dtype=np.float64)
    if arr.shape != (n, n):
        raise ValueError("estimate must be (n, n)")
    return arr


def next_hop_table(
    graph: WeightedGraph,
    estimate: np.ndarray,
    chunk_elems: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    hop_weight_out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``table[u, t]`` = the neighbour ``u`` forwards to for target ``t``.

    The greedy rule: minimize ``w(u, v) + estimate(v, t)`` over neighbours
    ``v`` of ``u``, breaking score ties strictly by the smallest neighbour
    ID.  ``-1`` marks "no neighbour" (isolated node or all-infinite
    estimates).  ``table[t, t] = t``.

    The computation is an array program over the CSR adjacency with no
    per-``u`` Python loop: source rows are grouped by exact out-degree
    (so each group is a rectangular ``(rows, d)`` block of neighbour
    ids/weights with zero padding waste), each block's neighbour slots
    are pre-sorted by neighbour ID (``argmin``'s first-minimum rule then
    realises the documented ID tie-break for free), and one
    ``argmin(axis=1)`` over ``weights[:, :, None] + estimate[ids]``
    resolves a whole group of rows against every target at once.
    ``chunk_elems`` bounds the per-call score-tensor size (default ~0.5M
    elements, ~4 MiB — keeps the working set cache-resident).
    :func:`next_hop_table_reference` is the per-node implementation this
    one is differentially tested against.

    Row-sharded construction: with ``out`` (int64) and ``hop_weight_out``
    (float64) preallocated — typically ``np.memmap`` destinations — the
    function never materialises a full ``(n, n)`` array in RAM; its
    resident working set is bounded by the chunked score tensors.
    ``hop_weight_out`` additionally receives ``w(u, table[u, t])`` (the
    weight of the chosen hop; ``inf`` where the table says ``-1``, ``0``
    on the diagonal), letting oracle construction skip the dense
    ``graph.matrix()`` gather entirely.  float32 estimates are scored in
    float64 per-chunk (exact upcast), so the chosen hops match a float64
    run on ``estimate.astype(np.float64)`` bit-for-bit.
    """
    n = graph.n
    estimate = _as_estimate_matrix(estimate, n)
    if chunk_elems is None:
        chunk_elems = 1 << 19
    if out is None:
        table = np.full((n, n), -1, dtype=np.int64)
    else:
        table = np.asarray(out)
        if table.shape != (n, n) or table.dtype != np.int64:
            raise ValueError("out must be an (n, n) int64 array")
        if not table.flags.writeable:
            raise ValueError("out must be writable")
        table.fill(-1)
    hop_weight = None
    if hop_weight_out is not None:
        hop_weight = np.asarray(hop_weight_out)
        if hop_weight.shape != (n, n) or hop_weight.dtype != np.float64:
            raise ValueError("hop_weight_out must be an (n, n) float64 array")
        if not hop_weight.flags.writeable:
            raise ValueError("hop_weight_out must be writable")
        hop_weight.fill(np.inf)
    csr = graph.csr()
    if csr.num_entries:
        degrees = csr.degrees
        for d in np.unique(degrees):
            if d == 0:
                continue
            d = int(d)
            rows = np.nonzero(degrees == d)[0]
            pos = csr.indptr[rows][:, None] + np.arange(d)[None, :]
            ids = csr.indices[pos]
            weights = csr.weights[pos]
            # Slots in ID order: the first score minimum argmin finds is
            # then the smallest neighbour ID among the tied minima.
            order = np.argsort(ids, axis=1, kind="stable")
            ids = np.take_along_axis(ids, order, axis=1)
            weights = np.take_along_axis(weights, order, axis=1)
            chunk = int(max(1, chunk_elems // max(d * n, 1)))
            for lo in range(0, rows.size, chunk):
                hi = min(rows.size, lo + chunk)
                # scores[r, j, t] = w(rows[r], ids[r, j]) + estimate[ids[r, j], t]
                # float64 weights promote a float32 gather exactly, so the
                # scores (hence the argmin) match the float64 run.
                scores = weights[lo:hi, :, None] + estimate[ids[lo:hi]]
                slot = scores.argmin(axis=1)
                best = np.take_along_axis(
                    scores, slot[:, None, :], axis=1
                )[:, 0, :]
                chosen = np.take_along_axis(ids[lo:hi], slot, axis=1)
                finite = np.isfinite(best)
                table[rows[lo:hi]] = np.where(finite, chosen, -1)
                if hop_weight is not None:
                    paid = np.take_along_axis(weights[lo:hi], slot, axis=1)
                    hop_weight[rows[lo:hi]] = np.where(finite, paid, np.inf)
    np.fill_diagonal(table, np.arange(n))
    if hop_weight is not None:
        np.fill_diagonal(hop_weight, 0.0)
    return table


def next_hop_table_reference(
    graph: WeightedGraph, estimate: np.ndarray
) -> np.ndarray:
    """Per-node reference implementation of :func:`next_hop_table`.

    Frozen as the differential-testing target for the vectorized table
    (same role as ``repro.cclique.reference`` for the round engine): one
    Python loop per source node, scores sorted into pure neighbour-ID
    order so ``argmin``'s first-minimum rule realises the documented
    "ties strictly by ID" contract.
    """
    n = graph.n
    estimate = np.asarray(estimate, dtype=np.float64)
    if estimate.shape != (n, n):
        raise ValueError("estimate must be (n, n)")
    table = np.full((n, n), -1, dtype=np.int64)
    adjacency = graph.adjacency()
    for u in range(n):
        neighbours = adjacency[u]
        if not neighbours:
            continue
        ids = np.array([v for v, _ in neighbours], dtype=np.int64)
        weights = np.array([w for _, w in neighbours])
        # Adjacency rows arrive (weight, id)-sorted; re-sort into pure ID
        # order so the first score minimum is the smallest neighbour ID.
        order = np.argsort(ids)
        ids_sorted = ids[order]
        # scores[j, t] = w(u, ids_sorted[j]) + estimate[ids_sorted[j], t]
        scores = weights[order][:, None] + estimate[ids_sorted, :]
        best = np.argmin(scores, axis=0)
        table[u, :] = ids_sorted[best]
        finite = np.isfinite(scores[best, np.arange(n)])
        table[u, ~finite] = -1
    np.fill_diagonal(table, np.arange(n))
    return table


def greedy_route(
    graph: WeightedGraph,
    estimate: np.ndarray,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
    table: Optional[np.ndarray] = None,
) -> Route:
    """Forward a packet greedily from ``source`` to ``target``.

    Stops on arrival, on a dead end, on a revisited node (loop), or after
    ``max_hops`` (default ``2 n``).  A loop failure records the hop that
    closes the cycle in ``path`` (the evidence) but not in ``length`` —
    the packet is dropped at the revisited node, not carried over the
    edge again.
    """
    n = graph.n
    if table is None:
        table = next_hop_table(graph, estimate)
    if max_hops is None:
        max_hops = 2 * n
    matrix = graph.matrix()
    path = [source]
    length = 0.0
    visited = {source}
    current = source
    while current != target and len(path) <= max_hops:
        nxt = int(table[current, target])
        if nxt < 0 or not np.isfinite(matrix[current, nxt]):
            return Route(path=path, length=length, delivered=False)
        if nxt in visited:
            path.append(nxt)
            return Route(path=path, length=length, delivered=False)
        length += float(matrix[current, nxt])
        path.append(nxt)
        visited.add(nxt)
        current = nxt
    return Route(path=path, length=length, delivered=current == target)


@dataclass
class RoutingQuality:
    """Aggregate forwarding statistics over sampled pairs.

    ``skipped_zero`` counts sampled pairs whose *exact* distance is zero
    (zero-weight components): their stretch is undefined (any positive
    route length divides to infinity), so they are excluded from
    ``attempts`` and flagged here instead.
    """

    attempts: int
    delivered: int
    mean_stretch: float
    max_stretch: float
    skipped_zero: int = 0

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction; ``nan`` when no pair was ever attempted."""
        if not self.attempts:
            return float("nan")
        return self.delivered / self.attempts


def routing_quality(
    graph: WeightedGraph,
    estimate: np.ndarray,
    exact: np.ndarray,
    rng: np.random.Generator,
    samples: int = 200,
) -> RoutingQuality:
    """Sample source/target pairs and measure greedy-forwarding quality.

    The vectorized, oracle-based version of this measurement is
    :func:`repro.serve.audit_stretch`; this per-call loop is kept as the
    reference implementation.
    """
    n = graph.n
    table = next_hop_table(graph, estimate)
    stretches: List[float] = []
    delivered = 0
    attempts = 0
    skipped_zero = 0
    for _ in range(samples):
        source = int(rng.integers(0, n))
        target = int(rng.integers(0, n))
        if source == target or not np.isfinite(exact[source, target]):
            continue
        if exact[source, target] <= 0.0:
            skipped_zero += 1
            continue
        attempts += 1
        route = greedy_route(graph, estimate, source, target, table=table)
        if route.delivered:
            delivered += 1
            stretches.append(route.length / exact[source, target])
    if not stretches:
        return RoutingQuality(
            attempts, delivered, float("nan"), float("nan"), skipped_zero
        )
    return RoutingQuality(
        attempts=attempts,
        delivered=delivered,
        mean_stretch=float(np.mean(stretches)),
        max_stretch=float(np.max(stretches)),
        skipped_zero=skipped_zero,
    )
