"""Compact routing from APSP estimates.

The introduction motivates distributed APSP by its "close connection to
network routing": once every node holds (approximate) distances to every
destination, packets can be forwarded greedily — each node hands the packet
to the neighbour minimizing ``w(u, v) + estimate(v, target)``.

With *exact* distances greedy forwarding follows shortest paths.  With an
``alpha``-approximate estimate the next hop can be suboptimal and, in the
worst case, cyclic; :func:`greedy_route` therefore tracks visited nodes and
reports failures, and :func:`routing_quality` measures the empirical
success rate and path stretch — the quantity a routing-table consumer of
this library actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graphs.graph import WeightedGraph


@dataclass
class Route:
    """One greedy forwarding attempt."""

    path: List[int]
    length: float
    delivered: bool

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


def next_hop_table(graph: WeightedGraph, estimate: np.ndarray) -> np.ndarray:
    """``table[u, t]`` = the neighbour ``u`` forwards to for target ``t``.

    The greedy rule: minimize ``w(u, v) + estimate(v, t)`` over neighbours
    ``v`` of ``u`` (ties by neighbour ID).  ``-1`` marks "no neighbour"
    (isolated node or all-infinite estimates).  ``table[t, t] = t``.
    """
    n = graph.n
    estimate = np.asarray(estimate, dtype=np.float64)
    if estimate.shape != (n, n):
        raise ValueError("estimate must be (n, n)")
    table = np.full((n, n), -1, dtype=np.int64)
    adjacency = graph.adjacency()
    for u in range(n):
        neighbours = adjacency[u]
        if not neighbours:
            continue
        ids = np.array([v for v, _ in neighbours], dtype=np.int64)
        weights = np.array([w for _, w in neighbours])
        # scores[j, t] = w(u, ids[j]) + estimate[ids[j], t]
        scores = weights[:, None] + estimate[ids, :]
        best = np.argmin(scores, axis=0)  # first minimum = smallest ID after
        # adjacency sort (weight, id); re-break ties strictly by ID:
        order = np.lexsort((ids, weights))
        ids_sorted = ids[order]
        scores_sorted = scores[order]
        best = np.argmin(scores_sorted, axis=0)
        table[u, :] = ids_sorted[best]
        finite = np.isfinite(scores_sorted[best, np.arange(n)])
        table[u, ~finite] = -1
    np.fill_diagonal(table, np.arange(n))
    return table


def greedy_route(
    graph: WeightedGraph,
    estimate: np.ndarray,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
    table: Optional[np.ndarray] = None,
) -> Route:
    """Forward a packet greedily from ``source`` to ``target``.

    Stops on arrival, on a dead end, on a revisited node (loop), or after
    ``max_hops`` (default ``2 n``).
    """
    n = graph.n
    if table is None:
        table = next_hop_table(graph, estimate)
    if max_hops is None:
        max_hops = 2 * n
    matrix = graph.matrix()
    path = [source]
    length = 0.0
    visited = {source}
    current = source
    while current != target and len(path) <= max_hops:
        nxt = int(table[current, target])
        if nxt < 0 or not np.isfinite(matrix[current, nxt]):
            return Route(path=path, length=length, delivered=False)
        length += float(matrix[current, nxt])
        path.append(nxt)
        if nxt in visited:
            return Route(path=path, length=length, delivered=False)
        visited.add(nxt)
        current = nxt
    return Route(path=path, length=length, delivered=current == target)


@dataclass
class RoutingQuality:
    """Aggregate forwarding statistics over sampled pairs."""

    attempts: int
    delivered: int
    mean_stretch: float
    max_stretch: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempts if self.attempts else 1.0


def routing_quality(
    graph: WeightedGraph,
    estimate: np.ndarray,
    exact: np.ndarray,
    rng: np.random.Generator,
    samples: int = 200,
) -> RoutingQuality:
    """Sample source/target pairs and measure greedy-forwarding quality."""
    n = graph.n
    table = next_hop_table(graph, estimate)
    stretches: List[float] = []
    delivered = 0
    attempts = 0
    for _ in range(samples):
        source = int(rng.integers(0, n))
        target = int(rng.integers(0, n))
        if source == target or not np.isfinite(exact[source, target]):
            continue
        attempts += 1
        route = greedy_route(graph, estimate, source, target, table=table)
        if route.delivered:
            delivered += 1
            stretches.append(route.length / exact[source, target])
    if not stretches:
        return RoutingQuality(attempts, delivered, float("nan"), float("nan"))
    return RoutingQuality(
        attempts=attempts,
        delivered=delivered,
        mean_stretch=float(np.mean(stretches)),
        max_stretch=float(np.max(stretches)),
    )
