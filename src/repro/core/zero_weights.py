"""Handling zero edge weights (Theorem 2.1, Appendix A).

A black-box reduction: contract the connected components of the zero-weight
subgraph (found via an O(1)-round MST, [Now21]), run any positive-weights
APSP algorithm on the compressed graph of component leaders, and expand the
answer — an overhead of O(1) rounds, preserving determinism and the
approximation factor.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from ..mst.boruvka import connected_components_zero_subgraph
from .results import Estimate

#: A solver for positive-integer-weighted APSP.
PositiveSolver = Callable[[WeightedGraph], Estimate]


def compress_zero_components(
    graph: WeightedGraph,
    ledger: Optional[RoundLedger] = None,
) -> Tuple[np.ndarray, np.ndarray, WeightedGraph]:
    """Steps 1–3 of Appendix A: leaders and the compressed graph.

    Returns ``(leader, leaders, compressed)`` where ``leader[v]`` is the
    smallest-ID member of ``v``'s zero-component, ``leaders`` is the sorted
    array of distinct leaders, and ``compressed`` is the graph on
    ``0..len(leaders)-1`` whose edge ``(a, b)`` carries the minimum weight
    of any edge between the two components.
    """
    if graph.directed:
        raise ValueError("the zero-weight reduction is for undirected graphs")
    leader = connected_components_zero_subgraph(graph)
    if ledger is not None:
        ledger.charge_mst(detail="zero-component MST [Now21, Appendix A]")
        # Step 3: every node sends one (component, weight) message per
        # leader — one message per ordered (node, leader) pair.
        ledger.charge_lenzen_routing(
            max_sent_per_node=graph.n,
            max_received_per_node=graph.n,
            detail="minimum inter-component edge exchange",
        )
    leaders = np.unique(leader)
    compact = {int(s): index for index, s in enumerate(leaders)}
    best: dict = {}
    for u, v, w in graph.edges():
        cu, cv = int(leader[u]), int(leader[v])
        if cu == cv:
            continue
        a, b = sorted((compact[cu], compact[cv]))
        key = (a, b)
        if key not in best or w < best[key]:
            best[key] = w
    edges = [(a, b, w) for (a, b), w in sorted(best.items())]
    compressed = WeightedGraph(
        max(1, len(leaders)),
        edges,
        require_positive=True,
        require_integer=True,
    )
    return leader, leaders, compressed


def lift_zero_weights(
    graph: WeightedGraph,
    solver: PositiveSolver,
    ledger: Optional[RoundLedger] = None,
) -> Estimate:
    """Theorem 2.1: extend a positive-weights solver to zero weights.

    The solver runs on the compressed leader graph; the expansion
    ``eta(v, u) = delta(leader(v), leader(u))`` (0 within a component) is
    one more O(1)-round exchange.
    """
    if graph.num_edges == 0 or float(graph.edge_w.min(initial=1.0)) > 0.0:
        return solver(graph)
    leader, leaders, compressed = compress_zero_components(graph, ledger)
    inner = solver(compressed)
    compact = {int(s): index for index, s in enumerate(leaders)}
    mapping = np.array([compact[int(leader[v])] for v in range(graph.n)])
    eta = inner.estimate[np.ix_(mapping, mapping)].copy()
    same = mapping[:, None] == mapping[None, :]
    eta[same] = 0.0
    if ledger is not None:
        # Final step: each leader sends delta(s, t) to every member of C(s).
        ledger.charge_lenzen_routing(
            max_sent_per_node=graph.n,
            max_received_per_node=graph.n,
            detail="distance expansion to component members",
        )
    return Estimate(
        estimate=eta,
        factor=inner.factor,
        meta={
            "zero_components": len(leaders),
            "inner": inner.meta,
        },
    )
