"""k-nearest beta-hopsets (Section 4, Lemma 3.2).

Given an ``a``-approximation ``delta`` of APSP, the O(1)-round algorithm of
Section 4.1 builds a hopset ``H`` such that in ``G ∪ H`` every node reaches
each of its ``sqrt(n)``-nearest nodes by a path of at most
``beta in O(a log d)`` hops *of exact length* (Lemma 4.2):

1. each node ``v`` takes its *approximate* sqrt(n)-nearest set
   ``~N(v)`` — the sqrt(n) nodes with smallest ``delta(v, .)``, ID ties;
2. every ``u in ~N(v)`` ships ``v`` its sqrt(n) shortest outgoing edges;
3. ``v`` runs a local shortest-path computation on the received edges plus
   its own outgoing edges;
4. ``v`` adds hopset edges ``(v, u)`` weighted by the locally computed
   distances.

Communication: each node receives ``sqrt(n) * sqrt(n) = n`` edge words, so
Lemma 2.2 routes everything in O(1) rounds — the ledger charge validates
that load for the actual ``k`` used.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.adjacency import batched_sssp, k_lightest_per_row
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows
from . import params


@dataclass
class HopsetResult:
    """A hopset plus the parameters that certify its hop bound."""

    hopset: WeightedGraph
    k: int
    a: float
    diameter_bound: float
    beta_bound: int
    local_distances_computed: int

    def augmented(self, graph: WeightedGraph) -> WeightedGraph:
        """The graph ``G ∪ H`` the downstream lemmas operate on."""
        return graph.union(self.hopset)


def _local_dijkstra(
    adjacency: Dict[int, List[Tuple[int, float]]],
    source: int,
) -> Dict[int, float]:
    """Dijkstra on the tiny local subgraph a node assembled (Step 3).

    Kept as the per-node reference implementation (tests cross-validate
    the batched scipy path against it); the construction itself uses
    :func:`_batched_local_distances`.
    """
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, math.inf):
            continue
        for neighbour, weight in adjacency.get(node, ()):
            candidate = d + weight
            if candidate < dist.get(neighbour, math.inf):
                dist[neighbour] = candidate
                heapq.heappush(heap, (candidate, neighbour))
    return dist


def _batched_local_distances(
    graph: WeightedGraph,
    nearest_indices: np.ndarray,
    k: int,
    chunk_nodes: Optional[int] = None,
) -> np.ndarray:
    """Step 3 for every node at once: ``out[v]`` = distances on v's local
    subgraph (the k shortest out-edges of each ``u ∈ ~N_k(v)`` plus v's
    own outgoing edges).

    Each node's local computation is an independent block of one
    block-diagonal :func:`~repro.graphs.adjacency.batched_sssp` call;
    sources are chunked so the dense dijkstra output stays a few MB.
    Semantically identical to running :func:`_local_dijkstra` per node on
    the historical dict-of-lists assembly.
    """
    n = graph.n
    csr = graph.csr()
    se_idx, se_w = k_lightest_per_row(csr, k)
    se_valid = se_idx >= 0
    out = np.empty((n, n), dtype=np.float64)
    if chunk_nodes is None:
        # The block-diagonal dijkstra scans c * (c * n) dense output per
        # chunk (c * n^2 over the whole run), so small chunks win; 8-16
        # amortises the per-call scipy overhead without inflating the scan.
        chunk_nodes = 8 if n >= 256 else 16
    for lo in range(0, n, chunk_nodes):
        chunk = np.arange(lo, min(n, lo + chunk_nodes), dtype=np.int64)
        c = len(chunk)
        # Member short-edge records: block b ships u -> se_idx[u] for every
        # u in ~N_k(chunk[b]).  The block source v itself is skipped: its
        # short list is a prefix of its full row (same weights), so the
        # local subgraph is unchanged and no (block, src, dst) duplicates
        # remain — scipy's COO constructor may then be fed directly.
        members = nearest_indices[chunk]  # (c, k_members)
        member_ok = (members >= 0) & (members != chunk[:, None])
        blk = np.broadcast_to(np.arange(c, dtype=np.int64)[:, None], members.shape)
        m_blk = blk[member_ok]
        m_src = members[member_ok]
        e_ok = se_valid[m_src]  # (M, k)
        src = np.repeat(m_src, k)[e_ok.ravel()]
        dst = se_idx[m_src][e_ok]
        wgt = se_w[m_src][e_ok]
        bid = np.repeat(m_blk, k)[e_ok.ravel()]
        # Own outgoing edges of each chunk node (the full row).
        own_src, own_dst, own_w = csr.rows_of(chunk)
        own_bid = own_src - lo
        out[chunk] = batched_sssp(
            n,
            np.concatenate([src, own_src]),
            np.concatenate([dst, own_dst]),
            np.concatenate([wgt, own_w]),
            np.concatenate([bid, own_bid]),
            chunk,
            dedup=False,
        )
    return out


def build_knearest_hopset(
    graph: WeightedGraph,
    delta: np.ndarray,
    a: float,
    k: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
) -> HopsetResult:
    """Lemma 3.2: deterministically build a ``k``-nearest beta-hopset.

    Parameters
    ----------
    graph:
        The input graph ``G`` (directed or undirected).
    delta:
        An ``(n, n)`` a-approximation of APSP on ``G``
        (``d <= delta <= a d``).  Entries may be ``inf`` for unreachable
        pairs.
    a:
        The approximation factor ``delta`` is guaranteed to satisfy.
    k:
        Neighbourhood size; defaults to ``ceil(sqrt(n))`` as in the paper.
        The O(1)-round load argument needs ``k^2 in O(n)``.
    ledger:
        Round ledger; charges one request round plus one Lemma 2.2 routing
        with the measured receive load, plus the round informing hopset
        edge endpoints.

    Returns
    -------
    HopsetResult
        The hopset ``H`` (same directedness as ``G``); its
        :attr:`~HopsetResult.beta_bound` is the explicit Lemma 4.2 bound
        ``2 (ceil(a ln d) + 1) + 1`` evaluated with the *estimated*
        diameter ``max finite delta`` (an upper bound on ``d``).
    """
    n = graph.n
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (n, n):
        raise ValueError("delta must be an (n, n) matrix")
    if a < 1:
        raise ValueError("a must be >= 1")
    if k is None:
        k = max(1, math.isqrt(n - 1) + 1) if n > 1 else 1
    k = int(min(k, n))

    # Step 1: approximate k-nearest sets from delta (value then ID order).
    nearest_indices, _ = k_smallest_in_rows(delta, k)

    # Step 2 communication accounting: v requests from each u in ~N(v) its k
    # shortest outgoing edges; each edge is ~3 words.  The receive load per
    # node is exactly k * k edges.
    if ledger is not None:
        ledger.charge_all_to_all(detail="hopset edge requests")
        ledger.charge_redundancy_routing(
            max_received_per_node=k * k,
            detail=f"hopset edge shipping (k={k}, {k * k} edges per node)",
        )

    # Step 3, batched: every node's local shortest-path computation is one
    # block of a block-diagonal dijkstra (Lemma 3.2's "local computation
    # on the received edges", array-native).
    local_dist = _batched_local_distances(graph, nearest_indices, k)
    reached = np.isfinite(local_dist)
    local_count = int(reached.sum())
    np.fill_diagonal(reached, False)
    hop_src, hop_dst = np.nonzero(reached)
    hop_w = local_dist[hop_src, hop_dst]

    finite = delta[np.isfinite(delta)]
    diameter_bound = float(finite.max(initial=2.0))
    beta = params.hopset_beta_bound(a, diameter_bound)

    if ledger is not None:
        # Step 4: v informs u of the new edge (one round; each node is the
        # source and target of at most n messages).
        ledger.charge_lenzen_routing(
            max_sent_per_node=n,
            max_received_per_node=n,
            detail="hopset edge endpoint notification",
        )

    hopset = WeightedGraph.from_arrays(
        n,
        hop_src,
        hop_dst,
        hop_w,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )
    return HopsetResult(
        hopset=hopset,
        k=k,
        a=float(a),
        diameter_bound=diameter_bound,
        beta_bound=beta,
        local_distances_computed=local_count,
    )
