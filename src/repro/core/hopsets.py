"""k-nearest beta-hopsets (Section 4, Lemma 3.2).

Given an ``a``-approximation ``delta`` of APSP, the O(1)-round algorithm of
Section 4.1 builds a hopset ``H`` such that in ``G ∪ H`` every node reaches
each of its ``sqrt(n)``-nearest nodes by a path of at most
``beta in O(a log d)`` hops *of exact length* (Lemma 4.2):

1. each node ``v`` takes its *approximate* sqrt(n)-nearest set
   ``~N(v)`` — the sqrt(n) nodes with smallest ``delta(v, .)``, ID ties;
2. every ``u in ~N(v)`` ships ``v`` its sqrt(n) shortest outgoing edges;
3. ``v`` runs a local shortest-path computation on the received edges plus
   its own outgoing edges;
4. ``v`` adds hopset edges ``(v, u)`` weighted by the locally computed
   distances.

Communication: each node receives ``sqrt(n) * sqrt(n) = n`` edge words, so
Lemma 2.2 routes everything in O(1) rounds — the ledger charge validates
that load for the actual ``k`` used.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows
from . import params


@dataclass
class HopsetResult:
    """A hopset plus the parameters that certify its hop bound."""

    hopset: WeightedGraph
    k: int
    a: float
    diameter_bound: float
    beta_bound: int
    local_distances_computed: int

    def augmented(self, graph: WeightedGraph) -> WeightedGraph:
        """The graph ``G ∪ H`` the downstream lemmas operate on."""
        return graph.union(self.hopset)


def _local_dijkstra(
    adjacency: Dict[int, List[Tuple[int, float]]],
    source: int,
) -> Dict[int, float]:
    """Dijkstra on the tiny local subgraph a node assembled (Step 3)."""
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, math.inf):
            continue
        for neighbour, weight in adjacency.get(node, ()):
            candidate = d + weight
            if candidate < dist.get(neighbour, math.inf):
                dist[neighbour] = candidate
                heapq.heappush(heap, (candidate, neighbour))
    return dist


def build_knearest_hopset(
    graph: WeightedGraph,
    delta: np.ndarray,
    a: float,
    k: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
) -> HopsetResult:
    """Lemma 3.2: deterministically build a ``k``-nearest beta-hopset.

    Parameters
    ----------
    graph:
        The input graph ``G`` (directed or undirected).
    delta:
        An ``(n, n)`` a-approximation of APSP on ``G``
        (``d <= delta <= a d``).  Entries may be ``inf`` for unreachable
        pairs.
    a:
        The approximation factor ``delta`` is guaranteed to satisfy.
    k:
        Neighbourhood size; defaults to ``ceil(sqrt(n))`` as in the paper.
        The O(1)-round load argument needs ``k^2 in O(n)``.
    ledger:
        Round ledger; charges one request round plus one Lemma 2.2 routing
        with the measured receive load, plus the round informing hopset
        edge endpoints.

    Returns
    -------
    HopsetResult
        The hopset ``H`` (same directedness as ``G``); its
        :attr:`~HopsetResult.beta_bound` is the explicit Lemma 4.2 bound
        ``2 (ceil(a ln d) + 1) + 1`` evaluated with the *estimated*
        diameter ``max finite delta`` (an upper bound on ``d``).
    """
    n = graph.n
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (n, n):
        raise ValueError("delta must be an (n, n) matrix")
    if a < 1:
        raise ValueError("a must be >= 1")
    if k is None:
        k = max(1, math.isqrt(n - 1) + 1) if n > 1 else 1
    k = int(min(k, n))

    # Step 1: approximate k-nearest sets from delta (value then ID order).
    nearest_indices, _ = k_smallest_in_rows(delta, k)

    # Step 2 communication accounting: v requests from each u in ~N(v) its k
    # shortest outgoing edges; each edge is ~3 words.  The receive load per
    # node is exactly k * k edges.
    if ledger is not None:
        ledger.charge_all_to_all(detail="hopset edge requests")
        ledger.charge_redundancy_routing(
            max_received_per_node=k * k,
            detail=f"hopset edge shipping (k={k}, {k * k} edges per node)",
        )

    # Pre-extract every node's k shortest outgoing edges once.
    short_edges: List[List[Tuple[int, float]]] = [
        graph.k_shortest_out_edges(u, k) for u in range(n)
    ]
    full_adjacency = graph.adjacency()

    hopset_edges: List[Tuple[int, int, float]] = []
    local_count = 0
    for v in range(n):
        local: Dict[int, List[Tuple[int, float]]] = {}
        members = nearest_indices[v]
        for u in members:
            if u < 0:
                continue
            local.setdefault(int(u), []).extend(short_edges[int(u)])
        # Step 3 includes *all* outgoing edges of v itself.
        local.setdefault(v, [])
        local[v] = list(full_adjacency[v]) + local[v]
        dist = _local_dijkstra(local, v)
        local_count += len(dist)
        for u, d_vu in dist.items():
            if u != v and math.isfinite(d_vu):
                hopset_edges.append((v, int(u), float(d_vu)))

    finite = delta[np.isfinite(delta)]
    diameter_bound = float(finite.max(initial=2.0))
    beta = params.hopset_beta_bound(a, diameter_bound)

    if ledger is not None:
        # Step 4: v informs u of the new edge (one round; each node is the
        # source and target of at most n messages).
        ledger.charge_lenzen_routing(
            max_sent_per_node=n,
            max_received_per_node=n,
            detail="hopset edge endpoint notification",
        )

    hopset = WeightedGraph(
        n,
        hopset_edges,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )
    return HopsetResult(
        hopset=hopset,
        k=k,
        a=float(a),
        diameter_bound=diameter_bound,
        beta_bound=beta,
        local_distances_computed=local_count,
    )
