"""Parameter schedules from the paper, with documented small-n clamps.

The paper's parameter choices (``h = a^{1/4} / 2``, ``k = n^{1/h}``,
``b = sqrt(a)``, ``k = log^4 n`` ...) are asymptotic; at laptop-scale ``n``
several of them degenerate (``log^4 n > n`` for every n below ~2^64, or
``h < 2``).  This module centralizes every schedule with an explicit,
documented clamp so the algorithm modules contain no ad-hoc numerology and
the experiments can report both the paper's formula and the value actually
used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Constant allowed in "k in O(n^{1/h})" feasibility checks (Lemma 5.1).
KNEAREST_LOAD_CONSTANT = 4.0


def hopset_beta_bound(a: float, diameter: float) -> int:
    """Explicit hop bound of the Lemma 3.2 hopset: ``beta in O(a log d)``.

    From the proof of Lemma 4.2: the selected sequence has
    ``i* <= ceil(a ln d) + 1`` segments, each bridged by a 2-hop path, plus
    one final edge, giving ``beta <= 2 (ceil(a ln d) + 1) + 1``.

    ``diameter`` may be any upper bound on the weighted diameter (estimates
    from an a-approximation are fine: a larger d only loosens the bound).
    """
    if a < 1:
        raise ValueError("approximation factor a must be >= 1")
    d = max(2.0, float(diameter))
    return 2 * (math.ceil(a * math.log(d)) + 1) + 1


def reduction_h(a: float) -> int:
    """Lemma 3.1's hop parameter ``h = a^{1/4} / 2``, clamped to >= 2.

    ``h = 1`` would make ``k = n`` (no reduction) and ``h = 0`` is
    meaningless; the clamp only triggers for ``a < 256``, i.e. exactly the
    regime where the paper would already have stopped iterating.
    """
    return max(2, int(round(0.5 * float(a) ** 0.25)))


def reduction_k(n: int, h: int, k_cap: int | None = None) -> int:
    """Lemma 3.1's neighbourhood size ``k = n^{1/h}``.

    Clamped to ``[1, k_cap]`` where ``k_cap`` defaults to ``sqrt(n)``
    (the hopset of Lemma 3.2 only covers the sqrt(n)-nearest nodes, so a
    larger k would void the exactness guarantee of Lemma 3.3).
    """
    if n < 1 or h < 1:
        raise ValueError("need n >= 1 and h >= 1")
    cap = int(math.isqrt(n)) if k_cap is None else int(k_cap)
    k = int(math.floor(n ** (1.0 / h)))
    return max(1, min(k, max(1, cap)))


def reduction_b(a: float) -> int:
    """Lemma 3.1's spanner parameter ``b = sqrt(a)``, clamped to >= 2."""
    return max(2, int(round(math.sqrt(float(a)))))


def knearest_iterations(beta: int, h: int) -> int:
    """Smallest ``i`` with ``h^i >= beta`` (Lemma 3.3 needs a k-nearest
    ``h^i``-hopset, and Lemma 3.2 provides a beta-hopset)."""
    if beta < 1 or h < 2:
        raise ValueError("need beta >= 1 and h >= 2")
    i = 0
    power = 1
    while power < beta:
        power *= h
        i += 1
    return max(1, i)


def knearest_feasible(n: int, k: int, h: int) -> bool:
    """Whether ``k in O(n^{1/h})`` holds with the repo's load constant."""
    if n < 1 or k < 1 or h < 1:
        return False
    return k <= KNEAREST_LOAD_CONSTANT * n ** (1.0 / h)


def theorem11_k0(n: int) -> int:
    """Theorem 1.1's first-stage neighbourhood size ``k = log^4 n``.

    Clamped to ``sqrt(n)``: for every practically simulable ``n`` we have
    ``log^4 n > sqrt(n)``, and the clamp keeps the skeleton reduction
    meaningful (``|V_S| ~ n log k / k < n``) while preserving the code path.
    The asymptotic statement is untouched — the clamp is inactive for
    ``n > ~2^89``.
    """
    if n < 2:
        return 1
    k = int(math.ceil(math.log2(n) ** 4))
    return max(2, min(k, int(math.isqrt(n))))


def choose_hop_schedule(n: int, k: int, max_i: int = 6) -> tuple[int, int]:
    """Pick ``(h, i)`` with ``h^i >= k`` and ``k in O(n^{1/h})``.

    Used by Theorem 1.1's first stage: distances to the k-nearest nodes can
    be computed on ``G`` itself (no hopset) because a shortest path to a
    k-nearest node has at most ``k`` hops.  Prefers the smallest feasible
    ``i`` (round complexity is O(i)).
    """
    if n < 1 or k < 1:
        raise ValueError("need n >= 1 and k >= 1")
    if k == 1:
        return 2, 1
    for i in range(1, max_i + 1):
        h = max(2, int(math.ceil(k ** (1.0 / i))))
        if h**i >= k and knearest_feasible(n, k, h):
            return h, i
    raise ValueError(
        f"no feasible (h, i) schedule for n={n}, k={k} within i <= {max_i}"
    )


def skeleton_size_bound(n: int, k: int) -> float:
    """Lemma 6.1's skeleton size bound ``O(n log k / k)`` (constant 4)."""
    if n < 1 or k < 1:
        raise ValueError("need n >= 1 and k >= 1")
    return 4.0 * n * max(1.0, math.log(max(2, k))) / k


def exact_small_threshold(clique_n: int) -> int:
    """Node count below which a subgraph is solved by full broadcast.

    The paper's remark after Lemma 3.4: if the skeleton has fewer than
    ``sqrt(n)`` nodes, broadcast all its ``O(n)`` edges and solve exactly.
    """
    return max(8, int(math.isqrt(max(1, clique_n))))


@dataclass(frozen=True)
class ReductionPlan:
    """The parameter bundle for one Lemma 3.1 application."""

    a: float
    h: int
    k: int
    i: int
    b: int
    beta: int

    @property
    def promised_factor(self) -> float:
        """The lemma's guarantee: ``15 sqrt(a)``."""
        return 15.0 * math.sqrt(self.a)


def plan_reduction(n: int, a: float, diameter: float) -> ReductionPlan:
    """Assemble the Lemma 3.1 parameters for one reduction step."""
    beta = hopset_beta_bound(a, diameter)
    h = reduction_h(a)
    k = reduction_k(n, h)
    i = knearest_iterations(beta, h)
    b = reduction_b(a)
    return ReductionPlan(a=float(a), h=h, k=k, i=i, b=b, beta=beta)
