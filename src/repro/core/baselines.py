"""Baseline APSP algorithms from the prior-work landscape (Section 1.1).

Three comparison points bracket the paper's contribution:

* :func:`exact_apsp_baseline` — exact APSP by min-plus matrix
  exponentiation; ``O~(n^{1/3})`` rounds per product in the Congested
  Clique [CKK+19].  The "polynomial rounds, stretch 1" corner.
* :func:`uy90_baseline` — the classic sampled-skeleton scheme of
  Ullman–Yannakakis [UY90]: hop-limited Bellman–Ford plus a random hitting
  set of the long paths.  Rounds grow with the hop parameter
  (``~sqrt(n)`` for exactness w.h.p.); stretch 1 w.h.p.  The
  "polynomial/polylog rounds, constant stretch" corner.
* :func:`spanner_only_baseline` — the [DFKL21]/[CZ22] O(1)-round
  ``O(log n)``-approximation by broadcasting one spanner (re-exported from
  the bootstrap).  The "constant rounds, logarithmic stretch" corner.

The paper's algorithms beat the interpolation of these corners: constant
stretch at ``O(log log log n)`` rounds.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..cclique import costs
from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from ..semiring.kernels import minplus, minplus_square
from ..spanners.logn_approx import logn_bootstrap
from .results import Estimate


def exact_apsp_baseline(
    graph: WeightedGraph,
    ledger: Optional[RoundLedger] = None,
) -> Estimate:
    """Exact APSP via ``ceil(log2 n)`` min-plus squarings [CKK+19-style].

    Each dense product is charged ``O(n^{1/3})`` rounds.  (The bound in
    [CKK+19] for the *semiring* product; their faster exponent applies only
    to ring products.)
    """
    matrix = np.array(graph.matrix())
    n = graph.n
    squarings = max(1, math.ceil(math.log2(max(2, n))))
    spare = np.empty_like(matrix)
    for _ in range(squarings):
        minplus_square(matrix, out=spare)
        matrix, spare = spare, matrix
        if ledger is not None:
            ledger.charge(
                costs.dense_matmul_rounds(n),
                detail="dense min-plus product [CKK+19]",
            )
    return Estimate(estimate=matrix, factor=1.0, meta={"squarings": squarings})


def uy90_baseline(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    hop_parameter: Optional[int] = None,
    oversample: float = 2.0,
) -> Estimate:
    """Ullman–Yannakakis sampled-skeleton APSP (exact w.h.p.).

    With hop parameter ``s``: sample ``~(n/s) log n`` skeleton nodes, run
    ``s`` Bellman–Ford rounds (each one min-plus product of the adjacency
    against the current estimate — charged one round per hop, the
    distributed cost of a Bellman–Ford step), then close long paths through
    the skeleton with one product over the sampled rows.

    W.h.p. every shortest path is covered: paths of at most ``s`` hops by
    the Bellman–Ford stage, longer ones because each consecutive ``s``-hop
    window of a shortest path contains a sampled node.
    """
    n = graph.n
    if hop_parameter is None:
        hop_parameter = max(1, int(math.isqrt(n)))
    s = int(hop_parameter)
    matrix = graph.matrix()

    # Hop-limited distances: s Bellman-Ford steps, one round each.
    limited = np.array(matrix)
    limited_spare = np.empty_like(limited)
    steps = 0
    power = 1
    while power < s:
        minplus_square(limited, out=limited_spare)
        limited, limited_spare = limited_spare, limited
        power *= 2
        steps += 1
    if ledger is not None:
        # s hop-extensions cost s rounds distributed; squaring locally is
        # equivalent output-wise, and we charge the distributed cost.
        ledger.charge(s, detail=f"{s} Bellman-Ford hop extensions [UY90]")

    # Sample the skeleton.
    target = min(n, max(1, int(oversample * n * math.log(max(2, n)) / max(1, s))))
    sample = rng.choice(n, size=target, replace=False)
    sample.sort()

    # Distances among sampled nodes: closure over the sampled rows.
    rows = limited[sample, :]
    among = rows[:, sample]
    closure = np.array(among)
    closure_spare = np.empty_like(closure)
    for _ in range(max(1, math.ceil(math.log2(max(2, len(sample)))))):
        minplus(closure, closure, out=closure_spare)
        closure, closure_spare = closure_spare, closure
    if ledger is not None:
        ledger.charge_broadcast(
            len(sample) * len(sample),
            detail=f"skeleton closure broadcast ({len(sample)} nodes) [UY90]",
        )

    # Combine: direct (<= s hops) or through two skeleton nodes.
    to_skeleton = limited[:, sample]
    via = minplus(minplus(to_skeleton, closure), to_skeleton.T)
    if ledger is not None:
        ledger.charge_sparse_matmul(
            len(sample), len(sample), n, detail="skeleton stitching [UY90]"
        )
    estimate = np.minimum(limited, via)
    np.fill_diagonal(estimate, 0.0)
    return Estimate(
        estimate=estimate,
        factor=1.0,  # exact w.h.p. — Monte Carlo, like the paper's results
        meta={"hop_parameter": s, "skeleton_size": len(sample)},
    )


def spanner_only_baseline(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    alpha: float = 1.0,
) -> Estimate:
    """O(1)-round ``O(log n)``-approximation via one spanner broadcast.

    This is the [DFKL21]/[CZ22] state of the art for O(1)-round algorithms
    that the paper's Theorem 1.2 improves on; identical to the pipeline
    bootstrap (Corollary 7.2).
    """
    result = logn_bootstrap(graph, rng, ledger=ledger, alpha=alpha)
    return Estimate(
        estimate=result.estimate,
        factor=result.factor,
        meta={"spanner_edges": result.spanner.num_edges if result.spanner else None},
    )
