"""Shared result container for the APSP pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np


@dataclass
class Estimate:
    """A distance estimate plus the factor it is guaranteed to satisfy.

    ``estimate[u, v]`` always satisfies ``d(u, v) <= estimate[u, v]``; the
    pipelines additionally guarantee ``estimate[u, v] <= factor * d(u, v)``
    (w.h.p. for the randomized ones, as in the paper).  ``meta`` carries
    pipeline-specific diagnostics (skeleton sizes, parameters used, ...).
    """

    estimate: np.ndarray
    factor: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.estimate.shape[0]
