"""Variant registry: one catalogue of every APSP algorithm in the repo.

Historically each consumer (``approximate_apsp``, the CLI, the benchmark
harness) kept its own if/elif ladder over the algorithm variants.  The
registry replaces those ladders with a single source of truth: every
algorithm registers itself once via :func:`register_variant`, carrying the
metadata the consumers need — display name, factor-bound formula, required
and accepted parameters, graph requirements — plus a uniform solver
signature ``solver(graph, rng, ledger, **params) -> Estimate``.

Adding an algorithm is now a one-decorator change: register it here (or in
any imported module) and it appears in ``approximate_apsp``, the
``ApspSolver`` facade (:mod:`repro.api`), ``python -m repro run/frontier``,
the experiment runner, and the benchmark fixtures.

:func:`run_variant` is the shared dispatch path.  It owns the cross-cutting
concerns the old ladders duplicated: default RNG/ledger creation, the
Theorem 2.1 zero-weight lifting, parameter validation, and attaching the
ledger to the result's ``meta`` — so the legacy wrapper and the new facade
produce bit-identical estimates for the same seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from .results import Estimate

#: Uniform solver signature: (graph, rng, ledger, **params) -> Estimate.
VariantSolver = Callable[..., Estimate]

#: Declared factor bound: (n, **params) -> float upper bound on the factor
#: the solver may report.  ``None`` marks instance-dependent guarantees
#: (e.g. the O(log n) spanner baseline) that have a formula but no constant.
FactorBound = Optional[Callable[..., float]]


@dataclass(frozen=True)
class VariantSpec:
    """Everything a consumer needs to know about one registered algorithm."""

    name: str
    solver: VariantSolver
    display_name: str
    summary: str
    factor_formula: str
    factor_bound: FactorBound = None
    required_params: Tuple[str, ...] = ()
    accepted_params: Tuple[str, ...] = ()
    default_params: Mapping[str, Any] = field(default_factory=dict)
    requires_undirected: bool = True
    randomized: bool = True
    rounds_note: str = ""

    def bound(self, n: int, **params: Any) -> Optional[float]:
        """Numeric factor bound for an ``n``-node run, if one is declared."""
        if self.factor_bound is None:
            return None
        return float(self.factor_bound(n, **self.resolve_params(**params)))

    def resolve_params(self, **params: Any) -> Dict[str, Any]:
        """Drop irrelevant/None entries and check required parameters.

        Consumers historically pass every knob to every variant (the legacy
        ``approximate_apsp`` forwards ``eps`` and ``t`` unconditionally);
        parameters a variant does not accept are silently dropped so the
        registry path stays a drop-in replacement.  ``default_params`` is
        deliberately *not* applied here: it is metadata for enumerating
        consumers (the CLI frontier, sweeps) which pass it explicitly, so
        direct calls keep the strict contract (``tradeoff`` demands ``t``).
        """
        resolved: Dict[str, Any] = {}
        for key, value in params.items():
            if value is None:
                continue
            if key in self.accepted_params or key in self.required_params:
                resolved[key] = value
        missing = [key for key in self.required_params if key not in resolved]
        if missing:
            raise ValueError(
                f"variant={self.name!r} requires the parameter"
                f"{'s' if len(missing) > 1 else ''} {', '.join(missing)}"
            )
        return resolved

    def check_graph(self, graph: WeightedGraph) -> None:
        """Raise ``ValueError`` when the graph violates a requirement."""
        if self.requires_undirected and graph.directed:
            raise ValueError(
                f"variant={self.name!r} applies to undirected graphs"
            )


_REGISTRY: Dict[str, VariantSpec] = {}


def register_variant(
    name: str,
    *,
    display_name: str,
    summary: str,
    factor_formula: str,
    factor_bound: FactorBound = None,
    required_params: Tuple[str, ...] = (),
    accepted_params: Tuple[str, ...] = (),
    default_params: Optional[Mapping[str, Any]] = None,
    requires_undirected: bool = True,
    randomized: bool = True,
    rounds_note: str = "",
) -> Callable[[VariantSolver], VariantSolver]:
    """Class/function decorator registering one algorithm variant.

    The decorated callable must have the uniform signature
    ``solver(graph, rng, ledger, **params) -> Estimate``.  Registration
    order is preserved and defines enumeration order everywhere (the CLI
    frontier, the experiment runner, the benchmark fixtures).
    """

    def decorator(solver: VariantSolver) -> VariantSolver:
        if name in _REGISTRY:
            raise ValueError(f"variant {name!r} is already registered")
        _REGISTRY[name] = VariantSpec(
            name=name,
            solver=solver,
            display_name=display_name,
            summary=summary,
            factor_formula=factor_formula,
            factor_bound=factor_bound,
            required_params=tuple(required_params),
            accepted_params=tuple(accepted_params),
            default_params=dict(default_params or {}),
            requires_undirected=requires_undirected,
            randomized=randomized,
            rounds_note=rounds_note,
        )
        return solver

    return decorator


def get_variant(name: str) -> VariantSpec:
    """Look up one registered variant; ``ValueError`` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown variant {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def variant_names() -> Tuple[str, ...]:
    """All registered variant names, in registration order."""
    return tuple(_REGISTRY)


def iter_variants() -> Iterator[VariantSpec]:
    """Iterate the registered specs in registration order."""
    return iter(tuple(_REGISTRY.values()))


def run_variant(
    name: str,
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    ledger: Optional[RoundLedger] = None,
    apply_defaults: bool = False,
    **params: Any,
) -> Estimate:
    """Dispatch one solve through the registry — the single shared path.

    Handles default RNG/ledger creation, graph-requirement checks, the
    Theorem 2.1 zero-weight lifting, and parameter resolution, then calls
    the variant's solver.  The ledger and variant name are attached to the
    result's ``meta`` (``meta["ledger"]``, ``meta["variant"]``).

    ``apply_defaults=True`` fills the variant's ``default_params`` under
    any explicit (non-None) ``params`` — the mode for enumerating
    consumers (frontier tables, sweeps, benchmark fixtures), which must
    run e.g. the tradeoff variant without naming its ``t``.  Direct calls
    keep the strict contract and must pass required parameters.
    """
    spec = get_variant(name)
    if apply_defaults:
        merged = dict(spec.default_params)
        merged.update({k: v for k, v in params.items() if v is not None})
        params = merged
    resolved = spec.resolve_params(**params)
    spec.check_graph(graph)
    # Entropy here is an explicit caller opt-in: the public dispatch
    # boundary defaults to a fresh generator only when no rng/seed was
    # given, and every internal consumer (facade, CLI, benchmarks)
    # threads a seeded stream.
    rng = rng if rng is not None else np.random.default_rng()  # lint: allow[det-unseeded-rng]
    if ledger is None:
        ledger = RoundLedger(graph.n)
    if graph.num_edges and float(graph.edge_w.min()) == 0.0:
        from .zero_weights import lift_zero_weights

        def positive_solver(g: WeightedGraph) -> Estimate:
            return run_variant(name, g, rng=rng, ledger=ledger, **resolved)

        result = lift_zero_weights(graph, positive_solver, ledger=ledger)
    else:
        result = spec.solver(graph, rng, ledger, **resolved)
    result.meta["ledger"] = ledger
    result.meta["variant"] = name
    return result


# --------------------------------------------------------------------- #
# Built-in variants.  Solver modules are imported lazily inside each
# adapter so the registry can be imported from anywhere in repro.core
# without creating import cycles.
# --------------------------------------------------------------------- #


@register_variant(
    "exact",
    display_name="exact matmul",
    summary="Exact APSP by min-plus matrix exponentiation [CKK+19].",
    factor_formula="1",
    factor_bound=lambda n, **_: 1.0,
    requires_undirected=False,
    randomized=False,
    rounds_note="O(n^(1/3) log n) rounds",
)
def _solve_exact(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **_params: Any,
) -> Estimate:
    from .baselines import exact_apsp_baseline

    return exact_apsp_baseline(graph, ledger=ledger)


@register_variant(
    "uy90",
    display_name="UY90",
    summary="Ullman-Yannakakis sampled-skeleton APSP (exact w.h.p.).",
    factor_formula="1 (w.h.p.)",
    factor_bound=lambda n, **_: 1.0,
    accepted_params=("hop_parameter", "oversample"),
    rounds_note="~sqrt(n) rounds at the default hop parameter",
)
def _solve_uy90(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **params: Any,
) -> Estimate:
    from .baselines import uy90_baseline

    return uy90_baseline(graph, rng, ledger=ledger, **params)


@register_variant(
    "spanner-only",
    display_name="spanner-only",
    summary="One spanner broadcast [DFKL21/CZ22]: O(log n) approximation.",
    factor_formula="O(log n)",
    factor_bound=None,  # instance-dependent constant; see the formula
    accepted_params=("alpha",),
    rounds_note="O(1) rounds",
)
def _solve_spanner_only(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **params: Any,
) -> Estimate:
    from .baselines import spanner_only_baseline

    return spanner_only_baseline(graph, rng, ledger=ledger, **params)


@register_variant(
    "small-diameter",
    display_name="thm 7.1",
    summary="Theorem 7.1 pipeline (21-approx path, small weighted diameter).",
    factor_formula="21 (1+eps)^2-ish; <= 21",
    factor_bound=lambda n, **_: 21.0,
    # ``eps`` is deliberately not accepted: Theorem 7.1's internal eps
    # (1/14) is tied to its 21-bound and must not be overridden by the
    # facade's generic eps knob.
    accepted_params=("mode", "max_reductions", "final_stage", "bootstrap_alpha"),
    rounds_note="O(log log n) rounds for polylog weighted diameter",
)
def _solve_small_diameter(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **params: Any,
) -> Estimate:
    from .small_diameter import apsp_small_diameter

    return apsp_small_diameter(graph, rng, ledger=ledger, **params)


@register_variant(
    "theorem11",
    display_name="thm 1.1",
    summary="The headline O(1)-approximation in O(log log log n) rounds.",
    factor_formula="7^4 (1+eps)^2",
    factor_bound=lambda n, eps=0.1, **_: 7.0**4 * (1.0 + eps) ** 2,
    accepted_params=("eps",),
    rounds_note="O(log log log n) rounds",
)
def _solve_theorem11(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **params: Any,
) -> Estimate:
    from .apsp import apsp_theorem11

    return apsp_theorem11(graph, rng, ledger=ledger, **params)


@register_variant(
    "tradeoff",
    display_name="thm 1.2",
    summary="Theorem 1.2 rounds/approximation tradeoff with parameter t.",
    factor_formula="O(log^(2^-t) n)",
    factor_bound=None,  # the formula bound is reported in meta["tradeoff_bound"]
    required_params=("t",),
    accepted_params=("eps",),
    default_params={"t": 2},
    rounds_note="O(t) rounds",
)
def _solve_tradeoff(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    *,
    t: int,
    **params: Any,
) -> Estimate:
    from .tradeoff import apsp_tradeoff

    return apsp_tradeoff(graph, t, rng, ledger=ledger, **params)


@register_variant(
    "large-bandwidth",
    display_name="thm 8.1",
    summary="Theorem 8.1: general graphs in Congested-Clique[log^4 n].",
    factor_formula="7^3 (1+eps)^2",
    factor_bound=lambda n, eps=0.1, **_: 7.0**3 * (1.0 + eps) ** 2,
    accepted_params=("eps",),
    rounds_note="O(log log n) big-bandwidth rounds",
)
def _solve_large_bandwidth(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
    **params: Any,
) -> Estimate:
    from .large_bandwidth import apsp_large_bandwidth

    return apsp_large_bandwidth(graph, rng, ledger=ledger, **params)


__all__ = [
    "VariantSpec",
    "get_variant",
    "iter_variants",
    "register_variant",
    "run_variant",
    "variant_names",
]
