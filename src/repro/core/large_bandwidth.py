"""APSP approximation with large bandwidth (Section 8.2, Theorem 8.1).

Pipeline for general graphs in ``Congested-Clique[log^4 n]``:

1. bootstrap an ``O(log n)``-approximation (Corollary 7.2) and build a
   sqrt(n)-nearest beta-hopset (Lemma 3.2);
2. apply the weight scaling lemma (Lemma 8.1) to ``G ∪ H`` with
   ``h = beta``, producing O(log n) small-diameter graphs ``G_i``;
3. run the Theorem 7.1 solver on every needed ``G_i`` *in parallel*
   (the extra bandwidth pays for the parallelism) and assemble ``eta``;
4. take ``~N_k(u)`` = the sqrt(n) nodes with smallest ``eta(u, .)``,
   verify-by-construction conditions (C1)/(C2), build the full-version
   skeleton (Lemma 6.1) with ``a = 7(1+eps)``, broadcast it entirely, and
   solve exactly (``l = 1``), giving a ``7^3 (1+eps)^2``-approximation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.distances import exact_apsp
from ..graphs.graph import WeightedGraph
from ..graphs.validation import symmetrize_min
from ..semiring.minplus import k_smallest_in_rows
from ..spanners.logn_approx import logn_bootstrap
from . import params
from .factor_reduction import _phase
from .hopsets import build_knearest_hopset
from .results import Estimate
from .skeleton import build_skeleton, extend_estimate
from .small_diameter import apsp_small_diameter, exact_fallback
from .weight_scaling import assemble_eta, build_scaled_graph, clip_estimate, plan_scaling

#: Signature of the solver run on each scaled graph: (graph, rng, ledger).
InnerSolver = Callable[[WeightedGraph, np.random.Generator, Optional[RoundLedger]], Estimate]


def _default_inner_solver(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger],
) -> Estimate:
    """Theorem 7.1 in its Congested-Clique[log^3 n] variant (7-approx)."""
    return apsp_small_diameter(graph, rng, ledger=ledger, mode="cc3")


def scaled_bandwidth_words(n: int) -> int:
    """Words per message for the per-``G_i`` runs (``log^3 n`` bits each)."""
    return max(1, int(math.ceil(math.log2(max(2, n)) ** 2)))


def apsp_large_bandwidth(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 0.1,
    inner_solver: Optional[InnerSolver] = None,
    bootstrap_alpha: float = 1.0,
) -> Estimate:
    """Theorem 8.1: ``(7^3 + eps')``-approximate APSP in CC[log^4 n].

    Parameters
    ----------
    graph:
        Weighted undirected graph (any weighted diameter).
    rng, ledger:
        Randomness and round accounting; the per-scale runs use their own
        sub-ledgers merged as a *parallel* composition (max of rounds, sum
        of bandwidths), exactly how the theorem spends its ``log^4 n``
        bandwidth.
    eps:
        Weight-scaling epsilon; the final factor is
        ``7 * ((1 + eps) * l_inner)^2`` with ``l_inner`` the per-scale
        solver's factor (7 asymptotically).
    inner_solver:
        Override for the per-``G_i`` solver (the Theorem 1.2 tradeoff
        plugs the round-limited Lemma 8.2 solver in here).
    """
    if graph.directed:
        raise ValueError("Theorem 8.1 applies to undirected graphs")
    n = graph.n
    if n <= params.exact_small_threshold(n) or graph.num_edges * 3 <= n:
        return exact_fallback(graph, ledger)
    solver = inner_solver or _default_inner_solver

    # Step 1: bootstrap + hopset.
    with _phase(ledger, "thm8.1/bootstrap"):
        boot = logn_bootstrap(graph, rng, ledger=ledger, alpha=bootstrap_alpha)
        delta0 = symmetrize_min(boot.estimate)
        a0 = boot.factor
        hopset = build_knearest_hopset(graph, delta0, a0, ledger=ledger)
        augmented = hopset.augmented(graph)
    beta = hopset.beta_bound

    # Step 2(a): weight scaling on G ∪ H with h = beta.  delta0 is an
    # a0-approximation and a0 <= beta, so it is also a beta-approximation
    # as the lemma requires.
    plan = plan_scaling(delta0, h=beta, eps=eps)

    # Step 2(b): solve each needed scale (parallel in the model).
    estimates: Dict[int, np.ndarray] = {}
    sub_ledgers = []
    inner_factor = 1.0
    words = scaled_bandwidth_words(n)
    for i in plan.needed:
        scaled = build_scaled_graph(augmented, i, plan)
        sub_ledger = RoundLedger(n, bandwidth_words=words) if ledger is not None else None
        result = solver(scaled, rng, sub_ledger)
        estimates[i] = clip_estimate(result.estimate, plan)
        inner_factor = max(inner_factor, result.factor)
        if sub_ledger is not None:
            sub_ledgers.append(sub_ledger)
    if ledger is not None and sub_ledgers:
        with _phase(ledger, "thm8.1/scaled-solves"):
            ledger.merge_parallel(sub_ledgers, prefix="G_i")

    # Step 2(b) continued: assemble eta (zero rounds).  Pairs disconnected
    # in G stay inf: the scaled graphs' diameter caps make every pair look
    # connected, but eta must never underestimate (d = inf there).
    eta = assemble_eta(estimates, plan)
    eta[~np.isfinite(delta0)] = np.inf
    np.fill_diagonal(eta, 0.0)
    eta = symmetrize_min(eta)
    a_eta = (1.0 + eps) * inner_factor

    # Step 3: skeleton from the approximate sqrt(n)-nearest sets.
    k = max(1, math.isqrt(n))
    nbr_indices, nbr_values = k_smallest_in_rows(eta, k)
    with _phase(ledger, "thm8.1/skeleton"):
        skeleton = build_skeleton(
            augmented, nbr_indices, nbr_values, k, rng, a=a_eta, ledger=ledger
        )
        if ledger is not None:
            ledger.charge_broadcast(
                3 * skeleton.graph.num_edges,
                detail="broadcast full skeleton [Thm 8.1 final step]",
            )
        exact_gs = exact_apsp(skeleton.graph)
        final, factor = extend_estimate(skeleton, exact_gs, 1.0, ledger)
    final = symmetrize_min(final)

    return Estimate(
        estimate=final,
        factor=factor,
        meta={
            "bootstrap_factor": a0,
            "hopset_beta": beta,
            "scales": plan.needed,
            "scale_cap": plan.cap,
            "inner_factor": inner_factor,
            "eta_factor": a_eta,
            "skeleton_nodes": skeleton.num_nodes,
            "bandwidth_words_per_scale": words,
        },
    )
