"""Top-level APSP approximation (Theorem 1.1) and the public entry point.

Theorem 1.1 lifts Theorem 8.1 from ``Congested-Clique[log^4 n]`` to the
standard model:

1. compute exact distances to the ``k = log^4 n`` nearest nodes on ``G``
   itself (Lemma 5.2 — a shortest path to a k-nearest node has at most
   ``k`` hops, so no hopset is required);
2. build a skeleton graph ``G_S`` with ``O(n / log^3 n)`` nodes
   (Lemma 3.4);
3. simulate the Theorem 8.1 algorithm on ``G_S``: because ``G_S`` is a
   ``log^3 n``-fold smaller clique, Lemma 2.1 routes each of its
   big-bandwidth rounds in O(1) standard rounds;
4. extend the result back to ``G`` (factor ``7 * (7^3 + eps) = 7^4 + eps'``).

:func:`approximate_apsp` is the library's main convenience API: it accepts
any nonnegative-integer-weighted graph (zero weights handled by the
Theorem 2.1 reduction), picks the requested variant, and returns the
estimate, the guaranteed factor, and the round ledger.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from ..graphs.validation import symmetrize_min
from . import params
from .factor_reduction import _phase
from .knearest import knearest_iterated
from .large_bandwidth import apsp_large_bandwidth
from .results import Estimate
from .skeleton import build_skeleton, extend_estimate
from .small_diameter import apsp_round_limited, exact_fallback


def simulation_bandwidth_words(n: int, skeleton_nodes: int) -> int:
    """Bandwidth (words) a skeleton-clique simulation gets for free.

    A clique on ``N`` nodes simulated inside a clique on ``n`` nodes can
    exchange ``O(n / N)`` words per simulated link per round while keeping
    every (real) node's load at O(n) messages (Lemma 2.1).  Asymptotically
    ``n / N = log^3 n`` for Theorem 1.1's skeleton, which covers the
    ``log^4 n``-bit messages the inner algorithm wants; at laptop scale the
    measured ratio is smaller and we grant exactly what is affordable.
    """
    if skeleton_nodes < 1:
        return 1
    return max(1, n // skeleton_nodes)


def apsp_theorem11(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    eps: float = 0.1,
    tradeoff_t: Optional[int] = None,
    faults: Any = None,
    max_retries: int = 0,
    recovery: Optional[str] = None,
    integrity: Any = None,
) -> Estimate:
    """Theorem 1.1 (or Theorem 1.2 when ``tradeoff_t`` is given).

    Parameters
    ----------
    graph:
        Weighted undirected graph with positive integer weights.
    rng, ledger:
        Randomness and round accounting (standard-model ledger).
    eps:
        The epsilon of the final ``7^4 + eps`` guarantee (propagated to the
        weight-scaling step of the inner Theorem 8.1 run).
    tradeoff_t:
        When set, the inner per-scale solver is the round-limited
        Lemma 8.2 with parameter ``t + 1`` (Lemma 8.3), yielding the
        Theorem 1.2 tradeoff instead of the fixed constant factor.
    faults, max_retries, recovery, integrity:
        A chaos configuration (see :mod:`repro.cclique.faults` and
        :func:`~repro.cclique.routing.route_batch_two_phase`).  When
        ``faults`` is set the input graph is first *disseminated* over
        the faulted fabric (every edge shipped both directions, see
        :mod:`repro.protocols.dissemination`) and the solver runs on
        whatever survived — degraded bandwidth and loss show up as
        stretched estimates, recorded in ``meta["dissemination"]``.
    """
    if graph.directed:
        raise ValueError("Theorem 1.1 applies to undirected graphs")
    dissemination_meta = None
    if faults is not None:
        from ..protocols.dissemination import disseminate_graph

        shipped = disseminate_graph(
            graph, faults=faults, max_retries=max_retries,
            recovery=recovery, integrity=integrity,
        )
        graph = shipped.graph
        dissemination_meta = shipped.describe()
    n = graph.n
    if n <= params.exact_small_threshold(n) or graph.num_edges * 3 <= n:
        fallback = exact_fallback(graph, ledger)
        if dissemination_meta is not None:
            fallback.meta["dissemination"] = dissemination_meta
        return fallback

    # Step 1: exact k0-nearest distances on G itself.
    k0 = params.theorem11_k0(n)
    h0, i0 = params.choose_hop_schedule(n, k0)
    with _phase(ledger, "thm1.1/k-nearest"):
        knn = knearest_iterated(graph.matrix(), k0, h0, i0, ledger=ledger)

    # Step 2: skeleton reduction.
    with _phase(ledger, "thm1.1/skeleton"):
        skeleton = build_skeleton(
            graph, knn.indices, knn.values, k0, rng, a=1.0, ledger=ledger
        )

    # Step 3: Theorem 8.1 on the skeleton graph, simulated with the
    # bandwidth the size reduction affords.
    inner_n = skeleton.graph.n
    words = simulation_bandwidth_words(n, inner_n)
    sub_ledger = (
        RoundLedger(max(2, inner_n), bandwidth_words=words)
        if ledger is not None
        else None
    )
    if tradeoff_t is None:
        inner = apsp_large_bandwidth(
            skeleton.graph, rng, ledger=sub_ledger, eps=eps
        )
    else:
        t_inner = tradeoff_t + 1

        def limited_solver(
            g: WeightedGraph,
            solver_rng: np.random.Generator,
            solver_ledger: Optional[RoundLedger],
        ) -> Estimate:
            # Lemma 8.3: the per-scale solver is the round-limited Lemma 8.2
            # in the CC[log^3 n] (exact-skeleton) variant.
            return apsp_round_limited(
                g, t_inner, solver_rng, ledger=solver_ledger, mode="cc3"
            )

        inner = apsp_large_bandwidth(
            skeleton.graph,
            rng,
            ledger=sub_ledger,
            eps=eps,
            inner_solver=limited_solver,
        )
    if ledger is not None and sub_ledger is not None:
        # Each simulated round of the skeleton clique is O(1) standard
        # rounds by Lemma 2.1; fold the sub-ledger in at face value.
        ledger.merge(sub_ledger, prefix="thm1.1/simulated-G_S")

    # Step 4: extend back to G.
    with _phase(ledger, "thm1.1/extend"):
        final, factor = extend_estimate(skeleton, inner.estimate, inner.factor, ledger)
    final = symmetrize_min(final)
    meta = {
        "k0": k0,
        "hop_schedule": (h0, i0),
        "skeleton_nodes": skeleton.num_nodes,
        "inner": inner.meta,
        "inner_factor": inner.factor,
        "simulation_bandwidth_words": words,
    }
    if dissemination_meta is not None:
        meta["dissemination"] = dissemination_meta
    return Estimate(estimate=final, factor=factor, meta=meta)


def approximate_apsp(
    graph: WeightedGraph,
    rng: Optional[np.random.Generator] = None,
    variant: str = "theorem11",
    t: Optional[int] = None,
    eps: float = 0.1,
    ledger: Optional[RoundLedger] = None,
    faults: Any = None,
    max_retries: int = 0,
    recovery: Optional[str] = None,
    integrity: Any = None,
) -> Estimate:
    """Approximate APSP on a weighted undirected graph — the legacy API.

    This is a thin back-compat wrapper over the variant registry
    (:mod:`repro.core.registry`); prefer :class:`repro.api.ApspSolver` for
    new code — it adds typed configuration, batch execution, timing, and
    JSON-serializable results.

    Parameters
    ----------
    graph:
        Undirected graph with nonnegative integer weights.  Zero weights
        are handled transparently via the Theorem 2.1 reduction.
    rng:
        Randomness source (fresh default generator if omitted — pass one
        for reproducibility).
    variant:
        Any registered variant name (``repro.core.registry.variant_names()``).
        The built-ins include ``"theorem11"`` (the headline Theorem 1.1
        O(1)-approximation), ``"small-diameter"`` (Theorem 7.1),
        ``"tradeoff"`` (Theorem 1.2, requires ``t``), ``"exact"``,
        ``"uy90"``, ``"spanner-only"``, and ``"large-bandwidth"``
        (Theorem 8.1).
    t:
        Tradeoff parameter (required iff ``variant="tradeoff"``).
    eps:
        Approximation slack for the constant-factor variants.
    ledger:
        Optional round ledger; created automatically when omitted and
        attached to the result's ``meta["ledger"]``.
    faults, max_retries, recovery, integrity:
        A chaos configuration: when ``faults`` is set the graph is
        first disseminated over the faulted clique fabric (see
        :mod:`repro.protocols.dissemination`) and the chosen variant
        runs on the surviving subgraph.  The dissemination outcome is
        attached to the result's ``meta["dissemination"]``.
    """
    from .registry import run_variant

    dissemination_meta = None
    if faults is not None:
        from ..protocols.dissemination import disseminate_graph

        shipped = disseminate_graph(
            graph, faults=faults, max_retries=max_retries,
            recovery=recovery, integrity=integrity,
        )
        graph = shipped.graph
        dissemination_meta = shipped.describe()
    result = run_variant(variant, graph, rng=rng, ledger=ledger, t=t, eps=eps)
    if dissemination_meta is not None:
        result.meta["dissemination"] = dissemination_meta
    return result
